"""AST vs. PAST across the printer family (Ex. 1.1) and its variants.

The non-affine printer of Ex. 1.1 (2) is AST exactly when the per-print
success probability is at least 1/2, PAST exactly when it is strictly above
1/2, and at the critical parameter it terminates almost surely with infinite
expected runtime.  This example sweeps the parameter, classifies every
instance with the combined AST/PAST analyses, and shows the certified
``Eterm`` lower bounds of the interval semantics diverging at criticality.

Run with ``python examples/past_classification.py``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.pastcheck import classify_termination, eterm_lower_bounds
from repro.programs import geometric, printer_nonaffine, von_neumann_coin


def main() -> None:
    print("== classification sweep over the non-affine printer ==")
    for p in (Fraction(1, 4), Fraction(2, 5), Fraction(1, 2), Fraction(3, 5), Fraction(4, 5)):
        program = printer_nonaffine(p)
        classification = classify_termination(program)
        past = classification.past
        calls = (
            "-"
            if past.expected_calls_per_body is None
            else f"{float(past.expected_calls_per_body):.3f}"
        )
        print(f"p = {str(p):5s}  E[calls/body] = {calls:>6s}  ->  {classification.summary()}")

    print("\n== certified Eterm lower bounds (Thm. 3.4) ==")
    examples = (
        ("PAST: geo(1/2)", geometric(Fraction(1, 2)).applied),
        ("not PAST: printer p=1/2", printer_nonaffine(Fraction(1, 2)).applied),
    )
    for label, term in examples:
        points = eterm_lower_bounds(term, depths=(20, 40, 60))
        rendered = ", ".join(
            f"depth {point.depth}: E >= {float(point.expected_steps):6.2f}" for point in points
        )
        print(f"{label:24s} {rendered}")
    print(
        "(the PAST program's bounds saturate at its finite expected runtime; "
        "the critical one's keep growing)"
    )

    print("\n== an affine example: von Neumann's fair coin ==")
    classification = classify_termination(von_neumann_coin(Fraction(1, 3)))
    print("von Neumann coin with bias 1/3:", classification.summary())


if __name__ == "__main__":
    main()
