"""Random-walk analysis: the Thm. 5.4 criterion and the zero-one law.

The demo analyses a family of step distributions directly (without going
through a program): it contrasts the exact linear-time criterion with
truncated matrix iteration and Monte-Carlo simulation, and illustrates the
zero-one law corollary (an affine recursion -- rank 1 -- is AST as soon as it
stops with any positive probability, whereas a rank-2 recursion needs stopping
probability at least 1/2).

Run with ``python examples/random_walk_analysis.py``.
"""

from fractions import Fraction

from repro.randomwalk import (
    CountingDistribution,
    estimate_absorption,
    termination_probability,
)


def analyse(label: str, counting: CountingDistribution) -> None:
    shifted = counting.shifted()
    decided = shifted.is_ast()
    iterated = termination_probability(shifted, start=1, steps=400)
    simulated = estimate_absorption(shifted, start=1, runs=2000, max_steps=4000)
    print(
        f"  {label:<40} drift = {float(shifted.drift):+.3f}  "
        f"Thm 5.4: {'AST' if decided else 'not AST':<8} "
        f"P^400(1,0) = {float(iterated):.4f}  MC = {simulated:.3f}"
    )


def main() -> None:
    print("Rank-2 recursion (two calls on failure), stopping probability p:")
    for numerator in (4, 5, 6):
        p = Fraction(numerator, 10)
        analyse(
            f"p = {p}",
            CountingDistribution({0: p, 2: 1 - p}),
        )
    print()
    print("Affine recursion (one call on failure) -- the zero-one law:")
    for numerator in (1, 10, 99):
        p = Fraction(numerator, 100)
        analyse(
            f"p = {p}",
            CountingDistribution({0: p, 1: 1 - p}),
        )
    print()
    print("The Ex. 5.1 worst-case distribution at p = 3/5 (Table 2):")
    analyse(
        "3/5 d0 + 1/5 d2 + 1/5 d3",
        CountingDistribution({0: Fraction(3, 5), 2: Fraction(1, 5), 3: Fraction(1, 5)}),
    )


if __name__ == "__main__":
    main()
