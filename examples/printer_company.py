"""The 3D-printing company, end to end (Ex. 1.1, Ex. 5.1 and Ex. 5.15).

The example sweeps the acceptance probability ``p`` and shows how each
analysis in the library sees the three printer programs:

* the counting pattern of one body evaluation (Sec. 5.2),
* the Cor. 5.13 rule ``rank * (1 - epsilon) <= 1``,
* the full strategy-based verifier (Sec. 6), which is strictly stronger
  (it verifies Ex. 5.1 already at p = 3/5 where the corollary needs 2/3),
* a Monte-Carlo estimate of the termination probability as a sanity check.

Run with ``python examples/printer_company.py``.
"""

from fractions import Fraction

from repro import estimate_termination, verify_ast
from repro.counting import counting_pattern_exact, recursive_rank_bound, verify_ast_by_corollary
from repro.programs import printer_nonaffine, running_example, running_example_first_class


def analyse(name, program_builder, probabilities) -> None:
    print(f"== {name} ==")
    for probability in probabilities:
        program = program_builder(probability)
        rank = recursive_rank_bound(program.fix)
        pattern = counting_pattern_exact(program.fix, 1)
        corollary = verify_ast_by_corollary(program.fix, arguments=(0, 1, 3))
        verification = verify_ast(program)
        estimate = estimate_termination(program.applied, runs=800, max_steps=15_000)
        print(
            f"  p = {str(probability):>6}  rank = {rank}  "
            f"pattern(0) = {float(pattern.distribution(0)):.3f}  "
            f"Cor5.13 = {'yes' if corollary.verified else 'no ':>3}  "
            f"verifier = {'AST' if verification.verified else '???'}  "
            f"MC Pterm ~ {estimate.probability:.3f}"
        )
    print()


def main() -> None:
    analyse(
        "Ex. 1.1 (2): reprint an extra copy on failure",
        printer_nonaffine,
        [Fraction(2, 5), Fraction(1, 2), Fraction(3, 4)],
    )
    analyse(
        "Ex. 5.1: a tired operator sometimes prints 3 copies",
        running_example,
        [Fraction(11, 20), Fraction(3, 5), Fraction(7, 10)],
    )
    analyse(
        "Ex. 5.15: the reprint count depends on the sampled error value",
        running_example_first_class,
        [Fraction(3, 5), Fraction(13, 20), Fraction(7, 10)],
    )


if __name__ == "__main__":
    main()
