"""Recursion trees, random-walk runs, and the one-counter MDP view (Sec. 5, App. D).

The counting-based AST proof identifies the recursion structure of a run with
a *number tree*, identifies number trees with terminating runs of a random
walk, and verifies the walk with the linear-time criterion of Thm. 5.4 (or,
more laboriously, by value iteration on a one-counter MDP).  This example
makes each of those identifications concrete on the printer programs.

Run with ``python examples/recursion_trees.py``.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.counting.numbertrees import (
    empirical_tree_distribution,
    enumerate_trees,
    extinction_probability,
    sample_call_tree,
    termination_mass_up_to,
    tree_probability,
)
from repro.mdp import from_counting_distributions
from repro.programs import golden_ratio, printer_nonaffine
from repro.randomwalk import CountingDistribution


def main() -> None:
    p = Fraction(3, 5)
    program = printer_nonaffine(p)
    offspring = CountingDistribution({0: p, 2: 1 - p})

    # 1. Sample actual call trees and compare with the product formula.
    print("== call trees of the printer at p = 3/5 ==")
    rng = random.Random(1)
    run = sample_call_tree(program.fix, 1, rng=rng)
    assert run is not None
    print("one sampled run returned", run.value, "with call tree", run.tree.render())
    empirical = empirical_tree_distribution(program.fix, 1, runs=2_000, seed=7)
    print(f"{'tree':14s} {'analytic':>9s} {'empirical':>10s}")
    for tree in enumerate_trees(3):
        analytic = float(tree_probability(tree, offspring))
        observed = float(empirical.get(tree, Fraction(0)))
        print(f"{tree.render():14s} {analytic:9.4f} {observed:10.4f}")

    # 2. Number trees as runs of the shifted random walk.
    tree = next(t for t in enumerate_trees(4) if t.node_count == 4)
    print("\ntree", tree.render(), "corresponds to the walk", tree.to_absolute_run())

    # 3. Cumulative tree mass approaches the extinction probability.
    print("\n== cumulative tree mass vs. extinction probability ==")
    for name, distribution in (
        ("printer p=3/5", offspring),
        ("gr           ", CountingDistribution({0: Fraction(1, 2), 3: Fraction(1, 2)})),
    ):
        masses = [float(termination_mass_up_to(distribution, budget)) for budget in (5, 15, 31)]
        limit = extinction_probability(distribution)
        print(
            f"{name}: mass up to 5/15/31 nodes = "
            + ", ".join(f"{mass:.4f}" for mass in masses)
            + f"  ->  limit {limit:.4f}"
        )

    # 4. The one-counter MDP route vs. the Thm. 5.4 criterion.
    print("\n== one-counter MDP cross-check ==")
    family = [offspring, CountingDistribution({0: Fraction(1, 2), 1: Fraction(1, 2)})]
    mdp = from_counting_distributions(family)
    decision = mdp.decide_uniform_ast()
    value = float(mdp.adversarial_value(1, 120, exact=False))
    print("Thm. 5.4 + Lem. 5.6 decision:", decision)
    print(f"adversarial 120-step value from counter 1: {value:.4f} (tends to 1)")

    # 5. The golden-ratio program is not AST: the walk escapes.
    gr = golden_ratio()
    gr_offspring = CountingDistribution({0: Fraction(1, 2), 3: Fraction(1, 2)})
    print(
        "\ngr: offspring mean",
        float(gr_offspring.expected_calls),
        "-> AST?",
        gr_offspring.is_ast(),
        "(termination probability",
        f"{extinction_probability(gr_offspring):.4f})",
    )
    sampled = sample_call_tree(gr.fix, 0, rng=random.Random(5), max_calls=500)
    print("a sampled gr run terminated with", "a" if sampled else "no", "finite call tree")


if __name__ == "__main__":
    main()
