"""The lost pedestrian (from Mak et al. [41], Table 1's last row).

A pedestrian is lost a uniform distance from home and repeatedly walks a
uniform-length segment in a uniformly random direction until reaching home.
The program is almost surely terminating but its expected running time is
infinite -- a useful stress test for the lower-bound machinery, whose path
constraints couple several sample variables (they are measured by the convex
polytope oracle rather than the univariate fast path).

Run with ``python examples/pedestrian.py``.
"""

import time

from repro import estimate_termination, lower_bound
from repro.programs import pedestrian


def main() -> None:
    program = pedestrian()
    print(program.description)

    estimate = estimate_termination(program.applied, runs=1000, max_steps=100_000)
    print(f"Monte-Carlo estimate of Pterm : {estimate.probability:.3f}")
    print(f"mean steps of terminating runs: {estimate.mean_steps:.1f}")

    for depth in (20, 35, 50):
        start = time.perf_counter()
        result = lower_bound(program.applied, max_steps=depth, strategy=program.strategy)
        elapsed = time.perf_counter() - start
        print(
            f"depth {depth:>3}: certified lower bound = {float(result.probability):.6f} "
            f"({result.path_count} paths, {elapsed:.2f} s)"
        )
    print(
        "The bound keeps improving with depth (the walk is recurrent but "
        "heavy-tailed, so convergence is slow -- compare Table 1's LB of 0.60 at d=40)."
    )


if __name__ == "__main__":
    main()
