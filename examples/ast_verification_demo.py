"""Automatic AST verification (Table 2, Sec. 6 and Sec. 7.2).

For every Table 2 program the demo prints the symbolic execution tree of the
recursion body, the number of Environment strategies, the computed worst-case
counting distribution ``Papprox`` and the verdict of the Thm. 5.4 criterion.
It then sweeps the parameter of Ex. 1.1 (2) across the AST threshold at 1/2.

Run with ``python examples/ast_verification_demo.py``.
"""

import time
from fractions import Fraction

from repro import verify_ast
from repro.astcheck import build_execution_tree, count_strategies
from repro.astcheck.exectree import render_tree
from repro.programs import printer_nonaffine, table2_programs


def main() -> None:
    for name, program in table2_programs().items():
        start = time.perf_counter()
        result = verify_ast(program)
        elapsed = (time.perf_counter() - start) * 1000
        tree = build_execution_tree(program.fix)
        print(f"== {name} ==  ({elapsed:.1f} ms)")
        print("   strategies :", count_strategies(tree))
        print("   Papprox    :", result.papprox)
        print("   verdict    :", "AST" if result.verified else "not verified")
        print(render_tree(tree))
        print()

    print("== AST threshold of the non-affine printer (Ex. 1.1 (2)) ==")
    for numerator in range(40, 61, 5):
        probability = Fraction(numerator, 100)
        result = verify_ast(printer_nonaffine(probability))
        print(f"   p = {float(probability):.2f}: {'AST' if result.verified else 'not verified'}")


if __name__ == "__main__":
    main()
