"""Lower bounds on the probability of termination (Table 1, Sec. 7.1).

For a selection of the Table 1 programs, the demo shows how the certified
lower bound computed by the interval-trace engine tightens as the exploration
depth grows, and compares it against a Monte-Carlo estimate and (when known)
the true probability of termination.

Run with ``python examples/lower_bounds_demo.py``; pass ``--deep`` for the
paper-scale depths (slower).
"""

import argparse
import time

from repro import estimate_termination, lower_bound
from repro.programs import table1_programs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--deep", action="store_true", help="use paper-scale depths")
    arguments = parser.parse_args()

    depths = (20, 40, 80) if not arguments.deep else (40, 80, 160)
    selection = ["geo(1/2)", "gr", "ex1.1(1/2)", "ex1.1(1/4)", "3print(3/4)", "bin(1/2,2)"]
    programs = table1_programs()

    for name in selection:
        program = programs[name]
        estimate = estimate_termination(program.applied, runs=1500, max_steps=20_000)
        known = program.known_probability
        print(f"== {name} ==")
        print(
            "   true Pterm:",
            f"{known:.6f}" if known is not None else "unknown",
            f"   MC estimate: {estimate.probability:.4f}",
        )
        for depth in depths:
            start = time.perf_counter()
            result = lower_bound(program.applied, max_steps=depth, strategy=program.strategy)
            elapsed = (time.perf_counter() - start) * 1000
            print(
                f"   depth {depth:>4}: LB = {float(result.probability):.10f}  "
                f"paths = {result.path_count:>5}  ({elapsed:.0f} ms)"
            )
        print()


if __name__ == "__main__":
    main()
