"""Continuous distributions as SPCF terms, and the limits of interval reasoning.

The first half builds samplers for standard continuous distributions by
pushing ``sample`` through inverse CDFs (footnote 5 of the paper) and
cross-checks them empirically.  The second half constructs the paper's
incompleteness example (Ex. 3.9): a program that is almost surely terminating
but whose interval-based lower bound can never exceed ``1 - lambda(C)`` for a
fat Cantor set ``C``.

Run with ``python examples/distributions_and_incompleteness.py``.
"""

from __future__ import annotations

import statistics

from repro.distributions import (
    check_interval_preserving,
    check_interval_separable,
    exponential,
    extended_registry,
    fat_cantor_primitive,
    fat_cantor_set,
    incompleteness_example,
    normal,
    pareto,
    sample_values,
)


def main() -> None:
    registry = extended_registry()

    # 1. Inverse-CDF transforms, checked against closed-form moments.
    print("== distribution transforms ==")
    for name, term, mean in (
        ("Exp(2)", exponential(2), 0.5),
        ("N(1, 2^2)", normal(1, 2), 1.0),
        ("Pareto(3, 1)", pareto(3, 1), 1.5),
    ):
        values = sample_values(term, runs=3_000, seed=0, registry=registry)
        print(
            f"{name:12s} empirical mean = {statistics.fmean(values):7.4f}"
            f"   (closed form {mean})"
        )

    # 2. The hypotheses behind soundness/completeness, probed numerically.
    print("\n== Lem. 3.2 / Lem. 3.7 probes ==")
    for name in ("add", "exp", "probit", "floor"):
        report = check_interval_preserving(registry[name], box=((0.05, 2.0),) * registry[name].arity)
        print(
            f"{name:8s} largest relative image gap = {report.largest_relative_gap:.4f}"
            f"   interval preserving? {report.looks_interval_preserving}"
        )
    separable = check_interval_separable(registry["add"], target=(0.25, 0.75), depth=7)
    print(
        f"add      preimage of [0.25, 0.75]: inside {separable.inside_measure:.4f}, "
        f"boundary {separable.boundary_measure:.4f}"
    )

    # 3. The fat Cantor set of Ex. 3.9 and the incompleteness gap.
    print("\n== Ex. 3.9: incompleteness of interval reasoning ==")
    cantor = fat_cantor_set()
    print(f"lambda(C) = {cantor.measure}, d(0.5, C) = {cantor.distance(0.5)}")
    svc = fat_cantor_primitive(max_depth=12)
    probe = check_interval_separable(svc, target=(0.0, 0.0), depth=9)
    print(
        "distance-to-C primitive: boundary cells keep measure "
        f"{probe.boundary_measure:.3f} (not interval separable)"
    )
    report = incompleteness_example(max_depth=12, sweep_depth=9, max_steps=40)
    print(
        f"program 'if d_C(sample) then 0 else 1': Pterm = {report.true_probability}, "
        f"certified lower bound = {report.lower_bound:.4f} <= 1 - lambda(C) = 0.5"
    )


if __name__ == "__main__":
    main()
