"""Quickstart: parse an SPCF program, run it, bound its termination probability.

This walks through the library's main entry points on the paper's running
example, the unreliable 3D-printing company of Ex. 1.1:

* program (1) retries a failed print once per day (affine recursion),
* program (2) prints an additional copy on every failure (non-affine
  recursion) and is AST exactly when the per-print success probability is at
  least 1/2.

Run with ``python examples/quickstart.py``.
"""

from fractions import Fraction

from repro import (
    CbVMachine,
    Trace,
    estimate_termination,
    lower_bound,
    parse,
    pretty,
    typecheck,
    verify_ast,
)
from repro.programs import printer_affine, printer_nonaffine


def main() -> None:
    # 1. Build a program from surface syntax and type-check it.
    term = parse("(mu phi x. if sample - 1/2 then x else phi (phi (x + 1))) 1")
    print("program      :", pretty(term))
    print("simple type  :", typecheck(term))

    # 2. Run it on a concrete trace of random draws (the sampling semantics).
    machine = CbVMachine()
    run = machine.run(term, Trace([Fraction(1, 4)]))
    print("run on [1/4] :", run.status.value, "in", run.steps, "steps")

    # 3. Estimate the probability of termination by Monte Carlo.
    estimate = estimate_termination(term, runs=2000, max_steps=20_000)
    print(f"MC estimate  : {estimate.probability:.3f} (+/- {2 * estimate.stderr:.3f})")

    # 4. Compute a certified lower bound on the probability of termination
    #    with the interval-trace semantics of Sec. 3.
    bound = lower_bound(term, max_steps=60)
    print("lower bound  :", bound.summary())

    # 5. Verify almost-sure termination automatically (Sec. 6): the verifier
    #    needs no exploration depth because it analyses one body unfolding.
    for probability in (Fraction(1, 2), Fraction(2, 5)):
        program = printer_nonaffine(probability)
        result = verify_ast(program)
        print(f"verify p={probability}: {result.summary()}")
        if not result.verified:
            for reason in result.reasons:
                print("    reason:", reason)

    # 6. The affine variant (program (1)) is AST for every positive p --
    #    the functional zero-one law (Sec. 5.4).
    result = verify_ast(printer_affine(Fraction(1, 100)))
    print("affine printer, p=1/100:", result.summary())


if __name__ == "__main__":
    main()
