"""Tests for the shared memoizing measure engine and the single-pass Papprox.

Covers the engine's canonicalization/caching/complement rule, the pruned
subdivision sweep, the cached constraint-set views, the iterative execution
tree statistics, and bit-identity of the single-pass cumulative vector with
the per-budget reference evaluator.
"""

from fractions import Fraction

import pytest

from repro.astcheck import (
    build_execution_tree,
    cumulative_vector,
    min_probability_at_most,
    papprox_distribution,
    verify_ast,
)
from repro.astcheck.exectree import (
    ExecLeaf,
    ExecMu,
    ExecScore,
    ExecutionTree,
    _iter_nodes,
    _max_mu,
)
from repro.geometry import (
    MeasureEngine,
    MeasureOptions,
    PerfStats,
    measure_constraints,
    sweep_measure,
)
from repro.lowerbound import LowerBoundEngine
from repro.pastcheck import classify_termination, verify_past
from repro.programs import (
    geometric,
    running_example,
    running_example_first_class,
    table2_programs,
    three_print,
)
from repro.spcf.syntax import Numeral
from repro.symbolic.constraints import Constraint, ConstraintSet, Relation
from repro.symbolic.values import const, sample_var, simplify_prim


def _le(value):
    return Constraint(value, Relation.LE)


def _gt(value):
    return Constraint(value, Relation.GT)


def _affine(index, bound):
    """The symbolic value ``a_index - bound``."""
    return simplify_prim("sub", [sample_var(index), const(bound)])


class TestMeasureEngine:
    def test_canonicalization_dedupes_and_orders(self):
        engine = MeasureEngine()
        a = _le(_affine(0, Fraction(1, 2)))
        b = _gt(_affine(1, Fraction(1, 4)))
        left = engine.canonicalize(ConstraintSet([a, b, a]))
        right = engine.canonicalize(ConstraintSet([b, a]))
        assert left == right
        assert len(left) == 2

    def test_permuted_sets_share_one_cache_entry(self):
        engine = MeasureEngine()
        a = _le(_affine(0, Fraction(1, 2)))
        b = _gt(_affine(1, Fraction(1, 4)))
        first = engine.measure(ConstraintSet([a, b]))
        second = engine.measure(ConstraintSet([b, a, a]))
        assert first == second
        assert engine.stats.measure_requests == 2
        assert engine.stats.cache_hits == 1
        # The set decomposes into two independent univariate blocks, each
        # measured (and memoized) once; the permuted re-request is answered
        # from the full-set product entry.
        assert engine.stats.measure_calls == 2
        assert engine.stats.block_requests == 2
        assert engine.stats.multi_block_sets == 1

    def test_engine_matches_direct_measure(self):
        a = _le(_affine(0, Fraction(1, 3)))
        b = _gt(_affine(1, Fraction(3, 4)))
        constraints = ConstraintSet([a, b])
        direct = measure_constraints(constraints, 2)
        engine = MeasureEngine()
        assert engine.measure(constraints, 2).value == direct.value
        disabled = MeasureEngine(cache_enabled=False)
        assert disabled.measure(constraints, 2).value == direct.value
        assert disabled.stats.measure_calls == 2  # one per independent block
        assert disabled.cache_size == 0
        monolithic = MeasureEngine(cache_enabled=False, block_decomposition=False)
        assert monolithic.measure(constraints, 2).value == direct.value
        assert monolithic.stats.measure_calls == 1

    def test_complement_rule_is_exact_and_counted(self):
        engine = MeasureEngine()
        guard = _affine(0, Fraction(2, 3))
        then_value = engine.measure(ConstraintSet([_le(guard)]))
        else_value = engine.measure(ConstraintSet([_gt(guard)]))
        assert then_value.value == Fraction(2, 3)
        assert else_value.value == Fraction(1, 3)
        assert else_value.method == "complement"
        assert engine.stats.complement_derivations == 1
        assert engine.stats.measure_calls == 1
        # The derived value is bit-identical to the direct computation.
        direct = measure_constraints(ConstraintSet([_gt(guard)]), 1)
        assert else_value.value == direct.value

    def test_complement_rule_skips_multivariate_constraints(self):
        engine = MeasureEngine()
        guard = simplify_prim("sub", [sample_var(0), sample_var(1)])
        engine.measure(ConstraintSet([_le(guard)]))
        engine.measure(ConstraintSet([_gt(guard)]))
        assert engine.stats.complement_derivations == 0
        assert engine.stats.measure_calls == 2

    def test_clear_drops_entries_but_keeps_counters(self):
        engine = MeasureEngine()
        constraints = ConstraintSet([_le(_affine(0, Fraction(1, 2)))])
        engine.measure(constraints)
        assert engine.cache_size == 1
        engine.clear()
        assert engine.cache_size == 0
        assert engine.stats.measure_requests == 1

    def test_perf_stats_merge_and_reset(self):
        first = PerfStats(measure_requests=2, cache_hits=1)
        second = PerfStats(measure_requests=3, measure_calls=2)
        first.merge(second)
        assert first.measure_requests == 5
        assert first.cache_hits == 1
        assert first.measure_calls == 2
        assert "measure requests" in first.summary()
        first.reset()
        assert first.measure_requests == 0


class TestConstraintSetCaching:
    def test_variables_and_dimension_are_consistent(self):
        constraints = ConstraintSet(
            [_le(_affine(3, Fraction(1, 2))), _gt(_affine(1, Fraction(1, 4)))]
        )
        assert constraints.variables() == frozenset({1, 3})
        assert constraints.variables() is constraints.variables()  # cached
        assert constraints.dimension() == 4
        assert not constraints.contains_star()
        assert not constraints.contains_argument()

    def test_hash_is_stable_and_matches_equality(self):
        a = _le(_affine(0, Fraction(1, 2)))
        left = ConstraintSet([a])
        right = ConstraintSet([a])
        assert left == right
        assert hash(left) == hash(right)
        assert hash(a) == hash(Constraint(a.value, a.relation))


class TestSweepPruning:
    def test_pruning_saves_evaluations_without_changing_bounds(self):
        # a0 <= 3/4 is decided on large boxes early; a1*a1 <= 1/2 needs depth.
        easy = _le(_affine(0, Fraction(3, 4)))
        square = simplify_prim(
            "sub", [simplify_prim("mul", [sample_var(1), sample_var(1)]), const(Fraction(1, 2))]
        )
        constraints = ConstraintSet([easy, _le(square)])
        stats = PerfStats()
        result = sweep_measure(constraints, 2, max_depth=8, stats=stats)
        assert result.evaluations_saved > 0
        assert stats.sweep_evaluations_saved == result.evaluations_saved
        assert stats.sweep_boxes_examined == result.boxes_examined
        # The bounds still bracket the true measure 3/4 * sqrt(1/2).
        truth = 0.75 * (0.5 ** 0.5)
        assert float(result.lower) <= truth <= float(result.upper)

    def test_pruned_sweep_brackets_the_true_measure(self):
        constraints = ConstraintSet(
            [_le(_affine(0, Fraction(1, 2))), _gt(_affine(0, Fraction(1, 4)))]
        )
        result = sweep_measure(constraints, 1, max_depth=10)
        assert result.lower <= Fraction(1, 4) <= result.upper
        assert result.undecided <= Fraction(1, 256)


class TestExecutionTreeStatistics:
    def test_deep_trees_do_not_hit_the_recursion_limit(self):
        depth = 50_000
        node = ExecLeaf(Numeral(0))
        for _ in range(depth):
            node = ExecMu(argument=None, child=node)
        tree = ExecutionTree(node, 0)
        assert tree.max_recursive_calls == depth
        assert tree.leaf_count == 1
        assert tree.node_count == depth + 1
        assert sum(1 for _ in _iter_nodes(node)) == depth + 1
        assert _max_mu(node) == depth

    def test_statistics_are_cached_on_the_tree(self):
        tree = build_execution_tree(running_example(Fraction(3, 5)).fix)
        first = tree._stats
        assert tree._stats is first
        assert tree.max_recursive_calls == 3
        assert tree.leaf_count == 4
        assert tree.prob_node_count == 2
        assert tree.nondet_node_count == 1
        assert not tree.has_stuck_paths
        assert not tree.has_star_guards

    def test_score_chains_are_walked_iteratively(self):
        node = ExecLeaf(Numeral(0))
        for _ in range(10_000):
            node = ExecScore(value=const(1), child=node)
        tree = ExecutionTree(node, 0)
        assert tree.max_recursive_calls == 0
        assert tree.leaf_count == 1


class TestSinglePassPapprox:
    @pytest.mark.parametrize("name", sorted(table2_programs()))
    def test_cumulative_vector_matches_per_budget_reference(self, name):
        program = table2_programs()[name]
        tree = build_execution_tree(program.fix)
        rank = tree.max_recursive_calls
        engine = MeasureEngine()
        vector = cumulative_vector(tree, rank, engine)
        reference = [
            min_probability_at_most(tree, budget, engine=MeasureEngine(cache_enabled=False))
            for budget in range(rank + 1)
        ]
        assert vector == reference

    @pytest.mark.parametrize("cache_enabled", [True, False])
    def test_distributions_identical_with_and_without_cache(self, cache_enabled):
        program = running_example_first_class(Fraction(13, 20))
        tree = build_execution_tree(program.fix)
        result = papprox_distribution(
            tree, engine=MeasureEngine(cache_enabled=cache_enabled)
        )
        assert result.exact
        assert result.distribution.as_dict() == {
            0: Fraction(13, 20),
            2: Fraction(49, 800),
            3: Fraction(231, 800),
        }

    def test_leaves_are_measured_once_per_distinct_set(self):
        tree = build_execution_tree(three_print(Fraction(2, 3)).fix)
        engine = MeasureEngine()
        papprox_distribution(tree, engine=engine)
        # Two leaves, one derived by the complement rule: one real measure.
        assert engine.stats.measure_requests == 2
        assert engine.stats.measure_calls == 1
        assert engine.stats.complement_derivations == 1


class TestSharedEngineAcrossAnalyses:
    def test_verify_past_reuses_the_verifier_cache(self):
        program = running_example(Fraction(3, 5))
        engine = MeasureEngine()
        ast = verify_ast(program, engine=engine)
        calls_after_verify = engine.stats.measure_calls
        past = verify_past(program, engine=engine)
        assert past.ast_result.papprox.as_dict() == ast.papprox.as_dict()
        assert engine.stats.measure_calls == calls_after_verify
        assert engine.stats.cache_hits > 0

    def test_classification_with_engine_matches_without(self):
        program = geometric(Fraction(1, 2))
        with_engine = classify_termination(program, engine=MeasureEngine())
        without = classify_termination(program)
        assert with_engine.verdict == without.verdict
        assert with_engine.past.papprox.as_dict() == without.past.papprox.as_dict()

    def test_lower_bound_engine_accepts_a_shared_engine(self):
        program = geometric(Fraction(1, 2))
        shared = MeasureEngine()
        first = LowerBoundEngine(measure_engine=shared).lower_bound(
            program.applied, max_steps=40
        )
        again = LowerBoundEngine(measure_engine=shared).lower_bound(
            program.applied, max_steps=40
        )
        assert first.probability == again.probability
        assert shared.stats.cache_hits > 0
        plain = LowerBoundEngine().lower_bound(program.applied, max_steps=40)
        assert first.probability == plain.probability

    def test_measure_options_flow_through_the_engine(self):
        options = MeasureOptions(prefer_sweep=True, sweep_depth=6)
        engine = MeasureEngine(options)
        program = running_example(Fraction(3, 5))
        result = verify_ast(program, engine=engine)
        assert engine.stats.sweep_boxes_examined > 0
        assert result.papprox is not None
