"""Property and integration tests for persisted, sharded exploration frontiers.

The distributed-deepening invariants (see :mod:`repro.batch.distribute`):

* the session codec is an exact inverse: ``decode(encode(s)).extend(d)`` is
  bit-identical -- result, order, counts, ``PerfStats`` -- to ``s.extend(d)``,
  for any program, suspension depth and deeper budget,
* splitting a frontier into shards, extending the shards in *any* order
  (the steal order) and absorbing them back reproduces the inline extend
  bit for bit, for any shard count,
* a crash between depths resumes from the store without re-executing any
  completed symbolic step, and a worker never re-executes a shard whose
  output is already merged,
* frontier entries age and survive ``prune`` exactly like measure and
  sweep entries, and ``doctor`` audits their shards, in both store
  backends.
"""

import json
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.batch.distribute import (
    _ShardClaims,
    _claim_name,
    execute_shards,
    frontier_entry,
    frontier_entry_parts,
    frontier_key,
    run_distributed_schedule,
    shard_entry_key,
)
from repro.batch.doctor import diagnose
from repro.batch.store_sqlite import open_store
from repro.geometry.engine import MeasureEngine
from repro.geometry.stats import PerfStats
from repro.programs import (
    golden_ratio,
    resolve_program,
    sigmoid_branching,
    sigmoid_tri_branching,
)
from repro.symbolic import SymbolicExplorer
from repro.symbolic.codec import (
    CODEC_VERSION,
    decode_session,
    encode_session,
    session_counters,
    split_session,
)

_PROGRAMS = {
    "gr": golden_ratio().applied,
    "sig-branch": sigmoid_branching(Fraction(3, 5)).applied,
    "sig-branch3": sigmoid_tri_branching(Fraction(3, 5)).applied,
}


def _roundtrip(encoded):
    """A real JSON dump/load cycle: what the store actually persists."""
    return json.loads(json.dumps(encoded))


# ---------------------------------------------------------------------------
# The codec: encode/decode is an exact inverse, counters included.
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    st.sampled_from(sorted(_PROGRAMS)),
    st.integers(min_value=5, max_value=35),
    st.integers(min_value=0, max_value=20),
)
def test_decode_encode_extend_matches_uninterrupted(name, depth, extra):
    term = _PROGRAMS[name]
    uninterrupted_stats = PerfStats()
    uninterrupted = SymbolicExplorer(stats=uninterrupted_stats).session(term)
    uninterrupted.extend(depth)

    suspended = SymbolicExplorer(stats=PerfStats()).session(term)
    suspended.extend(depth)
    encoded = _roundtrip(encode_session(suspended))

    restored_stats = PerfStats()
    restored = decode_session(
        encoded, SymbolicExplorer(stats=restored_stats), stats=restored_stats
    )
    assert restored is not None
    deeper = depth + extra
    assert restored.extend(deeper) == uninterrupted.extend(deeper)
    # The crash/restore cycle reports the same PerfStats as never crashing.
    assert restored_stats.symbolic_steps == uninterrupted_stats.symbolic_steps
    assert restored_stats.paths_resumed == uninterrupted_stats.paths_resumed
    assert restored_stats.frontier_peak == uninterrupted_stats.frontier_peak
    assert restored_stats.frontier_restores == 1


def test_malformed_encodings_read_as_misses():
    session = SymbolicExplorer().session(_PROGRAMS["gr"])
    session.extend(20)
    encoded = encode_session(session)
    explorer = SymbolicExplorer()
    assert decode_session(None, explorer) is None
    assert decode_session([], explorer) is None
    assert decode_session(encoded[:5], explorer) is None
    assert decode_session([CODEC_VERSION + 1] + encoded[1:], explorer) is None
    bad_counters = list(encoded)
    bad_counters[3] = [1, -2]
    assert decode_session(bad_counters, explorer) is None
    if len(encoded[5]) >= 2:  # out-of-order node keys are rejected
        shuffled = list(encoded)
        shuffled[5] = [encoded[5][-1]] + list(encoded[5][:-1])
        assert decode_session(shuffled, explorer) is None


def test_frontier_key_is_budget_independent_but_pins_program_and_cap():
    rank3 = resolve_program("sig-branch3(3/5)")
    rank2 = resolve_program("sig-branch(3/5)")
    key = frontier_key(rank3, 100)
    assert key == frontier_key(rank3, 100)  # no depth, no schedule in the key
    assert key != frontier_key(rank3, 200)
    assert key != frontier_key(rank2, 100)


# ---------------------------------------------------------------------------
# Sharding: split + extend-in-any-order + absorb == inline extend.
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    st.sampled_from(["gr", "sig-branch3"]),
    st.integers(min_value=1, max_value=9),
    st.randoms(use_true_random=False),
)
def test_shard_split_and_absorb_are_bit_identical(name, shard_count, rng):
    term = _PROGRAMS[name]
    suspend_at, target = 20, 32
    inline_stats = PerfStats()
    inline = SymbolicExplorer(stats=inline_stats).session(term)
    inline.extend(suspend_at)
    reference = inline.extend(target)

    master_stats = PerfStats()
    master = SymbolicExplorer(stats=master_stats).session(term)
    master.extend(suspend_at)
    shards = split_session(master, shard_count)
    assert 1 <= len(shards) <= min(shard_count, master.frontier_size)
    order = list(range(len(shards)))
    rng.shuffle(order)  # the steal order must not matter
    decoded = [None] * len(shards)
    for index in order:
        shard = decode_session(
            _roundtrip(shards[index]), SymbolicExplorer(), credit_stats=False
        )
        assert shard is not None
        assert session_counters(shard) == (0, 0, 0)  # pure work units
        assert shard.max_steps == suspend_at
        shard.extend(target)
        decoded[index] = shard
    master.absorb(decoded, target)
    assert master.extend(target) == reference
    assert master_stats.symbolic_steps == inline_stats.symbolic_steps
    assert master_stats.paths_resumed == inline_stats.paths_resumed
    assert master_stats.frontier_peak == inline_stats.frontier_peak


# ---------------------------------------------------------------------------
# The worker loop: claims, stealing, and completed-output reuse.
# ---------------------------------------------------------------------------


def _seed_shards(store, engine, program, depth, target, shard_count):
    """Persist a depth-``depth`` frontier and its ``:in`` shards for ``target``."""
    key = frontier_key(program, 100_000)
    run_distributed_schedule(
        program.name,
        program,
        [depth],
        store=store,
        engine=engine,
        jobs=1,
        max_paths=100_000,
    )
    encoded, _rows = frontier_entry_parts(store.load_frontiers(engine)[key])
    detached = SymbolicExplorer(program.strategy, engine.registry, stats=None)
    master = decode_session(encoded, detached, credit_stats=False)
    shards = split_session(master, shard_count)
    store.merge_frontiers(
        engine,
        {
            shard_entry_key(key, target, index, "in"): frontier_entry(shard, [])
            for index, shard in enumerate(shards)
        },
    )
    return key, shards


def _shard_params(key, target, count, prefer, store):
    return {
        "frontier": key,
        "depth": target,
        "shards": count,
        "prefer": prefer,
        "max_paths": 100_000,
        "strategy": None,
        "store_dir": str(store.directory),
        "store_backend": store.backend_name,
    }


def test_workers_skip_shards_whose_output_is_already_merged(tmp_path):
    program = resolve_program("sig-branch(3/5)")
    engine = MeasureEngine()
    store = open_store(tmp_path, backend="json")
    key, shards = _seed_shards(store, engine, program, 10, 25, 2)
    assert len(shards) == 2
    # A previous fleet completed shard 0 before dying: its output is merged.
    detached = SymbolicExplorer(program.strategy, engine.registry, stats=None)
    done = decode_session(shards[0], detached, credit_stats=False)
    done.extend(25)
    store.merge_frontiers(
        engine,
        {shard_entry_key(key, 25, 0, "out"): frontier_entry(encode_session(done), [])},
    )
    worker = MeasureEngine()
    payload = execute_shards(program, _shard_params(key, 25, 2, 0, store), worker)
    # The completed shard is never re-executed; the surviving one is picked
    # up as a steal (this worker's preferred shard was the finished one).
    assert payload["executed"] == [1]
    assert payload["stolen"] == [1]
    assert worker.stats.shards_executed == 1
    assert worker.stats.shards_stolen == 1
    assert shard_entry_key(key, 25, 1, "out") in store.load_frontiers(worker)


def test_workers_respect_a_live_claim_and_steal_once_it_releases(tmp_path):
    pytest.importorskip("fcntl")
    program = resolve_program("sig-branch(3/5)")
    engine = MeasureEngine()
    store = open_store(tmp_path, backend="json")
    key, shards = _seed_shards(store, engine, program, 10, 25, 2)
    holder = _ShardClaims(store.directory)
    assert holder.try_claim(_claim_name(key, 25, 1))
    try:
        worker = MeasureEngine()
        payload = execute_shards(program, _shard_params(key, 25, 2, 0, store), worker)
        # Shard 1 is busy under a live claim: only shard 0 runs.
        assert payload["executed"] == [0]
    finally:
        holder.release_all()
    worker = MeasureEngine()
    payload = execute_shards(program, _shard_params(key, 25, 2, 0, store), worker)
    assert payload["executed"] == [1]
    assert payload["stolen"] == [1]


# ---------------------------------------------------------------------------
# End to end: byte-identity and crash-resume through both store backends.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["json", "sqlite"])
def test_distributed_schedule_is_bit_identical_and_crash_resumable(
    tmp_path, backend
):
    program = resolve_program("sig-branch(3/5)")
    schedule = [10, 25, 40]
    reference_engine = MeasureEngine()
    reference = run_distributed_schedule(
        "sig-branch(3/5)",
        program,
        schedule,
        store=open_store(tmp_path / "reference", backend=backend),
        engine=reference_engine,
        jobs=1,
        max_paths=100_000,
    )
    reference_payload = json.dumps(reference.payload(), sort_keys=True)

    # A fleet run that "crashes" after the second depth...
    fleet_dir = tmp_path / "fleet"
    run_distributed_schedule(
        "sig-branch(3/5)",
        program,
        schedule[:2],
        store=open_store(fleet_dir, backend=backend),
        engine=MeasureEngine(),
        jobs=2,
        max_paths=100_000,
    )
    # ... and a fresh process that resumes the full schedule.
    resumed_engine = MeasureEngine()
    resumed = run_distributed_schedule(
        "sig-branch(3/5)",
        program,
        schedule,
        store=open_store(fleet_dir, backend=backend),
        engine=resumed_engine,
        jobs=2,
        max_paths=100_000,
    )
    assert resumed.resumed
    assert resumed.restored_depth == 25
    assert [outcome.replayed for outcome in resumed.outcomes] == [True, True, False]
    assert json.dumps(resumed.payload(), sort_keys=True) == reference_payload
    # No completed step re-executes, and the resumed process reports the
    # same PerfStats as the uninterrupted single-process run.
    assert resumed_engine.stats.symbolic_steps == reference_engine.stats.symbolic_steps
    assert resumed_engine.stats.paths_resumed == reference_engine.stats.paths_resumed
    assert resumed_engine.stats.frontier_peak == reference_engine.stats.frontier_peak
    assert resumed_engine.stats.paths_resumed > 0
    assert resumed_engine.stats.frontier_restores == 1


# ---------------------------------------------------------------------------
# Store plumbing: round-trips, GC aging, doctor coverage.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["json", "sqlite"])
def test_store_round_trips_frontier_entries(tmp_path, backend):
    engine = MeasureEngine()
    store = open_store(tmp_path, backend=backend)
    session = SymbolicExplorer().session(_PROGRAMS["sig-branch3"])
    session.extend(15)
    rows = [{"depth": 15, "probability": "1/3"}]
    store.merge_frontiers(
        engine, {"the-key": frontier_entry(encode_session(session), rows)}
    )
    assert store.frontier_entry_count(engine) == 1
    loaded = open_store(tmp_path, backend=backend).load_frontiers(engine)
    encoded, loaded_rows = frontier_entry_parts(loaded["the-key"])
    assert loaded_rows == rows
    restored = decode_session(encoded, SymbolicExplorer(), credit_stats=False)
    assert restored.extend(30) == session.extend(30)
    # Entries from a different format version read as a miss, not an error.
    assert frontier_entry_parts([99, [], []]) is None
    assert frontier_entry_parts("garbage") is None


@pytest.mark.parametrize("backend", ["json", "sqlite"])
def test_prune_ages_frontier_entries_like_other_kinds(tmp_path, backend):
    engine = MeasureEngine()
    store = open_store(tmp_path, backend=backend)
    run = store.begin_run()
    store.merge_frontiers(engine, {"stale": frontier_entry([], [])}, run=run)
    store.merge_frontiers(engine, {"touched": frontier_entry([], [])}, run=run)
    for _ in range(3):
        run = store.begin_run()
    store.merge_frontiers(engine, {"fresh": frontier_entry([], [])}, run=run)
    # A merge that only *touches* a key refreshes its GC stamp.
    store.merge_frontiers(engine, {}, run=run, touched_keys=["touched"])
    report = store.prune(min_age_runs=2)
    assert report.pruned["frontiers"] == 1
    assert report.kept["frontiers"] == 2
    remaining = store.load_frontiers(engine)
    assert set(remaining) == {"touched", "fresh"}


def test_doctor_audits_frontier_shards(tmp_path):
    engine = MeasureEngine()
    store = open_store(tmp_path, backend="json")
    store.begin_run()
    session = SymbolicExplorer().session(_PROGRAMS["gr"])
    session.extend(10)
    store.merge_frontiers(
        engine, {"k": frontier_entry(encode_session(session), [])}
    )
    report = diagnose(tmp_path, engine=engine)
    assert report.healthy
    assert report.counts["frontiers_shards"] == 1
    assert report.counts["frontiers_entries"] == 1
    # Damage to a frontier shard is a finding, like any other store file.
    shard = next(tmp_path.glob("frontiers-*.json"))
    shard.write_text(shard.read_text()[:-25])
    assert not diagnose(tmp_path, engine=engine).healthy
