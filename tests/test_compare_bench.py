"""Tests for the perf-trajectory gate (``benchmarks/compare_bench.py``).

The CI ``perf-trajectory`` job relies on the comparator failing loudly on a
regression; these tests inject regressions into copies of the committed
baselines and assert the exit codes, so the gate itself is gated.
"""

import importlib.util
import json
import shutil
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"


def _load_compare_bench():
    spec = importlib.util.spec_from_file_location(
        "compare_bench", REPO_ROOT / "benchmarks" / "compare_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    # dataclass processing resolves the defining module through sys.modules,
    # so the module must be registered before it is executed.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


compare_bench = _load_compare_bench()


@pytest.fixture
def current_dir(tmp_path, monkeypatch):
    """A 'current results' directory seeded with the committed baselines."""
    monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
    directory = tmp_path / "current"
    directory.mkdir()
    for filename in compare_bench.BENCH_FILES:
        shutil.copyfile(BASELINE_DIR / filename, directory / filename)
    return directory


def _edit(path: Path, mutate):
    document = json.loads(path.read_text())
    mutate(document)
    path.write_text(json.dumps(document))


def _run(current_dir, *extra):
    return compare_bench.main(
        ["--baseline-dir", str(BASELINE_DIR), "--current-dir", str(current_dir), *extra]
    )


def test_identical_results_pass(current_dir, capsys):
    assert _run(current_dir) == 0
    out = capsys.readouterr().out
    assert "| metric |" in out
    assert "FAIL" not in out


def test_injected_counter_regression_fails(current_dir, capsys):
    def regress(document):
        for row in document["programs"].values():
            row["cached_measure_calls"] = row["cached_measure_calls"] * 3

    _edit(current_dir / "BENCH_papprox.json", regress)
    assert _run(current_dir) == 1
    assert "FAIL" in capsys.readouterr().out


def test_counter_gates_have_zero_tolerance(current_dir, capsys):
    def regress(document):
        document["aggregate_block_speedup"] = (
            document["aggregate_block_speedup"] * 0.9
        )

    _edit(current_dir / "BENCH_papprox.json", regress)
    assert _run(current_dir) == 1


def test_injected_timing_regression_fails(current_dir):
    def regress(document):
        document["warm_ratio"] = document["warm_ratio"] * 2 + 0.5

    _edit(current_dir / "BENCH_batch.json", regress)
    assert _run(current_dir) == 1


def test_ratio_worsening_within_tolerance_passes(current_dir):
    def drift(document):
        document["warm_ratio"] = document["warm_ratio"] * 1.2

    _edit(current_dir / "BENCH_batch.json", drift)
    assert _run(current_dir) == 0


def test_wallclock_is_informational_unless_gated(current_dir):
    def slower(document):
        document["cold_seconds"] = document["cold_seconds"] * 10

    _edit(current_dir / "BENCH_batch.json", slower)
    assert _run(current_dir) == 0
    assert _run(current_dir, "--gate-wallclock") == 1


def test_dropped_program_fails(current_dir):
    def drop(document):
        document["programs"].pop(sorted(document["programs"])[0])

    _edit(current_dir / "BENCH_papprox.json", drop)
    assert _run(current_dir) == 1


def test_missing_current_file_fails(current_dir):
    (current_dir / "BENCH_batch.json").unlink()
    assert _run(current_dir) == 1


def test_update_blesses_current_numbers(current_dir, tmp_path):
    def regress(document):
        document["warm_ratio"] = 0.49

    _edit(current_dir / "BENCH_batch.json", regress)
    blessed = tmp_path / "blessed"
    assert (
        compare_bench.main(
            ["--baseline-dir", str(blessed), "--current-dir", str(current_dir),
             "--update"]
        )
        == 0
    )
    document = json.loads((blessed / "BENCH_batch.json").read_text())
    assert document["warm_ratio"] == 0.49
    assert compare_bench.main(
        ["--baseline-dir", str(blessed), "--current-dir", str(current_dir)]
    ) == 0


def test_step_summary_is_appended(current_dir, tmp_path, monkeypatch):
    summary = tmp_path / "summary.md"
    monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
    assert _run(current_dir) == 0
    assert "## Perf trajectory" in summary.read_text()


def _batch_doc(cpu_count, speedup):
    document = {
        "job_count": 15,
        "cpu_count": cpu_count,
        "warm_job_cache_hits": 15,
        "warm_ratio": 0.1,
        "cold_seconds": 2.0,
        "serial_seconds": 2.0,
    }
    if speedup is not None:
        document["parallel_speedup"] = speedup
    return document


def _write_batch_docs(baseline_dir, current_dir, baseline_doc, current_doc):
    (baseline_dir / "BENCH_batch.json").write_text(json.dumps(baseline_doc))
    (current_dir / "BENCH_batch.json").write_text(json.dumps(current_doc))


class TestParallelSpeedupGating:
    """The parallel-timing ratio is only compared on machines that can fan
    out: single-core runs (and runs that never recorded the field) skip it
    instead of gating on scheduling noise."""

    def _verdicts(self, baseline_doc, current_doc):
        metrics = compare_bench._batch_metrics(baseline_doc, current_doc)
        return {metric.name: metric for metric in metrics}

    def test_multicore_regression_is_gated(self):
        metrics = self._verdicts(_batch_doc(4, 2.5), _batch_doc(4, 1.0))
        speedup = metrics["batch: parallel speedup"]
        assert speedup.kind == compare_bench.RATIO
        assert speedup.verdict(0.25, False) == "FAIL"

    def test_multicore_within_tolerance_passes(self):
        metrics = self._verdicts(_batch_doc(4, 2.5), _batch_doc(4, 2.2))
        assert metrics["batch: parallel speedup"].verdict(0.25, False) == "ok"

    def test_single_core_skips_the_ratio(self):
        for baseline_cores, current_cores in ((1, 4), (4, 1), (1, 1)):
            metrics = self._verdicts(
                _batch_doc(baseline_cores, 2.5), _batch_doc(current_cores, 0.5)
            )
            assert "batch: parallel speedup" not in metrics

    def test_absent_speedup_field_skips_the_ratio(self):
        metrics = self._verdicts(_batch_doc(4, None), _batch_doc(4, 2.0))
        assert "batch: parallel speedup" not in metrics
        metrics = self._verdicts(_batch_doc(4, 2.0), _batch_doc(4, None))
        assert "batch: parallel speedup" not in metrics

    def test_end_to_end_single_core_regression_passes(self, current_dir):
        _edit(
            current_dir / "BENCH_batch.json",
            lambda document: document.update(cpu_count=1, parallel_speedup=0.5),
        )
        assert _run(current_dir) == 0


class TestSweepTrajectory:
    def test_sweep_box_count_regression_fails(self, current_dir):
        def regress(document):
            document["multi_block_block_boxes"] *= 3
            document["aggregate_box_reduction"] /= 3

        _edit(current_dir / "BENCH_sweep.json", regress)
        assert _run(current_dir) == 1

    def test_sweep_bound_loosening_fails(self, current_dir):
        def regress(document):
            for row in document["programs"].values():
                row["block_bound"] *= 0.9

        _edit(current_dir / "BENCH_sweep.json", regress)
        assert _run(current_dir) == 1

    def test_warm_sweep_recomputation_fails(self, current_dir):
        _edit(
            current_dir / "BENCH_sweep.json",
            lambda document: document.update(warm_sweep_blocks=6),
        )
        assert _run(current_dir) == 1

    def test_dropped_sweep_program_fails(self, current_dir):
        def drop(document):
            document["programs"].pop(sorted(document["programs"])[0])

        _edit(current_dir / "BENCH_sweep.json", drop)
        assert _run(current_dir) == 1


class TestHistory:
    def test_history_renders_one_row_per_blessing_commit(self, capsys, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        exit_code = compare_bench.main(
            ["--history", "--baseline-dir", str(BASELINE_DIR)]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "Perf trajectory history" in out
        assert "papprox block speedup" in out
        # At least the committed baselines' own blessing commit must appear.
        assert len([line for line in out.splitlines() if line.startswith("| ")]) >= 3

    def test_history_rows_read_oldest_first(self):
        rows = compare_bench.baseline_history(BASELINE_DIR, limit=20)
        assert rows, "the committed baselines must have git history"
        dates = [row["date"] for row in rows]
        assert dates == sorted(dates)

    def test_history_outside_a_checkout_fails_loudly(self, tmp_path, capsys):
        exit_code = compare_bench.main(
            ["--history", "--baseline-dir", str(tmp_path)]
        )
        err = capsys.readouterr().err
        assert exit_code == 1
        assert "no baseline history" in err

    def test_history_limit_caps_the_walk(self):
        rows = compare_bench.baseline_history(BASELINE_DIR, limit=1)
        assert len(rows) == 1
