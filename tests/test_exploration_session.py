"""Property tests for the resumable exploration session (the anytime core).

The tentpole invariants of the incremental refactor:

* for any non-decreasing schedule, ``session.extend(d1); ...; extend(dn)``
  returns at every depth an :class:`ExplorationResult` *equal* -- terminated
  tuple, order, counts, budget flag -- to a fresh ``explore`` at that depth,
* no reduction step is ever executed twice across a schedule (the session's
  total equals one fresh exploration at the deepest budget),
* a ``max_paths`` cap is stable under resumption: every post-cap extend
  keeps reporting ``exhausted_path_budget=True``, suspended paths beyond the
  cap are retained (never silently dropped), and the per-depth results still
  match fresh capped explorations bit for bit.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.stats import PerfStats
from repro.programs import geometric, golden_ratio, sigmoid_branching, two_sample_sum
from repro.spcf import parse
from repro.symbolic import SymbolicExplorer

_PROGRAMS = {
    "geo": geometric(Fraction(1, 2)).applied,
    "gr": golden_ratio().applied,
    "sig-branch": sigmoid_branching().applied,
    "two-sample": two_sample_sum().applied,
    "score": parse("score(sample - 1/2)"),
}

_schedules = st.lists(
    st.integers(min_value=1, max_value=60), min_size=1, max_size=5
).map(lambda depths: tuple(sorted(depths)))


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(sorted(_PROGRAMS)), _schedules)
def test_extend_matches_fresh_exploration_at_every_depth(name, schedule):
    term = _PROGRAMS[name]
    session = SymbolicExplorer().session(term)
    fresh = SymbolicExplorer()
    for depth in schedule:
        incremental = session.extend(depth)
        reference = fresh.explore(term, max_steps_per_path=depth)
        assert incremental == reference


@settings(max_examples=25, deadline=None)
@given(_schedules, st.integers(min_value=1, max_value=12))
def test_extend_matches_fresh_exploration_under_a_path_cap(schedule, max_paths):
    term = _PROGRAMS["gr"]
    session = SymbolicExplorer().session(term, max_paths=max_paths)
    for depth in schedule:
        incremental = session.extend(depth)
        reference = SymbolicExplorer().explore(
            term, max_steps_per_path=depth, max_paths=max_paths
        )
        assert incremental == reference


def test_steps_are_never_re_executed_across_a_schedule():
    term = _PROGRAMS["gr"]
    schedule = (10, 20, 30, 40)
    incremental_stats = PerfStats()
    session = SymbolicExplorer(stats=incremental_stats).session(term)
    for depth in schedule:
        session.extend(depth)
    single_stats = PerfStats()
    SymbolicExplorer(stats=single_stats).explore(term, max_steps_per_path=schedule[-1])
    assert incremental_stats.symbolic_steps == single_stats.symbolic_steps
    assert incremental_stats.paths_resumed > 0
    # The peak tracks the live frontier (suspended paths a deeper budget can
    # still advance), so it is at least the frontier the session ended with.
    assert incremental_stats.frontier_peak >= session.frontier_size > 0


def test_replaying_the_same_budget_counts_no_resumes():
    term = _PROGRAMS["gr"]
    stats = PerfStats()
    session = SymbolicExplorer(stats=stats).session(term)
    session.extend(30)
    resumed = stats.paths_resumed
    session.extend(30)  # no headroom: nothing is actually resumed
    assert stats.paths_resumed == resumed


def test_budgets_are_non_decreasing():
    session = SymbolicExplorer().session(_PROGRAMS["geo"])
    session.extend(20)
    with pytest.raises(ValueError):
        session.extend(10)
    # Re-extending to the same budget replays the recorded result.
    assert session.extend(20) == session.result


class TestMaxPathsSafetyValve:
    """Hitting the cap must stay visible and lossless on every later extend."""

    def test_exhausted_stays_reported_and_paths_are_kept(self):
        term = _PROGRAMS["gr"]
        cap = 6
        session = SymbolicExplorer().session(term, max_paths=cap)
        results = [session.extend(depth) for depth in (25, 40, 60, 80)]
        capped = [result for result in results if result.exhausted_path_budget]
        assert capped, "the cap should engage on this branching program"
        first_capped = results.index(capped[0])
        # Once the cap engages, every subsequent extend keeps reporting it
        # (deeper budgets cannot un-exhaust a capped breadth-first pass).
        for result in results[first_capped:]:
            assert result.exhausted_path_budget
            assert not result.complete
        # Suspended paths beyond the cap are retained, not dropped: an
        # uncapped session at the same depth finds strictly more paths.
        uncapped = SymbolicExplorer().explore(term, max_steps_per_path=80)
        assert len(uncapped.terminated) > len(results[-1].terminated)
        assert session.frontier_size > 0

    def test_capped_results_match_fresh_capped_runs_after_resumption(self):
        term = _PROGRAMS["gr"]
        session = SymbolicExplorer().session(term, max_paths=5)
        for depth in (30, 50, 70):
            assert session.extend(depth) == SymbolicExplorer().explore(
                term, max_steps_per_path=depth, max_paths=5
            )


class TestExtendUntil:
    def test_stops_when_complete(self):
        term = parse("if sample + sample - 1 then 0 else 1")
        session = SymbolicExplorer().session(term)
        result = session.extend_until(step_increment=10)
        assert result.complete

    def test_stops_on_the_gap_callback(self):
        term = _PROGRAMS["geo"]
        session = SymbolicExplorer().session(term)
        result = session.extend_until(
            gap=lambda result: result.unfinished, target_gap=1, step_increment=5
        )
        assert result.unfinished <= 1

    def test_stops_at_the_path_target(self):
        term = _PROGRAMS["geo"]
        session = SymbolicExplorer().session(term)
        result = session.extend_until(max_paths=3, step_increment=5, max_steps=500)
        assert len(result.terminated) >= 3

    def test_stops_at_the_step_ceiling(self):
        term = parse("(mu phi x. phi x) 0")  # diverges deterministically
        session = SymbolicExplorer().session(term)
        result = session.extend_until(step_increment=7, max_steps=20)
        assert session.max_steps == 20
        assert not result.complete

    def test_ceiling_below_the_current_budget_replays_instead_of_raising(self):
        session = SymbolicExplorer().session(_PROGRAMS["geo"])
        deep = session.extend(100)
        assert session.extend_until(max_steps=50) == deep
        assert session.max_steps == 100

    def test_non_positive_increments_are_rejected(self):
        session = SymbolicExplorer().session(_PROGRAMS["geo"])
        with pytest.raises(ValueError):
            session.extend_until(step_increment=0)
