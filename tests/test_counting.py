"""Tests for the counting semantics, counting patterns, rank, progress, Cor. 5.13."""

from fractions import Fraction

import pytest

from repro.counting import (
    StarRunStatus,
    counting_pattern_exact,
    counting_pattern_monte_carlo,
    epsilon_recursion_avoidance,
    guards_independent_of_recursion,
    recursive_rank_bound,
    run_body,
    verify_ast_by_corollary,
)
from repro.programs import (
    bin_walk,
    geometric,
    golden_ratio,
    one_dim_random_walk,
    printer_nonaffine,
    running_example,
    running_example_first_class,
    three_print,
)
from repro.semantics.traces import Trace
from repro.spcf import parse
from repro.spcf.syntax import App, Fix, If, Numeral, Prim, Sample, Score, Var


class TestStarSemantics:
    def test_counting_the_nonaffine_printer(self):
        program = printer_nonaffine(Fraction(1, 2))
        # Accepting draw: no recursive calls.
        result = run_body(program.fix, 1, Trace([Fraction(1, 4)]))
        assert result.completed
        assert result.calls == 0
        # Failing draw: two recursive call sites.
        result = run_body(program.fix, 1, Trace([Fraction(3, 4)]))
        assert result.completed
        assert result.calls == 2

    def test_counting_three_print(self):
        program = three_print(Fraction(2, 3))
        result = run_body(program.fix, 1, Trace([Fraction(9, 10)]))
        assert result.completed
        assert result.calls == 3

    def test_star_in_guard_is_reported(self):
        # mu phi x. if phi x then 0 else 1 -- the recursive outcome decides the branch.
        fix = Fix("phi", "x", If(App(Var("phi"), Var("x")), Numeral(0), Numeral(1)))
        result = run_body(fix, 1, Trace([]))
        assert result.status is StarRunStatus.STUCK_ON_STAR_GUARD

    def test_primitives_absorb_star(self):
        fix = Fix("phi", "x", Prim("add", (App(Var("phi"), Var("x")), Numeral(1))))
        result = run_body(fix, 1, Trace([]))
        assert result.completed
        assert result.calls == 1

    def test_trace_exhaustion(self):
        program = printer_nonaffine(Fraction(1, 2))
        result = run_body(program.fix, 1, Trace([]))
        assert result.status is StarRunStatus.TRACE_EXHAUSTED


class TestCountingPattern:
    def test_nonaffine_printer_pattern(self):
        program = printer_nonaffine(Fraction(1, 2))
        pattern = counting_pattern_exact(program.fix, 1)
        assert pattern.exact
        assert pattern.distribution.as_dict() == {0: Fraction(1, 2), 2: Fraction(1, 2)}

    def test_running_example_pattern_matches_ex_5_8(self):
        # Ex. 5.8: <0> = p, <2> = (1-p)/2 (2 - sig r), <3> = (1-p)/2 sig r.
        program = running_example(Fraction(3, 5))
        argument = 1
        pattern = counting_pattern_exact(program.fix, argument).distribution
        import math

        sig = 1 / (1 + math.exp(-argument))
        assert float(pattern(0)) == pytest.approx(0.6)
        assert float(pattern(2)) == pytest.approx(0.4 * 0.5 * (2 - sig), abs=1e-9)
        assert float(pattern(3)) == pytest.approx(0.4 * 0.5 * sig, abs=1e-9)
        assert float(pattern.total_mass) == pytest.approx(1.0, abs=1e-9)

    def test_first_class_example_pattern_matches_appendix_d5(self):
        # App. D.5: <2> = (1-p)(1 - (1+p)/2 sig r), <3> = sig r (1-p^2)/2.
        program = running_example_first_class(Fraction(13, 20))
        argument = 2
        pattern = counting_pattern_exact(program.fix, argument).distribution
        import math

        p = 0.65
        sig = 1 / (1 + math.exp(-argument))
        assert float(pattern(0)) == pytest.approx(p)
        assert float(pattern(2)) == pytest.approx((1 - p) * (1 - (1 + p) / 2 * sig), abs=1e-9)
        assert float(pattern(3)) == pytest.approx(sig * (1 - p * p) / 2, abs=1e-9)

    def test_pattern_depends_on_the_argument_for_ex_5_1(self):
        program = running_example(Fraction(3, 5))
        small = counting_pattern_exact(program.fix, 0).distribution
        large = counting_pattern_exact(program.fix, 10).distribution
        assert small(3) < large(3)

    def test_monte_carlo_agrees_with_exact(self):
        program = printer_nonaffine(Fraction(1, 2))
        estimate = counting_pattern_monte_carlo(program.fix, 1, runs=2500)
        assert float(estimate(0)) == pytest.approx(0.5, abs=0.05)
        assert float(estimate(2)) == pytest.approx(0.5, abs=0.05)
        assert estimate(1) == 0

    def test_affine_programs_have_rank_one_patterns(self):
        for program in (geometric(Fraction(1, 3)), bin_walk(Fraction(1, 2), 2)):
            pattern = counting_pattern_exact(program.fix, 3).distribution
            assert pattern.rank <= 1


class TestRankAndProgress:
    def test_rank_bounds(self):
        assert recursive_rank_bound(geometric(Fraction(1, 2)).fix) == 1
        assert recursive_rank_bound(printer_nonaffine(Fraction(1, 2)).fix) == 2
        assert recursive_rank_bound(three_print(Fraction(1, 2)).fix) == 3
        assert recursive_rank_bound(golden_ratio().fix) == 3
        assert recursive_rank_bound(one_dim_random_walk(Fraction(1, 2), 1).fix) == 1
        assert recursive_rank_bound(running_example(Fraction(3, 5)).fix) == 3

    def test_rank_takes_the_max_over_branches(self):
        fix = Fix(
            "phi",
            "x",
            If(
                Sample(),
                App(Var("phi"), Var("x")),
                App(Var("phi"), App(Var("phi"), Var("x"))),
            ),
        )
        assert recursive_rank_bound(fix) == 2

    def test_progress_check_accepts_the_benchmarks(self):
        for program in (
            geometric(Fraction(1, 2)),
            printer_nonaffine(Fraction(1, 2)),
            running_example(Fraction(3, 5)),
            running_example_first_class(Fraction(13, 20)),
            one_dim_random_walk(Fraction(1, 2), 1),
        ):
            assert guards_independent_of_recursion(program.fix).ok

    def test_progress_check_rejects_recursive_guards(self):
        fix = Fix("phi", "x", If(App(Var("phi"), Var("x")), Numeral(0), Numeral(1)))
        result = guards_independent_of_recursion(fix)
        assert not result.ok
        assert "guard" in result.reason

    def test_progress_check_rejects_recursive_scores(self):
        fix = Fix("phi", "x", Score(App(Var("phi"), Var("x"))))
        assert not guards_independent_of_recursion(fix).ok

    def test_progress_check_tracks_let_bound_values(self):
        # let y = phi x in if y then 0 else 1  -- rejected.
        fix = Fix(
            "phi",
            "x",
            App(
                parse("lam y. if y then 0 else 1"),
                App(Var("phi"), Var("x")),
            ),
        )
        assert not guards_independent_of_recursion(fix).ok
        # let y = sample in if y then 0 else 1  -- accepted.
        fix = Fix("phi", "x", App(parse("lam y. if y then 0 else 1"), Sample()))
        assert guards_independent_of_recursion(fix).ok


class TestCorollary513:
    def test_nonaffine_printer_threshold(self):
        assert verify_ast_by_corollary(printer_nonaffine(Fraction(1, 2)).fix).verified
        assert not verify_ast_by_corollary(printer_nonaffine(Fraction(2, 5)).fix).verified

    def test_affine_zero_one_law(self):
        # Rank 1: any positive stopping probability suffices.
        result = verify_ast_by_corollary(geometric(Fraction(1, 100)).fix)
        assert result.verified
        assert result.rank == 1

    def test_running_example_needs_two_thirds_for_the_corollary(self):
        # Cor. 5.13 is weaker than Thm. 5.9: it applies only for p >= 2/3 (Ex. 5.14).
        assert verify_ast_by_corollary(
            running_example(Fraction(2, 3)).fix, arguments=(0, 1, 5)
        ).verified
        assert not verify_ast_by_corollary(
            running_example(Fraction(3, 5)).fix, arguments=(0, 1, 5)
        ).verified

    def test_epsilon_recursion_avoidance(self):
        epsilon = epsilon_recursion_avoidance(
            printer_nonaffine(Fraction(1, 3)).fix, arguments=(0, 2)
        )
        assert epsilon == Fraction(1, 3)
