"""Tests for the PAST analyses (repro.pastcheck).

The verification route is checked on sub-critical programs (geo, the
non-affine printer above the critical parameter), the refutation route on
critical and super-critical programs (the printer at and below 1/2, gr), and
the classification on the paper's running examples.  The Eterm lower bounds
of the interval semantics are checked to saturate for PAST programs and to
keep growing for AST-but-not-PAST programs.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pastcheck import (
    TerminationClass,
    classify_termination,
    eterm_lower_bounds,
    expected_total_calls,
    refute_past,
    verify_past,
)
from repro.programs.library import (
    geometric,
    golden_ratio,
    printer_nonaffine,
    running_example,
    three_print,
)
from repro.randomwalk import CountingDistribution


class TestExpectedTotalCalls:
    def test_subcritical_closed_form(self):
        distribution = CountingDistribution({0: Fraction(3, 5), 2: Fraction(2, 5)})
        # mean = 4/5, total progeny = 1 / (1 - 4/5) = 5.
        assert expected_total_calls(distribution) == Fraction(5)

    def test_call_free_body(self):
        distribution = CountingDistribution({0: Fraction(1)})
        assert expected_total_calls(distribution) == Fraction(1)

    def test_critical_is_infinite(self):
        distribution = CountingDistribution({0: Fraction(1, 2), 2: Fraction(1, 2)})
        assert expected_total_calls(distribution) == float("inf")

    def test_supercritical_is_infinite(self):
        distribution = CountingDistribution({0: Fraction(1, 4), 2: Fraction(3, 4)})
        assert expected_total_calls(distribution) == float("inf")

    @given(st.fractions(min_value=Fraction(1, 100), max_value=Fraction(99, 100)))
    @settings(max_examples=40, deadline=None)
    def test_matches_geometric_series(self, p):
        # Offspring 1 with probability 1 - p: total progeny 1/p.
        distribution = CountingDistribution({0: p, 1: 1 - p})
        assert expected_total_calls(distribution) == 1 / p


class TestVerifyPast:
    def test_geometric_is_past(self):
        result = verify_past(geometric(Fraction(1, 2)))
        assert result.verified
        assert result.expected_calls_per_body == Fraction(1, 2)
        assert result.expected_total_calls == Fraction(2)
        assert "PAST verified" in result.summary()

    def test_nonaffine_printer_above_critical_is_past(self):
        result = verify_past(printer_nonaffine(Fraction(3, 5)))
        assert result.verified
        assert result.expected_calls_per_body == Fraction(4, 5)
        assert result.expected_total_calls == Fraction(5)

    def test_nonaffine_printer_at_critical_not_verified(self):
        result = verify_past(printer_nonaffine(Fraction(1, 2)))
        assert not result.verified
        assert result.ast_result.verified
        assert any("critical" in reason for reason in result.reasons)

    def test_subcritical_three_print(self):
        result = verify_past(three_print(Fraction(4, 5)))
        # mean calls = 3/5 < 1.
        assert result.verified
        assert result.expected_total_calls == Fraction(5, 2)

    def test_non_ast_program_not_verified(self):
        result = verify_past(printer_nonaffine(Fraction(1, 4)))
        assert not result.verified
        assert not result.ast_result.verified
        assert "AST verification did not succeed" in result.reasons[0]

    def test_running_example_at_critical_papprox(self):
        # Ex. 5.1 at p = 0.6: Papprox = 0.6 d0 + 0.2 d2 + 0.2 d3, mean 1.
        result = verify_past(running_example(Fraction(3, 5)))
        assert not result.verified
        assert result.ast_result.verified
        assert result.expected_calls_per_body == Fraction(1)

    def test_body_tree_depth_reported(self):
        result = verify_past(geometric(Fraction(1, 2)))
        assert result.body_tree_depth is not None
        assert result.body_tree_depth >= 2

    def test_rejects_non_program_input(self):
        with pytest.raises(TypeError):
            verify_past(42)


class TestRefutePast:
    def test_critical_printer_refuted(self):
        result = refute_past(printer_nonaffine(Fraction(1, 2)))
        assert result.refuted
        assert result.argument_independent
        assert result.expected_calls_per_body == Fraction(1)
        assert "not PAST" in result.summary()

    def test_supercritical_printer_refuted(self):
        result = refute_past(printer_nonaffine(Fraction(1, 4)))
        assert result.refuted
        assert result.expected_calls_per_body == Fraction(3, 2)

    def test_golden_ratio_refuted(self):
        result = refute_past(golden_ratio())
        assert result.refuted
        assert result.expected_calls_per_body == Fraction(3, 2)

    def test_subcritical_not_refuted(self):
        result = refute_past(printer_nonaffine(Fraction(3, 5)))
        assert not result.refuted
        assert any("sub-critical" in reason for reason in result.reasons)

    def test_argument_dependent_pattern_declines(self):
        # Ex. 5.1's counting pattern depends on sig(x): no refutation.
        result = refute_past(running_example(Fraction(3, 5)), arguments=(0, 1, 5))
        assert not result.refuted
        assert not result.argument_independent

    def test_affine_geometric_not_refuted(self):
        result = refute_past(geometric(Fraction(1, 2)))
        assert not result.refuted

    def test_requires_sample_arguments(self):
        result = refute_past(printer_nonaffine(Fraction(1, 2)), arguments=())
        assert not result.refuted
        assert "no sample arguments supplied" in result.reasons


class TestEtermLowerBounds:
    def test_bounds_are_monotone_in_depth(self):
        program = geometric(Fraction(1, 2))
        points = eterm_lower_bounds(program.applied, depths=(10, 25, 45))
        assert [point.depth for point in points] == [10, 25, 45]
        for earlier, later in zip(points, points[1:]):
            assert later.probability >= earlier.probability
            assert later.expected_steps >= earlier.expected_steps

    def test_past_program_expected_steps_saturate(self):
        program = geometric(Fraction(1, 2))
        points = eterm_lower_bounds(program.applied, depths=(30, 60))
        growth = float(points[-1].expected_steps) - float(points[0].expected_steps)
        assert growth < 1.0

    def test_critical_program_expected_steps_keep_growing(self):
        program = printer_nonaffine(Fraction(1, 2))
        points = eterm_lower_bounds(program.applied, depths=(20, 40, 60))
        first_growth = float(points[1].expected_steps) - float(points[0].expected_steps)
        second_growth = float(points[2].expected_steps) - float(points[1].expected_steps)
        assert first_growth > 0.5
        assert second_growth > 0.5


class TestClassification:
    def test_geometric_is_past(self):
        classification = classify_termination(geometric(Fraction(1, 2)))
        assert classification.verdict is TerminationClass.PAST_VERIFIED
        assert "PAST" in classification.summary()

    def test_critical_printer_is_ast_not_past(self):
        classification = classify_termination(printer_nonaffine(Fraction(1, 2)))
        assert classification.verdict is TerminationClass.AST_NOT_PAST

    def test_subcritical_printer_is_past(self):
        classification = classify_termination(printer_nonaffine(Fraction(3, 5)))
        assert classification.verdict is TerminationClass.PAST_VERIFIED

    def test_supercritical_printer_is_unknown(self):
        classification = classify_termination(printer_nonaffine(Fraction(1, 4)))
        assert classification.verdict is TerminationClass.UNKNOWN

    def test_running_example_is_ast_with_past_unknown(self):
        classification = classify_termination(running_example(Fraction(3, 5)))
        assert classification.verdict is TerminationClass.AST_PAST_UNKNOWN
