"""Tests for the intersection type system of Sec. 4."""

from fractions import Fraction

import pytest

from repro.intervals import Interval, IntervalTrace
from repro.intervals.terms import IntervalNumeral
from repro.programs import geometric, printer_nonaffine
from repro.lowerbound import lower_bound
from repro.spcf import parse
from repro.spcf.syntax import If, Prim, Sample, Score
from repro.typesystem import (
    ArrowElement,
    Derivation,
    DerivationError,
    IntervalElement,
    SetType,
    check_derivation,
    expected_steps,
    infer_set_type,
    weight,
)
from repro.typesystem.settypes import TypedTriple


def _point(value):
    return Interval.point(Fraction(value))


def _interval(lo, hi):
    return Interval(Fraction(lo), Fraction(hi))


def _triple(interval, trace_intervals, steps):
    return TypedTriple(IntervalElement(interval), IntervalTrace(trace_intervals), steps)


class TestSetTypes:
    def test_weight_and_expected_steps(self):
        set_type = SetType(
            [
                _triple(_point(0), [_interval(0, "1/2")], 2),
                _triple(_point(1), [_interval("1/2", 1), _interval(0, "1/4")], 5),
            ]
        )
        assert weight(set_type) == Fraction(1, 2) + Fraction(1, 8)
        assert expected_steps(set_type) == Fraction(1, 2) * 2 + Fraction(1, 8) * 5

    def test_shift_prepends_traces_and_adds_steps(self):
        set_type = SetType([_triple(_point(0), [_interval(0, 1)], 1)])
        shifted = set_type.shifted(IntervalTrace([_interval(0, "1/2")]), 3)
        triple = shifted.triples[0]
        assert len(triple.trace) == 2
        assert triple.trace[0] == _interval(0, "1/2")
        assert triple.steps == 4

    def test_pairwise_compatibility_of_witnesses(self):
        compatible = SetType(
            [
                _triple(_point(0), [_interval(0, "1/2")], 1),
                _triple(_point(1), [_interval("1/2", 1)], 1),
            ]
        )
        assert compatible.pairwise_compatible()
        clashing = SetType(
            [
                _triple(_point(0), [_interval(0, "3/4")], 1),
                _triple(_point(1), [_interval("1/2", 1)], 1),
            ]
        )
        assert not clashing.pairwise_compatible()


class TestDerivationChecker:
    def test_num_rule(self):
        term = IntervalNumeral(_point(2))
        good = Derivation(
            "num", term, SetType([_triple(_point(2), [], 0)])
        )
        assert check_derivation(good)
        bad = Derivation("num", term, SetType([_triple(_point(2), [], 1)]))
        with pytest.raises(DerivationError):
            check_derivation(bad)

    def test_sample_rule_requires_almost_disjoint_intervals(self):
        term = Sample()
        good = Derivation(
            "sample",
            term,
            SetType(
                [
                    TypedTriple(IntervalElement(_interval(0, "1/2")), IntervalTrace([_interval(0, "1/2")]), 1),
                    TypedTriple(IntervalElement(_interval("1/2", 1)), IntervalTrace([_interval("1/2", 1)]), 1),
                ]
            ),
        )
        assert check_derivation(good)
        overlapping = Derivation(
            "sample",
            term,
            SetType(
                [
                    TypedTriple(IntervalElement(_interval(0, "3/4")), IntervalTrace([_interval(0, "3/4")]), 1),
                    TypedTriple(IntervalElement(_interval("1/2", 1)), IntervalTrace([_interval("1/2", 1)]), 1),
                ]
            ),
        )
        with pytest.raises(DerivationError):
            check_derivation(overlapping)

    def test_score_rule_drops_negative_triples_and_counts_a_step(self):
        inner = IntervalNumeral(_interval("-1", "-1/2"))
        premise = Derivation(
            "num", inner, SetType([_triple(_interval("-1", "-1/2"), [], 0)])
        )
        conclusion = Derivation("score", Score(inner), SetType([]), premises=(premise,))
        assert check_derivation(conclusion)
        wrong = Derivation(
            "score",
            Score(inner),
            SetType([_triple(_interval("-1", "-1/2"), [], 1)]),
            premises=(premise,),
        )
        with pytest.raises(DerivationError):
            check_derivation(wrong)

    def test_if_rule_builds_the_shifted_union(self):
        # if(sample - 1/2, [0,0], [1,1]) typed on the two halves of the unit interval.
        guard_term = Prim("sub", (Sample(), IntervalNumeral(_point("1/2"))))
        term = If(guard_term, IntervalNumeral(_point(0)), IntervalNumeral(_point(1)))
        guard = Derivation(
            "prim",
            guard_term,
            SetType(
                [
                    TypedTriple(
                        IntervalElement(_interval("-1/2", 0)),
                        IntervalTrace([_interval(0, "1/2")]),
                        2,
                    ),
                    TypedTriple(
                        IntervalElement(_interval(0, "1/2")),
                        IntervalTrace([_interval("1/2", 1)]),
                        2,
                    ),
                ]
            ),
            premises=(
                Derivation(
                    "sample",
                    Sample(),
                    SetType(
                        [
                            TypedTriple(
                                IntervalElement(_interval(0, "1/2")),
                                IntervalTrace([_interval(0, "1/2")]),
                                1,
                            ),
                            TypedTriple(
                                IntervalElement(_interval("1/2", 1)),
                                IntervalTrace([_interval("1/2", 1)]),
                                1,
                            ),
                        ]
                    ),
                ),
                Derivation(
                    "num",
                    IntervalNumeral(_point("1/2")),
                    SetType([_triple(_point("1/2"), [], 0)]),
                ),
                Derivation(
                    "num",
                    IntervalNumeral(_point("1/2")),
                    SetType([_triple(_point("1/2"), [], 0)]),
                ),
            ),
        )
        # Guard interval [-1/2, 0] decides the then-branch; (0, 1/2] would not
        # be decided, so we only include the first; but the second guard triple
        # has lo = 0 which does not satisfy a > 0, hence it must be omitted
        # from a valid derivation.  Use a strictly positive lower bound instead.
        then_branch = Derivation(
            "num", IntervalNumeral(_point(0)), SetType([_triple(_point(0), [], 0)])
        )
        conclusion = SetType(
            [
                TypedTriple(
                    IntervalElement(_point(0)), IntervalTrace([_interval(0, "1/2")]), 3
                )
            ]
        )
        derivation = Derivation(
            "if",
            term,
            conclusion,
            premises=(
                Derivation(
                    "prim",
                    guard_term,
                    SetType(
                        [
                            TypedTriple(
                                IntervalElement(_interval("-1/2", 0)),
                                IntervalTrace([_interval(0, "1/2")]),
                                2,
                            )
                        ]
                    ),
                    premises=(
                        Derivation(
                            "sample",
                            Sample(),
                            SetType(
                                [
                                    TypedTriple(
                                        IntervalElement(_interval(0, "1/2")),
                                        IntervalTrace([_interval(0, "1/2")]),
                                        1,
                                    )
                                ]
                            ),
                        ),
                        Derivation(
                            "num",
                            IntervalNumeral(_point("1/2")),
                            SetType([_triple(_point("1/2"), [], 0)]),
                        ),
                    ),
                ),
                then_branch,
            ),
        )
        assert check_derivation(derivation)
        # The weight of the conclusion is a lower bound on Pterm (here 1/2).
        assert weight(conclusion) == Fraction(1, 2)
        # Check that the prim premise alone is also valid.
        assert check_derivation(guard)

    def test_unknown_rule_is_rejected(self):
        with pytest.raises(DerivationError):
            check_derivation(Derivation("fancy", Sample(), SetType([])))


class TestInference:
    def test_inferred_weight_lower_bounds_pterm(self):
        program = geometric(Fraction(1, 2))
        result = infer_set_type(program.applied, max_steps=60, sweep_depth=8)
        assert 0 < result.weight <= 1
        assert result.weight <= 1  # Pterm = 1
        engine_bound = lower_bound(program.applied, max_steps=60)
        assert result.weight <= engine_bound.probability

    def test_inferred_weight_converges_with_depth(self):
        program = geometric(Fraction(1, 2))
        shallow = infer_set_type(program.applied, max_steps=20, sweep_depth=6)
        deep = infer_set_type(program.applied, max_steps=60, sweep_depth=10)
        assert deep.weight >= shallow.weight

    def test_inferred_traces_are_pairwise_compatible(self):
        program = printer_nonaffine(Fraction(1, 2))
        result = infer_set_type(program.applied, max_steps=40, sweep_depth=6)
        assert result.set_type.pairwise_compatible()

    def test_expected_steps_is_a_lower_bound_on_eterm(self):
        # For geo(1/2) the expected number of steps is finite; the inferred
        # E value must stay below the engine's (also sound) deeper bound.
        program = geometric(Fraction(1, 2))
        result = infer_set_type(program.applied, max_steps=40, sweep_depth=8)
        deep = lower_bound(program.applied, max_steps=120)
        assert result.expected_steps <= deep.expected_steps * Fraction(101, 100)

    def test_non_numeric_results_are_typed_with_arrow_elements(self):
        result = infer_set_type(parse("lam x. x"), max_steps=10)
        assert len(result.set_type) == 1
        assert isinstance(result.set_type.triples[0].element, ArrowElement)

    def test_open_terms_are_rejected(self):
        with pytest.raises(ValueError):
            infer_set_type(parse("x + 1"))
