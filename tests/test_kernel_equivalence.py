"""Property tests for the vectorized sweep kernel and the box contractor.

The kernel (:mod:`repro.geometry.kernel`) is strictly a classifier: its
float interval banks enclose the exact scalar interval evaluation from the
outside (outer bank) and certifiably from the inside (inner bank), so

* a kernel ``True``/``False`` verdict implies the identical verdict from
  the exact scalar :meth:`Constraint.box_status`,
* a kernel *certified-undecided* verdict implies the scalar verdict is
  ``None``,
* a lane the kernel poisons (``log`` domain, ``exp`` overflow) is exactly a
  lane where the scalar evaluation raises, and it stays plain-undecided,

and therefore the chunked kernel sweep is **bit-identical** -- bounds,
counters, frontiers -- to the scalar sweep at every chunk size, including
chunk size 1.  Hypothesis drives randomly generated expressions over every
vectorized primitive, random dyadic boxes, and random constraint sets
through all of these; the contractor tests check that ``contract=True``
can only tighten the certified bracket while remaining sound.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import JobSpec, run_job
from repro.geometry import kernel as kernel_module
from repro.geometry.engine import MeasureEngine
from repro.geometry.kernel import (
    KERNEL_FALSE,
    KERNEL_TRUE,
    KERNEL_UNDECIDED,
    KERNEL_UNDECIDED_SURE,
    boxes_to_arrays,
    compile_constraint_set,
    kernel_available,
)
from repro.geometry.measure import MeasureOptions
from repro.geometry.stats import PerfStats
from repro.geometry.sweep import sweep_measure
from repro.intervals.box import Box
from repro.intervals.interval import Interval
from repro.spcf.primitives import default_registry
from repro.symbolic.constraints import Constraint, ConstraintSet, Relation
from repro.symbolic.values import const, sample_var, simplify_prim

pytestmark = pytest.mark.skipif(
    not kernel_available(), reason="numpy is unavailable"
)

_REGISTRY = default_registry()
_RELATIONS = (Relation.LE, Relation.GT, Relation.GE, Relation.LT)
_DIMENSION = 3


# -- expression / box strategies ----------------------------------------------

_small_consts = st.fractions(min_value=Fraction(-2), max_value=Fraction(2))

_leaves = st.one_of(
    st.integers(min_value=0, max_value=_DIMENSION - 1).map(sample_var),
    _small_consts.map(const),
)


def _unary(op):
    return lambda value: simplify_prim(op, [value])


def _binary(op):
    return lambda left, right: simplify_prim(op, [left, right])


def _log_of_positive(value):
    """``log(abs(e) + 1/8)``: the argument's lower bound stays positive."""
    shifted = simplify_prim(
        "add", [simplify_prim("abs", [value]), const(Fraction(1, 8))]
    )
    return simplify_prim("log", [shifted])


_expressions = st.recursive(
    _leaves,
    lambda children: st.one_of(
        st.builds(_unary("neg"), children),
        st.builds(_unary("abs"), children),
        st.builds(_unary("exp"), children),
        st.builds(_unary("sig"), children),
        st.builds(_log_of_positive, children),
        st.builds(_binary("add"), children, children),
        st.builds(_binary("sub"), children, children),
        st.builds(_binary("mul"), children, children),
        st.builds(_binary("min"), children, children),
        st.builds(_binary("max"), children, children),
    ),
    max_leaves=6,
)


@st.composite
def _dyadic_boxes(draw):
    """A random dyadic sub-box of the unit cube, as the sweep would visit."""
    intervals = []
    for _ in range(_DIMENSION):
        depth = draw(st.integers(min_value=0, max_value=5))
        cell = draw(st.integers(min_value=0, max_value=2**depth - 1))
        intervals.append(
            Interval(Fraction(cell, 2**depth), Fraction(cell + 1, 2**depth))
        )
    return Box(intervals)


_constraints = st.builds(
    lambda value, relation: Constraint(value, relation),
    _expressions,
    st.sampled_from(_RELATIONS),
)
_constraint_sets = st.lists(_constraints, min_size=1, max_size=3).map(ConstraintSet)


# -- kernel verdicts vs the exact scalar box_status ---------------------------


def _scalar_status(constraint, box):
    """``box_status`` of one constraint, or ``"raises"`` where it raises."""
    mapping = {index: interval for index, interval in enumerate(box.intervals)}
    try:
        return constraint.box_status(mapping, _REGISTRY)
    except (ValueError, OverflowError, ZeroDivisionError):
        return "raises"


@settings(max_examples=120, deadline=None)
@given(_constraint_sets, st.lists(_dyadic_boxes(), min_size=1, max_size=8))
def test_kernel_verdicts_are_sound_for_the_scalar_box_status(constraints, boxes):
    """Every decided kernel lane implies the identical scalar verdict.

    This is the observable form of the enclosure invariant: the outer float
    bank contains the scalar interval (so TRUE/FALSE transfer) and the inner
    bank lies inside it (so certified-undecided forces ``None``).  A lane
    where the scalar evaluation raises must never be decided or certified.
    """
    compiled = compile_constraint_set(constraints)
    if compiled is None:
        return  # unsupported sets legitimately fall back to the scalar path
    arrays = boxes_to_arrays(boxes)
    verdicts = compiled.classify(*arrays)
    for constraint, vector in zip(constraints.constraints, verdicts):
        for lane, box in enumerate(boxes):
            verdict = int(vector[lane])
            scalar = _scalar_status(constraint, box)
            if scalar == "raises":
                assert verdict == KERNEL_UNDECIDED
            elif verdict == KERNEL_TRUE:
                assert scalar is True
            elif verdict == KERNEL_FALSE:
                assert scalar is False
            elif verdict == KERNEL_UNDECIDED_SURE:
                assert scalar is None


@settings(max_examples=80, deadline=None)
@given(st.lists(_dyadic_boxes(), min_size=1, max_size=8))
def test_box_arrays_bracket_the_exact_endpoints(boxes):
    """Outer endpoints round outward, inner ones inward, around each exact
    dyadic endpoint (for representable endpoints all three coincide)."""
    los, his, inner_los, inner_his = boxes_to_arrays(boxes)
    for row, box in enumerate(boxes):
        for column, interval in enumerate(box.intervals):
            assert los[row, column] <= interval.lo <= inner_los[row, column]
            assert inner_his[row, column] <= interval.hi <= his[row, column]


# -- chunked kernel sweep: bit-identical to the scalar sweep ------------------


@settings(max_examples=40, deadline=None)
@given(_constraint_sets, st.integers(min_value=2, max_value=5))
def test_kernel_sweep_is_bit_identical_at_every_chunk_size(constraints, depth):
    scalar = sweep_measure(
        constraints, _DIMENSION, max_depth=depth, collect_frontier=True
    )
    for chunk in (1, 7, 64):
        vectorized = sweep_measure(
            constraints,
            _DIMENSION,
            max_depth=depth,
            collect_frontier=True,
            use_kernel=True,
            kernel_chunk=chunk,
            kernel_warmup=0,
        )
        assert vectorized == scalar  # every field, frontier included


@settings(max_examples=30, deadline=None)
@given(
    _constraint_sets,
    st.integers(min_value=2, max_value=5),
    st.fractions(min_value=Fraction(1, 64), max_value=Fraction(1, 2)),
    st.integers(min_value=1, max_value=40),
)
def test_kernel_sweep_budgets_are_bit_identical_too(
    constraints, depth, gap, max_boxes
):
    """Early-exit budgets cut the kernel sweep at the very same box."""
    for budget in (
        {"target_gap": gap},
        {"max_boxes": max_boxes},
        {"target_gap": gap, "max_boxes": max_boxes},
    ):
        scalar = sweep_measure(constraints, _DIMENSION, max_depth=depth, **budget)
        vectorized = sweep_measure(
            constraints,
            _DIMENSION,
            max_depth=depth,
            use_kernel=True,
            kernel_chunk=7,
            kernel_warmup=0,
            **budget,
        )
        assert vectorized == scalar


@settings(max_examples=30, deadline=None)
@given(
    _constraint_sets,
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=1, max_value=3),
)
def test_kernel_resumes_a_scalar_frontier_bit_identically(
    constraints, shallow_depth, extra_depth
):
    """A frontier collected by the scalar sweep warm-starts the kernel sweep
    (and vice versa) with results identical to the from-scratch deep sweep."""
    deep_depth = shallow_depth + extra_depth
    shallow = sweep_measure(
        constraints, _DIMENSION, max_depth=shallow_depth, collect_frontier=True
    )
    fresh = sweep_measure(
        constraints, _DIMENSION, max_depth=deep_depth, collect_frontier=True
    )
    for use_kernel in (False, True):
        warm = sweep_measure(
            constraints,
            _DIMENSION,
            max_depth=deep_depth,
            resume=shallow.frontier,
            collect_frontier=True,
            use_kernel=use_kernel,
            kernel_warmup=0,
        )
        assert warm.lower == fresh.lower
        assert warm.undecided == fresh.undecided
        assert warm.boxes_examined == fresh.boxes_examined
        assert set(warm.frontier.boxes) == set(fresh.frontier.boxes)


def _sig_threshold_set():
    return ConstraintSet(
        [
            Constraint(
                simplify_prim(
                    "sub",
                    [simplify_prim("sig", [sample_var(0)]), const(Fraction(3, 5))],
                ),
                Relation.LE,
            )
        ]
    )


def test_kernel_counters_account_every_examined_box():
    """With warmup disabled, every examined box goes through a batch."""
    stats = PerfStats()
    result = sweep_measure(
        _sig_threshold_set(),
        1,
        max_depth=8,
        use_kernel=True,
        kernel_warmup=0,
        stats=stats,
    )
    assert stats.kernel_batches > 0
    assert stats.kernel_boxes == result.boxes_examined


def test_warmup_keeps_tiny_sweeps_scalar():
    """The warmup threshold amortizes kernel setup: a sweep that finishes
    inside the warmup window never compiles the tape or touches numpy, and
    a sweep that outgrows it hands over exactly at the threshold -- with
    results bit-identical either way (classification is path-independent).
    """
    constraints = _sig_threshold_set()
    scalar = sweep_measure(constraints, 1, max_depth=8)

    tiny_stats = PerfStats()
    tiny = sweep_measure(
        constraints,
        1,
        max_depth=8,
        use_kernel=True,
        kernel_warmup=10**6,
        stats=tiny_stats,
    )
    assert tiny == scalar
    assert tiny_stats.kernel_batches == 0

    warm_stats = PerfStats()
    warmup = 4
    warm = sweep_measure(
        constraints,
        1,
        max_depth=8,
        use_kernel=True,
        kernel_warmup=warmup,
        stats=warm_stats,
    )
    assert warm == scalar
    assert warm_stats.kernel_batches > 0
    assert warm_stats.kernel_boxes == warm.boxes_examined - warmup


def test_missing_numpy_falls_back_to_the_scalar_path(monkeypatch):
    """Without numpy the kernel compiles to None and the sweep degrades to
    the scalar loop -- same results, no kernel batches, clear error from
    require_numpy."""
    constraints = ConstraintSet(
        [
            Constraint(
                simplify_prim(
                    "sub",
                    [simplify_prim("sig", [sample_var(0)]), const(Fraction(3, 5))],
                ),
                Relation.LE,
            )
        ]
    )
    expected = sweep_measure(constraints, 1, max_depth=6)
    monkeypatch.setattr(kernel_module, "_np", None)
    assert compile_constraint_set(constraints) is None
    with pytest.raises(RuntimeError, match="no-sweep-kernel"):
        kernel_module.require_numpy()
    stats = PerfStats()
    fallback = sweep_measure(
        constraints, 1, max_depth=6, use_kernel=True, stats=stats
    )
    assert fallback == expected
    assert stats.kernel_batches == 0


# -- the contractor: sound, and it only tightens ------------------------------


def _library_like_set():
    """A multi-constraint non-affine set with a fat undecided boundary."""
    c1 = Constraint(
        simplify_prim(
            "sub",
            [
                simplify_prim(
                    "sig", [simplify_prim("mul", [sample_var(0), sample_var(1)])]
                ),
                const(Fraction(11, 20)),
            ],
        ),
        Relation.LE,
    )
    c2 = Constraint(
        simplify_prim(
            "sub",
            [
                simplify_prim(
                    "add",
                    [
                        simplify_prim("exp", [simplify_prim("neg", [sample_var(2)])]),
                        simplify_prim("mul", [sample_var(0), const(Fraction(-3, 2))]),
                    ],
                ),
                const(Fraction(2, 5)),
            ],
        ),
        Relation.GT,
    )
    return ConstraintSet([c1, c2])


@settings(max_examples=30, deadline=None)
@given(_constraint_sets, st.integers(min_value=2, max_value=5))
def test_contraction_stays_sound(constraints, depth):
    plain = sweep_measure(constraints, _DIMENSION, max_depth=depth)
    contracted = sweep_measure(constraints, _DIMENSION, max_depth=depth, contract=True)
    # Soundness: the bracket structure survives contraction.
    assert contracted.lower + contracted.undecided == contracted.upper
    assert 0 <= contracted.lower <= contracted.upper <= 1
    # Both brackets enclose the true measure, so they must overlap: a
    # contracted lower bound above the plain upper (or vice versa) would
    # prove one of them unsound.  Per-field monotonicity at equal depth is
    # deliberately *not* asserted -- shaving moves boxes off the dyadic
    # grid, so a later bisection can straddle a boundary the aligned grid
    # resolved; strict tightening is demonstrated on the deterministic
    # workloads below instead.
    assert contracted.lower <= plain.upper
    assert plain.lower <= contracted.upper


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=3, max_value=6))
def test_kernel_and_scalar_agree_under_contraction(depth):
    constraints = _library_like_set()
    scalar = sweep_measure(constraints, _DIMENSION, max_depth=depth, contract=True)
    vectorized = sweep_measure(
        constraints,
        _DIMENSION,
        max_depth=depth,
        contract=True,
        use_kernel=True,
        kernel_warmup=0,
    )
    assert vectorized == scalar


def test_contraction_tightens_a_nonaffine_set_strictly():
    constraints = _library_like_set()
    plain = sweep_measure(constraints, _DIMENSION, max_depth=9)
    contracted = sweep_measure(constraints, _DIMENSION, max_depth=9, contract=True)
    assert contracted.lower > plain.lower
    assert contracted.upper < plain.upper


def test_contraction_tightens_library_lower_bounds():
    """End to end, ``contract=True`` narrows the certified bracket on every
    non-affine library program and strictly raises the lower bound on at
    least two of them at the same depth budget."""
    from repro.lowerbound import LowerBoundEngine
    from repro.programs.extra import nonaffine_programs

    strictly_tighter = 0
    for name, program in sorted(nonaffine_programs().items()):
        bounds = {}
        for contract in (False, True):
            options = MeasureOptions(sweep_depth=10, contract=contract)
            engine = MeasureEngine(options, cache_enabled=False)
            lower = LowerBoundEngine(
                strategy=program.strategy, measure_engine=engine
            )
            bounds[contract] = lower.lower_bound(program.applied, max_steps=35)
        assert bounds[True].measure_gap < bounds[False].measure_gap, name
        if program.known_probability is not None:
            assert (
                float(bounds[True].probability)
                <= program.known_probability + 1e-9
            ), name
        if bounds[True].probability > bounds[False].probability:
            strictly_tighter += 1
    assert strictly_tighter >= 2


# -- engine-level byte-identity of the kernel flag ----------------------------


def _job_line(options):
    engine = MeasureEngine(options=options)
    spec = JobSpec(
        program="sig-sum-retry(1)", analysis="lower-bound", params={"depth": 25}
    )
    return run_job(spec, engine).to_json_line(), engine


def test_job_records_are_byte_identical_without_the_kernel():
    """--no-sweep-kernel must reproduce the kernel pipeline's job records
    byte for byte (the kernel only classifies; it never accumulates).
    The program is non-affine, so the bound really comes from the sweep
    and the kernel engine really runs batches."""
    with_kernel, kernel_engine = _job_line(MeasureOptions())
    without_kernel, scalar_engine = _job_line(MeasureOptions(sweep_kernel=False))
    assert with_kernel == without_kernel
    assert scalar_engine.stats.kernel_batches == 0
    assert kernel_engine.stats.kernel_batches > 0
