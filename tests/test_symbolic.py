"""Tests for symbolic values, constraints, and the symbolic executors."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.intervals import Interval
from repro.semantics import CbNMachine, Trace
from repro.spcf import parse
from repro.symbolic import (
    ArgVal,
    Constraint,
    ConstraintSet,
    ConstVal,
    PrimVal,
    Relation,
    SampleVar,
    StarVal,
    SymbolicExplorer,
)
from repro.symbolic.execute import Strategy
from repro.symbolic.values import simplify_prim


class TestSymbolicValues:
    def test_constants_and_variables(self):
        assert ConstVal(3).value == Fraction(3)
        assert SampleVar(2).variables() == frozenset({2})
        assert ConstVal(1).is_concrete()
        assert not SampleVar(0).is_concrete()

    def test_evaluation(self):
        value = PrimVal("add", (SampleVar(0), ConstVal(Fraction(1, 2))))
        assert value.evaluate({0: Fraction(1, 4)}) == Fraction(3, 4)
        value = PrimVal("mul", (SampleVar(0), SampleVar(1)))
        assert value.evaluate({0: Fraction(1, 2), 1: Fraction(1, 3)}) == Fraction(1, 6)

    def test_interval_evaluation_is_sound(self):
        value = PrimVal("sub", (SampleVar(0), SampleVar(1)))
        box = {0: Interval(0, Fraction(1, 2)), 1: Interval(Fraction(1, 4), 1)}
        bounds = value.interval_evaluate(box)
        for a in (Fraction(0), Fraction(1, 2)):
            for b in (Fraction(1, 4), Fraction(1)):
                assert bounds.contains(a - b)

    def test_linear_form_extraction(self):
        value = PrimVal(
            "add",
            (
                PrimVal("mul", (ConstVal(2), SampleVar(0))),
                PrimVal("neg", (SampleVar(1),)),
            ),
        )
        form = value.linear_form()
        assert form is not None
        assert form.as_dict() == {0: Fraction(2), 1: Fraction(-1)}
        assert form.constant == 0

    def test_non_affine_values_have_no_linear_form(self):
        assert PrimVal("mul", (SampleVar(0), SampleVar(1))).linear_form() is None
        assert PrimVal("sig", (SampleVar(0),)).linear_form() is None

    def test_argument_and_star_markers(self):
        assert ArgVal().contains_argument()
        assert StarVal().contains_star()
        mixed = PrimVal("add", (ArgVal(), SampleVar(0)))
        assert mixed.contains_argument()
        assert mixed.substitute_argument(ConstVal(7)) == PrimVal(
            "add", (ConstVal(7), SampleVar(0))
        )

    def test_simplify_prim_folds_constants(self):
        assert simplify_prim("add", (ConstVal(1), ConstVal(2))) == ConstVal(3)
        assert isinstance(simplify_prim("add", (ConstVal(1), SampleVar(0))), PrimVal)


class TestConstraints:
    def test_relations(self):
        assert Relation.LE.holds(0) and not Relation.GT.holds(0)
        assert Relation.GE.holds(0) and not Relation.LT.holds(0)
        assert Relation.LE.negation() is Relation.GT

    def test_satisfaction_and_box_status(self):
        constraint = Constraint(
            PrimVal("sub", (SampleVar(0), ConstVal(Fraction(1, 2)))), Relation.LE
        )
        assert constraint.satisfied_by({0: Fraction(1, 4)})
        assert not constraint.satisfied_by({0: Fraction(3, 4)})
        assert constraint.box_status({0: Interval(0, Fraction(1, 4))}) is True
        assert constraint.box_status({0: Interval(Fraction(3, 4), 1)}) is False
        assert constraint.box_status({0: Interval(0, 1)}) is None

    def test_constraint_set_dimension_and_linear(self):
        constraints = ConstraintSet(
            [
                Constraint(PrimVal("sub", (SampleVar(0), ConstVal(1))), Relation.LE),
                Constraint(SampleVar(2), Relation.GT),
            ]
        )
        assert constraints.dimension() == 3
        assert constraints.all_linear()
        with_sig = constraints.add(
            Constraint(PrimVal("sig", (SampleVar(0),)), Relation.GE)
        )
        assert not with_sig.all_linear()


GEO = parse("(mu phi x. if sample - 1/2 then x else phi (x + 1)) 1")
TWO_SAMPLES = parse("if sample + sample - 1 then 0 else 1")


class TestSymbolicExplorer:
    def test_geo_paths_have_geometric_structure(self):
        result = SymbolicExplorer().explore(GEO, max_steps_per_path=60)
        assert result.terminated
        # Path k uses k+1 samples: k failures then one success.
        by_samples = sorted(path.num_variables for path in result.terminated)
        assert by_samples[0] == 1
        assert len(set(by_samples)) == len(by_samples)

    def test_two_sample_program_has_two_paths(self):
        result = SymbolicExplorer().explore(TWO_SAMPLES, max_steps_per_path=50)
        assert len(result.terminated) == 2
        assert result.complete
        assert {path.branches for path in result.terminated} == {(True,), (False,)}

    def test_unfinished_paths_are_counted(self):
        result = SymbolicExplorer().explore(GEO, max_steps_per_path=15)
        assert result.unfinished > 0
        assert not result.complete

    def test_score_constraints_are_collected(self):
        term = parse("score(sample - 1/2)")
        result = SymbolicExplorer().explore(term, max_steps_per_path=20)
        assert len(result.terminated) == 1
        constraints = list(result.terminated[0].constraints)
        assert len(constraints) == 1
        assert constraints[0].relation is Relation.GE

    def test_cbv_strategy_shares_sampled_arguments(self):
        term = parse("(lam x. x + x) sample")
        cbn = SymbolicExplorer(Strategy.CBN).explore(term, max_steps_per_path=20)
        cbv = SymbolicExplorer(Strategy.CBV).explore(term, max_steps_per_path=20)
        assert cbn.terminated[0].num_variables == 2
        assert cbv.terminated[0].num_variables == 1

    # -- agreement with the concrete semantics --------------------------------
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.fractions(min_value=0, max_value=1), min_size=4, max_size=4))
    def test_path_constraints_characterise_the_concrete_run(self, draws):
        """A concrete trace satisfies a path's constraints iff the concrete run
        terminates with exactly that path's sample count and step count."""
        exploration = SymbolicExplorer().explore(GEO, max_steps_per_path=40)
        machine = CbNMachine()
        for path in exploration.terminated:
            if path.num_variables > len(draws):
                continue
            assignment = {index: draws[index] for index in range(path.num_variables)}
            satisfied = path.constraints.satisfied_by(assignment)
            concrete = machine.run(GEO, Trace(draws[: path.num_variables]))
            follows_path = concrete.terminated and concrete.steps == path.steps
            assert satisfied == follows_path
