"""Tests for conditional oracles and the branching-behaviour partition (App. B.4).

The oracle-annotated machine of Fig. 11 is checked against the standard
machines: the oracle recorded from a terminating run reproduces the run, any
other oracle of the same length is rejected, and the branching classes of a
term partition its terminating traces.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics import CbNMachine, Trace
from repro.semantics.oracle import (
    Direction,
    OracleMachine,
    OracleRunStatus,
    branching_classes,
    find_redex,
    in_branching_class,
    record_branching,
)
from repro.semantics.machine import RunStatus
from repro.spcf.sugar import add, sub
from repro.spcf.syntax import App, Fix, If, Lam, Numeral, Sample, Var
from repro.programs.library import geometric, printer_nonaffine
from repro.symbolic.execute import Strategy


def flip(direction: Direction) -> Direction:
    return Direction.RIGHT if direction is Direction.LEFT else Direction.LEFT


# ---------------------------------------------------------------------------
# Redex finding.
# ---------------------------------------------------------------------------


class TestFindRedex:
    def test_value_has_no_redex(self):
        assert find_redex(Numeral(3)) is None
        assert find_redex(Lam("x", Var("x"))) is None

    def test_sample_is_its_own_redex(self):
        assert isinstance(find_redex(Sample()), Sample)

    def test_redex_inside_guard(self):
        term = If(sub(Sample(), Fraction(1, 2)), Numeral(0), Numeral(1))
        redex = find_redex(term)
        assert isinstance(redex, Sample)

    def test_conditional_with_numeral_guard_is_the_redex(self):
        term = If(Numeral(-1), Numeral(0), Numeral(1))
        assert find_redex(term) is term

    def test_cbn_contracts_beta_before_argument(self):
        term = App(Lam("x", Numeral(0)), Sample())
        assert isinstance(find_redex(term, Strategy.CBN), App)

    def test_cbv_evaluates_argument_first(self):
        term = App(Lam("x", Numeral(0)), Sample())
        assert isinstance(find_redex(term, Strategy.CBV), Sample)

    def test_redex_matches_machine_step(self):
        # Stepping the machine contracts exactly the redex found here: check
        # on a couple of configurations of the geometric program.
        program = geometric(Fraction(1, 2))
        machine = CbNMachine()
        term = program.applied
        trace = Trace((Fraction(3, 4), Fraction(1, 4)))
        for _ in range(20):
            redex = find_redex(term)
            if redex is None:
                break
            outcome = machine.step(term, trace)
            assert outcome is not None
            term, trace = outcome


# ---------------------------------------------------------------------------
# Recording branching behaviour.
# ---------------------------------------------------------------------------


class TestRecordBranching:
    def test_no_conditionals_empty_oracle(self):
        term = add(Sample(), Sample())
        result, oracle = record_branching(term, Trace((Fraction(1, 4), Fraction(1, 2))))
        assert result.status is RunStatus.TERMINATED
        assert oracle == ()

    def test_single_left_branch(self):
        program = geometric(Fraction(1, 2))
        result, oracle = record_branching(program.applied, Trace((Fraction(1, 4),)))
        assert result.terminated
        assert oracle == (Direction.LEFT,)

    def test_retry_records_right_then_left(self):
        program = geometric(Fraction(1, 2))
        result, oracle = record_branching(
            program.applied, Trace((Fraction(3, 4), Fraction(1, 4)))
        )
        assert result.terminated
        assert oracle == (Direction.RIGHT, Direction.LEFT)

    def test_oracle_length_counts_conditionals(self):
        program = printer_nonaffine(Fraction(1, 2))
        trace = Trace((Fraction(3, 4), Fraction(1, 4), Fraction(1, 4)))
        result, oracle = record_branching(program.applied, trace)
        assert result.terminated
        assert len(oracle) == 3

    def test_nonterminating_run_reports_status(self):
        diverge = Fix("phi", "x", App(Var("phi"), Var("x")))
        result, oracle = record_branching(
            App(diverge, Numeral(0)), Trace(()), max_steps=50
        )
        assert result.status is RunStatus.STEP_LIMIT
        assert oracle == ()


# ---------------------------------------------------------------------------
# The oracle machine of Fig. 11.
# ---------------------------------------------------------------------------


class TestOracleMachine:
    def test_recorded_oracle_reproduces_run(self):
        program = geometric(Fraction(1, 2))
        trace = Trace((Fraction(3, 4), Fraction(1, 4)))
        _, oracle = record_branching(program.applied, trace)
        outcome = OracleMachine().run(program.applied, trace, oracle)
        assert outcome.status is OracleRunStatus.TERMINATED
        assert outcome.directions_consumed == len(oracle)

    def test_flipped_direction_is_a_mismatch(self):
        program = geometric(Fraction(1, 2))
        trace = Trace((Fraction(3, 4), Fraction(1, 4)))
        _, oracle = record_branching(program.applied, trace)
        perturbed = (flip(oracle[0]),) + oracle[1:]
        outcome = OracleMachine().run(program.applied, trace, perturbed)
        assert outcome.status is OracleRunStatus.ORACLE_MISMATCH

    def test_short_oracle_is_exhausted(self):
        program = geometric(Fraction(1, 2))
        trace = Trace((Fraction(3, 4), Fraction(1, 4)))
        _, oracle = record_branching(program.applied, trace)
        outcome = OracleMachine().run(program.applied, trace, oracle[:-1])
        assert outcome.status is OracleRunStatus.ORACLE_EXHAUSTED

    def test_long_oracle_is_leftover(self):
        program = geometric(Fraction(1, 2))
        trace = Trace((Fraction(1, 4),))
        _, oracle = record_branching(program.applied, trace)
        outcome = OracleMachine().run(
            program.applied, trace, oracle + (Direction.LEFT,)
        )
        assert outcome.status is OracleRunStatus.ORACLE_LEFTOVER

    def test_trace_exhaustion_is_machine_stopped(self):
        program = geometric(Fraction(1, 2))
        outcome = OracleMachine().run(
            program.applied, Trace(()), (Direction.LEFT,)
        )
        assert outcome.status is OracleRunStatus.MACHINE_STOPPED
        assert outcome.machine_result is not None
        assert outcome.machine_result.status is RunStatus.TRACE_EXHAUSTED

    def test_membership_predicate(self):
        program = geometric(Fraction(1, 2))
        trace = Trace((Fraction(3, 4), Fraction(1, 4)))
        assert in_branching_class(
            program.applied, trace, (Direction.RIGHT, Direction.LEFT)
        )
        assert not in_branching_class(
            program.applied, trace, (Direction.LEFT, Direction.LEFT)
        )

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_lemma_b5_unique_oracle(self, draws):
        # Lem. B.5: a terminating trace follows exactly one oracle -- the
        # recorded one succeeds and every single-position flip fails.
        program = geometric(Fraction(1, 2))
        trace = Trace(tuple(draws))
        result, oracle = record_branching(program.applied, trace)
        if not result.terminated:
            return
        machine = OracleMachine()
        assert machine.run(program.applied, trace, oracle).terminated
        for position in range(len(oracle)):
            perturbed = (
                oracle[:position] + (flip(oracle[position]),) + oracle[position + 1 :]
            )
            assert not machine.run(program.applied, trace, perturbed).terminated


# ---------------------------------------------------------------------------
# The partition of terminating traces.
# ---------------------------------------------------------------------------


class TestBranchingClasses:
    def test_geometric_classes_are_prefix_shaped(self):
        program = geometric(Fraction(1, 2))
        classes = branching_classes(program.applied, runs=300, trace_length=40, seed=3)
        assert classes
        for oracle in classes:
            # Every terminating run of geo is RIGHT^k LEFT.
            assert oracle[-1] is Direction.LEFT
            assert all(direction is Direction.RIGHT for direction in oracle[:-1])

    def test_class_weights_match_geometric_law(self):
        program = geometric(Fraction(1, 2))
        runs = 2000
        classes = branching_classes(
            program.applied, runs=runs, trace_length=60, seed=11
        )
        total = sum(classes.values())
        assert total >= runs * 0.99
        immediate = classes.get((Direction.LEFT,), 0)
        assert immediate / runs == pytest.approx(0.5, abs=0.05)

    def test_classes_partition_terminating_traces(self):
        # Disjointness: a trace terminating in one class is rejected by the
        # machine run with any other observed class's oracle.
        program = printer_nonaffine(Fraction(3, 5))
        classes = branching_classes(program.applied, runs=200, trace_length=40, seed=5)
        oracles = list(classes)
        assert len(oracles) >= 2
        rng = random.Random(1)
        machine = OracleMachine()
        checked = 0
        while checked < 10:
            trace = Trace(tuple(rng.random() for _ in range(40)))
            result, recorded = record_branching(program.applied, trace)
            if result.status is not RunStatus.VALUE_WITH_LEFTOVER_TRACE and not result.terminated:
                continue
            checked += 1
            for oracle in oracles:
                if oracle == recorded:
                    continue
                exact_trace = Trace(tuple(trace)[: _draws_used(program, trace)])
                outcome = machine.run(program.applied, exact_trace, oracle)
                assert outcome.status is not OracleRunStatus.TERMINATED


def _draws_used(program, trace) -> int:
    """The number of draws a run of ``program.applied`` on ``trace`` consumes."""
    result, _ = record_branching(program.applied, trace)
    return len(trace) - len(result.trace)
