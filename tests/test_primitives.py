"""Tests for the primitive-function registry and its interval extensions."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.spcf.primitives import Primitive, PrimitiveRegistry, default_registry


REGISTRY = default_registry()


class TestNumericBehaviour:
    def test_exact_arithmetic_on_fractions(self):
        assert REGISTRY["add"](Fraction(1, 3), Fraction(1, 6)) == Fraction(1, 2)
        assert REGISTRY["sub"](Fraction(1, 2), Fraction(1, 3)) == Fraction(1, 6)
        assert REGISTRY["mul"](Fraction(2, 3), Fraction(3, 4)) == Fraction(1, 2)
        assert REGISTRY["neg"](Fraction(1, 2)) == Fraction(-1, 2)
        assert REGISTRY["abs"](Fraction(-3, 4)) == Fraction(3, 4)
        assert REGISTRY["min"](1, Fraction(1, 2)) == Fraction(1, 2)
        assert REGISTRY["max"](1, Fraction(1, 2)) == 1

    def test_sigmoid_properties(self):
        sig = REGISTRY["sig"]
        assert sig(0) == pytest.approx(0.5)
        assert sig(50) == pytest.approx(1.0, abs=1e-9)
        assert sig(-50) == pytest.approx(0.0, abs=1e-9)
        assert sig(2) + sig(-2) == pytest.approx(1.0)

    def test_log_rejects_nonpositive_arguments(self):
        with pytest.raises(ValueError):
            REGISTRY["log"](0)

    def test_arity_is_enforced(self):
        with pytest.raises(TypeError):
            REGISTRY["add"](1)
        with pytest.raises(TypeError):
            REGISTRY["neg"](1, 2)

    def test_unknown_primitive_raises(self):
        with pytest.raises(KeyError):
            REGISTRY["pow"]


class TestRegistry:
    def test_duplicate_registration_is_rejected(self):
        registry = PrimitiveRegistry()
        primitive = Primitive("id", 1, lambda x: x, lambda b: b)
        registry.register(primitive)
        with pytest.raises(ValueError):
            registry.register(primitive)

    def test_default_registry_is_interval_separable(self):
        assert REGISTRY.all_interval_separable()
        assert set(REGISTRY.names()) >= {"add", "sub", "mul", "neg", "abs", "sig"}

    def test_interval_extension_validates_input(self):
        with pytest.raises(ValueError):
            REGISTRY["add"].on_box((1, 0), (0, 1))
        with pytest.raises(TypeError):
            REGISTRY["add"].on_box((0, 1))


# -- soundness of the interval extensions -------------------------------------

_UNARY = ["neg", "abs", "exp", "sig"]
_BINARY = ["add", "sub", "mul", "min", "max"]

_points = st.floats(min_value=-4, max_value=4, allow_nan=False, allow_infinity=False)


@st.composite
def _interval_and_point(draw):
    lo = draw(_points)
    hi = draw(_points)
    lo, hi = min(lo, hi), max(lo, hi)
    point = draw(st.floats(min_value=0, max_value=1))
    # Float rounding of lo + point * (hi - lo) can land just outside [lo, hi]
    # (e.g. lo = -1.0, hi = 1e-09, point = 1.0); clamp so the generated point
    # actually lies in the interval the tests assert against.
    return (lo, hi), min(max(lo + point * (hi - lo), lo), hi)


@given(st.sampled_from(_UNARY), _interval_and_point())
def test_unary_interval_extension_contains_image(name, data):
    bounds, point = data
    primitive = REGISTRY[name]
    lo, hi = primitive.on_box(bounds)
    value = primitive(point)
    assert lo <= value <= hi


@given(st.sampled_from(_BINARY), _interval_and_point(), _interval_and_point())
def test_binary_interval_extension_contains_image(name, first, second):
    bounds_a, point_a = first
    bounds_b, point_b = second
    primitive = REGISTRY[name]
    lo, hi = primitive.on_box(bounds_a, bounds_b)
    value = primitive(point_a, point_b)
    assert lo <= value <= hi


@given(_interval_and_point())
def test_interval_extension_of_point_boxes_is_tight_for_affine_ops(data):
    bounds, _ = data
    point = bounds[0]
    lo, hi = REGISTRY["add"].on_box((point, point), (point, point))
    assert lo == hi == 2 * point
