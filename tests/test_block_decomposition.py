"""Property tests for the block-decomposed measure engine.

The tentpole invariant: over the rational (affine) backend, measuring a
constraint set through the block decomposition is *bit-identical* to the
monolithic computation -- same exact :class:`~fractions.Fraction` value, same
exactness flags -- for every generated constraint set, whether it has a
single block, several disjoint blocks, or constraints chained across
variables.  Hypothesis drives randomly generated affine constraint sets
through all three paths (decomposed, decomposed-uncached, monolithic) and the
raw :func:`measure_constraints` facade.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import MeasureEngine, measure_constraints
from repro.symbolic.constraints import Constraint, ConstraintSet, Relation
from repro.symbolic.values import const, sample_var, simplify_prim

_RELATIONS = (Relation.LE, Relation.GT, Relation.GE, Relation.LT)


def _univariate(index: int, bound: Fraction, relation: Relation) -> Constraint:
    """``a_index - bound  relation  0``."""
    return Constraint(
        simplify_prim("sub", [sample_var(index), const(bound)]), relation
    )


def _bivariate(
    first: int, second: int, offset: Fraction, relation: Relation
) -> Constraint:
    """``a_first - a_second - offset  relation  0`` (links two variables)."""
    difference = simplify_prim("sub", [sample_var(first), sample_var(second)])
    return Constraint(simplify_prim("sub", [difference, const(offset)]), relation)


_fractions = st.fractions(min_value=Fraction(-1), max_value=Fraction(2))
_offsets = st.fractions(min_value=Fraction(-1), max_value=Fraction(1))
_relations = st.sampled_from(_RELATIONS)

# Univariate constraints over variables 0..5; bivariate constraints only link
# the fixed pairs (0,1), (2,3), (4,5), so every generated block has dimension
# <= 2 and is resolved by the exact interval / polygon machinery -- the
# regime where values are Fractions and bit-identity is the hard guarantee.
_univariate_constraints = st.builds(
    _univariate, st.integers(min_value=0, max_value=5), _fractions, _relations
)
_bivariate_constraints = st.builds(
    lambda pair, offset, relation: _bivariate(2 * pair, 2 * pair + 1, offset, relation),
    st.integers(min_value=0, max_value=2),
    _offsets,
    _relations,
)
_constraint_sets = st.lists(
    st.one_of(_univariate_constraints, _bivariate_constraints),
    min_size=1,
    max_size=8,
).map(ConstraintSet)


@settings(max_examples=150, deadline=None)
@given(constraints=_constraint_sets)
def test_block_decomposed_measures_are_bit_identical(constraints):
    dimension = max(constraints.dimension(), 1)
    decomposed = MeasureEngine().measure(constraints, dimension)
    uncached = MeasureEngine(cache_enabled=False).measure(constraints, dimension)
    monolithic = MeasureEngine(block_decomposition=False).measure(
        constraints, dimension
    )
    direct = measure_constraints(constraints, dimension)

    assert type(decomposed.value) is type(direct.value)
    assert decomposed.value == uncached.value == monolithic.value == direct.value
    assert decomposed.exact == uncached.exact == monolithic.exact == direct.exact
    assert decomposed.lower_bound == direct.lower_bound
    # The rational backend must stay rational through the product.
    assert isinstance(decomposed.value, Fraction)
    assert decomposed.exact


@settings(max_examples=60, deadline=None)
@given(constraints=_constraint_sets, extra=st.integers(min_value=0, max_value=3))
def test_unconstrained_trailing_variables_do_not_change_the_measure(
    constraints, extra
):
    """Singleton blocks with no constraints contribute exactly measure 1."""
    dimension = max(constraints.dimension(), 1)
    base = MeasureEngine().measure(constraints, dimension)
    widened = MeasureEngine().measure(constraints, dimension + extra)
    assert widened.value == base.value
    assert widened.exact == base.exact


@settings(max_examples=60, deadline=None)
@given(
    constraints=st.lists(_univariate_constraints, min_size=1, max_size=4).map(
        ConstraintSet
    ),
    shift=st.integers(min_value=1, max_value=4),
)
def test_shifted_blocks_share_cache_entries(constraints, shift):
    """The same block shape at different sample positions is measured once."""
    shifted = ConstraintSet(
        Constraint(
            simplify_prim(
                "sub",
                [
                    sample_var(min(c.variables()) + shift),
                    # rebuild the same bound: value is sub(a_i, const(b))
                    c.value.args[1],
                ],
            ),
            c.relation,
        )
        for c in constraints
    )
    engine = MeasureEngine()
    original = engine.measure(constraints)
    calls_after_first = engine.stats.measure_calls
    moved = engine.measure(shifted, shifted.dimension())
    assert moved.value == original.value
    # Every shifted block renumbers to the same canonical key, so no new
    # base measurements are needed.
    assert engine.stats.measure_calls == calls_after_first


def test_single_block_and_disjoint_blocks_round_trip_counters():
    """A deterministic spot check of the counters the property tests rely on."""
    a = _univariate(0, Fraction(1, 3), Relation.LE)
    b = _univariate(4, Fraction(3, 4), Relation.GT)
    engine = MeasureEngine()

    single = engine.measure(ConstraintSet([a]))
    assert single.value == Fraction(1, 3)
    assert engine.stats.multi_block_sets == 0

    pair = engine.measure(ConstraintSet([a, b]), 5)
    assert pair.value == Fraction(1, 3) * Fraction(1, 4)
    assert engine.stats.multi_block_sets == 1
    # Block {a} was already cached by the single-set request; block {b}
    # renumbers a4 -> a0 and is measured fresh.
    assert engine.stats.block_cache_hits == 1
