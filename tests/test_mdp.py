"""Tests for the one-counter MDP route to uniform AST (repro.mdp).

The adversarial value iteration is cross-checked against the single-action
random-walk matrix, against the Thm. 5.4 / Lem. 5.6 decision used by the
paper, and against simulation under an explicit greedy adversary.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mdp import (
    OneCounterMDP,
    from_counting_distributions,
    simulate_adversarial_walk,
)
from repro.randomwalk import (
    CountingDistribution,
    RandomWalkMatrix,
    StepDistribution,
)


def step(mass):
    return StepDistribution(mass)


def counting(mass):
    return CountingDistribution(mass)


class TestConstruction:
    def test_needs_an_action(self):
        with pytest.raises(ValueError):
            OneCounterMDP(())

    def test_from_counting_distributions_shifts(self):
        mdp = from_counting_distributions([counting({0: Fraction(1, 2), 2: Fraction(1, 2)})])
        assert mdp.action_count == 1
        assert set(mdp.actions[0].support()) == {-1, 1}

    def test_from_empty_family_rejected(self):
        with pytest.raises(ValueError):
            from_counting_distributions([])

    def test_max_upward_jump(self):
        mdp = OneCounterMDP(
            (
                step({-1: Fraction(1, 2), 3: Fraction(1, 2)}),
                step({-1: Fraction(1)}),
            )
        )
        assert mdp.max_upward_jump() == 3


class TestDecision:
    def test_uniform_ast_of_ast_family(self):
        mdp = OneCounterMDP(
            (
                step({-1: Fraction(1, 2), 1: Fraction(1, 2)}),
                step({-1: Fraction(2, 3), 2: Fraction(1, 3)}),
            )
        )
        decision = mdp.decide_uniform_ast()
        assert decision.uniform_ast
        assert decision.failing_action is None
        assert len(decision.certificates) == 2

    def test_failing_member_identified(self):
        mdp = OneCounterMDP(
            (
                step({-1: Fraction(1, 2), 1: Fraction(1, 2)}),
                step({-1: Fraction(1, 3), 2: Fraction(2, 3)}),
            )
        )
        decision = mdp.decide_uniform_ast()
        assert not decision.uniform_ast
        assert decision.failing_action == 1

    def test_missing_mass_fails(self):
        mdp = OneCounterMDP((step({-1: Fraction(1, 2)}),))
        assert not mdp.decide_uniform_ast().uniform_ast

    def test_repr_mentions_verdict(self):
        mdp = OneCounterMDP((step({-1: Fraction(1)}),))
        assert "uniform AST" in repr(mdp.decide_uniform_ast())


class TestValueIteration:
    def test_start_zero_is_one(self):
        mdp = OneCounterMDP((step({-1: Fraction(1)}),))
        assert mdp.adversarial_value(0, 10) == 1

    def test_negative_start_rejected(self):
        mdp = OneCounterMDP((step({-1: Fraction(1)}),))
        with pytest.raises(ValueError):
            mdp.adversarial_value(-1, 10)

    def test_deterministic_descent(self):
        mdp = OneCounterMDP((step({-1: Fraction(1)}),))
        assert mdp.adversarial_value(3, 2) == 0
        assert mdp.adversarial_value(3, 3) == 1

    def test_single_action_matches_matrix_iteration(self):
        distribution = step({-1: Fraction(3, 5), 1: Fraction(2, 5)})
        mdp = OneCounterMDP((distribution,))
        matrix = RandomWalkMatrix(distribution)
        for horizon in (5, 11, 20):
            assert mdp.adversarial_value(1, horizon) == matrix.absorption_lower_bound(
                1, horizon
            )

    def test_adversary_not_better_than_angel(self):
        mdp = OneCounterMDP(
            (
                step({-1: Fraction(1, 2), 1: Fraction(1, 2)}),
                step({-1: Fraction(9, 10), 1: Fraction(1, 10)}),
            )
        )
        for horizon in (5, 15, 30):
            assert mdp.adversarial_value(1, horizon) <= mdp.angelic_value(1, horizon)

    def test_adversarial_value_monotone_in_horizon(self):
        mdp = OneCounterMDP(
            (
                step({-1: Fraction(1, 2), 1: Fraction(1, 2)}),
                step({-1: Fraction(2, 3), 2: Fraction(1, 3)}),
            )
        )
        previous = Fraction(0)
        for horizon in (1, 4, 8, 16, 32):
            value = mdp.adversarial_value(1, horizon)
            assert value >= previous
            previous = value
        assert previous <= 1

    def test_adversarial_value_approaches_one_for_uniform_ast_family(self):
        family = [
            counting({0: Fraction(1, 2), 1: Fraction(1, 2)}),
            counting({0: Fraction(3, 5), 2: Fraction(2, 5)}),
        ]
        mdp = from_counting_distributions(family)
        assert mdp.decide_uniform_ast().uniform_ast
        assert float(mdp.adversarial_value(1, 200, exact=False)) > 0.9

    def test_adversarial_value_stays_low_for_failing_family(self):
        # One member has strictly positive drift: the adversary plays only it
        # and the walk escapes to infinity with positive probability.
        family = [
            counting({0: Fraction(1, 2), 1: Fraction(1, 2)}),
            counting({0: Fraction(1, 4), 2: Fraction(3, 4)}),
        ]
        mdp = from_counting_distributions(family)
        assert not mdp.decide_uniform_ast().uniform_ast
        # p/(1-p) = 1/3 is the true adversarial value; the iteration stays below it.
        value = float(mdp.adversarial_value(1, 300, exact=False))
        assert value <= 1 / 3 + 1e-9
        assert value > 0.25

    def test_angelic_value_can_rescue_a_failing_member(self):
        # The angelic controller ignores the bad action entirely.
        family = [
            counting({0: Fraction(1, 2), 1: Fraction(1, 2)}),
            counting({0: Fraction(1, 4), 2: Fraction(3, 4)}),
        ]
        mdp = from_counting_distributions(family)
        assert float(mdp.angelic_value(1, 200, exact=False)) > 0.9

    def test_exact_and_float_iterations_agree(self):
        mdp = from_counting_distributions(
            [counting({0: Fraction(3, 5), 2: Fraction(2, 5)})]
        )
        exact = float(mdp.adversarial_value(1, 40, exact=True))
        approx = float(mdp.adversarial_value(1, 40, exact=False))
        assert exact == pytest.approx(approx, abs=1e-12)

    @given(
        st.lists(
            st.fractions(min_value=Fraction(1, 5), max_value=Fraction(4, 5)),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_criterion_agrees_with_value_iteration_trend(self, stop_probabilities):
        family = [counting({0: p, 2: 1 - p}) for p in stop_probabilities]
        mdp = from_counting_distributions(family)
        decision = mdp.decide_uniform_ast()
        value = float(mdp.adversarial_value(1, 120, exact=False))
        if decision.uniform_ast:
            # All members have non-positive shifted drift; the walk mixes fast
            # enough for the 120-step value to clear 0.75 on this family shape.
            assert value > 0.75
        else:
            worst = min(float(p) for p in stop_probabilities)
            limit = worst / (1 - worst)
            assert value <= limit + 1e-9


class TestSimulation:
    def test_greedy_adversary_picks_worst_drift(self):
        mdp = from_counting_distributions(
            [
                counting({0: Fraction(1, 2), 1: Fraction(1, 2)}),
                counting({0: Fraction(1, 4), 2: Fraction(3, 4)}),
            ]
        )
        policy = mdp.greedy_adversary()
        assert policy(1) == 1
        assert policy(17) == 1

    def test_simulation_absorbs_for_ast_single_action(self):
        mdp = from_counting_distributions([counting({0: Fraction(3, 4), 2: Fraction(1, 4)})])
        policy = mdp.greedy_adversary()
        rng = random.Random(1)
        hits = sum(
            1
            for _ in range(200)
            if simulate_adversarial_walk(mdp, policy, start=1, rng=rng)[0]
        )
        assert hits > 180

    def test_simulation_tracks_value_iteration_for_failing_family(self):
        family = [
            counting({0: Fraction(1, 2), 1: Fraction(1, 2)}),
            counting({0: Fraction(1, 4), 2: Fraction(3, 4)}),
        ]
        mdp = from_counting_distributions(family)
        policy = mdp.greedy_adversary()
        rng = random.Random(2)
        runs = 1500
        hits = sum(
            1
            for _ in range(runs)
            if simulate_adversarial_walk(mdp, policy, start=1, max_steps=2_000, rng=rng)[0]
        )
        empirical = hits / runs
        assert empirical == pytest.approx(1 / 3, abs=0.05)
