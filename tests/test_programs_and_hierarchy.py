"""Tests for the benchmark program library and the arithmetic-hierarchy views."""

from fractions import Fraction

import pytest

from repro.hierarchy import ASTFormula, PASTFormula, ast_semi_decision, lower_bound_semidecider
from repro.lowerbound import LowerBoundEngine
from repro.programs import (
    bin_walk,
    geometric,
    golden_ratio,
    one_dim_random_walk,
    pedestrian,
    printer_nonaffine,
    running_example,
    running_example_first_class,
    table1_programs,
    table2_programs,
    three_print,
)
from repro.semantics import CbVMachine, estimate_termination
from repro.spcf.syntax import Fix, free_variables
from repro.spcf.types import ArrowType, RealType, type_of


class TestProgramLibrary:
    def test_all_programs_are_closed_and_typable(self):
        for name, program in {**table1_programs(), **table2_programs()}.items():
            assert not free_variables(program.applied), name
            assert type_of(program.applied) == RealType(), name
            assert isinstance(program.fix, Fix), name
            assert type_of(program.fix) == ArrowType(RealType(), RealType()), name

    def test_table_suites_cover_the_paper_rows(self):
        assert len(table1_programs()) == 10
        assert len(table2_programs()) == 5

    def test_programs_run_on_the_cbv_machine(self):
        machine = CbVMachine()
        for name, program in table1_programs().items():
            estimate = estimate_termination(
                program.applied, runs=30, max_steps=3_000, machine=machine
            )
            # Every Table 1 program terminates on at least some runs.
            assert estimate.terminated > 0, name

    def test_known_probabilities_match_monte_carlo(self):
        cases = [
            (printer_nonaffine(Fraction(1, 4)), 1 / 3),
            (one_dim_random_walk(Fraction(2, 5), 1), 2 / 3),
            (geometric(Fraction(1, 5)), 1.0),
            (bin_walk(Fraction(1, 2), 2), 1.0),
        ]
        # Terminating runs of these programs are short; a small step cap keeps
        # the (mostly non-terminating) heavy runs from dominating the runtime.
        for program, expected in cases:
            assert program.known_probability == pytest.approx(expected, abs=1e-9)
            estimate = estimate_termination(program.applied, runs=500, max_steps=1_500)
            assert estimate.probability == pytest.approx(expected, abs=0.06)

    def test_golden_ratio_known_probability(self):
        import math

        program = golden_ratio()
        assert program.known_probability == pytest.approx((math.sqrt(5) - 1) / 2)
        estimate = estimate_termination(program.applied, runs=500, max_steps=1_500)
        assert estimate.probability == pytest.approx(program.known_probability, abs=0.06)

    def test_three_print_closed_form(self):
        # For p >= 2/3 the program is AST; below, the fixpoint is < 1.
        assert three_print(Fraction(3, 4)).known_probability == pytest.approx(1.0, abs=1e-6)
        assert three_print(Fraction(1, 2)).known_probability < 1

    def test_parameterised_builders_reject_nothing_but_produce_distinct_terms(self):
        assert running_example(Fraction(3, 5)).fix != running_example(Fraction(2, 3)).fix
        assert running_example_first_class(Fraction(13, 20)).name.startswith("ex5.15")
        assert pedestrian().strategy.name == "CBV"


class TestHierarchy:
    def test_semidecider_finds_a_witness_for_an_ast_program(self):
        result = lower_bound_semidecider(
            geometric(Fraction(1, 2)).applied, Fraction(9, 10), depth_schedule=(20, 40)
        )
        assert result is not None
        assert result.probability > Fraction(9, 10)

    def test_semidecider_gives_up_on_a_non_ast_program(self):
        # Pterm = 1/3 < 0.9, so no witness exists at any depth.
        result = lower_bound_semidecider(
            printer_nonaffine(Fraction(1, 4)).applied,
            Fraction(9, 10),
            depth_schedule=(20, 40),
        )
        assert result is None

    def test_ast_formula_collects_witnesses(self):
        formula = ASTFormula(geometric(Fraction(1, 2)).applied)
        witnesses = formula.check(
            epsilons=[Fraction(1, 4), Fraction(1, 20)], depth_schedule=(20, 40, 80)
        )
        assert formula.all_found(witnesses)
        assert all(w.result.probability >= 1 - w.epsilon for w in witnesses)

    def test_ast_semi_decision_wrapper(self):
        assert ast_semi_decision(
            geometric(Fraction(1, 2)).applied, epsilon=Fraction(1, 10), depth_schedule=(40,)
        )
        assert not ast_semi_decision(
            printer_nonaffine(Fraction(1, 4)).applied,
            epsilon=Fraction(1, 10),
            depth_schedule=(40,),
        )

    def test_past_formula_refutes_small_bounds(self):
        formula = PASTFormula(geometric(Fraction(1, 2)).applied)
        # The expected number of steps exceeds 1, so the bound 1 is refuted ...
        assert formula.refutes(Fraction(1), depth_schedule=(40,)) is not None
        # ... while a generous bound is consistent with everything explored.
        assert formula.consistent_with(Fraction(1000), depth_schedule=(40,))

    def test_formulas_share_an_engine(self):
        engine = LowerBoundEngine()
        formula = ASTFormula(geometric(Fraction(1, 2)).applied)
        witnesses = formula.check(
            epsilons=[Fraction(1, 10)], depth_schedule=(40,), engine=engine
        )
        assert witnesses[0].found
