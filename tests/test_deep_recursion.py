"""Deep-term regression tests: the explicit-work-stack tree and term walks.

``astcheck/exectree._build``, ``spcf.syntax.substitute`` and
``spcf.syntax.free_variables`` run on explicit stacks, so recursion bodies
far deeper than the interpreter's recursion limit (e.g. the ``nested``
program at large rank) must neither overflow nor change results.  The
equivalence tests compare the iterative substitution against a direct
recursive reference implementation on binder-heavy terms.
"""

import sys
from fractions import Fraction

import pytest

from repro.astcheck.exectree import build_execution_tree, render_tree
from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Var,
    alpha_equivalent,
    free_variables,
    substitute,
)


def deep_application_chain(depth: int, leaf=None):
    term = leaf if leaf is not None else Var("x")
    for _ in range(depth):
        term = App(Var("phi"), term)
    return term


def deep_branch_body(depth: int):
    """A body whose execution tree is a ``depth``-high tower of branches."""
    body = Var("x")
    for _ in range(depth):
        body = If(
            Prim("-", (Sample(), Numeral(Fraction(1, 2)))),
            body,
            App(Var("phi"), Var("x")),
        )
    return body


class LowRecursionLimit:
    """Temporarily lower the recursion limit so regressions fail loudly."""

    def __init__(self, limit: int = 1_000) -> None:
        self.limit = limit

    def __enter__(self):
        self.previous = sys.getrecursionlimit()
        sys.setrecursionlimit(self.limit)

    def __exit__(self, *exc_info):
        sys.setrecursionlimit(self.previous)


class TestDeepTerms:
    def test_substitute_handles_terms_deeper_than_the_recursion_limit(self):
        term = deep_application_chain(20_000)
        with LowRecursionLimit():
            result = substitute(term, {"x": Numeral(Fraction(1))})
        # walk down iteratively to the replaced leaf
        node = result
        while isinstance(node, App):
            node = node.arg
        assert node == Numeral(Fraction(1))

    def test_free_variables_handles_deep_terms(self):
        term = Lam("y", deep_application_chain(20_000))
        with LowRecursionLimit():
            names = free_variables(term)
        assert names == frozenset({"phi", "x"})

    def test_execution_tree_deeper_than_the_recursion_limit(self):
        fix = Fix("phi", "x", deep_branch_body(5_000))
        with LowRecursionLimit():
            tree = build_execution_tree(fix, max_steps=200_000)
            rendering = render_tree(tree)
        assert tree.prob_node_count == 5_000
        assert tree.max_recursive_calls == 1
        assert rendering.count("branch[") == 5_000


class TestSubstituteEquivalence:
    """The iterative substitution agrees with the recursive definition."""

    def reference(self, term, replacements):
        """The direct structural-recursion definition (small terms only)."""
        from repro.spcf.syntax import fresh_variable, is_extension_leaf

        def go(term, repl, avoid):
            if isinstance(term, Var):
                return repl.get(term.name, term)
            if isinstance(term, (Numeral, Sample)) or is_extension_leaf(term):
                return term
            if isinstance(term, (Lam, Fix)):
                binders = (
                    (term.var,) if isinstance(term, Lam) else (term.fvar, term.var)
                )
                narrowed = {n: v for n, v in repl.items() if n not in binders}
                if not narrowed:
                    return term
                taken = avoid | free_variables(term.body) | set(binders)
                renaming, new_binders = {}, []
                for binder in binders:
                    if binder in avoid:
                        fresh = fresh_variable(binder, taken)
                        taken = taken | {fresh}
                        renaming[binder] = Var(fresh)
                        new_binders.append(fresh)
                    else:
                        new_binders.append(binder)
                body = term.body
                if renaming:
                    body = go(body, renaming, frozenset(renaming))
                body = go(body, narrowed, avoid)
                if isinstance(term, Lam):
                    return Lam(new_binders[0], body)
                return Fix(new_binders[0], new_binders[1], body)
            if isinstance(term, App):
                return App(go(term.fn, repl, avoid), go(term.arg, repl, avoid))
            if isinstance(term, If):
                return If(
                    go(term.cond, repl, avoid),
                    go(term.then, repl, avoid),
                    go(term.orelse, repl, avoid),
                )
            if isinstance(term, Prim):
                return Prim(term.op, tuple(go(a, repl, avoid) for a in term.args))
            if isinstance(term, Score):
                return Score(go(term.arg, repl, avoid))
            raise TypeError(term)

        avoid = frozenset()
        for value in replacements.values():
            avoid = avoid | free_variables(value)
        return go(term, dict(replacements), avoid)

    CASES = [
        # simple replacement
        (App(Var("f"), Var("x")), {"x": Numeral(Fraction(2))}),
        # shadowing: the bound x must not be replaced
        (Lam("x", App(Var("x"), Var("y"))), {"x": Numeral(Fraction(1)),
                                             "y": Var("z")}),
        # capture: lambda x must be renamed before inserting the free x
        (Lam("x", App(Var("f"), Var("y"))), {"y": Var("x")}),
        # capture under a Fix binder pair
        (Fix("phi", "x", App(Var("phi"), Var("y"))), {"y": Var("x")}),
        (Fix("phi", "x", App(Var("phi"), Var("y"))), {"y": Var("phi")}),
        # nested binders with mixed shadowing and capture
        (
            Lam("x", Lam("y", Prim("+", (Var("x"), Var("y"), Var("z"))))),
            {"z": Prim("*", (Var("x"), Var("y")))},
        ),
        # replacement value mentioning the binder, inside score and if
        (
            Lam("x", If(Var("c"), Score(Var("u")), Var("x"))),
            {"u": Var("x"), "c": Var("x")},
        ),
    ]

    @pytest.mark.parametrize("term, replacements", CASES)
    def test_matches_reference(self, term, replacements):
        expected = self.reference(term, replacements)
        actual = substitute(term, replacements)
        assert alpha_equivalent(actual, expected)

    def test_free_variables_after_capture_avoiding_substitution(self):
        # substituting y := x under Lam x must keep the inserted x free
        term = Lam("x", App(Var("f"), Var("y")))
        result = substitute(term, {"y": Var("x")})
        assert "x" in free_variables(result)
        assert isinstance(result, Lam) and result.var != "x"

    def test_empty_substitution_is_identity(self):
        term = Lam("x", App(Var("x"), Var("y")))
        assert substitute(term, {}) is term

    def test_nested_program_still_verifies(self):
        # the satellite's motivating program keeps its analysis verdicts
        from repro.astcheck import verify_ast
        from repro.programs import resolve_program

        program = resolve_program("nested(1/2)")
        result = verify_ast(program)
        assert result.rank >= 1

    def test_nested_program_tree_overrun_is_a_clean_budget_error(self):
        # unrolling the inner fixpoint builds symbolic values thousands of
        # nodes deep; the walk must reach the step budget and report the
        # designed error, not die of RecursionError first
        from repro.astcheck.exectree import ExecutionTreeError
        from repro.batch import JobSpec, run_job
        from repro.programs import resolve_program

        program = resolve_program("nested(1/2)")
        with LowRecursionLimit():
            with pytest.raises(ExecutionTreeError):
                build_execution_tree(program.fix, max_steps=5_000)
        result = run_job(JobSpec(program="nested(1/2)", analysis="papprox"))
        assert result.status == "error"
        assert "ExecutionTreeError" in result.error
