"""Tests for the lower-bound engine (Sec. 3 / Sec. 7.1, Table 1)."""

from fractions import Fraction

import pytest

from repro.geometry.measure import MeasureOptions
from repro.lowerbound import LowerBoundEngine, lower_bound
from repro.programs import (
    geometric,
    golden_ratio,
    one_dim_random_walk,
    pedestrian,
    printer_nonaffine,
    three_print,
)
from repro.semantics import CbNMachine, estimate_termination
from repro.spcf import parse
from repro.spcf.syntax import Var
from repro.symbolic.execute import Strategy


class TestGeometricProgram:
    def test_lower_bound_has_the_closed_form_of_a_geometric_series(self):
        # With k completed retries allowed, the bound is 1 - 2^-k; at depth 100
        # the engine finds 20 paths, matching Table 1's 0.9999990463.
        result = lower_bound(geometric(Fraction(1, 2)).applied, max_steps=100)
        assert result.probability == 1 - Fraction(1, 2) ** result.path_count
        assert result.path_count == 20
        assert float(result.probability) == pytest.approx(0.9999990463, abs=1e-9)

    def test_bound_is_monotone_in_depth(self):
        term = geometric(Fraction(1, 2)).applied
        engine = LowerBoundEngine()
        bounds = [
            engine.lower_bound(term, max_steps=depth).probability
            for depth in (20, 40, 80)
        ]
        assert bounds[0] < bounds[1] < bounds[2] < 1

    def test_expected_steps_lower_bound_is_positive_and_finite(self):
        result = lower_bound(geometric(Fraction(1, 2)).applied, max_steps=80)
        assert 0 < result.expected_steps < 100

    def test_exactness_flag(self):
        result = lower_bound(geometric(Fraction(1, 2)).applied, max_steps=40)
        assert result.exact_measures
        assert not result.exhaustive  # deeper paths were cut off


class TestAgainstKnownProbabilities:
    def test_nonaffine_printer_below_one_half_converges_to_p_over_one_minus_p(self):
        # Pterm = 1/3 for p = 1/4; the bound approaches it from below.
        program = printer_nonaffine(Fraction(1, 4))
        result = lower_bound(program.applied, max_steps=70)
        assert Fraction(3, 10) < result.probability < Fraction(1, 3)

    def test_golden_ratio_bound_stays_below_the_inverse_golden_ratio(self):
        import math

        result = lower_bound(golden_ratio().applied, max_steps=60)
        limit = (math.sqrt(5) - 1) / 2
        assert 0.55 < float(result.probability) < limit

    def test_bounds_never_exceed_the_monte_carlo_estimate_significantly(self):
        # Depths, run counts and step caps are kept moderate so the cross
        # check stays cheap: the critical printer's CbN runs are heavy-tailed
        # and its pending-call chains make late steps expensive.  Truncating
        # the Monte-Carlo runs only lowers the estimate, so the soundness
        # inequality below only gets harder to satisfy.
        for program, depth in [
            (geometric(Fraction(1, 5)), 60),
            (printer_nonaffine(Fraction(1, 2)), 45),
            (three_print(Fraction(3, 4)), 40),
            (one_dim_random_walk(Fraction(7, 10), 1), 45),
        ]:
            bound = lower_bound(program.applied, max_steps=depth, strategy=program.strategy)
            estimate = estimate_termination(
                program.applied, runs=300, max_steps=1_500, machine=CbNMachine()
            )
            assert float(bound.probability) <= estimate.probability + 4 * estimate.stderr + 0.03

    def test_pedestrian_paths_require_the_polytope_oracle(self):
        program = pedestrian()
        result = lower_bound(program.applied, max_steps=35, strategy=program.strategy)
        assert result.probability > Fraction(1, 10)
        methods = {measure.measure.method for measure in result.paths}
        assert any("polytope" in method or "polygon" in method for method in methods)


class TestAnytimeSessions:
    def test_schedule_results_are_bit_identical_to_from_scratch_runs(self):
        for program in (
            geometric(Fraction(1, 2)),
            golden_ratio(),
            printer_nonaffine(Fraction(1, 2)),
        ):
            engine = LowerBoundEngine(strategy=program.strategy)
            session = engine.session(program.applied)
            for depth in (15, 25, 40):
                incremental = session.extend(depth)
                reference = lower_bound(
                    program.applied, max_steps=depth, strategy=program.strategy
                )
                assert incremental == reference, (program.name, depth)

    def test_each_path_is_measured_exactly_once_across_the_schedule(self):
        engine = LowerBoundEngine()
        session = engine.session(geometric(Fraction(1, 2)).applied)
        session.extend(40)
        requests = engine.measure_engine.stats.measure_requests
        result = session.extend(40)
        # Replaying the same depth re-reports every path without a single
        # new measure request.
        assert engine.measure_engine.stats.measure_requests == requests
        assert result.path_count > 0

    def test_bounds_are_monotone_over_a_schedule(self):
        engine = LowerBoundEngine()
        results = list(
            engine.lower_bound_schedule(
                geometric(Fraction(1, 2)).applied, (10, 20, 30, 40)
            )
        )
        assert len(results) == 4
        probabilities = [result.probability for result in results]
        assert probabilities == sorted(probabilities)

    def test_target_gap_stops_the_schedule_early(self):
        engine = LowerBoundEngine()
        results = list(
            engine.lower_bound_schedule(
                geometric(Fraction(1, 2)).applied,
                (20, 40, 60, 80),
                target_gap=Fraction(1, 100),
            )
        )
        assert len(results) < 4
        assert results[-1].anytime_gap() <= Fraction(1, 100)

    def test_anytime_gap_is_the_sweep_bracket_once_exhaustive(self):
        from repro.spcf import parse

        exhaustive = lower_bound(parse("(lam x. x + 1) 2"), max_steps=10)
        assert exhaustive.exhaustive
        assert exhaustive.anytime_gap() == exhaustive.measure_gap == 0
        partial = lower_bound(geometric(Fraction(1, 2)).applied, max_steps=20)
        assert not partial.exhaustive
        assert partial.anytime_gap() == 1 - partial.probability

    def test_capped_session_keeps_reporting_non_exhaustive(self):
        engine = LowerBoundEngine()
        session = engine.session(golden_ratio().applied, max_paths=5)
        results = [session.extend(depth) for depth in (40, 60, 80)]
        assert not any(result.exhaustive for result in results)
        for result, reference_depth in zip(results, (40, 60, 80)):
            reference = LowerBoundEngine().lower_bound(
                golden_ratio().applied, max_steps=reference_depth, max_paths=5
            )
            assert result == reference


class TestEngineBehaviour:
    def test_open_terms_are_rejected(self):
        with pytest.raises(ValueError):
            lower_bound(Var("x"))

    def test_deterministic_terminating_terms_get_probability_one(self):
        result = lower_bound(parse("(lam x. x + 1) 2"), max_steps=10)
        assert result.probability == 1
        assert result.exhaustive

    def test_deterministically_diverging_terms_get_probability_zero(self):
        result = lower_bound(parse("(mu phi x. phi x) 0"), max_steps=30)
        assert result.probability == 0
        assert not result.exhaustive

    def test_score_failures_remove_probability_mass(self):
        # score(sample - 1/2) succeeds only when the draw is at least 1/2.
        result = lower_bound(parse("score(sample - 1/2)"), max_steps=10)
        assert result.probability == Fraction(1, 2)

    def test_max_paths_budget_is_respected(self):
        result = LowerBoundEngine().lower_bound(
            golden_ratio().applied, max_steps=60, max_paths=10
        )
        assert not result.exhaustive
        assert result.path_count <= 10

    def test_prefer_sweep_still_produces_sound_bounds(self):
        engine = LowerBoundEngine(measure_options=MeasureOptions(prefer_sweep=True, sweep_depth=8))
        sweep_bound = engine.lower_bound(geometric(Fraction(1, 2)).applied, max_steps=40)
        exact_bound = lower_bound(geometric(Fraction(1, 2)).applied, max_steps=40)
        assert sweep_bound.probability <= exact_bound.probability

    def test_summary_mentions_the_depth_and_path_count(self):
        result = lower_bound(geometric(Fraction(1, 2)).applied, max_steps=20)
        summary = result.summary()
        assert "depth = 20" in summary
        assert "paths" in summary

    def test_cbv_strategy_is_supported(self):
        result = lower_bound(
            geometric(Fraction(1, 2)).applied, max_steps=60, strategy=Strategy.CBV
        )
        assert result.probability > Fraction(9, 10)
