"""Docs consistency: no dead relative links, the telemetry reference covers
every event kind, and the CLI reference covers every flag the parser knows."""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.telemetry.events import EVENT_KINDS

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def relative_links(path):
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if target:
            yield target


def iter_parsers(parser):
    """The parser and every (nested) subcommand parser."""
    yield parser
    for action in parser._actions:
        choices = getattr(action, "choices", None)
        if isinstance(choices, dict):  # a subcommand table, not a value set
            for subparser in choices.values():
                yield from iter_parsers(subparser)


class TestLinks:
    def test_docs_exist(self):
        assert len(DOC_FILES) >= 5  # README + the four reference pages

    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_no_dead_relative_links(self, path):
        missing = [
            target
            for target in relative_links(path)
            if not (path.parent / target).exists()
        ]
        assert not missing, f"dead links in {path.name}: {missing}"


class TestTelemetryReference:
    def test_every_event_kind_is_documented(self):
        text = (REPO_ROOT / "docs" / "telemetry.md").read_text()
        undocumented = [
            kind for kind in sorted(EVENT_KINDS) if f"`{kind}`" not in text
        ]
        assert not undocumented, f"event kinds missing from docs: {undocumented}"


class TestCliReference:
    def test_every_flag_is_documented(self):
        text = (REPO_ROOT / "docs" / "cli.md").read_text()
        flags = set()
        for parser in iter_parsers(build_parser()):
            for action in parser._actions:
                flags.update(
                    option
                    for option in action.option_strings
                    if option.startswith("--") and option != "--help"
                )
        undocumented = sorted(flag for flag in flags if flag not in text)
        assert not undocumented, f"flags missing from docs/cli.md: {undocumented}"

    def test_every_command_is_documented(self):
        text = (REPO_ROOT / "docs" / "cli.md").read_text()
        parser = build_parser()
        commands = set()
        for action in parser._actions:
            commands.update(getattr(action, "choices", None) or {})
        undocumented = sorted(
            command for command in commands if f"`{command}" not in text
        )
        assert not undocumented, f"commands missing from docs/cli.md: {undocumented}"
