"""Tests for the telemetry event stream: writer, readers, CLI, aggregation."""

import io
import json

from repro.batch import JobSpec, run_job
from repro.cli import main
from repro.geometry.engine import MeasureEngine
from repro.geometry.stats import PerfStats
from repro.telemetry import (
    SCHEMA_VERSION,
    TelemetryWriter,
    merge_worker_traces,
    validate_event,
    worker_trace_path,
)
from repro.telemetry.analyze import read_trace, reconcile_counters, render_summary
from repro.telemetry.watch import TraceTail, watch


def read_events(path):
    return [json.loads(line) for line in path.read_text().splitlines() if line]


class TestWriter:
    def test_stream_brackets_with_trace_start_and_end(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        writer = TelemetryWriter(trace, command="unit test")
        writer.emit("warning", code="demo")
        writer.close()
        events = read_events(trace)
        assert [event["ev"] for event in events] == ["trace-start", "warning", "trace-end"]
        assert events[0]["schema"] == SCHEMA_VERSION
        assert events[0]["command"] == "unit test"
        assert events[-1]["open_spans"] == 0
        assert [event["seq"] for event in events] == [0, 1, 2]

    def test_every_event_is_schema_valid(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        writer = TelemetryWriter(trace)
        with writer.span("measure", dim=2):
            writer.emit("counters", counters=PerfStats().as_dict())
        writer.close()
        for event in read_events(trace):
            assert validate_event(event) is None

    def test_span_pairs_share_a_sid_and_the_end_carries_a_duration(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        writer = TelemetryWriter(trace)
        token = writer.begin("sweep", depth=10)
        writer.end(token, boxes=5)
        writer.close()
        start, end = [e for e in read_events(trace) if e["ev"].startswith("span-")]
        assert start["sid"] == end["sid"]
        assert start["depth"] == 10
        assert end["boxes"] == 5
        assert end["dur"] >= 0

    def test_context_is_sticky_until_cleared_with_none(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        writer = TelemetryWriter(trace)
        writer.set_context(program="geo(1/2)")
        writer.emit("warning", code="inside")
        writer.set_context(program=None)
        writer.emit("warning", code="outside")
        writer.close()
        inside, outside = [e for e in read_events(trace) if e["ev"] == "warning"]
        assert inside["program"] == "geo(1/2)"
        assert "program" not in outside

    def test_none_valued_fields_are_dropped(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        writer = TelemetryWriter(trace)
        writer.emit("warning", code="demo", path=None)
        writer.close()
        (warning,) = [e for e in read_events(trace) if e["ev"] == "warning"]
        assert "path" not in warning


class TestValidateEvent:
    def base(self, **overrides):
        record = {"v": SCHEMA_VERSION, "ev": "warning", "t": 0.0, "seq": 0, "pid": 1}
        record.update(overrides)
        return record

    def test_valid_event_with_extra_fields(self):
        assert validate_event(self.base(code="x", whatever=[1, 2])) is None

    def test_non_object_rejected(self):
        assert validate_event([1, 2]) is not None

    def test_unknown_schema_version_rejected(self):
        assert "schema version" in validate_event(self.base(v=99))

    def test_unknown_event_kind_rejected(self):
        assert "unknown event kind" in validate_event(self.base(ev="frobnicate"))

    def test_span_end_requires_a_duration(self):
        record = self.base(ev="span-end", span="measure", sid=0)
        assert "dur" in validate_event(record)

    def test_span_events_require_a_sid(self):
        record = self.base(ev="span-start", span="measure")
        assert "sid" in validate_event(record)


class TestReadTrace:
    def write_healthy(self, trace):
        writer = TelemetryWriter(trace, command="demo")
        with writer.span("measure"):
            pass
        writer.close()

    def test_torn_final_line_is_tolerated_not_counted_as_corrupt(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        self.write_healthy(trace)
        with open(trace, "a") as stream:
            stream.write('{"v": 1, "ev": "warn')  # no newline: a torn write
        accumulator = read_trace(trace)
        assert accumulator.torn_tail
        assert accumulator.corrupt_lines == 0
        text, exit_code = render_summary(accumulator, trace)
        assert exit_code == 0
        assert "torn final line" in text

    def test_corrupt_middle_line_is_real_damage(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        self.write_healthy(trace)
        lines = trace.read_text().splitlines()
        lines.insert(1, "not json at all")
        trace.write_text("\n".join(lines) + "\n")
        accumulator = read_trace(trace)
        assert accumulator.corrupt_lines == 1
        assert not accumulator.torn_tail
        _, exit_code = render_summary(accumulator, trace)
        assert exit_code == 1

    def test_span_totals_and_balance(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        writer = TelemetryWriter(trace)
        with writer.span("measure"):
            pass
        writer.begin("sweep")  # never ended: e.g. the process was killed
        writer.close()
        accumulator = read_trace(trace)
        assert accumulator.span_totals["measure"].count == 1
        assert len(accumulator.open_spans) == 1
        assert accumulator.ended

    def test_unknown_schema_version_fails_the_summary(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        event = {"v": 99, "ev": "warning", "t": 0.0, "seq": 0, "pid": 1}
        trace.write_text(json.dumps(event) + "\n")
        accumulator = read_trace(trace)
        assert accumulator.invalid_events
        _, exit_code = render_summary(accumulator, trace)
        assert exit_code == 1

    def test_reconcile_reports_each_mismatched_counter(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        writer = TelemetryWriter(trace)
        writer.emit("job-retried", job=0, attempts=1, kind="worker-died")
        writer.close()
        accumulator = read_trace(trace)
        assert reconcile_counters(accumulator, {"retries": 1}) == []
        mismatches = reconcile_counters(accumulator, {"retries": 3, "timeouts": 2})
        assert len(mismatches) == 2


class TestWorkerMerge:
    def test_merge_is_deterministic_and_consumes_side_files(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        writer = TelemetryWriter(trace)
        writer.close()
        for pid in (200, 100):  # created out of order; merged in sorted order
            side = worker_trace_path(trace, pid)
            worker = TelemetryWriter(side, command="worker")
            worker.emit("job-started", job=pid)
            worker.close()
        with open(worker_trace_path(trace, 200), "a") as stream:
            stream.write('{"torn')  # a killed worker's half-written line
        merged, torn = merge_worker_traces(trace)
        assert merged == 6  # two side files x (trace-start, job-started, trace-end)
        assert torn == 1
        assert not list(tmp_path.glob("t.jsonl.worker-*"))
        jobs = [e["job"] for e in read_events(trace) if e["ev"] == "job-started"]
        assert jobs == [100, 200]

    def test_merged_trace_has_no_torn_lines(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        TelemetryWriter(trace).close()
        side = worker_trace_path(trace, 4242)
        side.write_text('{"v": 1, "ev": "job-started", "t": 0, "seq": 0, "pid": 4242}\n{"half')
        merge_worker_traces(trace)
        accumulator = read_trace(trace)
        assert accumulator.corrupt_lines == 0
        assert not accumulator.torn_tail


class TestCliTrace:
    def test_lower_bound_trace_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "lb.jsonl"
        stats_json = tmp_path / "stats.json"
        exit_code = main(
            [
                "lower-bound",
                "geo(1/2)",
                "--schedule",
                "10,20,40",
                "--trace",
                str(trace),
                "--stats-json",
                str(stats_json),
            ]
        )
        assert exit_code == 0
        events = read_events(trace)
        for event in events:
            assert validate_event(event) is None
        bounds = [e for e in events if e["ev"] == "anytime-bound"]
        assert [b["depth"] for b in bounds] == [10, 20, 40]
        for bound in bounds:
            assert bound["program"] == "geo(1/2)"
            assert bound["gap"] >= 0
        assert events[-1]["ev"] == "trace-end"
        capsys.readouterr()

        exit_code = main(
            ["trace", "summarize", str(trace), "--check-stats-json", str(stats_json)]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "recovery events reconcile exactly" in output
        assert "geo(1/2)" in output

    def test_summarize_fails_on_a_stats_mismatch(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        writer = TelemetryWriter(trace)
        writer.emit("job-timeout", job=0, budget=1.0)
        writer.close()
        stats_json = tmp_path / "stats.json"
        stats_json.write_text(json.dumps({"version": 1, "counters": {"timeouts": 0}}))
        exit_code = main(
            ["trace", "summarize", str(trace), "--check-stats-json", str(stats_json)]
        )
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "MISMATCH" in output

    def test_summarize_missing_trace_is_a_usage_error(self, tmp_path, capsys):
        exit_code = main(["trace", "summarize", str(tmp_path / "absent.jsonl")])
        capsys.readouterr()
        assert exit_code == 2

    def test_batch_results_are_byte_identical_with_and_without_trace(self, tmp_path):
        traced = tmp_path / "traced.jsonl"
        plain = tmp_path / "plain.jsonl"
        assert (
            main(
                [
                    "batch",
                    "--suite",
                    "table2",
                    "--jobs",
                    "1",
                    "--output",
                    str(traced),
                    "--trace",
                    str(tmp_path / "trace.jsonl"),
                ]
            )
            == 0
        )
        assert (
            main(["batch", "--suite", "table2", "--jobs", "1", "--output", str(plain)])
            == 0
        )
        assert traced.read_bytes() == plain.read_bytes()

    def test_batch_trace_carries_job_lifecycle_and_merged_counters(self, tmp_path):
        trace = tmp_path / "batch.jsonl"
        assert (
            main(
                [
                    "batch",
                    "--suite",
                    "table2",
                    "--jobs",
                    "2",
                    "--output",
                    str(tmp_path / "out.jsonl"),
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        accumulator = read_trace(trace)
        assert not accumulator.invalid_events
        assert accumulator.jobs_scheduled == 5
        assert accumulator.jobs_completed == 5
        assert accumulator.jobs_started == 5  # every job ran in a pool worker
        assert accumulator.counters is not None  # the final PerfStats snapshot
        assert accumulator.counters["measure_requests"] > 0
        assert not list(tmp_path.glob("batch.jsonl.worker-*"))


class TestDoctorTrace:
    def healthy_trace(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        writer = TelemetryWriter(trace)
        with writer.span("measure"):
            pass
        writer.close()
        return trace

    def test_healthy_trace_exits_zero(self, tmp_path, capsys):
        trace = self.healthy_trace(tmp_path)
        exit_code = main(["doctor", "--trace", str(trace)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "trace events" in output
        assert "healthy" in output

    def test_doctor_trace_does_not_clobber_the_trace(self, tmp_path, capsys):
        trace = self.healthy_trace(tmp_path)
        before = trace.read_bytes()
        main(["doctor", "--trace", str(trace)])
        capsys.readouterr()
        assert trace.read_bytes() == before

    def test_corrupt_middle_line_is_an_error(self, tmp_path, capsys):
        trace = self.healthy_trace(tmp_path)
        lines = trace.read_text().splitlines()
        lines.insert(1, "garbage")
        trace.write_text("\n".join(lines) + "\n")
        exit_code = main(["doctor", "--trace", str(trace)])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "corrupt-trace-line" in output

    def test_torn_tail_and_open_spans_are_warnings_only(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        writer = TelemetryWriter(trace)
        writer.begin("sweep")  # killed mid-span: never closed
        writer.close()
        with open(trace, "a") as stream:
            stream.write('{"half')
        exit_code = main(["doctor", "--trace", str(trace)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "torn-trace-tail" in output
        assert "unbalanced-spans" in output

    def test_missing_trace_is_an_error(self, tmp_path, capsys):
        exit_code = main(["doctor", "--trace", str(tmp_path / "absent.jsonl")])
        capsys.readouterr()
        assert exit_code == 1

    def test_doctor_without_any_target_is_a_usage_error(self, capsys):
        exit_code = main(["doctor"])
        capsys.readouterr()
        assert exit_code == 2


class TestWatch:
    def test_once_renders_bounds_and_progress(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        writer = TelemetryWriter(trace)
        writer.emit("job-scheduled", job=0, program="geo(1/2)", analysis="lower-bound")
        writer.emit(
            "anytime-bound",
            program="geo(1/2)",
            depth=20,
            lower=0.75,
            gap=0.25,
            exhaustive=False,
        )
        writer.emit(
            "job-completed",
            program="geo(1/2)",
            analysis="lower-bound",
            status="ok",
            cached=False,
            elapsed_ms=1.0,
        )
        writer.close()
        stream = io.StringIO()
        assert watch(trace, once=True, stream=stream) == 0
        output = stream.getvalue()
        assert "[finished]" in output
        assert "geo(1/2)" in output
        assert "converging" in output
        assert "1/1" in output

    def test_missing_file_exits_one(self, tmp_path):
        assert watch(tmp_path / "absent.jsonl", once=True, stream=io.StringIO()) == 1

    def test_tail_holds_back_an_unterminated_fragment(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        writer = TelemetryWriter(trace)
        writer.emit("warning", code="first")
        tail = TraceTail(trace)
        tail.poll()
        assert tail.accumulator.events == 2  # trace-start + warning
        with open(trace, "a") as stream:
            stream.write('{"v": 1, "ev": "warning", "t": 0.1, "seq"')
        tail.poll()
        assert tail.accumulator.events == 2  # the fragment is not parsed yet
        with open(trace, "a") as stream:
            stream.write(': 2, "pid": %d, "code": "second"}\n' % writer._pid)
        tail.poll()
        assert tail.accumulator.events == 3
        assert tail.accumulator.corrupt_lines == 0
        writer.close()


class TestCrossWorkerStats:
    """PerfStats aggregation across workers: HWMs merge by max, totals sum."""

    SPECS = [
        {"program": "sig-retry(7/10)", "analysis": "lower-bound", "params": {"depth": 25}},
        {"program": "square-retry(1/2)", "analysis": "lower-bound", "params": {"depth": 60}},
        {"program": "ex5.15(0.65)", "analysis": "lower-bound", "params": {"depth": 40}},
        {"program": "3print(2/3)", "analysis": "lower-bound", "params": {"depth": 40}},
    ]

    def reference_stats(self):
        """Each job on its own fresh engine: the per-job ground truth."""
        references = []
        for entry in self.SPECS:
            engine = MeasureEngine()
            result = run_job(JobSpec(**entry), engine)
            assert result.status == "ok"
            references.append(engine.stats.as_dict())
        return references

    def test_two_worker_batch_merges_hwms_by_max_and_totals_by_sum(self, tmp_path):
        references = self.reference_stats()
        job_file = tmp_path / "jobs.json"
        job_file.write_text(json.dumps(self.SPECS))
        stats_json = tmp_path / "stats.json"
        exit_code = main(
            [
                "batch",
                str(job_file),
                "--jobs",
                "2",
                "--output",
                str(tmp_path / "out.jsonl"),
                "--stats-json",
                str(stats_json),
            ]
        )
        assert exit_code == 0
        counters = json.loads(stats_json.read_text())["counters"]

        hwm_fields = set(PerfStats.high_water_marks())
        assert {"sweep_heap_peak", "frontier_peak"} <= hwm_fields
        for name in ("sweep_heap_peak", "frontier_peak"):
            expected = max(reference[name] for reference in references)
            assert counters[name] == expected, name
        # The probe programs make max and sum distinguishable: were a HWM
        # summed across workers (the bug this guards against), these fail.
        assert sum(r["sweep_heap_peak"] for r in references) > counters["sweep_heap_peak"]
        assert sum(r["frontier_peak"] for r in references) > counters["frontier_peak"]

        for name in ("symbolic_steps", "sweep_boxes_examined", "sweep_blocks"):
            expected = sum(reference[name] for reference in references)
            assert counters[name] == expected, name
