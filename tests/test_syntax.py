"""Tests for the SPCF abstract syntax: terms, free variables, substitution."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Var,
    alpha_equivalent,
    free_variables,
    is_closed,
    is_value,
    subterms,
    substitute,
    term_size,
)


def test_numeral_normalises_ints_to_fractions():
    assert Numeral(3).value == Fraction(3)
    assert isinstance(Numeral(3).value, Fraction)
    assert Numeral(0.5).value == 0.5


def test_numeral_rejects_booleans_and_non_numbers():
    with pytest.raises(TypeError):
        Numeral(True)
    with pytest.raises(TypeError):
        Numeral("1")


def test_values_are_recognised():
    assert is_value(Var("x"))
    assert is_value(Numeral(1))
    assert is_value(Lam("x", Var("x")))
    assert is_value(Fix("phi", "x", Var("x")))
    assert not is_value(Sample())
    assert not is_value(App(Lam("x", Var("x")), Numeral(1)))


def test_call_builds_left_associated_applications():
    term = Lam("x", Var("x"))(Numeral(1), Numeral(2))
    assert isinstance(term, App)
    assert isinstance(term.fn, App)
    assert term.fn.arg == Numeral(1)
    assert term.arg == Numeral(2)


def test_free_variables_of_abstractions():
    term = Lam("x", App(Var("x"), Var("y")))
    assert free_variables(term) == frozenset({"y"})
    fix = Fix("phi", "x", App(Var("phi"), Var("x")))
    assert free_variables(fix) == frozenset()
    assert is_closed(fix)


def test_free_variables_of_compound_terms():
    term = If(Prim("add", (Var("a"), Numeral(1))), Score(Var("b")), Sample())
    assert free_variables(term) == frozenset({"a", "b"})


def test_subterms_and_term_size():
    term = If(Sample(), Numeral(0), Prim("add", (Numeral(1), Numeral(2))))
    assert term_size(term) == 6
    assert Sample() in list(subterms(term))


def test_substitution_replaces_free_occurrences_only():
    term = Lam("x", App(Var("x"), Var("y")))
    result = substitute(term, {"y": Numeral(1), "x": Numeral(2)})
    assert result == Lam("x", App(Var("x"), Numeral(1)))


def test_substitution_is_capture_avoiding():
    # (lam x. y) with y := x must not capture the bound x.
    term = Lam("x", Var("y"))
    result = substitute(term, {"y": Var("x")})
    assert isinstance(result, Lam)
    assert result.var != "x"
    assert result.body == Var("x")
    assert free_variables(result) == frozenset({"x"})


def test_substitution_under_fix_renames_both_binders():
    term = Fix("phi", "x", App(Var("phi"), App(Var("x"), Var("y"))))
    result = substitute(term, {"y": App(Var("phi"), Var("x"))})
    assert free_variables(result) == frozenset({"phi", "x"})
    # The bound variables must have been renamed apart from the substituted ones.
    assert isinstance(result, Fix)
    assert result.fvar not in ("phi",) or result.var not in ("x",)


def test_substitution_empty_mapping_is_identity():
    term = If(Sample(), Var("x"), Numeral(1))
    assert substitute(term, {}) is term


def test_alpha_equivalence_basic():
    assert alpha_equivalent(Lam("x", Var("x")), Lam("y", Var("y")))
    assert alpha_equivalent(
        Fix("phi", "x", App(Var("phi"), Var("x"))),
        Fix("f", "z", App(Var("f"), Var("z"))),
    )
    assert not alpha_equivalent(Lam("x", Var("x")), Lam("x", Numeral(1)))
    assert not alpha_equivalent(Var("x"), Var("y"))
    assert alpha_equivalent(Var("x"), Var("x"))


def test_alpha_equivalence_distinguishes_binder_structure():
    left = Lam("x", Lam("y", Var("x")))
    right = Lam("x", Lam("y", Var("y")))
    assert not alpha_equivalent(left, right)


# -- property-based tests -----------------------------------------------------

_leaf = st.one_of(
    st.builds(Numeral, st.integers(min_value=-5, max_value=5)),
    st.builds(Var, st.sampled_from(["x", "y", "z"])),
    st.just(Sample()),
)


def _terms(depth):
    if depth == 0:
        return _leaf
    smaller = _terms(depth - 1)
    return st.one_of(
        _leaf,
        st.builds(Lam, st.sampled_from(["x", "y"]), smaller),
        st.builds(App, smaller, smaller),
        st.builds(If, smaller, smaller, smaller),
        st.builds(lambda a, b: Prim("add", (a, b)), smaller, smaller),
        st.builds(Score, smaller),
        st.builds(Fix, st.just("phi"), st.sampled_from(["x", "y"]), smaller),
    )


@given(_terms(3))
def test_alpha_equivalence_is_reflexive(term):
    assert alpha_equivalent(term, term)


@given(_terms(3))
def test_substituting_all_free_variables_closes_the_term(term):
    closed = substitute(term, {name: Numeral(0) for name in free_variables(term)})
    assert is_closed(closed)


@given(_terms(3), _terms(2))
def test_substitution_never_introduces_new_free_variables(term, replacement):
    target = sorted(free_variables(term))
    if not target:
        return
    result = substitute(term, {target[0]: replacement})
    allowed = (free_variables(term) - {target[0]}) | free_variables(replacement)
    assert free_variables(result) <= allowed
