"""Tests for the analysis daemon: request coalescing, sessions, the socket
protocol, byte-identity with the one-shot CLI pipeline, and warm restarts."""

import asyncio
import json
import socket
import threading
import time
from contextlib import contextmanager

import pytest

from repro.batch import JobSpec, run_job
from repro.config import ReproConfig
from repro.geometry.engine import MeasureEngine
from repro.service import (
    AnalysisDaemon,
    ProtocolError,
    ServiceClient,
    ServiceError,
    serve,
)
from repro.service import protocol

PROGRAM = "geo(1/2)"
DEPTH = 40


def dispatch(daemon, method, params=None):
    return asyncio.run(daemon.dispatch(method, params or {}))


def expected_job_line(program=PROGRAM, depth=DEPTH, analysis="lower-bound"):
    """What the one-shot pipeline answers for the same request."""
    spec = JobSpec(program=program, analysis=analysis, params={"depth": depth})
    return run_job(spec, MeasureEngine()).to_json_line()


def job_line(response):
    """The daemon response's job record, re-encoded canonically."""
    return json.dumps(response["job"], sort_keys=True, separators=(",", ":"))


@contextmanager
def in_process_daemon(config=None):
    daemon = AnalysisDaemon(config=config)
    try:
        yield daemon
    finally:
        daemon.close()


@contextmanager
def running_daemon(tmp_path, config=None, name="daemon.sock"):
    """serve() on a real Unix socket, its loop on a background thread."""
    socket_path = tmp_path / name
    daemon = AnalysisDaemon(config=config)
    ready = asyncio.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(serve(socket_path, daemon=daemon, ready=ready)),
        daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 15
    while not ready.is_set():
        assert thread.is_alive(), "daemon thread died during startup"
        assert time.monotonic() < deadline, "daemon did not come up"
        time.sleep(0.01)
    try:
        yield socket_path, daemon
    finally:
        if thread.is_alive():
            try:
                with ServiceClient(socket_path) as client:
                    client.call("shutdown")
            except (OSError, ServiceError):
                daemon.stopping.set()
        thread.join(timeout=15)
        assert not thread.is_alive(), "daemon did not shut down"


class TestDispatch:
    def test_ping_reports_the_protocol(self):
        with in_process_daemon() as daemon:
            response = dispatch(daemon, "ping")
            assert response["protocol"] == protocol.PROTOCOL_VERSION
            assert response["pid"]

    def test_unknown_method(self):
        with in_process_daemon() as daemon:
            with pytest.raises(ProtocolError) as excinfo:
                dispatch(daemon, "no-such-method")
            assert excinfo.value.code == protocol.METHOD_NOT_FOUND

    def test_analysis_requires_a_program(self):
        with in_process_daemon() as daemon:
            with pytest.raises(ProtocolError) as excinfo:
                dispatch(daemon, "lower-bound", {"depth": 10})
            assert excinfo.value.code == protocol.INVALID_PARAMS

    def test_measure_rejects_unknown_params(self):
        with in_process_daemon() as daemon:
            with pytest.raises(ProtocolError) as excinfo:
                dispatch(daemon, "measure", {"program": PROGRAM, "bogus": 1})
            assert excinfo.value.code == protocol.INVALID_PARAMS

    def test_measure_surfaces_analysis_failures(self):
        with in_process_daemon() as daemon:
            with pytest.raises(ProtocolError) as excinfo:
                dispatch(daemon, "measure", {"program": "mu phi x. ("})
            assert excinfo.value.code == protocol.ANALYSIS_ERROR

    def test_job_is_byte_identical_to_the_cli_pipeline(self):
        with in_process_daemon() as daemon:
            response = dispatch(
                daemon, "lower-bound", {"program": PROGRAM, "depth": DEPTH}
            )
            assert job_line(response) == expected_job_line()
            assert not response["cached"]
            assert not response["coalesced"]


class TestCoalescing:
    def test_identical_concurrent_requests_share_one_computation(self):
        with in_process_daemon() as daemon:

            async def burst():
                params = {"program": PROGRAM, "depth": DEPTH}
                return await asyncio.gather(
                    *(daemon.dispatch("lower-bound", dict(params)) for _ in range(8))
                )

            responses = asyncio.run(burst())
            assert daemon.counters.computations == 1
            assert daemon.counters.coalesced == 7
            assert sorted(r["coalesced"] for r in responses) == [False] + [True] * 7
            lines = {job_line(r) for r in responses}
            assert lines == {expected_job_line()}

    def test_distinct_requests_do_not_coalesce(self):
        with in_process_daemon() as daemon:

            async def burst():
                return await asyncio.gather(
                    daemon.dispatch(
                        "lower-bound", {"program": PROGRAM, "depth": DEPTH}
                    ),
                    daemon.dispatch(
                        "lower-bound", {"program": PROGRAM, "depth": DEPTH + 1}
                    ),
                )

            responses = asyncio.run(burst())
            assert daemon.counters.computations == 2
            assert daemon.counters.coalesced == 0
            assert not any(r["coalesced"] for r in responses)

    def test_measure_joins_an_inflight_lower_bound(self):
        with in_process_daemon() as daemon:

            async def burst():
                return await asyncio.gather(
                    daemon.dispatch(
                        "lower-bound", {"program": PROGRAM, "depth": DEPTH}
                    ),
                    daemon.dispatch("measure", {"program": PROGRAM, "depth": DEPTH}),
                )

            bound, measured = asyncio.run(burst())
            assert daemon.counters.computations == 1
            assert daemon.counters.coalesced == 1
            assert (
                measured["probability"]
                == bound["job"]["result"]["probability"]
            )

    def test_stats_contract(self):
        """computations + job_cache_hits + coalesced == analysis requests."""
        with in_process_daemon() as daemon:

            async def burst():
                params = {"program": PROGRAM, "depth": DEPTH}
                await asyncio.gather(
                    *(daemon.dispatch("lower-bound", dict(params)) for _ in range(5))
                )
                # a sequential repeat after the burst: no store, so recomputed
                await daemon.dispatch("lower-bound", dict(params))

            asyncio.run(burst())
            counters = daemon.counters
            assert (
                counters.computations + counters.job_cache_hits + counters.coalesced
                == 6
            )


class TestSessions:
    def test_named_session_deepens_across_requests(self):
        with in_process_daemon() as daemon:
            first = dispatch(
                daemon,
                "lower-bound",
                {"program": PROGRAM, "session": "s1", "depth": 15},
            )
            assert first["depth"] == 15
            second = dispatch(
                daemon,
                "lower-bound",
                {"program": PROGRAM, "session": "s1", "depth": 25},
            )
            assert second["depth"] == 25
            assert second["session_max_steps"] == 25
            assert daemon.counters.computations == 2

    def test_session_budgets_are_non_decreasing(self):
        with in_process_daemon() as daemon:
            dispatch(
                daemon,
                "lower-bound",
                {"program": PROGRAM, "session": "s1", "depth": 25},
            )
            with pytest.raises(ProtocolError) as excinfo:
                dispatch(
                    daemon,
                    "lower-bound",
                    {"program": PROGRAM, "session": "s1", "depth": 10},
                )
            assert excinfo.value.code == protocol.INVALID_PARAMS
            assert "non-decreasing" in str(excinfo.value)

    def test_session_names_bind_to_one_program(self):
        with in_process_daemon() as daemon:
            dispatch(
                daemon,
                "lower-bound",
                {"program": PROGRAM, "session": "s1", "depth": 15},
            )
            with pytest.raises(ProtocolError) as excinfo:
                dispatch(
                    daemon,
                    "lower-bound",
                    {"program": "geo(1/3)", "session": "s1", "depth": 20},
                )
            assert excinfo.value.code == protocol.INVALID_PARAMS

    def test_sessions_appear_in_stats(self):
        with in_process_daemon() as daemon:
            dispatch(
                daemon,
                "lower-bound",
                {"program": PROGRAM, "session": "s1", "depth": 15},
            )
            stats = dispatch(daemon, "stats")
            assert stats["sessions"] == {
                "s1": {"program": PROGRAM, "max_steps": 15}
            }


class TestSessionEviction:
    def test_ttl_evicts_idle_sessions(self):
        """--session-ttl 0 reaps every idle session on the next request;
        the session the request touches is in use and survives."""
        with in_process_daemon(ReproConfig(session_ttl=0.0)) as daemon:
            dispatch(
                daemon,
                "lower-bound",
                {"program": PROGRAM, "session": "s1", "depth": 15},
            )
            dispatch(
                daemon,
                "lower-bound",
                {"program": PROGRAM, "session": "s2", "depth": 15},
            )
            stats = dispatch(daemon, "stats")
            assert sorted(stats["sessions"]) == ["s2"]
            assert stats["sessions_live"] == 1
            assert stats["sessions_evicted"] == 1
            assert daemon.counters.sessions_evicted == 1

    def test_capacity_evicts_least_recently_used(self):
        with in_process_daemon(ReproConfig(max_sessions=2)) as daemon:
            for name in ("s1", "s2", "s3"):
                dispatch(
                    daemon,
                    "lower-bound",
                    {"program": PROGRAM, "session": name, "depth": 15},
                )
            # s1 is the least recently touched; s2/s3 fill the cap of two.
            stats = dispatch(daemon, "stats")
            assert sorted(stats["sessions"]) == ["s2", "s3"]
            assert stats["sessions_evicted"] == 1

    def test_active_session_is_never_evicted(self):
        """A zero TTL must not reap the session being deepened right now --
        deepening keeps working across requests."""
        with in_process_daemon(ReproConfig(session_ttl=0.0)) as daemon:
            dispatch(
                daemon,
                "lower-bound",
                {"program": PROGRAM, "session": "s1", "depth": 15},
            )
            deeper = dispatch(
                daemon,
                "lower-bound",
                {"program": PROGRAM, "session": "s1", "depth": 25},
            )
            assert deeper["session_max_steps"] == 25
            assert daemon.counters.sessions_evicted == 0

    def test_eviction_emits_telemetry(self, tmp_path):
        from repro import telemetry

        trace = tmp_path / "trace.jsonl"
        telemetry.start(trace, command="test")
        try:
            with in_process_daemon(ReproConfig(max_sessions=1)) as daemon:
                for name in ("s1", "s2"):
                    dispatch(
                        daemon,
                        "lower-bound",
                        {"program": PROGRAM, "session": name, "depth": 15},
                    )
        finally:
            telemetry.stop()
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        evicted = [event for event in events if event.get("ev") == "session-evicted"]
        assert len(evicted) == 1
        assert evicted[0]["session"] == "s1"
        assert evicted[0]["reason"] == "capacity"
        assert evicted[0]["max_steps"] == 15


class TestSocketServer:
    def test_batch_of_identical_requests_coalesces(self, tmp_path):
        with running_daemon(tmp_path) as (socket_path, daemon):
            with ServiceClient(socket_path) as client:
                params = {"program": PROGRAM, "depth": DEPTH}
                responses = client.call_batch(
                    [{"method": "lower-bound", "params": dict(params)} for _ in range(8)]
                )
                stats = client.call("stats")
            assert len(responses) == 8
            assert {job_line(r) for r in responses} == {expected_job_line()}
            counters = stats["counters"]
            assert counters["computations"] == 1
            assert counters["coalesced"] == 7

    def test_eight_concurrent_clients_share_one_computation(self, tmp_path):
        config = ReproConfig(cache_dir=str(tmp_path / "cache"))
        with running_daemon(tmp_path, config=config) as (socket_path, daemon):
            results, errors = [], []

            def one_client():
                try:
                    with ServiceClient(socket_path) as client:
                        results.append(
                            client.call(
                                "lower-bound",
                                {"program": PROGRAM, "depth": DEPTH},
                            )
                        )
                except Exception as exc:  # surfaced below, with context
                    errors.append(exc)

            threads = [threading.Thread(target=one_client) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors
            assert len(results) == 8
            assert {job_line(r) for r in results} == {expected_job_line()}
            counters = daemon.counters
            # every request was computed once, served from the job store,
            # or joined the in-flight computation -- never computed twice
            assert counters.computations == 1
            assert counters.computations < counters.requests
            assert (
                counters.computations
                + counters.job_cache_hits
                + counters.coalesced
                == 8
            )

    def test_malformed_line_is_a_parse_error(self, tmp_path):
        with running_daemon(tmp_path) as (socket_path, _daemon):
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
                raw.connect(str(socket_path))
                raw.sendall(b"this is not json\n")
                reader = raw.makefile("rb")
                response = json.loads(reader.readline())
            assert response["error"]["code"] == protocol.PARSE_ERROR

    def test_unknown_method_over_the_wire(self, tmp_path):
        with running_daemon(tmp_path) as (socket_path, _daemon):
            with ServiceClient(socket_path) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.call("frobnicate")
            assert excinfo.value.code == protocol.METHOD_NOT_FOUND

    def test_socket_is_removed_on_shutdown(self, tmp_path):
        with running_daemon(tmp_path) as (socket_path, _daemon):
            assert socket_path.exists()
        assert not socket_path.exists()

    def test_warm_restart_serves_from_the_store(self, tmp_path):
        config = ReproConfig(cache_dir=str(tmp_path / "cache"))
        with running_daemon(tmp_path, config=config, name="first.sock") as (
            socket_path,
            _daemon,
        ):
            with ServiceClient(socket_path) as client:
                cold = client.call(
                    "lower-bound", {"program": PROGRAM, "depth": DEPTH}
                )
            assert not cold["cached"]
        with running_daemon(tmp_path, config=config, name="second.sock") as (
            socket_path,
            daemon,
        ):
            with ServiceClient(socket_path) as client:
                warm = client.call(
                    "lower-bound", {"program": PROGRAM, "depth": DEPTH}
                )
            assert warm["cached"]
            assert daemon.counters.computations == 0
            assert daemon.counters.job_cache_hits == 1
        assert job_line(warm) == job_line(cold) == expected_job_line()
