"""Tests for the AST verifier: execution trees, strategies, Papprox, verdicts."""

import math
from fractions import Fraction

import pytest

from repro.astcheck import (
    build_execution_tree,
    count_strategies,
    enumerate_strategies,
    min_probability_at_most,
    papprox_distribution,
    verify_ast,
)
from repro.astcheck.exectree import (
    ExecNondetBranch,
    ExecProbBranch,
    ExecutionTreeError,
    render_tree,
)
from repro.counting.pattern import counting_pattern_exact
from repro.programs import (
    geometric,
    golden_ratio,
    one_dim_random_walk,
    printer_affine,
    printer_nonaffine,
    running_example,
    running_example_first_class,
    table2_programs,
    three_print,
)
from repro.randomwalk.order import cumulative_dominates
from repro.spcf.syntax import App, Fix, If, Numeral, Sample, Score, Var


class TestExecutionTree:
    def test_running_example_tree_matches_fig_6a(self):
        tree = build_execution_tree(running_example(Fraction(3, 5)).fix)
        # Root: probabilistic branch on a0 - p.
        assert isinstance(tree.root, ExecProbBranch)
        # Failure branch: the Environment branch on a1 - sig((*)).
        failure = tree.root.else_child
        assert isinstance(failure, ExecNondetBranch)
        assert failure.guard.contains_argument()
        # Its left child is the fair probabilistic choice between 3 and 2 calls.
        tired = failure.then_child
        assert isinstance(tired, ExecProbBranch)
        assert tree.max_recursive_calls == 3
        assert tree.nondet_node_count == 1
        assert tree.prob_node_count == 2
        assert tree.leaf_count == 4

    def test_fig_6b_strategy_count(self):
        tree = build_execution_tree(running_example(Fraction(3, 5)).fix)
        assert count_strategies(tree) == 2
        resolved = list(enumerate_strategies(tree))
        assert len(resolved) == 2
        assert {r.choices for r in resolved} == {(True,), (False,)}

    def test_affine_programs_have_no_nondeterministic_nodes(self):
        tree = build_execution_tree(geometric(Fraction(1, 2)).fix)
        assert tree.nondet_node_count == 0
        assert tree.max_recursive_calls == 1
        assert count_strategies(tree) == 1

    def test_argument_dependent_guard_is_nondeterministic(self):
        tree = build_execution_tree(one_dim_random_walk(Fraction(1, 2), 1).fix)
        # The guard x <= 0 depends on the unknown argument.
        assert isinstance(tree.root, ExecNondetBranch)
        assert tree.max_recursive_calls == 1

    def test_diverging_body_raises(self):
        # mu phi x. (mu psi y. psi y) x -- the body diverges without recursing.
        inner = Fix("psi", "y", App(Var("psi"), Var("y")))
        fix = Fix("phi", "x", App(inner, Var("x")))
        with pytest.raises(ExecutionTreeError):
            build_execution_tree(fix, max_steps=200)

    def test_render_tree_mentions_environment_nodes(self):
        tree = build_execution_tree(running_example(Fraction(3, 5)).fix)
        rendering = render_tree(tree)
        assert "Environment" in rendering
        assert rendering.count("mu") >= 3


class TestPapprox:
    def test_min_probability_is_monotone_in_the_budget(self):
        tree = build_execution_tree(running_example_first_class(Fraction(13, 20)).fix)
        values = [min_probability_at_most(tree, budget) for budget in range(4)]
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert values[-1] == 1

    def test_papprox_of_the_running_example(self):
        tree = build_execution_tree(running_example(Fraction(3, 5)).fix)
        result = papprox_distribution(tree)
        assert result.exact
        assert result.distribution.as_dict() == {
            0: Fraction(3, 5),
            2: Fraction(1, 5),
            3: Fraction(1, 5),
        }

    def test_papprox_of_ex_5_15_matches_table_2(self):
        tree = build_execution_tree(running_example_first_class(Fraction(13, 20)).fix)
        result = papprox_distribution(tree)
        assert result.distribution.as_dict() == {
            0: Fraction(13, 20),
            2: Fraction(49, 800),
            3: Fraction(231, 800),
        }

    def test_papprox_is_below_the_counting_pattern(self):
        # Thm. 6.2: Papprox is cumulative-dominated by the counting pattern of
        # every actual argument.
        program = running_example(Fraction(3, 5))
        papprox = papprox_distribution(build_execution_tree(program.fix)).distribution
        for argument in (0, 1, 5, 20):
            pattern = counting_pattern_exact(program.fix, argument).distribution
            assert cumulative_dominates(papprox, pattern)


class TestVerifier:
    def test_table2_programs_are_verified_with_the_paper_distributions(self):
        expected = {
            "ex1.1-(1)(1/2)": {0: Fraction(1, 2), 1: Fraction(1, 2)},
            "ex1.1-(2)(1/2)": {0: Fraction(1, 2), 2: Fraction(1, 2)},
            "3print(2/3)": {0: Fraction(2, 3), 3: Fraction(1, 3)},
            "ex5.1(0.6)": {0: Fraction(3, 5), 2: Fraction(1, 5), 3: Fraction(1, 5)},
            "ex5.15(0.65)": {
                0: Fraction(13, 20),
                2: Fraction(49, 800),
                3: Fraction(231, 800),
            },
        }
        for name, program in table2_programs().items():
            result = verify_ast(program)
            assert result.verified, name
            assert result.papprox.as_dict() == expected[name], name

    def test_thresholds_of_the_printer_examples(self):
        assert verify_ast(printer_nonaffine(Fraction(1, 2))).verified
        assert not verify_ast(printer_nonaffine(Fraction(49, 100))).verified
        assert verify_ast(three_print(Fraction(2, 3))).verified
        assert not verify_ast(three_print(Fraction(3, 5))).verified

    def test_threshold_of_the_running_example_is_three_fifths(self):
        assert verify_ast(running_example(Fraction(3, 5))).verified
        assert not verify_ast(running_example(Fraction(59, 100))).verified

    def test_threshold_of_ex_5_15_is_sqrt7_minus_2(self):
        threshold = math.sqrt(7) - 2
        above = Fraction(13, 20)  # 0.65
        below = Fraction(16, 25)  # 0.64
        assert float(below) < threshold < float(above)
        assert verify_ast(running_example_first_class(above)).verified
        assert not verify_ast(running_example_first_class(below)).verified

    def test_affine_zero_one_law(self):
        assert verify_ast(printer_affine(Fraction(1, 1000))).verified
        assert verify_ast(geometric(Fraction(1, 10))).verified

    def test_golden_ratio_program_is_not_ast(self):
        result = verify_ast(golden_ratio())
        assert not result.verified
        assert result.papprox.expected_calls > 1

    def test_one_dim_random_walk_is_verified_despite_argument_guards(self):
        # The guard x <= 0 is resolved by the Environment; in the worst case
        # the walk never stops at 0, but each unfolding is still affine with a
        # coin flip, so Papprox = 1/2 d1 + 1/2 d1 = d1 ... which has drift 0.
        result = verify_ast(one_dim_random_walk(Fraction(1, 2), 1))
        assert result.verified
        result = verify_ast(one_dim_random_walk(Fraction(2, 5), 1))
        assert result.verified  # still rank 1: the functional zero-one law

    def test_verifier_rejects_star_dependent_guards(self):
        fix = Fix("phi", "x", If(App(Var("phi"), Var("x")), Numeral(0), Numeral(1)))
        result = verify_ast(fix)
        assert not result.verified
        assert not result.progress.ok

    def test_verifier_reports_score_mass_loss(self):
        # score(sample - 1) fails on almost every draw; the surviving mass is 0.
        fix = Fix(
            "phi",
            "x",
            If(Sample(), Var("x"), Score(Numeral(-1))),
        )
        result = verify_ast(fix)
        assert not result.verified

    def test_verifier_accepts_program_objects_and_fix_terms(self):
        program = printer_nonaffine(Fraction(1, 2))
        assert verify_ast(program).verified == verify_ast(program.fix).verified
        with pytest.raises(TypeError):
            verify_ast(program.applied)

    def test_summary_is_informative(self):
        summary = verify_ast(printer_nonaffine(Fraction(1, 2))).summary()
        assert "AST verified" in summary
        assert "d2" in summary
