"""Fault-injection coverage for the supervised batch execution layer.

Every test arms a seeded :class:`repro.batch.faults.FaultPlan` through the
``REPRO_FAULTS`` environment variable (inherited by worker processes) and
asserts the recovery the runner and the store promise: injected crashes,
hangs and corruptions must converge to the same bytes as an undisturbed
run -- or be loudly quarantined, never silently misread.
"""

import json
import logging
import threading

import pytest

from repro.batch import (
    BatchCache,
    Fault,
    FaultPlan,
    JobSpec,
    RetryPolicy,
    diagnose,
    run_batch,
    scan_results_jsonl,
    write_results_jsonl,
)
from repro.batch.cache import shard_prefix
from repro.batch.faults import ENV_VAR
from repro.cli import main
from repro.geometry.engine import MeasureEngine


def _specs():
    return [
        JobSpec(program="geo(1/2)", analysis="verify"),
        JobSpec(program="geo(1/3)", analysis="verify"),
        JobSpec(program="geo(1/5)", analysis="verify"),
    ]


def _jsonl(results) -> str:
    return "".join(result.to_json_line() + "\n" for result in results)


def _arm(monkeypatch, tmp_path, faults, seed=7):
    """Write a fault plan to disk and point ``REPRO_FAULTS`` at it."""
    plan = FaultPlan(faults, state_dir=tmp_path / "fault-state", seed=seed)
    path = plan.dump(tmp_path / "fault-plan.json")
    monkeypatch.setenv(ENV_VAR, str(path))
    return plan


_FAST_RETRIES = RetryPolicy(max_retries=2, backoff_seconds=0.01)


class TestWorkerFaults:
    """Injected process deaths and hangs against the supervised pool."""

    def test_worker_kill_is_retried_to_identical_output(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        reference = run_batch(_specs(), jobs=2)
        _arm(monkeypatch, tmp_path, [Fault(kind="worker-kill", job_index=0)])
        report = run_batch(_specs(), jobs=2, retry_policy=_FAST_RETRIES)
        assert all(result.ok for result in report.results)
        assert report.worker_restarts >= 1
        assert report.retries >= 1
        assert report.stats.worker_restarts == report.worker_restarts
        assert _jsonl(report.results) == _jsonl(reference.results)

    def test_worker_kill_preserves_completed_results_and_store(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(ENV_VAR, raising=False)
        cache_dir = tmp_path / "cache"
        # Kill the worker running the *last* job (single-worker pool, so the
        # first two jobs are complete when the pool dies).
        _arm(monkeypatch, tmp_path, [Fault(kind="worker-kill", job_index=2)])
        report = run_batch(
            _specs(),
            jobs=1,
            cache=BatchCache(cache_dir),
            job_timeout=30.0,
            retry_policy=_FAST_RETRIES,
        )
        assert all(result.ok for result in report.results)
        assert report.worker_restarts >= 1
        monkeypatch.delenv(ENV_VAR)
        # The crash lost neither the finished job results nor the measure
        # entries they exported: a warm rerun is all cache hits, no recompute.
        warm = run_batch(_specs(), jobs=1, cache=BatchCache(cache_dir))
        assert warm.cache_hits == len(_specs())
        assert _jsonl(warm.results) == _jsonl(report.results)
        store = BatchCache(cache_dir)
        assert store.measure_entry_count(MeasureEngine()) > 0

    def test_hang_trips_job_timeout_and_recovers(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        reference = run_batch(_specs(), jobs=1)
        _arm(
            monkeypatch,
            tmp_path,
            [Fault(kind="hang", job_index=1, seconds=30.0)],
        )
        report = run_batch(
            _specs(),
            jobs=1,
            job_timeout=1.0,
            retry_policy=_FAST_RETRIES,
        )
        assert all(result.ok for result in report.results)
        assert report.timeouts >= 1
        assert report.worker_restarts >= 1
        assert report.stats.timeouts == report.timeouts
        assert _jsonl(report.results) == _jsonl(reference.results)

    def test_persistent_hang_exhausts_retries_into_timeout_error(
        self, tmp_path, monkeypatch
    ):
        # The hang re-fires on every retry, so the job can never finish:
        # after max_retries the runner must surface a structured timeout.
        _arm(
            monkeypatch,
            tmp_path,
            [Fault(kind="hang", job_index=0, seconds=30.0, times=10)],
        )
        report = run_batch(
            [_specs()[0]],
            jobs=1,
            job_timeout=0.5,
            retry_policy=RetryPolicy(max_retries=1, backoff_seconds=0.01),
        )
        result = report.results[0]
        assert not result.ok
        assert result.error_kind == "timeout"
        assert "wall-clock" in result.error
        assert report.timeouts == 2  # the first attempt and its one retry
        assert report.retries == 1

    def test_deterministic_job_exception_is_not_retried(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        specs = [_specs()[0], JobSpec(program="((( broken", analysis="verify")]
        report = run_batch(specs, jobs=2, retry_policy=_FAST_RETRIES)
        broken = report.results[1]
        assert not broken.ok
        assert broken.error_kind == "job-exception"
        assert report.retries == 0
        assert report.worker_restarts == 0


class TestStoreFaults:
    """Torn writes and bit flips against the checksummed store."""

    def _populate(self, cache_dir):
        return run_batch([_specs()[0]], jobs=1, cache=BatchCache(cache_dir))

    def test_torn_shard_write_is_quarantined_not_silently_missed(
        self, tmp_path, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        _arm(monkeypatch, tmp_path, [Fault(kind="torn-write", match="measures-")])
        self._populate(cache_dir)
        monkeypatch.delenv(ENV_VAR)
        store = BatchCache(cache_dir)
        # Only one shard was torn (the fault fires once); its entries read
        # as misses, but never *silent* ones -- the file is set aside.
        store.load_measures(MeasureEngine())
        assert store.quarantine_count >= 1
        quarantined, reason = store.quarantined[0]
        assert quarantined.parent == store.quarantine_directory
        assert "measures-" in quarantined.name
        assert quarantined.with_name(quarantined.name + ".reason").exists()
        assert reason in ("corrupt-json", "checksum-mismatch", "missing-checksum")

    def test_quarantine_count_reaches_batch_report_and_stats(
        self, tmp_path, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        _arm(monkeypatch, tmp_path, [Fault(kind="torn-write", match="measures-")])
        self._populate(cache_dir)
        monkeypatch.delenv(ENV_VAR)
        report = run_batch(
            [_specs()[1]], jobs=1, cache=BatchCache(cache_dir)
        )
        assert report.quarantined_shards >= 1
        assert report.stats.quarantined_shards == report.quarantined_shards
        assert "quarantined files" in report.summary()

    def test_bit_flipped_shard_fails_its_checksum_and_doctor_names_it(
        self, tmp_path, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        _arm(monkeypatch, tmp_path, [Fault(kind="bit-flip", match="measures-")])
        self._populate(cache_dir)
        monkeypatch.delenv(ENV_VAR)
        flipped = [
            path
            for path in cache_dir.glob("measures-*.json")
            if diagnose(cache_dir).errors
        ]
        report = diagnose(cache_dir)
        assert not report.healthy
        assert report.exit_code == 1
        damaged = [finding for finding in report.errors]
        assert damaged, "the flipped shard must surface as an error finding"
        assert any(
            finding.path and "measures-" in finding.path for finding in damaged
        )
        named = [finding.path for finding in damaged if finding.path]
        assert any(name in report.summary() for name in named)
        assert flipped  # sanity: the flip actually landed on a shard

    def test_doctor_is_read_only_and_flags_quarantine_after_a_read(
        self, tmp_path, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        _arm(monkeypatch, tmp_path, [Fault(kind="bit-flip", match="measures-")])
        self._populate(cache_dir)
        monkeypatch.delenv(ENV_VAR)
        before = sorted(path.name for path in cache_dir.rglob("*"))
        diagnose(cache_dir)
        after = sorted(path.name for path in cache_dir.rglob("*"))
        assert before == after  # the doctor never mutates the store
        # A cache read quarantines the damage; the doctor then reports it.
        BatchCache(cache_dir).load_measures(MeasureEngine())
        report = diagnose(cache_dir)
        assert report.counts["quarantined"] >= 1
        assert any(finding.code == "quarantined" for finding in report.errors)
        assert report.exit_code == 1


class TestMergeDurability:
    """Write-ahead intents and lock contention on the shared store."""

    @staticmethod
    def _entry(value="1/2"):
        return [["F", value], True, False, "interval"]

    def test_orphaned_intent_is_replayed_by_the_next_merge(self, tmp_path):
        cache = BatchCache(tmp_path)
        engine = MeasureEngine()
        fingerprint = engine.registry_fingerprint()
        # Simulate a merge that died after journalling its intent but before
        # touching any shard: the intent file survives, unlocked.
        with pytest.raises(RuntimeError):
            with cache._intent(
                "measures", fingerprint, 1, {"crashed-key": self._entry("2/3")}, set()
            ):
                raise RuntimeError("killed mid-merge")
        assert list(tmp_path.glob("intent-*.json"))
        cache.merge_measures(engine, {"fresh-key": self._entry("1/5")})
        entries = cache.load_measures(engine)
        assert set(entries) == {"crashed-key", "fresh-key"}
        assert not list(tmp_path.glob("intent-*.json"))

    def test_orphaned_intent_is_replayed_by_prune(self, tmp_path):
        cache = BatchCache(tmp_path)
        engine = MeasureEngine()
        with pytest.raises(RuntimeError):
            with cache._intent(
                "sweeps", engine.registry_fingerprint(), 1, {"s-key": [0, 1]}, set()
            ):
                raise RuntimeError("killed mid-merge")
        cache.begin_run()
        cache.prune(min_age_runs=5)
        assert set(cache.load_sweeps(engine)) == {"s-key"}

    def test_doctor_reports_an_orphaned_intent_as_a_warning(self, tmp_path):
        cache = BatchCache(tmp_path)
        engine = MeasureEngine()
        with pytest.raises(RuntimeError):
            with cache._intent(
                "measures", engine.registry_fingerprint(), 1, {"k": self._entry()}, set()
            ):
                raise RuntimeError("killed mid-merge")
        report = diagnose(tmp_path)
        assert any(finding.code == "orphaned-intent" for finding in report.warnings)
        assert report.exit_code == 0  # auto-repaired states do not fail doctor

    def test_concurrent_merges_into_the_same_shard_lose_nothing(self, tmp_path):
        engine = MeasureEngine()
        # Brute-force a pile of keys that share one shard file.
        by_prefix = {}
        for index in range(4096):
            key = f"contended-key-{index}"
            by_prefix.setdefault(shard_prefix(key), []).append(key)
        prefix, keys = max(by_prefix.items(), key=lambda item: len(item[1]))
        assert len(keys) >= 8
        chunks = [keys[start::4] for start in range(4)]
        errors = []

        def merge(chunk):
            try:
                cache = BatchCache(tmp_path)
                for key in chunk:
                    cache.merge_measures(engine, {key: self._entry()})
            except Exception as exc:  # pragma: no cover - diagnostic only
                errors.append(exc)

        threads = [threading.Thread(target=merge, args=(chunk,)) for chunk in chunks]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        entries = BatchCache(tmp_path).load_measures(engine)
        assert set(keys) <= set(entries)
        assert not list(tmp_path.glob("intent-*.json"))


class TestResultsFileRobustness:
    """Crash-safe JSONL output and corrupt-line accounting."""

    def test_overwrite_failure_preserves_the_previous_results_file(self, tmp_path):
        path = tmp_path / "results.jsonl"
        report = run_batch([_specs()[0]], jobs=1)
        write_results_jsonl(path, report.results)
        before = path.read_bytes()

        def exploding():
            yield report.results[0]
            raise RuntimeError("crash mid-write")

        with pytest.raises(RuntimeError):
            write_results_jsonl(path, exploding())
        assert path.read_bytes() == before
        assert not list(tmp_path.glob("*.tmp"))

    def test_scan_counts_corrupt_lines_instead_of_dropping_them(self, tmp_path):
        path = tmp_path / "results.jsonl"
        report = run_batch(
            [_specs()[0], JobSpec(program="((( broken", analysis="verify")], jobs=1
        )
        write_results_jsonl(path, report.results)
        with open(path, "a") as stream:
            stream.write("{ torn line\n")
            stream.write('"not an object"\n')
        scan = scan_results_jsonl(path)
        assert scan.ok_keys == {report.results[0].key}
        assert scan.error_keys == {report.results[1].key}
        assert scan.corrupt_lines == 2
        assert scan.total_lines == 4

    def test_unkeyable_spec_is_logged_once_per_batch(self, tmp_path, caplog):
        spec = JobSpec(program="((( broken", analysis="verify")
        with caplog.at_level(logging.WARNING, logger="repro.batch"):
            run_batch([spec], jobs=1, cache=BatchCache(tmp_path / "cache"))
        warnings = [
            record
            for record in caplog.records
            if "no stable key" in record.getMessage()
        ]
        assert len(warnings) == 1
        assert "((( broken" in warnings[0].getMessage()


class TestCliAcceptance:
    """End-to-end: the CLI flags, ``--stats-json`` counters and doctor exits."""

    def _job_file(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(
            json.dumps(
                [
                    {"program": "geo(1/2)", "analysis": "verify"},
                    {"program": "geo(1/3)", "analysis": "verify"},
                    {"program": "geo(1/5)", "analysis": "verify"},
                ]
            )
        )
        return str(path)

    def test_injected_kill_and_hang_converge_to_identical_jsonl(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.delenv(ENV_VAR, raising=False)
        jobs = self._job_file(tmp_path)
        reference = tmp_path / "reference.jsonl"
        assert main(["batch", jobs, "--jobs", "1", "--output", str(reference)]) == 0
        # One single-worker pool: the kill hits job 0, the hang job 2, so the
        # two faults cannot shadow each other inside one doomed worker.
        _arm(
            monkeypatch,
            tmp_path,
            [
                Fault(kind="worker-kill", job_index=0),
                Fault(kind="hang", job_index=2, seconds=30.0),
            ],
        )
        injected = tmp_path / "injected.jsonl"
        stats_json = tmp_path / "stats.json"
        code = main(
            [
                "batch",
                jobs,
                "--jobs",
                "1",
                "--job-timeout",
                "1.5",
                "--retry-backoff",
                "0.01",
                "--output",
                str(injected),
                "--stats-json",
                str(stats_json),
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert injected.read_bytes() == reference.read_bytes()
        counters = json.loads(stats_json.read_text())["counters"]
        assert counters["worker_restarts"] >= 1
        assert counters["timeouts"] >= 1
        assert counters["retries"] >= 2

    def test_doctor_cli_exit_codes_and_json(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv(ENV_VAR, raising=False)
        cache_dir = tmp_path / "cache"
        assert (
            main(
                [
                    "batch",
                    self._job_file(tmp_path),
                    "--jobs",
                    "1",
                    "--cache-dir",
                    str(cache_dir),
                    "--output",
                    str(tmp_path / "out.jsonl"),
                ]
            )
            == 0
        )
        report_json = tmp_path / "doctor.json"
        assert (
            main(
                ["doctor", "--cache-dir", str(cache_dir), "--json", str(report_json)]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "healthy" in output
        document = json.loads(report_json.read_text())
        assert document["healthy"] is True
        # Flip one bit in one shard: doctor must now fail and name the file.
        shard = sorted(cache_dir.glob("measures-*.json"))[0]
        data = bytearray(shard.read_bytes())
        data[len(data) // 2] ^= 0x04
        shard.write_bytes(bytes(data))
        assert main(["doctor", "--cache-dir", str(cache_dir)]) == 1
        output = capsys.readouterr().out
        assert shard.name in output
        assert "PROBLEMS FOUND" in output
