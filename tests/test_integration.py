"""End-to-end integration tests tying the analyses together.

Each test exercises several packages at once, mirroring how a user of the
library (or the paper's evaluation) would combine them: lower bounds versus
Monte-Carlo ground truth, the verifier versus the counting corollary, and the
sugar/parser round trip into the analyses.
"""

from fractions import Fraction


from repro import (
    estimate_termination,
    lower_bound,
    parse,
    verify_ast,
    verify_ast_by_corollary,
)
from repro.astcheck import build_execution_tree, papprox_distribution
from repro.counting import counting_pattern_exact
from repro.programs import (
    printer_nonaffine,
    running_example,
    table1_programs,
    table2_programs,
)
from repro.randomwalk import termination_probability
from repro.randomwalk.order import cumulative_dominates
from repro.semantics import CbNMachine
from repro.typesystem import infer_set_type


class TestSoundnessAcrossAnalyses:
    def test_lower_bounds_are_sound_for_every_table1_program(self):
        for name, program in table1_programs().items():
            if name == "pedestrian":
                depth = 30
            elif name.startswith("1dRW"):
                depth = 50
            else:
                depth = 45
            bound = lower_bound(program.applied, max_steps=depth, strategy=program.strategy)
            assert 0 <= bound.probability <= 1, name
            if program.known_probability is not None:
                assert float(bound.probability) <= program.known_probability + 1e-9, name

    def test_verifier_and_corollary_agree_when_both_apply(self):
        # Whenever Cor. 5.13 verifies a program, the strategy-based verifier
        # must verify it too (it is at least as strong, Thm. 5.9 vs Cor. 5.13).
        for probability in (Fraction(1, 2), Fraction(3, 5), Fraction(3, 4)):
            program = printer_nonaffine(probability)
            corollary = verify_ast_by_corollary(program.fix, arguments=(0, 1))
            verifier = verify_ast(program)
            if corollary.verified:
                assert verifier.verified

    def test_verifier_is_strictly_stronger_on_the_running_example(self):
        program = running_example(Fraction(3, 5))
        corollary = verify_ast_by_corollary(program.fix, arguments=(0, 1, 5))
        verifier = verify_ast(program)
        assert verifier.verified and not corollary.verified

    def test_verified_programs_really_terminate_empirically(self):
        # The Table 2 programs at their critical parameters have heavy-tailed
        # run lengths; a moderate step cap keeps the estimate cheap and only
        # biases it downwards, which the > 0.9 threshold tolerates.
        for name, program in table2_programs().items():
            result = verify_ast(program)
            assert result.verified, name
            estimate = estimate_termination(program.applied, runs=300, max_steps=2_500)
            assert estimate.probability > 0.9, name

    def test_papprox_dominates_counting_patterns_and_drives_an_ast_walk(self):
        program = running_example(Fraction(7, 10))
        papprox = papprox_distribution(build_execution_tree(program.fix)).distribution
        pattern = counting_pattern_exact(program.fix, 4).distribution
        assert cumulative_dominates(papprox, pattern)
        assert papprox.is_ast()
        assert termination_probability(papprox.shifted(), start=1, steps=200) > Fraction(3, 4)

    def test_typesystem_engine_and_sampler_line_up(self):
        program = printer_nonaffine(Fraction(1, 2))
        typed = infer_set_type(program.applied, max_steps=45, sweep_depth=8)
        engine = lower_bound(program.applied, max_steps=45)
        sampled = estimate_termination(
            program.applied, runs=300, max_steps=4_000, machine=CbNMachine()
        )
        assert typed.weight <= engine.probability
        assert float(engine.probability) <= sampled.probability + 4 * sampled.stderr + 0.02


class TestSurfaceSyntaxWorkflow:
    def test_a_program_written_in_surface_syntax_goes_through_every_analysis(self):
        source = "mu phi x. if sample - 3/5 then x else phi (phi (x + 1))"
        fix = parse(source)
        applied = parse(f"({source}) 1")
        verification = verify_ast(fix)
        assert verification.verified
        assert verification.papprox.as_dict() == {0: Fraction(3, 5), 2: Fraction(2, 5)}
        bound = lower_bound(applied, max_steps=50)
        estimate = estimate_termination(applied, runs=800)
        assert 0.8 < float(bound.probability) <= estimate.probability + 0.05

    def test_a_non_ast_variant_is_rejected_and_its_limit_is_visible(self):
        source = "mu phi x. if sample - 1/4 then x else phi (phi (x + 1))"
        fix = parse(source)
        applied = parse(f"({source}) 1")
        assert not verify_ast(fix).verified
        bound = lower_bound(applied, max_steps=60)
        # Pterm = 1/3: the certified bound approaches but never exceeds it.
        assert Fraction(1, 4) < bound.probability < Fraction(1, 3)
