"""Tests for the SQLite store backend: parity with the JSON shards,
quarantine semantics, GC, migration round-trips, backend discovery."""

import json
import sqlite3

import pytest

from repro.batch import JobSpec, migrate_store, open_store, run_batch, run_job
from repro.batch.cache import BatchCache
from repro.batch.store_sqlite import SqliteStore, sqlite_store_path
from repro.geometry.engine import MeasureEngine


def warm_engine(depth=12):
    engine = MeasureEngine()
    spec = JobSpec(program="geo(1/2)", analysis="lower-bound", params={"depth": depth})
    result = run_job(spec, engine)
    assert result.ok
    return engine, spec, result


def populated_json_cache(tmp_path, depth=12):
    cache = BatchCache(tmp_path)
    engine, spec, result = warm_engine(depth)
    run = cache.begin_run()
    cache.store_job(result)
    cache.merge_measures(engine, engine.export_cache_entries(), run=run)
    cache.merge_sweeps(engine, engine.export_sweep_entries(), run=run)
    return cache, spec, result


class TestOpenStore:
    def test_fresh_directory_defaults_to_json(self, tmp_path):
        assert isinstance(open_store(tmp_path), BatchCache)

    def test_auto_picks_sqlite_once_the_database_exists(self, tmp_path):
        SqliteStore(tmp_path)
        assert sqlite_store_path(tmp_path).exists()
        assert isinstance(open_store(tmp_path), SqliteStore)

    def test_explicit_backends(self, tmp_path):
        assert isinstance(open_store(tmp_path, backend="sqlite"), SqliteStore)
        assert isinstance(open_store(tmp_path, backend="json"), BatchCache)
        with pytest.raises(ValueError):
            open_store(tmp_path, backend="postgres")


class TestSqliteStoreParity:
    """The shard-store behaviours, mirrored on the database backend."""

    def test_job_round_trip(self, tmp_path):
        store = SqliteStore(tmp_path)
        _engine, spec, result = warm_engine()
        store.store_job(result)
        loaded = store.load_job(spec.key())
        assert loaded is not None
        assert loaded.to_json_line() == result.to_json_line()
        assert loaded.cached

    def test_error_results_are_not_cached(self, tmp_path):
        store = SqliteStore(tmp_path)
        engine = MeasureEngine()
        bad = run_job(JobSpec(program="mu phi x. (", analysis="verify"), engine)
        assert not bad.ok
        store.store_job(bad)
        assert store.job_count() == 0

    def test_measure_merge_and_load_round_trip(self, tmp_path):
        store = SqliteStore(tmp_path)
        engine, _spec, _result = warm_engine()
        entries = engine.export_cache_entries()
        assert entries
        written = store.merge_measures(engine, entries, run=store.begin_run())
        assert written == len(entries)
        fresh = MeasureEngine()
        assert store.load_measures(fresh) == entries

    def test_fingerprint_isolation(self, tmp_path):
        store = SqliteStore(tmp_path)
        engine, _spec, _result = warm_engine()
        entries = engine.export_cache_entries()
        store.merge_measures(engine, entries, run=1)
        store.import_entries(
            "measures", "other-fingerprint", {"bogus-key": ["bogus"]}, touched={}
        )
        fresh = MeasureEngine()
        assert len(store.load_measures(fresh)) == len(entries)

    def test_damaged_row_reads_as_miss_and_is_quarantined(self, tmp_path):
        store = SqliteStore(tmp_path)
        _engine, spec, result = warm_engine()
        store.store_job(result)
        with store._connection:
            store._connection.execute(
                "UPDATE jobs SET document = ? WHERE key = ?",
                ('{"version": 2, "torn', spec.key()),
            )
        assert store.load_job(spec.key()) is None
        rows = store.quarantine_rows()
        assert [(origin, reason) for origin, _key, reason in rows] == [
            ("jobs", "corrupt-json")
        ]

    def test_one_damaged_entry_does_not_hide_the_others(self, tmp_path):
        store = SqliteStore(tmp_path)
        engine, _spec, _result = warm_engine()
        entries = engine.export_cache_entries()
        assert len(entries) >= 2
        store.merge_measures(engine, entries, run=1)
        victim = store._connection.execute(
            "SELECT key FROM entries WHERE kind = 'measures' LIMIT 1"
        ).fetchone()[0]
        with store._connection:
            store._connection.execute(
                "UPDATE entries SET document = 'not json' WHERE key = ?", (victim,)
            )
        fresh = MeasureEngine()
        assert len(store.load_measures(fresh)) == len(entries) - 1
        assert store.quarantine_count == 1

    def test_checksum_mismatch_is_caught(self, tmp_path):
        store = SqliteStore(tmp_path)
        _engine, spec, result = warm_engine()
        store.store_job(result)
        row = store._connection.execute(
            "SELECT document FROM jobs WHERE key = ?", (spec.key(),)
        ).fetchone()[0]
        document = json.loads(row)
        document["result"]["status"] = "tampered"
        with store._connection:
            store._connection.execute(
                "UPDATE jobs SET document = ? WHERE key = ?",
                (json.dumps(document), spec.key()),
            )
        assert store.load_job(spec.key()) is None
        assert any(
            reason == "checksum-mismatch"
            for _o, _k, reason in store.quarantine_rows()
        )

    def test_prune_drops_only_stale_entries(self, tmp_path):
        store = SqliteStore(tmp_path)
        engine, _spec, _result = warm_engine()
        entries = engine.export_cache_entries()
        store.merge_measures(engine, entries, run=1)
        store.set_run_counter(10)
        report = store.prune(min_age_runs=3)
        assert report.pruned.get("measures") == len(entries)
        # freshly touched entries survive the same cutoff
        store.merge_measures(engine, entries, run=store.run_counter())
        report = store.prune(min_age_runs=3)
        assert report.pruned.get("measures", 0) == 0
        assert report.kept.get("measures") == len(entries)

    def test_touch_refresh_protects_persistent_hits(self, tmp_path):
        store = SqliteStore(tmp_path)
        engine, _spec, _result = warm_engine()
        entries = engine.export_cache_entries()
        store.merge_measures(engine, entries, run=1)
        touched = set(entries)
        store.set_run_counter(9)
        store.merge_measures(engine, {}, run=9, touched_keys=touched)
        report = store.prune(min_age_runs=3)
        assert report.pruned.get("measures", 0) == 0

    def test_integrity_check_is_clean(self, tmp_path):
        store = SqliteStore(tmp_path)
        assert store.integrity_check() is None

    def test_concurrent_connections_share_the_database(self, tmp_path):
        first = SqliteStore(tmp_path)
        second = SqliteStore(tmp_path)
        _engine, _spec, result = warm_engine()
        first.store_job(result)
        assert second.load_job(result.key) is not None


class TestMigration:
    def test_round_trip_preserves_persistent_hits(self, tmp_path):
        cache, spec, result = populated_json_cache(tmp_path)
        json_entries = cache.load_measures(MeasureEngine())
        report = migrate_store(tmp_path)
        assert report.jobs == 1
        assert report.entries.get("measures") == len(json_entries)
        store = open_store(tmp_path)
        assert isinstance(store, SqliteStore)
        # identical job hit, byte for byte
        migrated = store.load_job(spec.key())
        assert migrated is not None
        assert migrated.to_json_line() == result.to_json_line()
        # identical measure entries
        assert store.load_measures(MeasureEngine()) == json_entries

    def test_migration_removes_json_files_by_default(self, tmp_path):
        populated_json_cache(tmp_path)
        migrate_store(tmp_path)
        assert not list(tmp_path.glob("measures-*.json"))
        assert not (tmp_path / "jobs").exists()
        assert not (tmp_path / "meta.json").exists()

    def test_keep_json_leaves_the_shards(self, tmp_path):
        populated_json_cache(tmp_path)
        report = migrate_store(tmp_path, keep_json=True)
        assert report.kept_json
        assert list(tmp_path.glob("measures-*.json"))
        assert sqlite_store_path(tmp_path).exists()

    def test_migration_is_idempotent(self, tmp_path):
        populated_json_cache(tmp_path)
        first = migrate_store(tmp_path)
        second = migrate_store(tmp_path)
        assert second.jobs == 0
        assert first.run_counter == second.run_counter

    def test_migration_preserves_run_counter_and_touch_stamps(self, tmp_path):
        cache, _spec, _result = populated_json_cache(tmp_path)
        for _ in range(4):
            cache.begin_run()
        migrate_store(tmp_path)
        store = SqliteStore(tmp_path)
        assert store.run_counter() == 5
        # entries were touched at run 1, so a 3-run cutoff prunes them
        report = store.prune(min_age_runs=3)
        assert report.pruned.get("measures", 0) > 0

    def test_damaged_job_files_are_skipped_and_counted(self, tmp_path):
        cache, spec, _result = populated_json_cache(tmp_path)
        (cache.jobs_directory / f"{spec.key()}.json").write_text("{torn")
        report = migrate_store(tmp_path)
        assert report.skipped_jobs == 1
        assert report.jobs == 0


class TestWarmReruns:
    def test_migrated_store_serves_a_batch_with_zero_recomputation(self, tmp_path):
        from repro.batch import table1_suite

        specs = table1_suite(depth=12)
        cold = run_batch(specs, cache=open_store(tmp_path))
        migrate_store(tmp_path)
        store = open_store(tmp_path)
        assert isinstance(store, SqliteStore)
        warm_engine_ = MeasureEngine()
        warm = run_batch(specs, cache=store, engine=warm_engine_)
        assert [r.to_json_line() for r in warm.results] == [
            r.to_json_line() for r in cold.results
        ]
        assert all(result.cached for result in warm.results)
        assert warm_engine_.stats.measure_requests == 0


class TestDoctorAndPruneDiscovery:
    def test_doctor_reports_cleanly_on_a_migrated_directory(self, tmp_path):
        from repro.batch.doctor import diagnose

        populated_json_cache(tmp_path)
        migrate_store(tmp_path)
        report = diagnose(tmp_path)
        assert report.exit_code == 0
        assert report.counts["job_files"] == 1
        assert report.counts["measures_entries"] > 0

    def test_doctor_flags_database_damage(self, tmp_path):
        from repro.batch.doctor import diagnose

        populated_json_cache(tmp_path)
        migrate_store(tmp_path)
        store = SqliteStore(tmp_path)
        with store._connection:
            store._connection.execute("UPDATE jobs SET document = 'garbage'")
        store._connection.close()
        report = diagnose(tmp_path)
        assert report.exit_code == 1
        assert any(f.code == "corrupt-json" for f in report.errors)

    def test_doctor_flags_quarantined_rows(self, tmp_path):
        from repro.batch.doctor import diagnose

        store = SqliteStore(tmp_path)
        _engine, spec, result = warm_engine()
        store.store_job(result)
        with store._connection:
            store._connection.execute("UPDATE jobs SET document = 'garbage'")
        assert store.load_job(spec.key()) is None  # quarantines
        report = diagnose(tmp_path)
        assert report.exit_code == 1
        assert any(f.code == "quarantined" for f in report.errors)

    def test_cli_prune_works_on_a_migrated_directory(self, tmp_path, capsys):
        from repro.cli import main

        populated_json_cache(tmp_path)
        migrate_store(tmp_path)
        exit_code = main(
            ["batch", "prune", "--cache-dir", str(tmp_path), "--keep-runs", "5"]
        )
        assert exit_code == 0
        assert "pruned the persistent store" in capsys.readouterr().out

    def test_store_flag_forces_a_backend(self, tmp_path):
        from repro.config import ReproConfig

        SqliteStore(tmp_path)
        config = ReproConfig(cache_dir=str(tmp_path), store_backend="json")
        assert isinstance(config.open_store(), BatchCache)
        config = ReproConfig(cache_dir=str(tmp_path), store_backend="auto")
        assert isinstance(config.open_store(), SqliteStore)


class TestReadOnlyTolerance:
    def test_quarantine_tolerates_read_only_database(self, tmp_path):
        store = SqliteStore(tmp_path)
        _engine, spec, result = warm_engine()
        store.store_job(result)
        with store._connection:
            store._connection.execute("UPDATE jobs SET document = 'garbage'")
        store._connection.close()
        readonly = sqlite3.connect(
            f"file:{sqlite_store_path(tmp_path)}?mode=ro", uri=True
        )
        try:
            fresh = SqliteStore(tmp_path)
            fresh._connection.close()
            fresh._connection = readonly
            assert fresh.load_job(spec.key()) is None
        finally:
            readonly.close()
