"""Tests for the batch subsystem: jobs, runner, persistent cache, CLI."""

import json

import pytest

from repro.batch import (
    BatchCache,
    JobSpec,
    read_result_keys,
    run_batch,
    run_job,
    table1_suite,
    table2_suite,
    write_results_jsonl,
)
from repro.batch.cache import CACHE_VERSION, shard_prefix
from repro.batch.jobs import decode_number, encode_number
from repro.cli import main
from repro.geometry.engine import MeasureEngine
from repro.lowerbound.engine import LowerBoundEngine
from repro.programs import resolve_program


def small_suite():
    """A fast batch covering two analysis kinds."""
    return table1_suite(depth=15) + table2_suite()


def jsonl_lines(results):
    return [result.to_json_line() for result in results]


class TestJobSpec:
    def test_key_is_stable_and_parameter_sensitive(self):
        spec = JobSpec(program="geo(1/2)", analysis="lower-bound", params={"depth": 10})
        assert spec.key() == spec.key()
        deeper = JobSpec(program="geo(1/2)", analysis="lower-bound", params={"depth": 11})
        assert spec.key() != deeper.key()

    def test_key_depends_on_the_resolved_program_not_the_reference(self):
        by_name = JobSpec(program="geo(1/2)", analysis="verify")
        other = JobSpec(program="geo(1/5)", analysis="verify")
        assert by_name.key() != other.key()

    def test_cost_hint_does_not_change_the_key(self):
        cheap = JobSpec(program="geo(1/2)", analysis="verify", cost_hint=1.0)
        dear = JobSpec(program="geo(1/2)", analysis="verify", cost_hint=99.0)
        assert cheap.key() == dear.key()

    def test_unknown_analysis_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(program="geo(1/2)", analysis="frobnicate")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(program="geo(1/2)", analysis="verify", params={"depth": 3})

    def test_seed_is_part_of_the_estimate_key(self):
        base = JobSpec(program="geo(1/2)", analysis="estimate", params={"seed": 0})
        reseeded = JobSpec(program="geo(1/2)", analysis="estimate", params={"seed": 1})
        assert base.key() != reseeded.key()

    def test_number_codec_round_trips_exactly(self):
        from fractions import Fraction

        for value in (Fraction(3, 7), Fraction(-1, 2), 0.1, 1e-300, Fraction(5)):
            assert decode_number(encode_number(value)) == value
        assert encode_number(None) is None and decode_number(None) is None


class TestRunJob:
    def test_lower_bound_payload_matches_direct_engine(self):
        program = resolve_program("geo(1/2)")
        direct = LowerBoundEngine(strategy=program.strategy).lower_bound(
            program.applied, max_steps=15, max_paths=100_000
        )
        result = run_job(
            JobSpec(program="geo(1/2)", analysis="lower-bound", params={"depth": 15})
        )
        assert result.ok
        assert decode_number(result.payload["probability"]) == direct.probability
        assert result.payload["path_count"] == direct.path_count

    def test_crashing_job_yields_structured_error(self):
        result = run_job(JobSpec(program="mu phi x. (((", analysis="verify"))
        assert result.status == "error"
        assert result.error
        assert result.payload is None


class TestRunBatch:
    def test_same_batch_twice_is_bit_identical_with_high_hit_rate(self, tmp_path):
        cache = BatchCache(tmp_path / "cache")
        specs = small_suite()
        first = run_batch(specs, jobs=1, cache=cache)
        second = run_batch(specs, jobs=1, cache=cache)
        assert jsonl_lines(first.results) == jsonl_lines(second.results)
        assert all(result.ok for result in second.results)
        assert second.cache_hits / len(specs) >= 0.9
        out_a, out_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_results_jsonl(out_a, first.results)
        write_results_jsonl(out_b, second.results)
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_parallel_results_equal_serial_results(self, tmp_path):
        specs = table2_suite()
        serial = run_batch(specs, jobs=1)
        parallel = run_batch(specs, jobs=2)
        assert jsonl_lines(serial.results) == jsonl_lines(parallel.results)

    def test_results_preserve_submission_order(self):
        specs = list(reversed(table2_suite()))
        report = run_batch(specs, jobs=1)
        assert [r.spec.program for r in report.results] == [s.program for s in specs]

    def test_error_jobs_do_not_kill_the_batch_and_are_not_cached(self, tmp_path):
        cache = BatchCache(tmp_path)
        specs = [
            JobSpec(program="geo(1/2)", analysis="verify"),
            JobSpec(program="this is ((( not a program", analysis="verify"),
        ]
        first = run_batch(specs, jobs=1, cache=cache)
        assert first.results[0].ok
        assert first.results[1].status == "error"
        second = run_batch(specs, jobs=1, cache=cache)
        assert second.cache_hits == 1  # the error was recomputed, not replayed
        assert jsonl_lines(first.results) == jsonl_lines(second.results)

    def test_sibling_workers_reuse_the_persistent_measure_cache(self, tmp_path):
        cache = BatchCache(tmp_path)
        run_batch(table2_suite(), jobs=1, cache=cache)
        from repro.batch.suites import classify_suite

        report = run_batch(classify_suite(), jobs=1, cache=cache)
        assert report.stats.persistent_hits > 0

    def test_resume_helpers_round_trip(self, tmp_path):
        specs = table2_suite()
        report = run_batch(specs, jobs=1)
        path = tmp_path / "results.jsonl"
        write_results_jsonl(path, report.results)
        assert read_result_keys(path) == {result.key for result in report.results}

    def test_resume_retries_recorded_failures(self, tmp_path):
        specs = [
            JobSpec(program="geo(1/2)", analysis="verify"),
            JobSpec(program="((( broken", analysis="verify"),
        ]
        report = run_batch(specs, jobs=1)
        path = tmp_path / "results.jsonl"
        write_results_jsonl(path, report.results)
        # only the successful job counts as done; the error must be retried
        assert read_result_keys(path) == {report.results[0].key}

    def test_concurrent_measure_merges_do_not_lose_entries(self, tmp_path):
        cache = BatchCache(tmp_path)
        engine = MeasureEngine()
        cache.merge_measures(engine, {"key-a": [["F", "1/2"], True, False, "interval"]})
        cache.merge_measures(engine, {"key-b": [["F", "1/3"], True, False, "interval"]})
        entries = cache.load_measures(engine)
        assert set(entries) == {"key-a", "key-b"}


class TestBatchCacheRobustness:
    def test_corrupted_job_file_is_discarded_gracefully(self, tmp_path):
        cache = BatchCache(tmp_path)
        spec = JobSpec(program="geo(1/2)", analysis="verify")
        first = run_batch([spec], jobs=1, cache=cache)
        key = first.results[0].key
        (cache.jobs_directory / f"{key}.json").write_text("{ truncated garbage")
        assert cache.load_job(key) is None
        second = run_batch([spec], jobs=1, cache=cache)
        assert second.results[0].ok
        assert jsonl_lines(first.results) == jsonl_lines(second.results)

    def test_version_mismatched_job_file_is_discarded(self, tmp_path):
        cache = BatchCache(tmp_path)
        spec = JobSpec(program="geo(1/2)", analysis="verify")
        result = run_batch([spec], jobs=1, cache=cache).results[0]
        path = cache.jobs_directory / f"{result.key}.json"
        document = json.loads(path.read_text())
        document["version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(document))
        assert cache.load_job(result.key) is None

    def test_corrupted_shards_read_as_misses(self, tmp_path):
        cache = BatchCache(tmp_path)
        run_batch([JobSpec(program="geo(1/2)", analysis="verify")], jobs=1, cache=cache)
        shards = sorted(tmp_path.glob("measures-*.json"))
        assert shards, "a batch with a cache directory must persist measure shards"
        for shard in shards:
            shard.write_text("\x00\x01 not json")
        assert cache.load_measures(MeasureEngine()) == {}
        # and a batch over the damaged cache still succeeds
        report = run_batch(
            [JobSpec(program="geo(1/5)", analysis="verify")], jobs=1, cache=cache
        )
        assert report.results[0].ok

    def test_one_corrupt_shard_does_not_hide_the_others(self, tmp_path):
        cache = BatchCache(tmp_path)
        engine = MeasureEngine()
        entries = {
            "key-a": [["F", "1/2"], True, False, "interval"],
            "key-b": [["F", "1/3"], True, False, "interval"],
        }
        cache.merge_measures(engine, entries)
        assert shard_prefix("key-a") != shard_prefix("key-b")
        cache.shard_path(shard_prefix("key-a")).write_text("{ truncated garbage")
        survivors = cache.load_measures(engine)
        assert set(survivors) == {"key-b"}

    def test_fingerprint_mismatched_measures_are_ignored(self, tmp_path):
        cache = BatchCache(tmp_path)
        engine = MeasureEngine()
        run_batch([JobSpec(program="geo(1/2)", analysis="verify")], jobs=1, cache=cache)
        for shard in tmp_path.glob("measures-*.json"):
            document = json.loads(shard.read_text())
            document["fingerprint"] = "someone-else's-primitives"
            shard.write_text(json.dumps(document))
        assert cache.load_measures(engine) == {}


class TestMeasureShards:
    """The sharded persistent measure store and its legacy migration."""

    @staticmethod
    def _entry(value="1/2"):
        return [["F", value], True, False, "interval"]

    def test_entries_land_in_their_key_shard(self, tmp_path):
        cache = BatchCache(tmp_path)
        engine = MeasureEngine()
        cache.merge_measures(engine, {"some-key": self._entry()})
        shard = cache.shard_path(shard_prefix("some-key"))
        assert shard.exists()
        document = json.loads(shard.read_text())
        assert document["version"] == CACHE_VERSION
        assert set(document["entries"]) == {"some-key"}
        assert not cache.measures_path.exists()

    def test_concurrent_merges_into_distinct_shards(self, tmp_path):
        import threading

        cache = BatchCache(tmp_path)
        engine = MeasureEngine()
        # 32 distinct keys, merged from 8 threads through 8 independent
        # BatchCache instances over one directory: nothing may be lost.
        batches = [
            {f"key-{worker}-{index}": self._entry(f"1/{worker + index + 2}")
             for index in range(4)}
            for worker in range(8)
        ]
        errors = []

        def merge(batch):
            try:
                BatchCache(tmp_path).merge_measures(MeasureEngine(), batch)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=merge, args=(batch,)) for batch in batches]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        merged = cache.load_measures(engine)
        expected = {key for batch in batches for key in batch}
        assert set(merged) == expected
        assert len(list(tmp_path.glob("measures-*.json"))) >= 2

    def test_legacy_single_file_is_read_transparently(self, tmp_path):
        cache = BatchCache(tmp_path)
        engine = MeasureEngine()
        legacy = {"legacy-key": self._entry("2/3")}
        cache.measures_path.write_text(
            json.dumps(
                {
                    "version": 1,  # the pre-checksum legacy envelope
                    "fingerprint": engine.registry_fingerprint(),
                    "entries": legacy,
                }
            )
        )
        assert cache.load_measures(engine) == legacy

    def test_legacy_file_is_migrated_into_shards_on_first_merge(self, tmp_path):
        cache = BatchCache(tmp_path)
        engine = MeasureEngine()
        cache.measures_path.write_text(
            json.dumps(
                {
                    "version": 1,  # the pre-checksum legacy envelope
                    "fingerprint": engine.registry_fingerprint(),
                    "entries": {"legacy-key": self._entry("2/3")},
                }
            )
        )
        count = cache.merge_measures(engine, {"fresh-key": self._entry("1/5")})
        assert count == 2
        assert not cache.measures_path.exists()
        merged = cache.load_measures(engine)
        assert set(merged) == {"legacy-key", "fresh-key"}
        legacy_shard = json.loads(
            cache.shard_path(shard_prefix("legacy-key")).read_text()
        )
        assert "legacy-key" in legacy_shard["entries"]

    def test_fresh_entry_wins_over_equal_legacy_key(self, tmp_path):
        cache = BatchCache(tmp_path)
        engine = MeasureEngine()
        cache.measures_path.write_text(
            json.dumps(
                {
                    "version": 1,  # the pre-checksum legacy envelope
                    "fingerprint": engine.registry_fingerprint(),
                    "entries": {"shared-key": self._entry("2/3")},
                }
            )
        )
        cache.merge_measures(engine, {"shared-key": self._entry("1/5")})
        assert cache.load_measures(engine)["shared-key"] == self._entry("1/5")

    def test_pr2_format_cache_directory_still_warms_an_engine(self, tmp_path):
        """A directory written by the PR 2 layout (jobs/ + measures.json)."""
        from repro.astcheck import verify_ast

        program = resolve_program("ex1.1-(2)(1/2)")
        cold = MeasureEngine()
        verify_ast(program, engine=cold)
        cache = BatchCache(tmp_path)
        # Simulate the old layout: all entries in one measures.json.
        cache.measures_path.write_text(
            json.dumps(
                {
                    "version": 1,  # the pre-checksum legacy envelope
                    "fingerprint": cold.registry_fingerprint(),
                    "entries": cold.export_cache_entries(),
                }
            )
        )
        warm = MeasureEngine()
        warm.import_cache_entries(cache.load_measures(warm))
        verify_ast(program, engine=warm)
        assert warm.stats.persistent_hits > 0
        assert warm.stats.measure_calls < cold.stats.measure_calls


class TestMeasureEnginePersistence:
    def test_export_import_round_trip_hits_and_is_bit_identical(self):
        from repro.astcheck import verify_ast

        program = resolve_program("ex1.1-(2)(1/2)")
        cold = MeasureEngine()
        cold_result = verify_ast(program, engine=cold)
        entries = cold.export_cache_entries()
        assert entries

        warm = MeasureEngine()
        assert warm.import_cache_entries(entries) == len(entries)
        warm_result = verify_ast(program, engine=warm)
        assert warm.stats.persistent_hits > 0
        assert warm.stats.measure_calls < cold.stats.measure_calls
        assert repr(warm_result.papprox) == repr(cold_result.papprox)
        assert warm_result.verified == cold_result.verified

    def test_malformed_entries_are_skipped_on_import(self):
        engine = MeasureEngine()
        count = engine.import_cache_entries(
            {"good-looking-key": ["not", "a", "valid", "entry", "shape"], "short": [1]}
        )
        assert count == 0


class TestScheduleJobs:
    """The incremental ``lower-bound-schedule`` analysis and its suites."""

    def test_trajectory_matches_independent_lower_bound_jobs(self):
        schedule = [15, 25, 35]
        engine = MeasureEngine()
        result = run_job(
            JobSpec(
                program="geo(1/2)",
                analysis="lower-bound-schedule",
                params={"schedule": schedule},
            ),
            engine,
        )
        assert result.ok
        trajectory = result.payload["trajectory"]
        assert [point["depth"] for point in trajectory] == schedule
        for depth, point in zip(schedule, trajectory):
            reference = run_job(
                JobSpec(
                    program="geo(1/2)",
                    analysis="lower-bound",
                    params={"depth": depth},
                ),
                MeasureEngine(),
            )
            assert point["probability"] == reference.payload["probability"]
            assert point["expected_steps"] == reference.payload["expected_steps"]
            assert point["measure_gap"] == reference.payload["measure_gap"]
            assert point["path_count"] == reference.payload["path_count"]
        # The top-level fields mirror the deepest point.
        assert result.payload["probability"] == trajectory[-1]["probability"]
        assert result.payload["depths_run"] == len(schedule)

    def test_target_gap_stops_the_schedule_early(self):
        result = run_job(
            JobSpec(
                program="geo(1/2)",
                analysis="lower-bound-schedule",
                params={"schedule": [20, 40, 60, 80], "target_gap": "1/100"},
            ),
            MeasureEngine(),
        )
        assert result.ok
        assert result.payload["depths_run"] < 4
        assert decode_number(
            result.payload["trajectory"][-1]["anytime_gap"]
        ) <= decode_number("1/100")

    def test_decreasing_schedule_is_a_structured_error(self):
        result = run_job(
            JobSpec(
                program="geo(1/2)",
                analysis="lower-bound-schedule",
                params={"schedule": [30, 10]},
            ),
            MeasureEngine(),
        )
        assert not result.ok
        assert "non-decreasing" in result.error

    def test_schedule_is_part_of_the_job_key(self):
        first = JobSpec(
            program="geo(1/2)",
            analysis="lower-bound-schedule",
            params={"schedule": [10, 20]},
        )
        second = JobSpec(
            program="geo(1/2)",
            analysis="lower-bound-schedule",
            params={"schedule": [10, 30]},
        )
        assert first.key() != second.key()
        # Lists and tuples hash identically (JSON canonicalization).
        assert (
            JobSpec(
                program="geo(1/2)",
                analysis="lower-bound-schedule",
                params={"schedule": (10, 20)},
            ).key()
            == first.key()
        )

    def test_schedule_suites(self):
        from repro.batch.suites import schedule_suite, suite

        specs = schedule_suite([10, 20], target_gap=None)
        assert specs and all(
            spec.analysis == "lower-bound-schedule" for spec in specs
        )
        sweep_specs = suite("sweep", schedule=[10, 20])
        assert {spec.program for spec in sweep_specs} == {
            "sig-retry(7/10)",
            "square-retry(1/2)",
            "sig-sum-retry(1)",
        }
        with pytest.raises(ValueError):
            suite("classify", schedule=[10, 20])

    def test_schedule_jobs_run_through_the_batch_cache(self, tmp_path):
        from repro.batch.suites import schedule_suite

        specs = schedule_suite([12, 18])
        cold = run_batch(specs, jobs=1, cache=BatchCache(tmp_path))
        assert all(result.ok for result in cold.results)
        warm = run_batch(specs, jobs=1, cache=BatchCache(tmp_path))
        assert warm.cache_hits == len(specs)
        assert jsonl_lines(warm.results) == jsonl_lines(cold.results)


class TestSweepFrontierPersistence:
    """Persisted undecided-box frontiers warm-start deeper sweep budgets."""

    def _bound(self, engine):
        program = resolve_program("sig-sum-retry(1)")
        return LowerBoundEngine(
            strategy=program.strategy, measure_engine=engine
        ).lower_bound(program.applied, max_steps=25)

    def test_deeper_budget_resumes_the_persisted_frontier(self, tmp_path):
        from repro.geometry.measure import MeasureOptions

        cache = BatchCache(tmp_path)
        shallow = MeasureEngine(MeasureOptions(sweep_depth=10))
        self._bound(shallow)
        cache.merge_sweeps(shallow, shallow.export_sweep_entries())
        # Entries carry the frontier blob (entry position 7).
        entries = cache.load_sweeps(MeasureEngine(MeasureOptions(sweep_depth=10)))
        assert any(len(entry) > 6 for entry in entries.values())

        warm = MeasureEngine(MeasureOptions(sweep_depth=13))
        warm.import_sweep_entries(cache.load_sweeps(warm))
        warm_result = self._bound(warm)
        fresh = MeasureEngine(MeasureOptions(sweep_depth=13))
        fresh_result = self._bound(fresh)
        assert warm_result == fresh_result
        assert warm.stats.sweep_warm_starts > 0
        assert warm.stats.sweep_boxes_examined < fresh.stats.sweep_boxes_examined

    def test_malformed_frontier_blobs_read_as_cold_misses(self, tmp_path):
        from repro.geometry.measure import MeasureOptions

        cache = BatchCache(tmp_path)
        shallow = MeasureEngine(MeasureOptions(sweep_depth=10))
        self._bound(shallow)
        exported = shallow.export_sweep_entries()
        for key in exported:
            if len(exported[key]) > 6:
                exported[key][6] = ["garbage"]
        cache.merge_sweeps(shallow, exported)
        warm = MeasureEngine(MeasureOptions(sweep_depth=13))
        warm.import_sweep_entries(cache.load_sweeps(warm))
        warm_result = self._bound(warm)
        fresh_result = self._bound(MeasureEngine(MeasureOptions(sweep_depth=13)))
        assert warm_result == fresh_result
        assert warm.stats.sweep_warm_starts == 0

    def test_early_exit_budgets_never_warm_start(self, tmp_path):
        from repro.geometry.measure import MeasureOptions

        cache = BatchCache(tmp_path)
        shallow = MeasureEngine(MeasureOptions(sweep_depth=10))
        self._bound(shallow)
        cache.merge_sweeps(shallow, shallow.export_sweep_entries())
        capped = MeasureEngine(
            MeasureOptions(sweep_depth=13, sweep_max_boxes=100_000)
        )
        capped.import_sweep_entries(cache.load_sweeps(capped))
        self._bound(capped)
        assert capped.stats.sweep_warm_starts == 0


class TestBatchCLI:
    def test_batch_suite_writes_deterministic_jsonl(self, tmp_path, capsys):
        out_one = tmp_path / "one.jsonl"
        out_two = tmp_path / "two.jsonl"
        cache_dir = str(tmp_path / "cache")
        code = main(
            ["batch", "--suite", "table2", "--jobs", "1",
             "--cache-dir", cache_dir, "--output", str(out_one)]
        )
        assert code == 0
        first_summary = capsys.readouterr().out
        assert "job cache        : 0 hits, 5 misses" in first_summary
        code = main(
            ["batch", "--suite", "table2", "--jobs", "1",
             "--cache-dir", cache_dir, "--output", str(out_two)]
        )
        assert code == 0
        second_summary = capsys.readouterr().out
        assert "job cache        : 5 hits, 0 misses" in second_summary
        assert out_one.read_bytes() == out_two.read_bytes()

    def test_batch_without_suite_or_job_file_errors(self, capsys):
        assert main(["batch"]) == 2

    def test_batch_job_file(self, tmp_path, capsys):
        job_file = tmp_path / "jobs.json"
        job_file.write_text(
            json.dumps(
                [
                    {"program": "geo(1/2)", "analysis": "verify"},
                    {"program": "geo(1/2)", "analysis": "estimate",
                     "params": {"runs": 50, "seed": 3}},
                ]
            )
        )
        code = main(["batch", str(job_file), "--jobs", "1"])
        assert code == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        assert len(lines) == 2
        assert lines[0]["result"]["verified"] is True
        assert lines[1]["result"]["runs"] == 50

    def test_batch_resume_skips_recorded_jobs(self, tmp_path, capsys):
        output = tmp_path / "results.jsonl"
        code = main(
            ["batch", "--suite", "table2", "--jobs", "1", "--output", str(output),
             "--resume"]
        )
        assert code == 0
        baseline = output.read_bytes()
        capsys.readouterr()
        code = main(
            ["batch", "--suite", "table2", "--jobs", "1", "--output", str(output),
             "--resume"]
        )
        assert code == 0
        summary = capsys.readouterr().out
        assert "jobs             : 0 total" in summary
        assert output.read_bytes() == baseline

    def test_table1_cli_accepts_jobs_and_cache_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["table1", "--depth", "10", "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert main(["table1", "--depth", "10", "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        # identical rows except the timing column
        def strip(text):
            return [line.rsplit(None, 1)[0] for line in text.splitlines()]

        assert strip(first) == strip(second)

    def test_estimate_seed_is_reproducible(self, capsys):
        assert main(["estimate", "--program", "geo(1/2)", "--runs", "100",
                     "--seed", "11"]) == 0
        first = capsys.readouterr().out
        assert main(["estimate", "--program", "geo(1/2)", "--runs", "100",
                     "--seed", "11"]) == 0
        second = capsys.readouterr().out
        assert first == second


class TestSweepStoreAndPrune:
    """The persistent sweep shards, the run counter, and the GC."""

    @staticmethod
    def _measure_entry(value="1/2"):
        return [["F", value], True, False, "interval"]

    @staticmethod
    def _sweep_entry(lower="3/4", undecided="1/8"):
        return [["F", lower], ["F", undecided], 11, 2, False, 3]

    def test_sweep_entries_persist_and_seed_warm_engines(self, tmp_path):
        from repro.batch.suites import sweep_suite

        cache = BatchCache(tmp_path)
        report = run_batch(sweep_suite(depth=20), jobs=1, cache=cache)
        assert all(result.ok for result in report.results)
        assert sorted(tmp_path.glob("sweeps-*.json")), "sweep shards must persist"
        engine = MeasureEngine()
        entries = cache.load_sweeps(engine)
        assert entries
        assert engine.import_sweep_entries(entries) == len(entries)
        # A warm engine answers every block sweep from the store.
        warm = run_batch(sweep_suite(depth=20), jobs=1, cache=None, engine=engine)
        assert jsonl_lines(warm.results) == jsonl_lines(report.results)
        assert engine.stats.sweep_blocks == 0
        assert engine.stats.persistent_hits > 0

    def test_run_counter_ticks_only_when_work_happens(self, tmp_path):
        cache = BatchCache(tmp_path)
        assert cache.run_counter() == 0
        spec = JobSpec(program="geo(1/2)", analysis="verify")
        run_batch([spec], jobs=1, cache=cache)
        assert cache.run_counter() == 1
        # A fully warm rerun does no work and must not age the store.
        run_batch([spec], jobs=1, cache=cache)
        assert cache.run_counter() == 1

    def test_prune_drops_stale_entries_and_keeps_fresh_ones(self, tmp_path):
        cache = BatchCache(tmp_path)
        engine = MeasureEngine()
        first_run = cache.begin_run()
        cache.merge_measures(engine, {"stale-measure": self._measure_entry()}, run=first_run)
        cache.merge_sweeps(engine, {"stale-sweep": self._sweep_entry()}, run=first_run)
        for _ in range(3):
            cache.begin_run()
        current = cache.run_counter()
        cache.merge_measures(engine, {"fresh-measure": self._measure_entry("1/3")}, run=current)
        cache.merge_sweeps(engine, {"fresh-sweep": self._sweep_entry("1/2")}, run=current)

        report = cache.prune(min_age_runs=2)
        assert report.pruned == {"measures": 1, "sweeps": 1, "frontiers": 0}
        assert report.kept == {"measures": 1, "sweeps": 1, "frontiers": 0}
        assert report.pruned_total == 2
        assert set(cache.load_measures(engine)) == {"fresh-measure"}
        assert set(cache.load_sweeps(engine)) == {"fresh-sweep"}
        # Shards emptied by the prune are removed from disk outright.
        assert report.removed_files >= 1
        assert not cache.shard_path(shard_prefix("stale-measure")).exists()

    def test_persistent_hits_refresh_touch_stamps(self, tmp_path):
        from repro.batch.suites import sweep_suite

        cache = BatchCache(tmp_path)
        cold = run_batch(sweep_suite(depth=20), jobs=1, cache=cache)
        assert all(result.ok for result in cold.results)
        # Age the store, then force the jobs to recompute: the reruns answer
        # from the persistent store, which must re-stamp the entries they hit.
        for _ in range(5):
            cache.begin_run()
        import shutil

        shutil.rmtree(cache.jobs_directory)
        warm = run_batch(sweep_suite(depth=20), jobs=1, cache=cache)
        assert jsonl_lines(warm.results) == jsonl_lines(cold.results)
        before = len(cache.load_sweeps(MeasureEngine()))
        report = cache.prune(min_age_runs=3)
        assert report.pruned.get("sweeps", 0) == 0
        assert len(cache.load_sweeps(MeasureEngine())) == before

    def test_prune_rejects_non_positive_age(self, tmp_path):
        with pytest.raises(ValueError):
            BatchCache(tmp_path).prune(min_age_runs=0)

    def test_prune_cli_reports_counts(self, tmp_path, capsys):
        cache = BatchCache(tmp_path)
        engine = MeasureEngine()
        run = cache.begin_run()
        cache.merge_measures(engine, {"old-key": self._measure_entry()}, run=run)
        for _ in range(4):
            cache.begin_run()
        assert main(["batch", "prune", "--cache-dir", str(tmp_path),
                     "--keep-runs", "2"]) == 0
        output = capsys.readouterr().out
        assert "pruned 1" in output
        assert main(["batch", "prune"]) == 2  # --cache-dir is required

    def test_non_default_engine_options_bypass_the_job_cache(self, tmp_path):
        from repro.batch.suites import sweep_suite
        from repro.geometry.measure import MeasureOptions

        cache = BatchCache(tmp_path)
        specs = sweep_suite(depth=20)
        default_report = run_batch(specs, jobs=1, cache=cache)
        # The joint-sweep engine computes different (looser) bounds, so it
        # must not replay job results cached under the default options.
        joint = MeasureEngine(MeasureOptions(block_sweep=False))
        joint_report = run_batch(specs, jobs=1, cache=cache, engine=joint)
        assert joint_report.cache_hits == 0
        assert not any(result.cached for result in joint_report.results)
        assert jsonl_lines(joint_report.results) != jsonl_lines(default_report.results)
        # The default configuration still replays its own cached results.
        warm = run_batch(specs, jobs=1, cache=cache)
        assert warm.cache_hits == len(specs)
        assert jsonl_lines(warm.results) == jsonl_lines(default_report.results)
