"""Tests for the additional example programs and the report module.

The extra programs exercise corners the benchmark tables do not: two-sample
guards (Ex. 3.5), von Neumann's coin, continuous first-class step lengths,
failing scores, and nested recursion.  The report module is checked to render
well-formed markdown containing the expected verdicts.
"""

from __future__ import annotations

import statistics
from fractions import Fraction

import pytest

from repro.astcheck import verify_ast
from repro.lowerbound import lower_bound
from repro.pastcheck import classify_termination, TerminationClass
from repro.programs import (
    conditional_single_sample,
    exponential_step_walk,
    extra_programs,
    nested_recursion,
    nonaffine_programs,
    score_gated_printer,
    sigmoid_retry,
    sigmoid_sum_retry,
    square_retry,
    two_sample_sum,
    von_neumann_coin,
)
from repro.report import classification_report, markdown_table, table1_report, table2_report
from repro.semantics import estimate_termination
from repro.semantics.sampler import run_lazily
from repro.semantics.cbv import CbVMachine
from repro.semantics.machine import RunStatus
from repro.spcf import typecheck
from repro.spcf.types import RealType
import random


class TestExtraProgramLibrary:
    def test_all_programs_typecheck(self):
        for name, program in extra_programs().items():
            assert typecheck(program.applied) == RealType(), name

    def test_library_names_are_unique_and_described(self):
        programs = extra_programs()
        assert len(programs) == 9
        for program in programs.values():
            assert program.description

    def test_nonaffine_library_is_consistent(self):
        programs = nonaffine_programs()
        assert set(programs) == {
            "sig-retry(7/10)",
            "square-retry(1/2)",
            "sig-sum-retry(1)",
        }
        for name, program in programs.items():
            assert extra_programs()[name] is not None
            assert typecheck(program.applied) == RealType(), name

    def test_sigmoid_retry_first_round_probability(self):
        # P(sig(s) <= 7/10) = ln((7/10)/(3/10)) = ln(7/3); the sweep can only
        # certify a lower bound, bracketing the truth.
        import math

        truth = math.log(Fraction(7, 10) / Fraction(3, 10))
        result = lower_bound(sigmoid_retry(Fraction(7, 10)).applied, 6)
        assert result.path_count == 1  # one round fits in 6 steps
        assert float(result.probability) <= truth + 1e-9
        assert float(result.probability) >= truth - 1e-3
        assert float(result.measure_gap) < 1e-2

    def test_square_retry_first_round_probability(self):
        # Under the program's own call-by-value strategy the bound sample is
        # drawn once and squared: P(s*s <= 1/2) = sqrt(1/2).
        from repro.symbolic.execute import Strategy

        truth = 0.5 ** 0.5
        program = square_retry(Fraction(1, 2))
        result = lower_bound(program.applied, 8, strategy=program.strategy)
        assert result.path_count == 1
        assert float(result.probability) <= truth + 1e-9
        assert float(result.probability) >= truth - 1e-3
        # Under call-by-name the let beta-duplicates the sample, giving the
        # product distribution P(s1*s2 <= 1/2) = 1/2 + ln(2)/2 instead.
        duplicated = lower_bound(program.applied, 8, strategy=Strategy.CBN)
        product_truth = 0.5 + 0.5 * 0.6931471805599453
        assert float(duplicated.probability) <= product_truth + 1e-9
        assert float(duplicated.probability) >= product_truth - 1e-2

    def test_nonaffine_bounds_tighten_with_depth_and_stay_sound(self):
        for program in nonaffine_programs().values():
            shallow = lower_bound(program.applied, 12, strategy=program.strategy)
            deep = lower_bound(program.applied, 30, strategy=program.strategy)
            assert float(shallow.probability) <= float(deep.probability) + 1e-12
            assert float(deep.probability) <= program.known_probability + 1e-9
            assert not deep.exact_measures
            assert deep.measure_gap >= 0

    def test_sigmoid_sum_retry_matches_monte_carlo(self):
        program = sigmoid_sum_retry(1)
        bound = lower_bound(program.applied, 25)
        estimate = estimate_termination(program.applied, runs=1500, seed=5)
        # The certified lower bound must sit below the MC estimate (plus
        # sampling noise).
        assert float(bound.probability) <= estimate.probability + 0.05

    def test_two_sample_sum_lower_bound_approaches_one(self):
        program = two_sample_sum()
        shallow = lower_bound(program.applied, 15)
        deep = lower_bound(program.applied, 45)
        assert float(shallow.probability) < float(deep.probability)
        assert float(deep.probability) > 0.95

    def test_two_sample_sum_first_level_weight(self):
        # The no-recursion traces form the triangle of area 1/2.
        program = two_sample_sum()
        result = lower_bound(program.applied, 8)
        assert float(result.probability) == pytest.approx(0.5, abs=1e-9)

    def test_conditional_single_sample_is_past(self):
        program = conditional_single_sample()
        result = lower_bound(program.applied, 10)
        assert result.probability == 1

    def test_von_neumann_coin_is_fair_and_ast(self):
        program = von_neumann_coin(Fraction(1, 3))
        verification = verify_ast(program)
        assert verification.verified
        machine = CbVMachine()
        rng = random.Random(3)
        values = []
        for _ in range(1_500):
            outcome = run_lazily(machine, program.applied, rng=rng)
            if outcome.status is RunStatus.TERMINATED and outcome.value is not None:
                values.append(float(outcome.value.value))
        assert statistics.fmean(values) == pytest.approx(0.5, abs=0.05)

    def test_von_neumann_rejects_degenerate_bias(self):
        with pytest.raises(ValueError):
            von_neumann_coin(0)
        with pytest.raises(ValueError):
            von_neumann_coin(1)

    def test_von_neumann_classified_past(self):
        classification = classify_termination(von_neumann_coin(Fraction(1, 4)))
        assert classification.verdict is TerminationClass.PAST_VERIFIED

    def test_exponential_step_walk_terminates(self):
        program = exponential_step_walk(1, 3)
        estimate = estimate_termination(program.applied, runs=400, seed=2)
        assert estimate.probability > 0.99

    def test_exponential_step_walk_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            exponential_step_walk(0, 3)

    def test_score_gated_printer_loses_mass(self):
        program = score_gated_printer(Fraction(1, 2), Fraction(1, 4))
        verification = verify_ast(program)
        assert not verification.verified
        estimate = estimate_termination(program.applied, runs=1_500, seed=4)
        # Half the runs retry, and a quarter of those fail the score.
        assert estimate.probability < 0.95

    def test_nested_recursion_not_handled_by_counting_verifier(self):
        program = nested_recursion(Fraction(1, 2))
        verification = verify_ast(program)
        assert not verification.verified

    def test_nested_recursion_still_has_lower_bounds(self):
        program = nested_recursion(Fraction(1, 2))
        result = lower_bound(program.applied, 40)
        assert 0.5 <= float(result.probability) <= 1.0
        estimate = estimate_termination(program.applied, runs=500, seed=5)
        assert estimate.probability > 0.97


class TestMarkdownTables:
    def test_markdown_table_shape(self):
        table = markdown_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-"}

    def test_markdown_table_validates_rows(self):
        with pytest.raises(ValueError):
            markdown_table(["a"], [["1", "2"]])
        with pytest.raises(ValueError):
            markdown_table([], [])

    def test_table1_report_contains_every_row(self):
        report = table1_report(depth=20, max_paths=5_000)
        assert report.startswith("## Table 1")
        for name in ("geo(1/2)", "gr", "pedestrian"):
            assert name in report

    def test_table2_report_all_verified(self):
        report = table2_report()
        assert report.startswith("## Table 2")
        assert "no" not in [cell.strip() for line in report.splitlines() for cell in line.split("|")]

    def test_classification_report_mentions_verdicts(self):
        report = classification_report()
        assert "AST" in report
        assert "PAST" in report
