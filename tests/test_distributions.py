"""Tests for distribution transforms and interval-separability analysis.

The transforms are checked against closed-form moments and CDF values; the
numeric probes are checked to accept the continuous primitives (Lem. 3.2 /
Lem. 3.7) and to reject the deliberately discontinuous ``floor`` and the fat
Cantor distance of Ex. 3.9; and the incompleteness example is checked to
exhibit the predicted gap in the interval-based lower bound.
"""

from __future__ import annotations

import math
import statistics
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    bernoulli,
    cauchy,
    check_interval_preserving,
    check_interval_separable,
    exponential,
    extended_registry,
    fat_cantor_primitive,
    fat_cantor_set,
    incompleteness_example,
    logistic,
    normal,
    pareto,
    sample_values,
    uniform,
)
from repro.spcf import typecheck
from repro.spcf.primitives import default_registry
from repro.spcf.types import RealType


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------


class TestExtendedRegistry:
    def test_contains_default_and_extra_primitives(self):
        registry = extended_registry()
        for name in ("add", "mul", "sig", "probit", "logit", "cauchy_icdf", "sqrt", "floor"):
            assert name in registry

    def test_default_registry_not_mutated(self):
        extended_registry()
        assert "probit" not in default_registry()

    def test_probit_matches_normal_quantiles(self):
        registry = extended_registry()
        probit = registry["probit"]
        assert probit(Fraction(1, 2)) == pytest.approx(0.0, abs=1e-12)
        assert probit(0.975) == pytest.approx(1.959964, abs=1e-5)

    def test_probit_domain_error(self):
        registry = extended_registry()
        with pytest.raises(ValueError):
            registry["probit"](0.0)

    def test_logit_is_inverse_of_sigmoid(self):
        registry = extended_registry()
        logit = registry["logit"]
        sig = registry["sig"]
        for value in (0.1, 0.35, 0.5, 0.9):
            assert sig(logit(value)) == pytest.approx(value, abs=1e-12)

    def test_interval_extensions_are_monotone_enclosures(self):
        registry = extended_registry()
        for name in ("probit", "logit", "cauchy_icdf", "sqrt"):
            primitive = registry[name]
            lo, hi = primitive.on_box((0.2, 0.7))
            assert lo <= primitive(0.2) <= hi
            assert lo <= primitive(0.45) <= hi
            assert lo <= primitive(0.7) <= hi

    def test_sqrt_extension_rejects_negative(self):
        registry = extended_registry()
        with pytest.raises(ValueError):
            registry["sqrt"].on_box((-0.5, 0.5))


# ---------------------------------------------------------------------------
# Transforms.
# ---------------------------------------------------------------------------


class TestTransforms:
    def test_all_transforms_typecheck_as_reals(self):
        registry = extended_registry()
        for term in (
            uniform(2, 5),
            bernoulli(Fraction(1, 3)),
            exponential(2),
            logistic(0, 1),
            normal(0, 1),
            cauchy(0, 1),
            pareto(3, 1),
        ):
            assert typecheck(term, registry=registry) == RealType()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            uniform(3, 1)
        with pytest.raises(ValueError):
            bernoulli(Fraction(3, 2))
        with pytest.raises(ValueError):
            exponential(0)
        with pytest.raises(ValueError):
            logistic(0, 0)
        with pytest.raises(ValueError):
            normal(0, 0)
        with pytest.raises(ValueError):
            cauchy(0, 0)
        with pytest.raises(ValueError):
            pareto(0, 1)

    def test_uniform_moments(self):
        values = sample_values(uniform(2, 6), runs=4_000, seed=1)
        assert len(values) > 3_900
        assert all(2 <= value <= 6 for value in values)
        assert statistics.fmean(values) == pytest.approx(4.0, abs=0.1)

    def test_bernoulli_mean(self):
        values = sample_values(bernoulli(Fraction(3, 10)), runs=4_000, seed=2)
        assert set(values) <= {0.0, 1.0}
        assert statistics.fmean(values) == pytest.approx(0.3, abs=0.03)

    def test_exponential_mean_and_cdf(self):
        rate = 2
        values = sample_values(exponential(rate), runs=4_000, seed=3)
        assert all(value >= 0 for value in values)
        assert statistics.fmean(values) == pytest.approx(1 / rate, abs=0.05)
        below_median = sum(1 for value in values if value <= math.log(2) / rate)
        assert below_median / len(values) == pytest.approx(0.5, abs=0.03)

    def test_normal_moments(self):
        values = sample_values(normal(1, 2), runs=4_000, seed=4)
        assert statistics.fmean(values) == pytest.approx(1.0, abs=0.15)
        assert statistics.pstdev(values) == pytest.approx(2.0, abs=0.15)

    def test_logistic_median_and_quartiles(self):
        values = sample_values(logistic(3, 1), runs=4_000, seed=5)
        below = sum(1 for value in values if value <= 3)
        assert below / len(values) == pytest.approx(0.5, abs=0.03)
        below_q1 = sum(1 for value in values if value <= 3 + math.log(1 / 3))
        assert below_q1 / len(values) == pytest.approx(0.25, abs=0.03)

    def test_cauchy_median_and_quartiles(self):
        values = sample_values(cauchy(0, 2), runs=4_000, seed=6)
        below = sum(1 for value in values if value <= 0)
        assert below / len(values) == pytest.approx(0.5, abs=0.03)
        below_q3 = sum(1 for value in values if value <= 2)
        assert below_q3 / len(values) == pytest.approx(0.75, abs=0.03)

    def test_pareto_support_and_cdf(self):
        values = sample_values(pareto(3, 2), runs=4_000, seed=7)
        assert all(value >= 2 - 1e-9 for value in values)
        # P(X <= 4) = 1 - (2/4)^3 = 7/8.
        below = sum(1 for value in values if value <= 4)
        assert below / len(values) == pytest.approx(7 / 8, abs=0.03)

    @given(st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=20, deadline=None)
    def test_bernoulli_mean_tracks_parameter(self, p):
        values = sample_values(bernoulli(p), runs=600, seed=8)
        assert statistics.fmean(values) == pytest.approx(p, abs=0.11)


# ---------------------------------------------------------------------------
# Numeric probes of Lem. 3.2 / Lem. 3.7.
# ---------------------------------------------------------------------------


class TestProbes:
    def test_continuous_primitives_look_interval_preserving(self):
        registry = extended_registry()
        for name in ("add", "mul", "exp", "sig", "probit", "logit"):
            report = check_interval_preserving(registry[name], samples=2_000)
            assert report.looks_interval_preserving, name

    def test_floor_is_not_interval_preserving(self):
        registry = extended_registry()
        report = check_interval_preserving(
            registry["floor"], box=((0.0, 3.0),), samples=2_000
        )
        assert not report.looks_interval_preserving

    def test_separability_probe_accepts_addition(self):
        registry = extended_registry()
        report = check_interval_separable(
            registry["add"], target=(0.25, 0.75), depth=7
        )
        assert report.consistent_with_separability
        # The true preimage measure is 0.75^2/2 - 0.25^2/2 = 1/4.
        assert report.inside_measure > 0.2
        assert report.inside_measure < 0.26

    def test_separability_boundary_shrinks_with_depth(self):
        registry = extended_registry()
        shallow = check_interval_separable(registry["add"], target=(0.25, 0.75), depth=4)
        deep = check_interval_separable(registry["add"], target=(0.25, 0.75), depth=7)
        assert deep.boundary_measure < shallow.boundary_measure

    def test_separability_probe_rejects_fat_cantor_distance(self):
        primitive = fat_cantor_primitive(max_depth=12)
        report = check_interval_separable(primitive, target=(0.0, 0.0), depth=9)
        # The preimage of {0} is the fat Cantor set: no cell is certainly
        # inside, and the boundary cells keep at least measure 1/2.
        assert report.inside_measure == 0.0
        assert report.boundary_measure > 0.45
        assert not report.consistent_with_separability

    def test_probe_rejects_wrong_arity_box(self):
        registry = extended_registry()
        with pytest.raises(ValueError):
            check_interval_preserving(registry["add"], box=((0.0, 1.0),))
        with pytest.raises(ValueError):
            check_interval_separable(registry["add"], target=(0, 1), box=((0.0, 1.0),))


# ---------------------------------------------------------------------------
# The fat Cantor set and Ex. 3.9.
# ---------------------------------------------------------------------------


class TestFatCantor:
    def test_measure_is_one_half(self):
        cantor = fat_cantor_set()
        assert cantor.measure == Fraction(1, 2)
        assert cantor.removed_measure_up_to(1) == Fraction(1, 4)
        assert cantor.removed_measure_up_to(2) == Fraction(3, 8)
        # The removed mass converges to 1/2 from below.
        assert cantor.removed_measure_up_to(30) < Fraction(1, 2)
        assert float(cantor.removed_measure_up_to(30)) == pytest.approx(0.5, abs=1e-8)

    def test_gaps_are_disjoint_and_sum_to_removed_mass(self):
        cantor = fat_cantor_set()
        gaps = cantor.gaps_up_to(6)
        assert len(gaps) == 2**6 - 1
        for (lo_a, hi_a), (lo_b, hi_b) in zip(gaps, gaps[1:]):
            assert hi_a <= lo_b
        total = sum((hi - lo for lo, hi in gaps), Fraction(0))
        assert total == cantor.removed_measure_up_to(6)

    def test_endpoints_belong_to_the_set(self):
        cantor = fat_cantor_set()
        assert cantor.distance(0) == 0.0
        assert cantor.distance(1) == 0.0
        for lo, hi in cantor.gaps_up_to(4):
            assert cantor.distance(lo) == pytest.approx(0.0, abs=1e-12)
            assert cantor.distance(hi) == pytest.approx(0.0, abs=1e-12)

    def test_gap_midpoints_have_the_expected_distance(self):
        cantor = fat_cantor_set()
        # The first gap has length 1/4 and is centred at 1/2.
        assert cantor.distance(0.5) == pytest.approx(1 / 8, abs=1e-12)

    def test_distance_outside_unit_interval(self):
        cantor = fat_cantor_set()
        assert cantor.distance(-0.25) == pytest.approx(0.25)
        assert cantor.distance(1.5) == pytest.approx(0.5)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=150, deadline=None)
    def test_distance_is_lipschitz_and_nonnegative(self, x):
        cantor = fat_cantor_set(max_depth=20)
        assert cantor.distance(x) >= 0.0
        delta = 1e-3
        assert abs(cantor.distance(x) - cantor.distance(min(1.0, x + delta))) <= delta + 1e-12

    def test_primitive_interval_extension_encloses_values(self):
        primitive = fat_cantor_primitive(max_depth=20)
        cantor = fat_cantor_set(max_depth=20)
        for lo, hi in ((0.1, 0.3), (0.45, 0.55), (0.0, 1.0)):
            bound_lo, bound_hi = primitive.on_box((lo, hi))
            for point in (lo, hi, (lo + hi) / 2):
                assert bound_lo - 1e-12 <= cantor.distance(point) <= bound_hi + 1e-12

    def test_extension_never_certifies_nonpositive_on_fat_boxes(self):
        primitive = fat_cantor_primitive(max_depth=20)
        for lo, hi in ((0.0, 0.1), (0.3, 0.31), (0.7, 0.9)):
            _, upper = primitive.on_box((lo, hi))
            assert upper > 0.0


class TestIncompletenessExample:
    def test_lower_bound_capped_by_the_set_measure(self):
        report = incompleteness_example(max_depth=12, sweep_depth=9, max_steps=40)
        # Ex. 3.9: the program is AST but the interval semantics can certify at
        # most 1 - lambda(C) = 1/2.
        assert report.true_probability == 1.0
        assert report.lower_bound <= 0.5 + 1e-9
        assert report.lower_bound > 0.2
        assert report.incomplete
        assert report.gap >= 0.5 - 1e-9
