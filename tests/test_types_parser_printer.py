"""Tests for the simple type system, the surface parser and the pretty printer."""

from fractions import Fraction

import pytest

from repro.spcf import (
    ArrowType,
    ParseError,
    RealType,
    TypeError_,
    parse,
    pretty,
    typecheck,
)
from repro.spcf.syntax import App, Fix, If, Lam, Numeral, Prim, Sample, Score, Var
from repro.spcf.types import type_of
from repro.programs import table1_programs, table2_programs


REAL = RealType()


class TestSimpleTypes:
    def test_numerals_samples_and_scores_have_type_real(self):
        assert type_of(Numeral(1)) == REAL
        assert type_of(Sample()) == REAL
        assert type_of(Score(Sample())) == REAL

    def test_lambda_identity_at_base_type(self):
        assert type_of(Lam("x", Var("x"))) == ArrowType(REAL, REAL)

    def test_fixpoint_first_order(self):
        term = Fix("phi", "x", If(Sample(), Var("x"), App(Var("phi"), Var("x"))))
        assert type_of(term) == ArrowType(REAL, REAL)

    def test_application_type(self):
        term = App(Lam("x", Prim("add", (Var("x"), Numeral(1)))), Numeral(2))
        assert type_of(term) == REAL

    def test_branch_mismatch_is_rejected(self):
        term = If(Sample(), Numeral(1), Lam("x", Var("x")))
        with pytest.raises(TypeError_):
            typecheck(term)

    def test_unbound_variable_is_rejected(self):
        with pytest.raises(TypeError_):
            typecheck(Var("x"))

    def test_applying_a_numeral_is_rejected(self):
        with pytest.raises(TypeError_):
            typecheck(App(Numeral(1), Numeral(2)))

    def test_score_of_a_function_is_rejected(self):
        with pytest.raises(TypeError_):
            typecheck(Score(Lam("x", Var("x"))))

    def test_expected_type_mismatch_is_reported(self):
        with pytest.raises(TypeError_):
            typecheck(Numeral(1), expected=ArrowType(REAL, REAL))

    def test_every_benchmark_program_is_simply_typable(self):
        for program in {**table1_programs(), **table2_programs()}.values():
            assert typecheck(program.applied) == REAL
            assert typecheck(program.fix) == ArrowType(REAL, REAL)


class TestParser:
    def test_parse_numbers_and_fractions(self):
        assert parse("1/2") == Numeral(Fraction(1, 2))
        assert parse("0.25") == Numeral(Fraction(1, 4))
        assert parse("3") == Numeral(3)

    def test_parse_arithmetic_precedence(self):
        term = parse("1 + 2 * 3")
        assert term == Prim("add", (Numeral(1), Prim("mul", (Numeral(2), Numeral(3)))))

    def test_parse_subtraction_is_left_associative(self):
        term = parse("1 - 2 - 3")
        assert term == Prim("sub", (Prim("sub", (Numeral(1), Numeral(2))), Numeral(3)))

    def test_parse_lambda_mu_if_let(self):
        term = parse("mu phi x. if sample - 1/2 then x else phi (x + 1)")
        assert isinstance(term, Fix)
        assert isinstance(term.body, If)
        term = parse("let e = sample in e + 1")
        assert isinstance(term, App)
        assert isinstance(term.fn, Lam)

    def test_parse_primitive_calls(self):
        term = parse("sig(x + 1)")
        assert term == Prim("sig", (Prim("add", (Var("x"), Numeral(1))),))
        term = parse("max(1, 2)")
        assert term == Prim("max", (Numeral(1), Numeral(2)))

    def test_parse_application_is_left_associative(self):
        term = parse("f a b")
        assert term == App(App(Var("f"), Var("a")), Var("b"))

    def test_parse_score(self):
        assert parse("score(sample)") == Score(Sample())

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse("if sample then 1")  # missing else
        with pytest.raises(ParseError):
            parse("1 +")
        with pytest.raises(ParseError):
            parse("(1")
        with pytest.raises(ParseError):
            parse("1 2 ~")
        with pytest.raises(ParseError):
            parse("sig(1, 2)")  # wrong arity

    def test_parse_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse("1) 2")


class TestPrinter:
    def test_round_trip_through_parser(self):
        source = "(mu phi x. if sample - 1/2 then x else phi (x + 1)) 1"
        term = parse(source)
        printed = pretty(term, unicode_symbols=False)
        # The printed form is not re-parsed (it uses `<= 0`), but it must
        # mention the key constituents.
        assert "mu phi x." in printed
        assert "sample" in printed
        assert "x + 1" in printed.replace("(", "").replace(")", "")

    def test_pretty_prints_fractions_exactly(self):
        assert pretty(Numeral(Fraction(1, 3))) == "1/3"
        assert pretty(Numeral(2)) == "2"

    def test_pretty_prints_infix_primitives(self):
        assert pretty(Prim("add", (Numeral(1), Numeral(2)))) == "(1 + 2)"
        assert pretty(Prim("sig", (Numeral(1),))) == "sig(1)"
