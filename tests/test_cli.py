"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_verify_a_library_program(capsys):
    exit_code = main(["verify", "ex1.1-(2)(1/2)"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "AST verified" in output
    assert "1/2*d2" in output


def test_verify_a_surface_syntax_program_that_is_not_ast(capsys):
    exit_code = main(
        ["verify", "mu phi x. if sample - 1/4 then x else phi (phi (x + 1))", "--tree"]
    )
    output = capsys.readouterr().out
    assert exit_code == 1
    assert "not verified" in output
    assert "execution tree" in output


def test_lower_bound_command(capsys):
    exit_code = main(
        [
            "lower-bound",
            "(mu phi x. if sample - 1/2 then x else phi (x + 1)) 1",
            "--depth",
            "40",
        ]
    )
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "lower bound" in output
    assert "0.99" in output


def test_estimate_command_accepts_library_names(capsys):
    exit_code = main(["estimate", "--program", "geo(1/2)", "--runs", "200"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "Pterm (MC)" in output


def test_table2_command_lists_all_rows(capsys):
    exit_code = main(["table2"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert output.count("yes") == 5


def test_list_programs_command(capsys):
    exit_code = main(["list-programs"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "geo(1/2)" in output
    assert "pedestrian" in output


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_classify_command_on_past_program(capsys):
    exit_code = main(["classify", "geo(1/2)"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "PAST (and hence AST) verified" in output
    assert "E[calls]" in output


def test_classify_command_on_critical_program(capsys):
    exit_code = main(["classify", "ex1.1(1/2)"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "AST verified; not PAST" in output


def test_report_command_emits_markdown_tables(capsys):
    exit_code = main(["report", "--depth", "15"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "## Table 1" in output
    assert "## Table 2" in output
    assert "## AST / PAST classification" in output


def test_list_programs_includes_extra_library(capsys):
    exit_code = main(["list-programs"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "two-sample-sum" in output
    assert "von-neumann(1/3)" in output
