"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_verify_a_library_program(capsys):
    exit_code = main(["verify", "ex1.1-(2)(1/2)"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "AST verified" in output
    assert "1/2*d2" in output


def test_verify_a_surface_syntax_program_that_is_not_ast(capsys):
    exit_code = main(
        ["verify", "mu phi x. if sample - 1/4 then x else phi (phi (x + 1))", "--tree"]
    )
    output = capsys.readouterr().out
    assert exit_code == 1
    assert "not verified" in output
    assert "execution tree" in output


def test_lower_bound_command(capsys):
    exit_code = main(
        [
            "lower-bound",
            "(mu phi x. if sample - 1/2 then x else phi (x + 1)) 1",
            "--depth",
            "40",
        ]
    )
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "lower bound" in output
    assert "0.99" in output


def test_estimate_command_accepts_library_names(capsys):
    exit_code = main(["estimate", "--program", "geo(1/2)", "--runs", "200"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "Pterm (MC)" in output


def test_table2_command_lists_all_rows(capsys):
    exit_code = main(["table2"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert output.count("yes") == 5


def test_list_programs_command(capsys):
    exit_code = main(["list-programs"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "geo(1/2)" in output
    assert "pedestrian" in output


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_classify_command_on_past_program(capsys):
    exit_code = main(["classify", "geo(1/2)"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "PAST (and hence AST) verified" in output
    assert "E[calls]" in output


def test_classify_command_on_critical_program(capsys):
    exit_code = main(["classify", "ex1.1(1/2)"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "AST verified; not PAST" in output


def test_report_command_emits_markdown_tables(capsys):
    exit_code = main(["report", "--depth", "15"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "## Table 1" in output
    assert "## Table 2" in output
    assert "## AST / PAST classification" in output


def test_list_programs_includes_extra_library(capsys):
    exit_code = main(["list-programs"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "two-sample-sum" in output
    assert "von-neumann(1/3)" in output
    assert "sig-branch(3/5)" in output


def test_lower_bound_schedule_streams_anytime_bounds(capsys):
    exit_code = main(["lower-bound", "geo(1/2)", "--schedule", "20,40"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "depth     20 :" in output
    assert "depth     40 :" in output
    assert "gap <=" in output
    # The final summary reports the deepest scheduled bound.
    assert "depth        : 40" in output


def test_lower_bound_schedule_stops_at_the_target_gap(capsys):
    exit_code = main(
        ["lower-bound", "geo(1/2)", "--schedule", "20,40,60,80", "--target-gap", "1/100"]
    )
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "depth     40 :" in output
    assert "depth     60 :" not in output


def test_lower_bound_rejects_a_decreasing_schedule(capsys):
    with pytest.raises(SystemExit):
        main(["lower-bound", "geo(1/2)", "--schedule", "40,20"])


def test_batch_schedule_on_a_depthless_suite_is_a_clean_error(capsys):
    assert main(["batch", "--suite", "table2", "--schedule", "10,20"]) == 2
    assert "no depth axis" in capsys.readouterr().err


def test_sigmoid_branching_known_probability_is_clamped():
    from repro.programs import sigmoid_branching
    from fractions import Fraction

    # Thresholds below sig(0) = 1/2 never terminate a round: Pterm = 0,
    # never a negative number.
    assert sigmoid_branching(Fraction(2, 5)).known_probability == 0.0
    assert sigmoid_branching(Fraction(9, 10)).known_probability == 1.0


def test_target_gap_without_schedule_is_rejected(capsys):
    for command in (
        ["lower-bound", "geo(1/2)", "--target-gap", "1/100"],
        ["table1", "--target-gap", "1/100"],
        ["batch", "--suite", "table1", "--target-gap", "1/100"],
    ):
        assert main(command) == 2
        assert "--target-gap requires --schedule" in capsys.readouterr().err


def test_table1_schedule_renders_a_depth_column(capsys):
    exit_code = main(["table1", "--schedule", "10,15"])
    output = capsys.readouterr().out
    assert exit_code == 0
    # Two rows per program, one per scheduled depth.
    assert output.count("geo(1/2)") == 2
    assert "    10" in output and "    15" in output


def test_stats_json_dumps_the_new_counters(tmp_path, capsys):
    path = tmp_path / "stats.json"
    exit_code = main(
        ["lower-bound", "geo(1/2)", "--schedule", "20,40", "--stats-json", str(path)]
    )
    assert exit_code == 0
    import json

    counters = json.loads(path.read_text())["counters"]
    for name in ("symbolic_steps", "paths_resumed", "frontier_peak", "sweep_warm_starts"):
        assert name in counters
    assert counters["paths_resumed"] > 0


def test_estimate_stats_json(tmp_path, capsys):
    path = tmp_path / "estimate.json"
    exit_code = main(
        ["estimate", "--program", "geo(1/2)", "--runs", "100", "--stats-json", str(path)]
    )
    assert exit_code == 0
    import json

    document = json.loads(path.read_text())
    assert document["analysis"] == "estimate"
    assert document["runs"] == 100


def test_report_schedule_renders_the_anytime_table(capsys):
    exit_code = main(["report", "--schedule", "10,14"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "anytime lower bounds over a depth schedule" in output
    assert "## Table 2" in output
