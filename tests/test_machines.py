"""Tests for the CbN and CbV trace-based machines and the Monte-Carlo sampler."""

from fractions import Fraction

import pytest

from repro.semantics import (
    CbNMachine,
    CbVMachine,
    RunStatus,
    Trace,
    estimate_termination,
    random_trace,
)
from repro.semantics.sampler import run_lazily
from repro.spcf import parse
from repro.spcf.sugar import add, choice, let
from repro.spcf.syntax import App, Lam, Numeral, Prim, Sample, Score, Var
from repro.programs import geometric, printer_nonaffine


GEO = parse("(mu phi x. if sample - 1/2 then x else phi (x + 1)) 1")


class TestTraces:
    def test_trace_entries_are_validated(self):
        with pytest.raises(ValueError):
            Trace([2])
        with pytest.raises(ValueError):
            Trace([-0.1])

    def test_trace_head_rest_concat(self):
        trace = Trace([Fraction(1, 2), Fraction(1, 4)])
        assert trace.head() == Fraction(1, 2)
        assert trace.rest() == Trace([Fraction(1, 4)])
        assert trace.rest().rest().is_empty()
        assert Trace([0]).concat(Trace([1])) == Trace([0, 1])
        with pytest.raises(IndexError):
            Trace([]).head()

    def test_random_trace_has_requested_length_and_range(self):
        trace = random_trace(10)
        assert len(trace) == 10
        assert all(0 <= draw <= 1 for draw in trace)
        exact = random_trace(5, as_fraction=True)
        assert all(isinstance(draw, Fraction) for draw in exact)


class TestCbNMachine:
    def test_geometric_terminates_on_small_first_draw(self):
        result = CbNMachine().run(GEO, Trace([Fraction(1, 4)]))
        assert result.status is RunStatus.TERMINATED
        assert result.term == Numeral(1)

    def test_geometric_needs_more_trace_after_failure(self):
        machine = CbNMachine()
        result = machine.run(GEO, Trace([Fraction(3, 4)]))
        assert result.status is RunStatus.TRACE_EXHAUSTED
        result = machine.run(GEO, Trace([Fraction(3, 4), Fraction(1, 4)]))
        assert result.status is RunStatus.TERMINATED
        assert result.term == Numeral(2)

    def test_value_with_leftover_trace_is_not_termination(self):
        result = CbNMachine().run(GEO, Trace([Fraction(1, 4), Fraction(1, 4)]))
        assert result.status is RunStatus.VALUE_WITH_LEFTOVER_TRACE
        assert not result.terminated

    def test_score_failure_is_reported(self):
        result = CbNMachine().run(Score(Numeral(-1)), Trace([]))
        assert result.status is RunStatus.SCORE_FAILED

    def test_score_success_returns_its_argument(self):
        result = CbNMachine().run(Score(Numeral(Fraction(1, 2))), Trace([]))
        assert result.status is RunStatus.TERMINATED
        assert result.term == Numeral(Fraction(1, 2))

    def test_step_limit(self):
        diverging = parse("(mu phi x. phi x) 0")
        result = CbNMachine().run(diverging, Trace([]), max_steps=50)
        assert result.status is RunStatus.STEP_LIMIT
        assert result.steps == 50

    def test_free_variable_is_stuck(self):
        result = CbNMachine().run(add(Var("x"), 1), Trace([]))
        assert result.status is RunStatus.STUCK

    def test_cbn_duplicates_unevaluated_sample_arguments(self):
        # (lam x. x + x) sample  consumes two draws under CbN ...
        term = App(Lam("x", add(Var("x"), Var("x"))), Sample())
        result = CbNMachine().run(term, Trace([Fraction(1, 4), Fraction(1, 2)]))
        assert result.status is RunStatus.TERMINATED
        assert result.term == Numeral(Fraction(3, 4))


class TestCbVMachine:
    def test_cbv_evaluates_sample_arguments_once(self):
        # ... but only one draw under CbV.
        term = App(Lam("x", add(Var("x"), Var("x"))), Sample())
        result = CbVMachine().run(term, Trace([Fraction(1, 4)]))
        assert result.status is RunStatus.TERMINATED
        assert result.term == Numeral(Fraction(1, 2))

    def test_let_binds_the_sampled_value(self):
        term = let("e", Sample(), add(Var("e"), Var("e")))
        result = CbVMachine().run(term, Trace([Fraction(1, 3)]))
        assert result.terminated
        assert result.term == Numeral(Fraction(2, 3))

    def test_geometric_agrees_with_cbn_on_this_program(self):
        for trace in (Trace([Fraction(1, 4)]), Trace([Fraction(3, 4), Fraction(1, 8)])):
            cbn = CbNMachine().run(GEO, trace)
            cbv = CbVMachine().run(GEO, trace)
            assert cbn.terminated and cbv.terminated
            assert cbn.term == cbv.term

    def test_probabilistic_choice_picks_left_with_small_draw(self):
        term = choice(Numeral(10), Fraction(1, 3), Numeral(20))
        assert CbVMachine().run(term, Trace([Fraction(1, 4)])).term == Numeral(10)
        assert CbVMachine().run(term, Trace([Fraction(1, 2)])).term == Numeral(20)

    def test_primitive_failure_is_stuck(self):
        term = Prim("log", (Numeral(0),))
        result = CbVMachine().run(term, Trace([]))
        assert result.status is RunStatus.STUCK


class TestSampler:
    def test_lazy_run_counts_samples(self):
        import random

        result = run_lazily(CbVMachine(), GEO, rng=random.Random(1), max_steps=1000)
        assert result.status is RunStatus.TERMINATED
        assert result.samples_used >= 1

    def test_estimate_matches_known_probability_for_ast_program(self):
        estimate = estimate_termination(geometric(Fraction(1, 2)).applied, runs=800)
        assert estimate.probability > 0.99

    def test_estimate_for_non_ast_program_is_near_the_closed_form(self):
        # Ex. 1.1 (2) at p = 1/4 terminates with probability 1/3.  The step cap
        # is kept small: terminating runs are short, and the non-terminating
        # two thirds would otherwise dominate the runtime of the estimate.
        program = printer_nonaffine(Fraction(1, 4))
        estimate = estimate_termination(program.applied, runs=500, max_steps=1_500)
        low, high = estimate.confidence_interval()
        assert low <= 1 / 3 <= high + 0.03

    def test_estimate_handles_programs_that_never_terminate(self):
        estimate = estimate_termination(parse("(mu phi x. phi x) 0"), runs=50, max_steps=200)
        assert estimate.probability == 0.0
        assert estimate.mean_steps is None
