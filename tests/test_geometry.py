"""Tests for the measuring oracles: linear extraction, polytopes, sweep, MC."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import (
    MeasureOptions,
    halfspaces_from_constraints,
    independent_blocks,
    measure_constraints,
    monte_carlo_measure,
    polytope_volume,
    sweep_measure,
)
from repro.geometry.linear import HalfSpace, univariate_interval
from repro.geometry.polytope import polygon_area_exact
from repro.geometry.sweep import sweep_accepted_boxes
from repro.symbolic import Constraint, ConstraintSet, Relation
from repro.symbolic.values import ConstVal, PrimVal, SampleVar


def _le(value):
    return Constraint(value, Relation.LE)


def _gt(value):
    return Constraint(value, Relation.GT)


def _minus(left, right):
    return PrimVal("sub", (left, right))


def _plus(left, right):
    return PrimVal("add", (left, right))


HALF = ConstVal(Fraction(1, 2))


class TestLinearExtraction:
    def test_halfspace_from_le_constraint(self):
        halfspaces = halfspaces_from_constraints(
            ConstraintSet([_le(_minus(SampleVar(0), HALF))])
        )
        assert halfspaces is not None
        assert halfspaces[0].as_dict() == {0: Fraction(1)}
        assert halfspaces[0].bound == Fraction(1, 2)

    def test_gt_constraints_flip_signs(self):
        halfspaces = halfspaces_from_constraints(
            ConstraintSet([_gt(_minus(SampleVar(0), HALF))])
        )
        assert halfspaces[0].as_dict() == {0: Fraction(-1)}
        assert halfspaces[0].bound == Fraction(-1, 2)
        assert halfspaces[0].strict

    def test_non_affine_constraints_yield_none(self):
        halfspaces = halfspaces_from_constraints(
            ConstraintSet([_le(PrimVal("mul", (SampleVar(0), SampleVar(1))))])
        )
        assert halfspaces is None

    def test_independent_blocks_split_unrelated_variables(self):
        halfspaces = halfspaces_from_constraints(
            ConstraintSet(
                [
                    _le(_minus(SampleVar(0), HALF)),
                    _le(_minus(_plus(SampleVar(1), SampleVar(2)), ConstVal(1))),
                ]
            )
        )
        blocks = independent_blocks(3, halfspaces)
        variable_groups = sorted(tuple(variables) for variables, _ in blocks)
        assert variable_groups == [(0,), (1, 2)]

    def test_unconstrained_variables_form_singleton_blocks(self):
        blocks = independent_blocks(2, [])
        assert len(blocks) == 2
        assert all(not halfspaces for _, halfspaces in blocks)

    def test_univariate_interval(self):
        halfspace = HalfSpace(((0, Fraction(1)),), Fraction(1, 3))
        assert univariate_interval(0, [halfspace]) == (Fraction(0), Fraction(1, 3))
        infeasible = HalfSpace(((0, Fraction(1)),), Fraction(-1))
        assert univariate_interval(0, [infeasible]) is None


class TestPolytopeVolume:
    def test_triangle_volume(self):
        # x0 + x1 <= 1 within the unit square: area 1/2.
        halfspace = HalfSpace(((0, Fraction(1)), (1, Fraction(1))), Fraction(1))
        assert polytope_volume(2, [halfspace]) == pytest.approx(0.5, abs=1e-9)

    def test_simplex_volume_in_three_dimensions(self):
        halfspace = HalfSpace(
            ((0, Fraction(1)), (1, Fraction(1)), (2, Fraction(1))), Fraction(1)
        )
        assert polytope_volume(3, [halfspace]) == pytest.approx(1 / 6, abs=1e-9)

    def test_empty_polytope(self):
        halfspace = HalfSpace(((0, Fraction(1)),), Fraction(-1))
        assert polytope_volume(1, [halfspace]) == 0.0

    def test_degenerate_polytope_has_zero_volume(self):
        halfspaces = [
            HalfSpace(((0, Fraction(1)),), Fraction(1, 2)),
            HalfSpace(((0, Fraction(-1)),), Fraction(-1, 2)),
        ]
        assert polytope_volume(1, halfspaces) == pytest.approx(0.0, abs=1e-9)

    def test_zero_dimension(self):
        assert polytope_volume(0, []) == 1.0
        assert polytope_volume(0, [HalfSpace((), Fraction(-1))]) == 0.0

    def test_exact_polygon_area(self):
        halfspace = HalfSpace(((0, Fraction(1)), (1, Fraction(1))), Fraction(1))
        assert polygon_area_exact([halfspace]) == Fraction(1, 2)
        # x1 >= x0 within the unit square.
        halfspace = HalfSpace(((0, Fraction(1)), (1, Fraction(-1))), Fraction(0))
        assert polygon_area_exact([halfspace]) == Fraction(1, 2)
        # Empty polygon.
        halfspace = HalfSpace(((0, Fraction(1)),), Fraction(-1))
        assert polygon_area_exact([halfspace]) == Fraction(0)


class TestSweep:
    def test_sweep_brackets_the_true_measure(self):
        constraints = ConstraintSet([_le(_minus(_plus(SampleVar(0), SampleVar(1)), ConstVal(1)))])
        result = sweep_measure(constraints, 2, max_depth=10)
        assert result.lower <= Fraction(1, 2) <= result.upper
        assert result.undecided > 0

    def test_sweep_finds_the_satisfied_half_exactly(self):
        constraints = ConstraintSet([_le(_minus(SampleVar(0), HALF))])
        result = sweep_measure(constraints, 1, max_depth=4)
        assert result.lower == Fraction(1, 2)
        # Only the boundary strip of width 2^-4 remains undecided.
        assert result.undecided == Fraction(1, 16)

    def test_sweep_tightens_with_depth(self):
        constraints = ConstraintSet([_le(_minus(_plus(SampleVar(0), SampleVar(1)), ConstVal(1)))])
        shallow = sweep_measure(constraints, 2, max_depth=6)
        deep = sweep_measure(constraints, 2, max_depth=12)
        assert deep.lower >= shallow.lower
        assert deep.undecided <= shallow.undecided

    def test_accepted_boxes_witness_the_lower_bound(self):
        constraints = ConstraintSet([_le(_minus(_plus(SampleVar(0), SampleVar(1)), ConstVal(1)))])
        boxes = sweep_accepted_boxes(constraints, 2, max_depth=8)
        total = sum((box.volume for box in boxes), Fraction(0))
        assert total == sweep_measure(constraints, 2, max_depth=8).lower

    def test_zero_dimension_sweep(self):
        satisfied = ConstraintSet([_le(ConstVal(-1))])
        violated = ConstraintSet([_le(ConstVal(1))])
        assert sweep_measure(satisfied, 0).lower == 1
        assert sweep_measure(violated, 0).lower == 0


class TestMeasureFacade:
    def test_univariate_constraints_are_measured_exactly(self):
        constraints = ConstraintSet(
            [_le(_minus(SampleVar(0), HALF)), _gt(_minus(SampleVar(1), ConstVal(Fraction(1, 4))))]
        )
        result = measure_constraints(constraints, 2)
        assert result.exact
        assert result.value == Fraction(1, 2) * Fraction(3, 4)

    def test_two_dimensional_blocks_use_the_exact_polygon_path(self):
        constraints = ConstraintSet(
            [_le(_minus(_plus(SampleVar(0), SampleVar(1)), ConstVal(1)))]
        )
        result = measure_constraints(constraints, 2)
        assert result.exact
        assert result.value == Fraction(1, 2)
        assert "polygon" in result.method

    def test_non_linear_constraints_fall_back_to_the_sweep(self):
        constraints = ConstraintSet(
            [_le(_minus(PrimVal("mul", (SampleVar(0), SampleVar(1))), ConstVal(Fraction(1, 4))))]
        )
        result = measure_constraints(constraints, 2)
        assert result.method == "sweep"
        # True measure is 1/4 (1 + ln 4) ~ 0.5966; the sweep lower-bounds it.
        assert 0.5 < float(result.value) <= 0.597

    def test_prefer_sweep_option(self):
        constraints = ConstraintSet([_le(_minus(SampleVar(0), HALF))])
        result = measure_constraints(
            constraints, 1, options=MeasureOptions(prefer_sweep=True)
        )
        assert result.method == "sweep"
        assert result.value == Fraction(1, 2)

    def test_star_constraints_measure_zero(self):
        from repro.symbolic.values import StarVal

        constraints = ConstraintSet([_le(StarVal())])
        result = measure_constraints(constraints, 1)
        assert result.value == 0
        assert result.lower_bound

    def test_measure_agrees_with_monte_carlo(self):
        constraints = ConstraintSet(
            [
                _le(_minus(_plus(SampleVar(0), SampleVar(1)), ConstVal(1))),
                _gt(_minus(SampleVar(2), ConstVal(Fraction(1, 3)))),
            ]
        )
        exact = measure_constraints(constraints, 3)
        estimate = monte_carlo_measure(constraints, 3, samples=20_000)
        assert estimate.within(float(exact.value))


# -- randomised cross-check of the polytope oracle ---------------------------


@st.composite
def _random_linear_constraints(draw):
    dimension = draw(st.integers(min_value=1, max_value=3))
    count = draw(st.integers(min_value=1, max_value=3))
    constraints = []
    for _ in range(count):
        coefficients = [
            draw(st.integers(min_value=-2, max_value=2)) for _ in range(dimension)
        ]
        bound = draw(st.integers(min_value=-2, max_value=3))
        value = ConstVal(Fraction(-bound))
        for index, coefficient in enumerate(coefficients):
            if coefficient:
                value = _plus(
                    value, PrimVal("mul", (ConstVal(coefficient), SampleVar(index)))
                )
        constraints.append(_le(value))
    return ConstraintSet(constraints), dimension


@settings(max_examples=25, deadline=None)
@given(_random_linear_constraints())
def test_linear_measures_match_monte_carlo(data):
    constraints, dimension = data
    result = measure_constraints(constraints, dimension)
    estimate = monte_carlo_measure(constraints, dimension, samples=4000, seed=7)
    assert abs(float(result.value) - estimate.estimate) <= 5 * estimate.stderr + 0.02
