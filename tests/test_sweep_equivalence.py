"""Property tests for the adaptive, pruned, block-decomposed sweep.

The tentpole invariants of the sweep rewrite:

* with only the depth budget set, the adaptive prioritized sweep (max-heap,
  branch-and-bound pruned) is *bit-identical* -- lower bound, undecided
  volume, boxes examined -- to a naive unpruned fixed-depth recursion that
  re-evaluates every constraint on every box,
* the early-exit budgets (``target_gap``, ``max_boxes``) can only trade
  tightness for work: the lower bound never rises above the full sweep's
  and the certified upper bound never falls below it, so the bracket stays
  sound,
* the accepted boxes witnessing the lower bound are pairwise almost-disjoint
  and their volumes sum to it exactly,
* for multi-block non-affine sets, the measure engine's block-sweep product
  brackets a Monte-Carlo estimate of the true measure.

Hypothesis drives randomly generated constraint sets -- affine and
``sig``-non-affine, univariate and cross-variable -- through all of these.
"""

import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import MeasureEngine, MeasureOptions
from repro.geometry.sweep import (
    decode_frontier,
    encode_frontier,
    sweep_accepted_boxes,
    sweep_measure,
)
from repro.intervals.box import unit_box
from repro.spcf.primitives import default_registry
from repro.symbolic.constraints import Constraint, ConstraintSet, Relation
from repro.symbolic.values import const, sample_var, simplify_prim

_RELATIONS = (Relation.LE, Relation.GT, Relation.GE, Relation.LT)
_REGISTRY = default_registry()


def _affine(index: int, bound: Fraction, relation: Relation) -> Constraint:
    return Constraint(
        simplify_prim("sub", [sample_var(index), const(bound)]), relation
    )


def _sigmoid(index: int, bound: Fraction, relation: Relation) -> Constraint:
    value = simplify_prim(
        "sub", [simplify_prim("sig", [sample_var(index)]), const(bound)]
    )
    return Constraint(value, relation)


def _square(index: int, bound: Fraction, relation: Relation) -> Constraint:
    square = simplify_prim("mul", [sample_var(index), sample_var(index)])
    return Constraint(simplify_prim("sub", [square, const(bound)]), relation)


def _cross(first: int, second: int, bound: Fraction, relation: Relation) -> Constraint:
    """``a_first + sig(a_second) - bound``: a non-affine two-variable link."""
    value = simplify_prim(
        "sub",
        [
            simplify_prim(
                "add", [sample_var(first), simplify_prim("sig", [sample_var(second)])]
            ),
            const(bound),
        ],
    )
    return Constraint(value, relation)


_bounds = st.fractions(min_value=Fraction(-1), max_value=Fraction(2))
_sig_bounds = st.fractions(min_value=Fraction(2, 5), max_value=Fraction(4, 5))
_relations = st.sampled_from(_RELATIONS)
_indices = st.integers(min_value=0, max_value=2)

_constraints = st.one_of(
    st.builds(_affine, _indices, _bounds, _relations),
    st.builds(_sigmoid, _indices, _sig_bounds, _relations),
    st.builds(_square, _indices, _bounds, _relations),
    st.builds(
        lambda pair, bound, relation: _cross(2 * pair, 2 * pair + 1, bound, relation),
        st.integers(min_value=0, max_value=1),
        _bounds,
        _relations,
    ),
)
_constraint_sets = st.lists(_constraints, min_size=1, max_size=4).map(ConstraintSet)


def _naive_sweep(constraints: ConstraintSet, dimension: int, max_depth: int):
    """The reference: unpruned fixed-depth recursion, every constraint
    re-evaluated on every box (the seed implementation, minus pruning)."""
    if dimension == 0:
        satisfied = constraints.satisfied_by({}, _REGISTRY)
        return (Fraction(1) if satisfied else Fraction(0)), Fraction(0), 1

    def recurse(box, depth):
        mapping = {index: interval for index, interval in enumerate(box.intervals)}
        status = constraints.box_status(mapping, _REGISTRY)
        if status is False:
            return Fraction(0), Fraction(0), 1
        if status is True:
            return box.volume, Fraction(0), 1
        if depth >= max_depth:
            return Fraction(0), box.volume, 1
        left, right = box.split()
        left_lower, left_undecided, left_boxes = recurse(left, depth + 1)
        right_lower, right_undecided, right_boxes = recurse(right, depth + 1)
        return (
            left_lower + right_lower,
            left_undecided + right_undecided,
            left_boxes + right_boxes + 1,
        )

    return recurse(unit_box(dimension), 0)


def _dimension(constraints: ConstraintSet) -> int:
    return max(constraints.dimension(), 1)


@settings(max_examples=60, deadline=None)
@given(_constraint_sets, st.integers(min_value=2, max_value=5))
def test_adaptive_pruned_sweep_matches_the_naive_reference(constraints, depth):
    dimension = _dimension(constraints)
    lower, undecided, boxes = _naive_sweep(constraints, dimension, depth)
    result = sweep_measure(constraints, dimension, max_depth=depth)
    assert result.lower == lower
    assert result.undecided == undecided
    assert result.boxes_examined == boxes
    assert not result.early_exit


@settings(max_examples=60, deadline=None)
@given(
    _constraint_sets,
    st.integers(min_value=2, max_value=5),
    st.fractions(min_value=Fraction(1, 64), max_value=Fraction(1, 2)),
    st.integers(min_value=1, max_value=40),
)
def test_budgeted_sweeps_stay_sound_and_never_tighter(
    constraints, depth, gap, max_boxes
):
    dimension = _dimension(constraints)
    full = sweep_measure(constraints, dimension, max_depth=depth)
    for budgeted in (
        sweep_measure(constraints, dimension, max_depth=depth, target_gap=gap),
        sweep_measure(constraints, dimension, max_depth=depth, max_boxes=max_boxes),
    ):
        # A budget can only stop refinement earlier: the bracket widens (or
        # stays put) around the full sweep's, and never becomes unsound.
        assert budgeted.lower <= full.lower
        assert budgeted.upper >= full.upper
        assert budgeted.lower + budgeted.undecided == budgeted.upper
        assert budgeted.boxes_examined <= full.boxes_examined
    capped = sweep_measure(constraints, dimension, max_depth=depth, max_boxes=max_boxes)
    assert capped.boxes_examined <= max_boxes


@settings(max_examples=60, deadline=None)
@given(_constraint_sets, st.integers(min_value=2, max_value=5))
def test_accepted_boxes_witness_the_lower_bound_and_are_almost_disjoint(
    constraints, depth
):
    dimension = _dimension(constraints)
    boxes = sweep_accepted_boxes(constraints, dimension, max_depth=depth)
    total = sum((box.volume for box in boxes), Fraction(0))
    assert total == sweep_measure(constraints, dimension, max_depth=depth).lower
    for position, first in enumerate(boxes):
        for second in boxes[position + 1 :]:
            overlap = Fraction(1)
            for left, right in zip(first.intervals, second.intervals):
                width = min(left.hi, right.hi) - max(left.lo, right.lo)
                overlap *= max(width, 0)
            assert overlap == 0, (first, second)


@settings(max_examples=25, deadline=None)
@given(_constraint_sets, st.randoms(use_true_random=False))
def test_block_sweep_product_brackets_a_monte_carlo_estimate(constraints, rng):
    dimension = _dimension(constraints)
    engine = MeasureEngine(MeasureOptions(sweep_depth=9))
    result = engine.measure(constraints, dimension)
    upper = result.certified_upper()
    assert 0 <= result.value <= 1
    assert result.value <= upper

    samples = 1500
    hits = 0
    uniform = random.Random(rng.getrandbits(64))
    for _ in range(samples):
        assignment = {index: uniform.random() for index in range(dimension)}
        if constraints.satisfied_by(assignment, _REGISTRY):
            hits += 1
    estimate = hits / samples
    # 4-sigma Hoeffding-style slack on 1500 samples (~0.052), padded.
    slack = 0.07
    assert float(result.value) <= estimate + slack
    assert float(upper) >= estimate - slack


@settings(max_examples=50, deadline=None)
@given(
    _constraint_sets,
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=4),
)
def test_warm_started_sweep_matches_the_from_scratch_deep_sweep(
    constraints, shallow_depth, extra_depth
):
    """Resuming a shallower budget's frontier is bit-identical to sweeping
    from scratch at the deeper budget: bounds, boxes examined, evaluations
    saved, and the frontier the deeper budget leaves behind."""
    dimension = _dimension(constraints)
    deep_depth = shallow_depth + extra_depth
    shallow = sweep_measure(
        constraints, dimension, max_depth=shallow_depth, collect_frontier=True
    )
    assert shallow.frontier is not None
    assert shallow.frontier.lower == shallow.lower
    fresh = sweep_measure(
        constraints, dimension, max_depth=deep_depth, collect_frontier=True
    )
    warm = sweep_measure(
        constraints,
        dimension,
        max_depth=deep_depth,
        resume=shallow.frontier,
        collect_frontier=True,
    )
    assert warm.lower == fresh.lower
    assert warm.undecided == fresh.undecided
    assert warm.boxes_examined == fresh.boxes_examined
    assert warm.evaluations_saved == fresh.evaluations_saved
    assert not warm.early_exit
    # The stranded boxes agree as sets (heap pop order may differ).
    assert set(warm.frontier.boxes) == set(fresh.frontier.boxes)
    assert warm.frontier.lower == fresh.frontier.lower


@settings(max_examples=50, deadline=None)
@given(_constraint_sets, st.integers(min_value=2, max_value=5))
def test_frontier_codec_round_trips_exactly(constraints, depth):
    dimension = _dimension(constraints)
    result = sweep_measure(
        constraints, dimension, max_depth=depth, collect_frontier=True
    )
    encoded = encode_frontier(result.frontier)
    assert encoded is not None
    import json

    json.loads(json.dumps(encoded))  # JSON-safe
    decoded = decode_frontier(encoded, len(constraints.constraints))
    assert decoded == result.frontier
    # Out-of-range constraint indices must read as a miss, never mis-resolve.
    if any(active for _, _, active in result.frontier.boxes):
        assert decode_frontier(encoded, 0) is None


def test_mixed_affine_nonaffine_products_stay_certified():
    """A multivariate affine block inside a non-affine set must never smuggle
    the uncertified float polytope approximation into the product's lower
    endpoint: every factor is either exact or a certified sweep bracket."""
    triple = simplify_prim(
        "sub",
        [
            simplify_prim(
                "add", [simplify_prim("add", [sample_var(0), sample_var(1)]), sample_var(2)]
            ),
            const(Fraction(1)),
        ],
    )
    constraints = ConstraintSet(
        [Constraint(triple, Relation.LE), _sigmoid(3, Fraction(7, 10), Relation.LE)]
    )
    result = MeasureEngine().measure(constraints, 4)
    assert isinstance(result.value, Fraction)
    assert not result.exact and result.lower_bound
    assert isinstance(result.upper, Fraction)
    # truth = vol(simplex) * P(sig(s) <= 7/10) = 1/6 * ln(7/3)
    import math

    truth = (1 / 6) * math.log(7 / 3)
    assert float(result.value) <= truth <= float(result.upper)
