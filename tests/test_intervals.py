"""Tests for intervals, boxes, interval traces and the interval-based semantics."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.intervals import (
    Box,
    Interval,
    IntervalMachine,
    IntervalRunStatus,
    IntervalTrace,
    embed,
    refines,
    term_refines,
    unit_box,
    weight_of_traces,
)
from repro.intervals.terms import IntervalNumeral
from repro.intervals.trace import pairwise_compatible
from repro.semantics import CbNMachine, Trace
from repro.spcf import parse


class TestInterval:
    def test_construction_and_validation(self):
        interval = Interval(Fraction(1, 4), Fraction(1, 2))
        assert interval.width == Fraction(1, 4)
        assert interval.midpoint == Fraction(3, 8)
        with pytest.raises(ValueError):
            Interval(1, 0)

    def test_point_intervals(self):
        point = Interval.point(Fraction(1, 3))
        assert point.is_point()
        assert point.width == 0
        assert point.contains(Fraction(1, 3))

    def test_containment_and_intersection(self):
        a = Interval(0, Fraction(1, 2))
        b = Interval(Fraction(1, 4), 1)
        assert a.intersects(b)
        assert a.intersection(b) == Interval(Fraction(1, 4), Fraction(1, 2))
        assert not a.almost_disjoint(b)
        assert a.almost_disjoint(Interval(Fraction(1, 2), 1))
        with pytest.raises(ValueError):
            Interval(0, Fraction(1, 4)).intersection(Interval(Fraction(1, 2), 1))

    def test_split_and_subdivide_cover_the_interval(self):
        interval = Interval(0, 1)
        left, right = interval.split()
        assert left.hi == right.lo == Fraction(1, 2)
        pieces = list(interval.subdivide(4))
        assert len(pieces) == 4
        assert sum(piece.width for piece in pieces) == 1

    def test_within_unit(self):
        assert Interval(0, 1).within_unit()
        assert not Interval(-1, 0).within_unit()


class TestBox:
    def test_volume_is_the_product_of_widths(self):
        box = Box([Interval(0, Fraction(1, 2)), Interval(0, Fraction(1, 3))])
        assert box.volume == Fraction(1, 6)
        assert unit_box(3).volume == 1
        assert unit_box(0).volume == 1

    def test_split_preserves_volume(self):
        box = Box([Interval(0, 1), Interval(0, Fraction(1, 2))])
        left, right = box.split()
        assert left.volume + right.volume == box.volume

    def test_subdivide_grid(self):
        cells = list(unit_box(2).subdivide(2))
        assert len(cells) == 4
        assert sum(cell.volume for cell in cells) == 1

    def test_contains_and_corners(self):
        box = Box([Interval(0, 1), Interval(Fraction(1, 2), 1)])
        assert box.contains([Fraction(1, 2), Fraction(3, 4)])
        assert not box.contains([Fraction(1, 2), Fraction(1, 4)])
        assert len(list(box.corners())) == 4

    @given(st.integers(min_value=1, max_value=4))
    def test_split_of_unit_box_halves_the_volume(self, dimension):
        left, right = unit_box(dimension).split()
        assert left.volume == right.volume == Fraction(1, 2)


class TestIntervalTrace:
    def test_weight_is_the_product_of_widths(self):
        trace = IntervalTrace([Interval(0, Fraction(1, 2)), Interval(0, Fraction(1, 4))])
        assert trace.weight == Fraction(1, 8)
        assert IntervalTrace([]).weight == 1

    def test_entries_must_be_subunit(self):
        with pytest.raises(ValueError):
            IntervalTrace([Interval(0, 2)])

    def test_compatibility_matches_the_paper_example(self):
        # The four traces of Sec. 3.2 are pairwise compatible.
        third = Fraction(1, 3)
        half = Fraction(1, 2)
        traces = [
            IntervalTrace([Interval(0, 1), Interval(0, third)]),
            IntervalTrace([Interval(0, 1), Interval(third, half)]),
            IntervalTrace([Interval(0, 1), Interval(Fraction(3, 4), 1)]),
            IntervalTrace([Interval(0, 1)]),
        ]
        assert pairwise_compatible(traces)
        assert weight_of_traces(traces) == third + (half - third) + Fraction(1, 4) + 1

    def test_incompatible_traces_are_rejected(self):
        overlapping = [
            IntervalTrace([Interval(0, Fraction(1, 2))]),
            IntervalTrace([Interval(Fraction(1, 4), 1)]),
        ]
        assert not pairwise_compatible(overlapping)
        with pytest.raises(ValueError):
            weight_of_traces(overlapping)

    def test_refinement_of_standard_traces(self):
        interval_trace = IntervalTrace([Interval(0, Fraction(1, 2)), Interval(0, 1)])
        assert refines(Trace([Fraction(1, 4), Fraction(3, 4)]), interval_trace)
        assert not refines(Trace([Fraction(3, 4), Fraction(3, 4)]), interval_trace)
        assert not refines(Trace([Fraction(1, 4)]), interval_trace)

    def test_strong_compatibility_is_stricter_than_compatibility(self):
        # The Ex. C.13 traces: compatible but not strongly compatible.
        first = IntervalTrace([Interval(0, Fraction(1, 2)), Interval(0, Fraction(1, 2))])
        second = IntervalTrace([Interval(0, Fraction(1, 3)), Interval(Fraction(1, 2), 1)])
        assert first.compatible(second)
        assert not first.strongly_compatible(second)


GEO = parse("(mu phi x. if sample - 1/2 then x else phi (x + 1)) 1")


class TestIntervalSemantics:
    def test_embedding_replaces_numerals_by_point_intervals(self):
        embedded = embed(GEO)
        assert term_refines(GEO, embedded)
        assert any(
            isinstance(sub, IntervalNumeral)
            for sub in [embedded.arg]  # the applied argument 1 becomes [1,1]
        )

    def test_terminating_interval_trace(self):
        machine = IntervalMachine()
        trace = IntervalTrace([Interval(0, Fraction(1, 2))])
        result = machine.run(embed(GEO), trace)
        assert result.status is IntervalRunStatus.TERMINATED

    def test_ambiguous_guard_is_reported(self):
        machine = IntervalMachine()
        trace = IntervalTrace([Interval(Fraction(1, 4), Fraction(3, 4))])
        result = machine.run(embed(GEO), trace)
        assert result.status is IntervalRunStatus.AMBIGUOUS_BRANCH

    def test_unembedded_numerals_are_rejected(self):
        machine = IntervalMachine()
        result = machine.run(parse("if 1 then 0 else 0"), IntervalTrace([]))
        assert result.status is IntervalRunStatus.STUCK

    def test_score_with_possibly_negative_interval_fails(self):
        term = parse("score(sample - 1)")
        result = IntervalMachine().run(embed(term), IntervalTrace([Interval(0, 1)]))
        assert result.status is IntervalRunStatus.SCORE_FAILED

    # -- the refinement lemma (Lem. B.2): a terminating interval trace
    #    certifies termination, with the same step count, of every standard
    #    trace refining it.
    @given(st.lists(st.fractions(min_value=0, max_value=1), min_size=2, max_size=2))
    def test_refining_traces_terminate_with_the_same_step_count(self, draws):
        machine = IntervalMachine()
        interval_trace = IntervalTrace(
            [Interval(Fraction(3, 5), 1), Interval(0, Fraction(2, 5))]
        )
        interval_result = machine.run(embed(GEO), interval_trace)
        assert interval_result.terminated
        standard = Trace(
            [
                Fraction(3, 5) + draws[0] * Fraction(2, 5),
                draws[1] * Fraction(2, 5),
            ]
        )
        concrete = CbNMachine().run(GEO, standard)
        assert concrete.terminated
        assert concrete.steps == interval_result.steps
