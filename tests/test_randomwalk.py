"""Tests for step distributions, the Thm. 5.4 criterion and the order lemmas."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.randomwalk import (
    CountingDistribution,
    RandomWalkMatrix,
    StepDistribution,
    cumulative_dominates,
    dirac,
    estimate_absorption,
    family_uniform_ast,
    simulate_walk,
    termination_probability,
    uniform_ast_by_domination,
)


class TestStepDistribution:
    def test_construction_and_mass(self):
        step = StepDistribution({-1: Fraction(1, 2), 1: Fraction(1, 2)})
        assert step.total_mass == 1
        assert step.missing_mass == 0
        assert step.drift == 0
        assert step(-1) == Fraction(1, 2)
        assert step(5) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDistribution({0: Fraction(3, 2)})
        with pytest.raises(ValueError):
            StepDistribution({0: Fraction(-1, 2)})

    def test_thm_5_4_criterion(self):
        # (a) mass deficit -> not AST.
        assert not StepDistribution({-1: Fraction(1, 2)}).is_ast()
        # (b) the Dirac at 0 -> not AST.
        assert not StepDistribution({0: 1}).is_ast()
        # (c) positive drift -> not AST.
        assert not StepDistribution({-1: Fraction(1, 4), 1: Fraction(3, 4)}).is_ast()
        # Zero drift (the unbiased walk) -> AST.
        assert StepDistribution({-1: Fraction(1, 2), 1: Fraction(1, 2)}).is_ast()
        # Negative drift -> AST.
        assert StepDistribution({-1: Fraction(3, 4), 2: Fraction(1, 4)}).is_ast()

    def test_certificate_contents(self):
        certificate = StepDistribution({-1: Fraction(1, 2), 1: Fraction(1, 2)}).ast_certificate()
        assert certificate["ast"] is True
        assert certificate["drift"] == 0


class TestCountingDistribution:
    def test_shift(self):
        counting = CountingDistribution({0: Fraction(1, 2), 2: Fraction(1, 2)})
        shifted = counting.shifted()
        assert shifted(-1) == Fraction(1, 2)
        assert shifted(1) == Fraction(1, 2)
        assert counting.is_ast()

    def test_rank_and_expected_calls(self):
        counting = CountingDistribution({0: Fraction(1, 4), 3: Fraction(3, 4)})
        assert counting.rank == 3
        assert counting.expected_calls == Fraction(9, 4)
        assert not counting.is_ast()

    def test_naturals_only(self):
        with pytest.raises(ValueError):
            CountingDistribution({-1: Fraction(1, 2)})

    def test_dirac_and_mixing(self):
        mixed = dirac(0).scaled(Fraction(1, 3)).mixed_with(dirac(2).scaled(Fraction(2, 3)))
        assert mixed(0) == Fraction(1, 3)
        assert mixed(2) == Fraction(2, 3)
        assert mixed.total_mass == 1

    def test_table2_distributions_are_ast(self):
        # The five Papprox rows of Table 2.
        rows = [
            {0: Fraction(1, 2), 1: Fraction(1, 2)},
            {0: Fraction(1, 2), 2: Fraction(1, 2)},
            {0: Fraction(2, 3), 3: Fraction(1, 3)},
            {0: Fraction(3, 5), 2: Fraction(1, 5), 3: Fraction(1, 5)},
            {0: Fraction(13, 20), 2: Fraction(49, 800), 3: Fraction(231, 800)},
        ]
        for row in rows:
            assert CountingDistribution(row).is_ast()


class TestMatrixGroundTruth:
    def test_absorption_from_zero_is_immediate(self):
        step = StepDistribution({-1: Fraction(1, 2), 1: Fraction(1, 2)})
        assert RandomWalkMatrix(step).absorption_lower_bound(0, 0) == 1

    def test_negative_drift_walk_absorbs_quickly(self):
        step = StepDistribution({-1: Fraction(9, 10), 1: Fraction(1, 10)})
        assert termination_probability(step, start=1, steps=200) > Fraction(99, 100)

    def test_positive_drift_walk_does_not_absorb(self):
        step = StepDistribution({-1: Fraction(1, 4), 1: Fraction(3, 4)})
        # The true absorption probability from 1 is 1/3.
        bound = termination_probability(step, start=1, steps=400)
        assert Fraction(3, 10) < bound < Fraction(1, 3) + Fraction(1, 100)

    def test_monotone_in_steps(self):
        step = StepDistribution({-1: Fraction(1, 2), 1: Fraction(1, 2)})
        assert termination_probability(step, 1, 10) <= termination_probability(step, 1, 100)

    def test_mass_deficit_leaks_to_failure(self):
        step = StepDistribution({-1: Fraction(1, 2)})
        assert termination_probability(step, start=1, steps=100) == Fraction(1, 2)


class TestOrderAndUniformAST:
    def test_cumulative_domination(self):
        lower = CountingDistribution({0: Fraction(1, 2), 2: Fraction(1, 2)})
        upper = CountingDistribution({0: Fraction(3, 4), 2: Fraction(1, 4)})
        assert cumulative_dominates(lower, upper)
        assert not cumulative_dominates(upper, lower)
        assert cumulative_dominates(lower, lower)

    def test_lemma_5_10(self):
        witness = CountingDistribution({0: Fraction(1, 2), 2: Fraction(1, 2)})
        family = [
            CountingDistribution({0: Fraction(1, 2), 2: Fraction(1, 2)}),
            CountingDistribution({0: Fraction(3, 5), 2: Fraction(2, 5)}),
            CountingDistribution({0: Fraction(3, 4), 1: Fraction(1, 4)}),
        ]
        assert uniform_ast_by_domination(witness, family)
        bad_witness = CountingDistribution({0: Fraction(1, 4), 2: Fraction(3, 4)})
        assert not uniform_ast_by_domination(bad_witness, family)

    def test_lemma_5_6(self):
        family = [
            CountingDistribution({0: Fraction(1, 2), 2: Fraction(1, 2)}),
            CountingDistribution({0: Fraction(9, 10), 3: Fraction(1, 10)}),
        ]
        assert family_uniform_ast(family)
        family.append(CountingDistribution({0: Fraction(1, 10), 3: Fraction(9, 10)}))
        assert not family_uniform_ast(family)
        assert family_uniform_ast([])


class TestSimulation:
    def test_simulation_matches_criterion(self):
        ast_step = StepDistribution({-1: Fraction(3, 5), 1: Fraction(2, 5)})
        not_ast_step = StepDistribution({-1: Fraction(1, 5), 1: Fraction(4, 5)})
        assert estimate_absorption(ast_step, runs=400, max_steps=5_000) > 0.95
        assert estimate_absorption(not_ast_step, runs=400, max_steps=5_000) < 0.5

    def test_single_walk_outcome_fields(self):
        import random

        outcome = simulate_walk(
            StepDistribution({-1: 1}), start=3, rng=random.Random(0)
        )
        assert outcome.absorbed_at_zero
        assert outcome.steps == 3


# -- property-based agreement between the criterion and the ground truth ------


@st.composite
def _random_counting_distribution(draw):
    support = draw(st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=3, unique=True))
    weights = [draw(st.integers(min_value=1, max_value=5)) for _ in support]
    total = sum(weights)
    return CountingDistribution(
        {point: Fraction(weight, total) for point, weight in zip(support, weights)}
    )


@settings(max_examples=40, deadline=None)
@given(_random_counting_distribution())
def test_criterion_agrees_with_truncated_iteration(counting):
    step = counting.shifted()
    bound = termination_probability(step, start=1, steps=300)
    if step.is_ast():
        # Absorption probability tends to 1; with 300 steps it is already high
        # unless the drift is exactly 0 (the null-recurrent case converges slowly).
        if step.drift < 0:
            assert bound > Fraction(9, 10)
        else:
            assert bound > Fraction(1, 2)
    else:
        if step.is_dirac_at(0):
            assert bound == 0
        elif step.drift > 0 and step.total_mass == 1:
            # Transient walk: absorption probability is bounded away from 1.
            assert bound < Fraction(97, 100)
