"""Tests for the recursion-tree decomposition of App. D.1.

Covers number trees and the bijections with random-walk runs, the per-size
tree masses and the extinction probability (Lem. D.6), the summary semantics
of Fig. 16, and the call-tree sampler that cross-checks Prop. D.5 against
actual runs of the benchmark programs.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counting.numbertrees import (
    NumberTree,
    absolute_run_from_relative,
    empirical_tree_distribution,
    enumerate_trees,
    extinction_probability,
    from_relative_run,
    is_valid_relative_run,
    leaf,
    relative_run_from_absolute,
    sample_call_tree,
    termination_mass_up_to,
    tree_mass_by_size,
    tree_probability,
    tree_probability_inf,
)
from repro.counting.summary import (
    Summary,
    SummaryRunStatus,
    run_body_with_summaries,
)
from repro.programs.library import (
    geometric,
    golden_ratio,
    printer_nonaffine,
    three_print,
)
from repro.randomwalk import CountingDistribution, RandomWalkMatrix


# ---------------------------------------------------------------------------
# Hypothesis strategy for small number trees.
# ---------------------------------------------------------------------------

number_trees = st.recursive(
    st.just(leaf()),
    lambda children: st.lists(children, min_size=1, max_size=3).map(
        lambda kids: NumberTree(tuple(kids))
    ),
    max_leaves=12,
)


# ---------------------------------------------------------------------------
# Basic structure.
# ---------------------------------------------------------------------------


class TestNumberTreeStructure:
    def test_leaf_has_no_calls(self):
        tree = leaf()
        assert tree.label == 0
        assert tree.node_count == 1
        assert tree.recursive_calls == 0
        assert tree.depth == 0

    def test_fig_15b_tree(self):
        # 2 < [0, 1 < [0]]: the tree of Fig. 15b.
        tree = NumberTree((leaf(), NumberTree((leaf(),))))
        assert tree.label == 2
        assert tree.node_count == 4
        assert tree.recursive_calls == 3
        assert tree.depth == 2
        assert list(tree.labels()) == [2, 0, 1, 0]

    def test_render_round_trips_visually(self):
        tree = NumberTree((leaf(), NumberTree((leaf(),))))
        assert tree.render() == "2<0, 1<0>>"

    def test_distinct_trees_are_distinct_values(self):
        first = NumberTree((leaf(), NumberTree((leaf(),))))
        second = NumberTree((NumberTree((leaf(),)), leaf()))
        assert first != second
        assert first.node_count == second.node_count


# ---------------------------------------------------------------------------
# Bijections with runs (App. D.1).
# ---------------------------------------------------------------------------


class TestRunBijections:
    def test_leaf_relative_run(self):
        assert leaf().to_relative_run() == (-1,)

    def test_fig_15b_relative_run(self):
        tree = NumberTree((leaf(), NumberTree((leaf(),))))
        assert tree.to_relative_run() == (1, -1, 0, -1)

    def test_absolute_run_starts_at_one_ends_at_zero(self):
        tree = NumberTree((leaf(), NumberTree((leaf(),))))
        states = tree.to_absolute_run()
        assert states[0] == 1
        assert states[-1] == 0
        assert all(state > 0 for state in states[:-1])

    def test_invalid_relative_runs_rejected(self):
        assert not is_valid_relative_run(())
        assert not is_valid_relative_run((0,))
        assert not is_valid_relative_run((-2,))
        assert not is_valid_relative_run((-1, -1))
        assert not is_valid_relative_run((1, -1, -1, -1))

    def test_from_relative_run_rejects_invalid(self):
        with pytest.raises(ValueError):
            from_relative_run((0, 0))

    def test_absolute_relative_round_trip(self):
        run = (2, -1, 0, -1, -1)
        assert relative_run_from_absolute(absolute_run_from_relative(run)) == run

    def test_relative_run_from_absolute_requires_start_one(self):
        with pytest.raises(ValueError):
            relative_run_from_absolute((2, 1, 0))

    @given(number_trees)
    @settings(max_examples=200, deadline=None)
    def test_tree_to_run_round_trip(self, tree):
        run = tree.to_relative_run()
        assert is_valid_relative_run(run)
        assert from_relative_run(run) == tree

    @given(number_trees)
    @settings(max_examples=100, deadline=None)
    def test_run_length_equals_node_count(self, tree):
        assert len(tree.to_relative_run()) == tree.node_count


# ---------------------------------------------------------------------------
# Enumeration.
# ---------------------------------------------------------------------------


class TestEnumeration:
    def test_counts_follow_catalan_numbers(self):
        # Number trees with exactly n nodes are ordered rooted trees: Catalan(n-1).
        by_size = {}
        for tree in enumerate_trees(6):
            by_size[tree.node_count] = by_size.get(tree.node_count, 0) + 1
        assert by_size == {1: 1, 2: 1, 3: 2, 4: 5, 5: 14, 6: 42}

    def test_enumeration_has_no_duplicates(self):
        trees = list(enumerate_trees(6))
        assert len(trees) == len(set(trees))

    def test_max_children_bound(self):
        trees = list(enumerate_trees(5, max_children=1))
        # Only chains are possible with unary branching.
        assert all(all(label <= 1 for label in tree.labels()) for tree in trees)
        assert len(trees) == 5

    def test_empty_enumeration(self):
        assert list(enumerate_trees(0)) == []


# ---------------------------------------------------------------------------
# Probabilities, per-size masses, extinction.
# ---------------------------------------------------------------------------


class TestTreeProbability:
    def test_example_d4(self):
        # Ex. D.4: s(0) = s(2) = 1/2 variant -- the paper's worked value uses
        # t(2) = 1/2, t(1) = 1/4, t(0) = 1/4 and the Fig. 15b tree.
        distribution = CountingDistribution(
            {2: Fraction(1, 2), 1: Fraction(1, 4), 0: Fraction(1, 4)}
        )
        tree = NumberTree((leaf(), NumberTree((leaf(),))))
        assert tree_probability(tree, distribution) == Fraction(1, 128)

    def test_zero_outside_support(self):
        distribution = CountingDistribution({0: Fraction(1, 2), 2: Fraction(1, 2)})
        chain = NumberTree((leaf(),))
        assert tree_probability(chain, distribution) == 0

    def test_inf_probability_uses_worst_member(self):
        family = [
            CountingDistribution({0: Fraction(1, 2), 2: Fraction(1, 2)}),
            CountingDistribution({0: Fraction(3, 4), 2: Fraction(1, 4)}),
        ]
        tree = NumberTree((leaf(), leaf()))
        # inf at the root label 2 is 1/4, at each leaf label 0 is 1/2.
        assert tree_probability_inf(tree, family) == Fraction(1, 16)

    def test_inf_requires_nonempty_family(self):
        with pytest.raises(ValueError):
            tree_probability_inf(leaf(), [])

    def test_mass_by_size_matches_enumeration(self):
        distribution = CountingDistribution(
            {0: Fraction(1, 2), 1: Fraction(1, 4), 2: Fraction(1, 4)}
        )
        masses = tree_mass_by_size(distribution, 6)
        by_enumeration = [Fraction(0)] * 6
        for tree in enumerate_trees(6):
            by_enumeration[tree.node_count - 1] += tree_probability(tree, distribution)
        assert masses == by_enumeration

    def test_termination_mass_monotone_and_bounded(self):
        distribution = CountingDistribution({0: Fraction(1, 2), 2: Fraction(1, 2)})
        previous = Fraction(0)
        for budget in (1, 3, 5, 9, 15):
            mass = termination_mass_up_to(distribution, budget)
            assert previous <= mass <= 1
            previous = mass

    def test_termination_mass_matches_walk_absorption(self):
        # The cumulative tree mass and the truncated walk iteration both lower
        # bound (and converge to) the same absorption probability.
        distribution = CountingDistribution({0: Fraction(3, 5), 2: Fraction(2, 5)})
        walk = RandomWalkMatrix(distribution.shifted())
        tree_mass = float(termination_mass_up_to(distribution, 41))
        walk_mass = float(walk.absorption_lower_bound(1, 400))
        assert abs(tree_mass - walk_mass) < 5e-2
        assert tree_mass <= 1.0

    def test_extinction_probability_golden_ratio(self):
        # s = 1/2 d0 + 1/2 d3: extinction probability is (sqrt 5 - 1)/2.
        distribution = CountingDistribution({0: Fraction(1, 2), 3: Fraction(1, 2)})
        value = extinction_probability(distribution)
        assert value == pytest.approx((math.sqrt(5) - 1) / 2, abs=1e-9)

    def test_extinction_probability_subcritical_printer(self):
        # Ex. 1.1 (2) at p = 1/4: termination probability p / (1 - p) = 1/3.
        distribution = CountingDistribution({0: Fraction(1, 4), 2: Fraction(3, 4)})
        assert extinction_probability(distribution) == pytest.approx(1 / 3, abs=1e-9)

    def test_extinction_probability_ast_case(self):
        # At the critical parameter the Kleene iterates approach 1 like 2/k,
        # so the fixpoint iteration converges slowly; allow the matching slack.
        distribution = CountingDistribution({0: Fraction(1, 2), 2: Fraction(1, 2)})
        assert extinction_probability(distribution) == pytest.approx(1.0, abs=1e-3)
        assert extinction_probability(distribution) <= 1.0

    @given(
        st.fractions(min_value=Fraction(1, 10), max_value=Fraction(9, 10)),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_termination_mass_below_extinction(self, p, branches):
        distribution = CountingDistribution({0: p, branches: 1 - p})
        mass = float(termination_mass_up_to(distribution, 13))
        assert mass <= extinction_probability(distribution) + 1e-9


# ---------------------------------------------------------------------------
# The summary semantics (Fig. 16).
# ---------------------------------------------------------------------------


class TestSummarySemantics:
    def test_geometric_no_call(self):
        program = geometric(Fraction(1, 2))
        result = run_body_with_summaries(program.fix, 1, [Fraction(1, 4)])
        assert result.completed
        assert result.value == 1
        assert result.calls == 0
        assert result.draws_used == 1

    def test_geometric_one_call_uses_summary(self):
        program = geometric(Fraction(1, 2))
        summary = Summary(argument=Fraction(2), result=Fraction(7))
        result = run_body_with_summaries(program.fix, 1, [Fraction(3, 4), summary])
        assert result.completed
        assert result.value == 7
        assert result.summaries_used == (summary,)

    def test_argument_mismatch_detected(self):
        program = geometric(Fraction(1, 2))
        summary = Summary(argument=Fraction(5), result=Fraction(7))
        result = run_body_with_summaries(program.fix, 1, [Fraction(3, 4), summary])
        assert result.status is SummaryRunStatus.ARGUMENT_MISMATCH

    def test_argument_check_can_be_disabled(self):
        program = geometric(Fraction(1, 2))
        summary = Summary(argument=Fraction(5), result=Fraction(7))
        result = run_body_with_summaries(
            program.fix, 1, [Fraction(3, 4), summary], check_arguments=False
        )
        assert result.completed
        assert result.value == 7

    def test_summary_in_place_of_draw_is_an_error(self):
        program = geometric(Fraction(1, 2))
        result = run_body_with_summaries(
            program.fix, 1, [Summary(argument=Fraction(2), result=Fraction(3))]
        )
        assert result.status is SummaryRunStatus.EXPECTED_DRAW

    def test_draw_in_place_of_summary_is_an_error(self):
        program = geometric(Fraction(1, 2))
        result = run_body_with_summaries(
            program.fix, 1, [Fraction(3, 4), Fraction(1, 2)]
        )
        assert result.status is SummaryRunStatus.EXPECTED_SUMMARY

    def test_trace_exhaustion(self):
        program = geometric(Fraction(1, 2))
        result = run_body_with_summaries(program.fix, 1, [])
        assert result.status is SummaryRunStatus.TRACE_EXHAUSTED

    def test_nonaffine_two_summaries(self):
        program = printer_nonaffine(Fraction(1, 2))
        summaries = [
            Summary(argument=Fraction(2), result=Fraction(4)),
            Summary(argument=Fraction(4), result=Fraction(9)),
        ]
        result = run_body_with_summaries(
            program.fix, 1, [Fraction(3, 4), *summaries]
        )
        assert result.completed
        assert result.calls == 2
        # The outer call receives the result of the inner one.
        assert result.value == 9


# ---------------------------------------------------------------------------
# The call-tree sampler against the analytic tree probabilities.
# ---------------------------------------------------------------------------


class TestCallTreeSampler:
    def test_geometric_trees_are_chains(self):
        program = geometric(Fraction(1, 2))
        rng = random.Random(7)
        for _ in range(50):
            run = sample_call_tree(program.fix, 1, rng=rng)
            assert run is not None
            assert all(label <= 1 for label in run.tree.labels())

    def test_golden_ratio_tree_labels(self):
        program = golden_ratio()
        rng = random.Random(3)
        seen_labels = set()
        for _ in range(200):
            run = sample_call_tree(program.fix, 0, rng=rng, max_calls=2_000)
            if run is None:
                continue
            seen_labels.update(run.tree.labels())
        assert seen_labels <= {0, 3}
        assert 3 in seen_labels

    def test_value_counts_the_days(self):
        # Ex. 1.1 (1): the returned value is the argument plus the number of
        # failed attempts, which equals the recursion depth.
        program = geometric(Fraction(1, 2))
        rng = random.Random(11)
        for _ in range(50):
            run = sample_call_tree(program.fix, 1, rng=rng)
            assert run is not None
            assert run.value == 1 + run.tree.recursive_calls

    def test_empirical_matches_tree_probability_for_printer(self):
        # Ex. 1.1 (2) at p = 3/5: the counting pattern is argument-independent
        # (3/5 d0 + 2/5 d2), so the probability of each call-tree shape is the
        # product formula of Prop. D.5 with equality.
        p = Fraction(3, 5)
        program = printer_nonaffine(p)
        distribution = CountingDistribution({0: p, 2: 1 - p})
        empirical = empirical_tree_distribution(program.fix, 1, runs=4_000, seed=5)
        assert empirical, "no terminating runs sampled"
        for tree in (leaf(), NumberTree((leaf(), leaf()))):
            analytic = float(tree_probability(tree, distribution))
            observed = float(empirical.get(tree, Fraction(0)))
            assert observed == pytest.approx(analytic, abs=0.04)

    def test_empirical_mass_bounded_by_one(self):
        program = three_print(Fraction(3, 4))
        empirical = empirical_tree_distribution(program.fix, 1, runs=500, seed=1)
        assert sum(empirical.values()) <= 1

    def test_nonterminating_budget_returns_none(self):
        # At p = 0 the non-affine printer never terminates.
        program = printer_nonaffine(Fraction(0))
        run = sample_call_tree(
            program.fix, 1, rng=random.Random(0), max_calls=200, max_steps=20_000
        )
        assert run is None
