"""Ablation A2: exploration-depth scaling of the lower-bound engine.

Lower-bound computation is "an intrinsically non-terminating process" whose
user picks a target depth (Sec. 7.1).  The ablation measures how the certified
bound and the number of explored paths grow with the depth budget for a
fast-converging program (``geo``) and a slowly-converging non-affine one
(Ex. 1.1 (2) at the critical parameter 1/2, which is AST but not PAST).
"""

from fractions import Fraction

import pytest

from repro.lowerbound import LowerBoundEngine
from repro.programs import geometric, printer_nonaffine

_PROGRAMS = {
    "geo(1/2)": geometric(Fraction(1, 2)),
    "ex1.1(1/2)": printer_nonaffine(Fraction(1, 2)),
}

_DEPTHS = (20, 40, 60)


@pytest.mark.parametrize("name", list(_PROGRAMS))
def test_depth_scaling(benchmark, name):
    program = _PROGRAMS[name]
    engine = LowerBoundEngine()

    def sweep_depths():
        return [engine.lower_bound(program.applied, max_steps=depth) for depth in _DEPTHS]

    results = benchmark(sweep_depths)

    bounds = [float(result.probability) for result in results]
    paths = [result.path_count for result in results]
    print(f"\n[A2] {name}: depths {_DEPTHS} -> bounds {[f'{b:.6f}' for b in bounds]}, paths {paths}")
    assert bounds == sorted(bounds)
    assert paths == sorted(paths)
    # The critical non-affine program converges much more slowly than geo.
    if name == "geo(1/2)":
        assert bounds[-1] > 0.999
    else:
        assert bounds[-1] < 0.9
