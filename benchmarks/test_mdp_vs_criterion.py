"""Ablation A3: the Thm. 5.4 criterion vs. the one-counter MDP detour.

Sec. 5.1 notes that AST of a family of step distributions "can be shown by
reduction to a one-counter Markov decision process" (the route of earlier
work) but that the direct criterion is linear time.  This benchmark runs both
routes on the same families -- the criterion plus Lem. 5.6 on one side, the
adversarial value iteration of :mod:`repro.mdp` on the other -- checks they
agree, and makes the cost gap visible in the timings.
"""

from fractions import Fraction

import pytest

from repro.mdp import from_counting_distributions
from repro.randomwalk import CountingDistribution


def _family(size: int, ast: bool):
    """A family of ``size`` counting distributions, uniformly AST or not."""
    members = []
    for index in range(size):
        stop = Fraction(5 + index, 10 + index) if ast else Fraction(1, 3 + index)
        members.append(CountingDistribution({0: stop, 2: 1 - stop}))
    return members


@pytest.mark.parametrize("size", [2, 8, 32])
def test_criterion_route(benchmark, size):
    mdp = from_counting_distributions(_family(size, ast=True))

    decision = benchmark(mdp.decide_uniform_ast)

    print(f"\n[A3] criterion on a family of {size}: {decision}")
    assert decision.uniform_ast


@pytest.mark.parametrize("size", [2, 8])
def test_value_iteration_route(benchmark, size):
    mdp = from_counting_distributions(_family(size, ast=True))

    value = benchmark(mdp.adversarial_value, 1, 80, None, False)

    print(f"\n[A3] 80-step adversarial value on a family of {size}: {float(value):.4f}")
    # The walk is uniformly AST, so the finite-horizon value is already high
    # and (being a lower bound) never exceeds 1.
    assert 0.8 < float(value) <= 1.0


def test_routes_agree_on_a_failing_family(benchmark):
    family = _family(4, ast=False)
    mdp = from_counting_distributions(family)

    decision = benchmark(mdp.decide_uniform_ast)

    value = float(mdp.adversarial_value(1, 200, exact=False))
    worst_stop = min(float(member(0)) for member in family)
    limit = worst_stop / (1 - worst_stop)
    print(
        f"\n[A3] failing family: criterion says {decision.uniform_ast}, "
        f"adversarial value {value:.4f} <= {limit:.4f}"
    )
    assert not decision.uniform_ast
    assert value <= limit + 1e-9
