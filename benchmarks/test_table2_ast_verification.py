"""Experiment E2: Table 2 -- automatic AST verification.

One benchmark per row of Table 2.  Each run reports the computed worst-case
counting distribution ``Papprox`` (which must coincide with the paper's
exactly -- they are rational numbers) and the verification verdict.
"""

from fractions import Fraction

import pytest

from repro.astcheck import verify_ast
from repro.programs import table2_programs

# name -> the Papprox reported in Table 2.
_EXPECTED = {
    "ex1.1-(1)(1/2)": {0: Fraction(1, 2), 1: Fraction(1, 2)},
    "ex1.1-(2)(1/2)": {0: Fraction(1, 2), 2: Fraction(1, 2)},
    "3print(2/3)": {0: Fraction(2, 3), 3: Fraction(1, 3)},
    "ex5.1(0.6)": {0: Fraction(3, 5), 2: Fraction(1, 5), 3: Fraction(1, 5)},
    "ex5.15(0.65)": {0: Fraction(13, 20), 2: Fraction(49, 800), 3: Fraction(231, 800)},
}


@pytest.mark.parametrize("name", list(_EXPECTED))
def test_table2_row(benchmark, name):
    program = table2_programs()[name]

    result = benchmark(verify_ast, program)

    print(f"\n[Table 2] {name:16s} Papprox = {result.papprox}  verified = {result.verified}")
    assert result.verified
    assert result.papprox.as_dict() == _EXPECTED[name]
