"""Perf benchmark for the block-decomposed adaptive sweep (PR 4).

The workload is the non-affine retry library (``sig-retry``,
``square-retry``, ``sig-sum-retry``): every path constraint set of these
programs needs the certified subdivision sweep, since ``sig``/``mul``-of-
samples admit no affine half-space form.  Each program's lower bound is
computed three ways:

* **joint-uncached** -- ``block_sweep=False`` with the memo disabled: the
  historical full-dimensional fixed-depth sweep,
* **joint** -- ``block_sweep=False`` with the memo enabled: must be
  *bit-identical* to joint-uncached (the ``--no-block-sweep`` guarantee),
* **block** -- the default engine: per-block sweeping with the position-
  independent sweep memo.

Asserted (deterministically, so it can run in CI):

* joint and joint-uncached agree bit-for-bit (probability, gap, paths),
* the block bound is never below the joint bound (the per-block product
  provably tightens at equal budget) and the certified measure gap never
  grows,
* across the multi-block programs, the block engine examines at least
  ``4x`` fewer sweep boxes than the joint engine,
* a warm rerun seeded from the persistent ``sweeps-<prefix>.json`` store
  performs **zero** base sweep computations and reproduces the cold bounds
  byte-for-byte.

Counters and within-run timings go to ``BENCH_sweep.json`` at the
repository root; ``benchmarks/compare_bench.py`` diffs that file against the
committed baseline in CI's ``perf-trajectory`` job.
"""

import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.batch import BatchCache, run_batch
from repro.batch.jobs import decode_number
from repro.batch.suites import sweep_suite
from repro.geometry import MeasureEngine, MeasureOptions
from repro.lowerbound import LowerBoundEngine
from repro.programs.extra import nonaffine_programs

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
_BOX_REDUCTION_FLOOR = 4.0
_DEPTH = 35


def _bound(program, options=None, cache_enabled=True, engine=None):
    """One lower-bound run; returns (result, engine, elapsed_seconds)."""
    if engine is None:
        engine = MeasureEngine(options, cache_enabled=cache_enabled)
    lower = LowerBoundEngine(strategy=program.strategy, measure_engine=engine)
    started = time.perf_counter()
    result = lower.lower_bound(program.applied, max_steps=_DEPTH)
    return result, engine, time.perf_counter() - started


def test_block_sweep_cuts_boxes_and_tightens_bounds():
    joint_options = MeasureOptions(block_sweep=False)
    rows = {}
    cold_bounds = {}
    for name, program in sorted(nonaffine_programs().items()):
        uncached, uncached_engine, _ = _bound(
            program, joint_options, cache_enabled=False
        )
        joint, joint_engine, joint_elapsed = _bound(program, joint_options)
        block, block_engine, block_elapsed = _bound(program)

        # The --no-block-sweep path must reproduce the historical sweep
        # bit-for-bit, cached or not.
        assert joint.probability == uncached.probability, name
        assert joint.measure_gap == uncached.measure_gap, name
        assert joint.path_count == uncached.path_count, name
        assert (
            joint_engine.stats.sweep_boxes_examined
            <= uncached_engine.stats.sweep_boxes_examined
        ), name

        # Tightening: the per-block product never loses to the joint sweep
        # at equal budget, and the certified slack never grows.
        assert block.probability >= joint.probability, name
        assert block.measure_gap <= joint.measure_gap, name
        if program.known_probability is not None:
            assert float(block.probability) <= program.known_probability + 1e-9, name

        joint_boxes = joint_engine.stats.sweep_boxes_examined
        block_boxes = block_engine.stats.sweep_boxes_examined
        assert block_boxes > 0, name  # the workload must actually sweep
        multi_block = block_engine.stats.multi_block_sets > 0
        rows[name] = {
            "paths": block.path_count,
            "joint_boxes": joint_boxes,
            "block_boxes": block_boxes,
            "box_reduction": round(joint_boxes / block_boxes, 2),
            "joint_bound": float(joint.probability),
            "block_bound": float(block.probability),
            "joint_gap": float(joint.measure_gap),
            "block_gap": float(block.measure_gap),
            "multi_block": multi_block,
            "sweep_blocks": block_engine.stats.sweep_blocks,
            "heap_peak": block_engine.stats.sweep_heap_peak,
            "joint_ms": round(joint_elapsed * 1000, 3),
            "block_ms": round(block_elapsed * 1000, 3),
        }
        cold_bounds[name] = block.probability
        print(
            f"{name:20s} boxes {joint_boxes:7d} -> {block_boxes:5d} "
            f"({joint_boxes / block_boxes:6.1f}x)  "
            f"LB {float(joint.probability):.6f} -> {float(block.probability):.6f}  "
            f"gap {float(joint.measure_gap):.2e} -> {float(block.measure_gap):.2e}"
        )

    multi = {name: row for name, row in rows.items() if row["multi_block"]}
    assert multi, "the non-affine library should contain multi-block programs"
    joint_total = sum(row["joint_boxes"] for row in multi.values())
    block_total = sum(row["block_boxes"] for row in multi.values())
    reduction = joint_total / block_total if block_total else float("inf")
    assert reduction >= _BOX_REDUCTION_FLOOR, (
        f"sweep boxes on multi-block programs only dropped {reduction:.2f}x "
        f"({joint_total} -> {block_total}), expected >= {_BOX_REDUCTION_FLOOR}x"
    )

    # -- warm rerun from the persistent sweep store --------------------------
    # A cold batch populates the sharded store; a fresh engine seeded the way
    # worker processes are (import at startup) must then answer every block
    # sweep from the store: zero base sweep computations, identical bounds.
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-sweep-bench-"))
    try:
        cache = BatchCache(cache_dir)
        specs = sweep_suite(depth=_DEPTH)
        cold_report = run_batch(specs, jobs=1, cache=cache)
        assert all(result.ok for result in cold_report.results)
        assert sorted(cache_dir.glob("sweeps-*.json")), "sweep shards must persist"

        warm_engine = MeasureEngine()
        warm_engine.import_cache_entries(cache.load_measures(warm_engine))
        warm_engine.import_sweep_entries(cache.load_sweeps(warm_engine))
        programs = nonaffine_programs()
        for result in cold_report.results:
            program = programs[result.spec.program]
            warm, _, _ = _bound(program, engine=warm_engine)
            assert warm.probability == decode_number(
                result.payload["probability"]
            ), result.spec.program
            assert warm.probability == cold_bounds[result.spec.program]
        warm_sweep_blocks = warm_engine.stats.sweep_blocks
        assert warm_sweep_blocks == 0, (
            f"warm rerun recomputed {warm_sweep_blocks} base sweeps; "
            "expected every block to come from the persistent store"
        )
        assert warm_engine.stats.persistent_hits > 0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    payload = {
        "benchmark": "block-decomposed adaptive sweep",
        "workload": "lower bounds over the non-affine retry library",
        "depth": _DEPTH,
        "box_reduction_floor": _BOX_REDUCTION_FLOOR,
        "multi_block_programs": len(multi),
        "multi_block_joint_boxes": joint_total,
        "multi_block_block_boxes": block_total,
        "aggregate_box_reduction": round(reduction, 2),
        "warm_sweep_blocks": warm_sweep_blocks,
        "programs": rows,
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"multi-block programs  : {len(multi)}  sweep boxes "
        f"{joint_total} -> {block_total} ({reduction:.1f}x), warm base sweeps "
        f"{warm_sweep_blocks}"
    )
