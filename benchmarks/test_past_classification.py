"""Extension experiment E7: combined AST / PAST classification.

The paper establishes what is decidable about PAST (Thm. 3.10) but its
prototypes only verify AST; this extension benchmark runs the counting-based
PAST verification/refutation of :mod:`repro.pastcheck` over the printer
family and the Table 2 programs and records the verdicts, which are the
qualitative claims of Ex. 1.1: AST iff ``p >= 1/2`` and PAST iff ``p > 1/2``.
"""

from fractions import Fraction

import pytest

from repro.pastcheck import TerminationClass, classify_termination
from repro.programs import geometric, printer_nonaffine, running_example

_EXPECTED = {
    "printer(2/5)": (printer_nonaffine(Fraction(2, 5)), TerminationClass.UNKNOWN),
    "printer(1/2)": (printer_nonaffine(Fraction(1, 2)), TerminationClass.AST_NOT_PAST),
    "printer(3/5)": (printer_nonaffine(Fraction(3, 5)), TerminationClass.PAST_VERIFIED),
    "geo(1/2)": (geometric(Fraction(1, 2)), TerminationClass.PAST_VERIFIED),
    "ex5.1(0.6)": (running_example(Fraction(3, 5)), TerminationClass.AST_PAST_UNKNOWN),
}


@pytest.mark.parametrize("name", list(_EXPECTED))
def test_classification_row(benchmark, name):
    program, expected = _EXPECTED[name]

    classification = benchmark(classify_termination, program)

    print(f"\n[E7] {name:14s} -> {classification.summary()}")
    assert classification.verdict is expected
