"""Perf benchmark for the vectorized sweep kernel (PR 9).

The workload is the non-affine retry library at a deepened sweep budget
(``sweep_depth=18``): deep enough that classification dominates the
refinement loop, which is exactly the regime the chunked kernel targets.
Every program's lower bound is computed twice per round -- once with
``--no-sweep-kernel`` (the scalar loop) and once with the default kernel
pipeline -- and the faster of three rounds counts, so scheduler noise
cannot manufacture a regression.

Asserted:

* the kernel run is **bit-identical** to the scalar run on every
  observable: probability, measure gap, path count, and the exact number
  of sweep boxes examined (the kernel only classifies; the scalar
  ``Fraction`` path still does all accumulation),
* the kernel actually engages on the suite (``kernel_batches > 0``; the
  warmup threshold deliberately keeps sweeps smaller than
  ``_KERNEL_WARMUP`` boxes on the scalar path, so only programs whose
  block sweeps outgrow it are *expected* to batch),
* aggregate throughput (sweep boxes per second) over the kernel-engaged
  programs improves by at least ``3x`` over the scalar loop.

Both sides of the speedup run in the same process on the same machine, so
the ratio transfers across runners the same way the warm/cold batch ratio
does.  Counters and timings go to ``BENCH_kernel.json`` at the repository
root; ``benchmarks/compare_bench.py`` diffs that file against the
committed baseline in CI's ``perf-trajectory`` job.
"""

import json
import time
from pathlib import Path

from repro.geometry import MeasureEngine, MeasureOptions
from repro.geometry.kernel import kernel_available
from repro.lowerbound import LowerBoundEngine
from repro.programs.extra import nonaffine_programs

import pytest

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
_SPEEDUP_FLOOR = 3.0
_SWEEP_DEPTH = 18
_TERM_DEPTH = 35
_ROUNDS = 3


def _run(program, use_kernel):
    """One cold lower-bound run; returns (result, stats, elapsed_seconds)."""
    options = MeasureOptions(sweep_depth=_SWEEP_DEPTH, sweep_kernel=use_kernel)
    engine = MeasureEngine(options, cache_enabled=False)
    lower = LowerBoundEngine(strategy=program.strategy, measure_engine=engine)
    started = time.perf_counter()
    result = lower.lower_bound(program.applied, max_steps=_TERM_DEPTH)
    return result, engine.stats, time.perf_counter() - started


@pytest.mark.skipif(not kernel_available(), reason="numpy is unavailable")
def test_kernel_triples_sweep_throughput():
    rows = {}
    for name, program in sorted(nonaffine_programs().items()):
        best = {}
        for label, use_kernel in (("scalar", False), ("kernel", True)):
            for _ in range(_ROUNDS):
                result, stats, elapsed = _run(program, use_kernel)
                record = best.get(label)
                if record is None or elapsed < record["elapsed"]:
                    best[label] = {
                        "elapsed": elapsed,
                        "result": result,
                        "boxes": stats.sweep_boxes_examined,
                        "kernel_batches": stats.kernel_batches,
                        "kernel_boxes": stats.kernel_boxes,
                    }
        scalar, kernel = best["scalar"], best["kernel"]

        # Bit-identity on every observable: the kernel is a classifier.
        assert kernel["result"].probability == scalar["result"].probability, name
        assert kernel["result"].measure_gap == scalar["result"].measure_gap, name
        assert kernel["result"].path_count == scalar["result"].path_count, name
        assert kernel["boxes"] == scalar["boxes"], name
        assert scalar["kernel_batches"] == 0, name

        speedup = scalar["elapsed"] / kernel["elapsed"]
        rows[name] = {
            "boxes": scalar["boxes"],
            "bound": float(scalar["result"].probability),
            "kernel_batches": kernel["kernel_batches"],
            "kernel_boxes": kernel["kernel_boxes"],
            "scalar_ms": round(scalar["elapsed"] * 1000, 3),
            "kernel_ms": round(kernel["elapsed"] * 1000, 3),
            "boxes_per_sec_scalar": round(scalar["boxes"] / scalar["elapsed"], 1),
            "boxes_per_sec_kernel": round(kernel["boxes"] / kernel["elapsed"], 1),
            "kernel_speedup": round(speedup, 2),
            "kernel_engaged": kernel["kernel_batches"] > 0,
        }
        print(
            f"{name:20s} boxes {scalar['boxes']:7d}  "
            f"scalar {scalar['elapsed'] * 1000:8.1f}ms  "
            f"kernel {kernel['elapsed'] * 1000:8.1f}ms  "
            f"({speedup:5.2f}x, {kernel['kernel_batches']} batches)"
        )

    # The suite must exercise the kernel: at this depth the multi-block
    # programs' sweeps outgrow the warmup threshold and batch.
    engaged = {name: row for name, row in rows.items() if row["kernel_engaged"]}
    assert engaged, "no program engaged the kernel; the workload is too shallow"

    # Throughput gate over the kernel-engaged programs.  Programs whose
    # sweeps stay inside the warmup window are (by design) unchanged, so
    # including their identical wall-clock would measure the warmup policy,
    # not the kernel.
    scalar_seconds = sum(row["scalar_ms"] for row in engaged.values()) / 1000
    kernel_seconds = sum(row["kernel_ms"] for row in engaged.values()) / 1000
    engaged_boxes = sum(row["boxes"] for row in engaged.values())
    speedup = scalar_seconds / kernel_seconds
    assert speedup >= _SPEEDUP_FLOOR, (
        f"kernel throughput on engaged programs only improved {speedup:.2f}x "
        f"({scalar_seconds * 1000:.0f}ms -> {kernel_seconds * 1000:.0f}ms), "
        f"expected >= {_SPEEDUP_FLOOR}x"
    )

    payload = {
        "benchmark": "vectorized sweep kernel",
        "workload": "lower bounds over the non-affine retry library",
        "sweep_depth": _SWEEP_DEPTH,
        "term_depth": _TERM_DEPTH,
        "speedup_floor": _SPEEDUP_FLOOR,
        "engaged_programs": len(engaged),
        "kernel_batches_total": sum(row["kernel_batches"] for row in rows.values()),
        "kernel_boxes_total": sum(row["kernel_boxes"] for row in rows.values()),
        "engaged_boxes_per_sec_scalar": round(engaged_boxes / scalar_seconds, 1),
        "engaged_boxes_per_sec_kernel": round(engaged_boxes / kernel_seconds, 1),
        "engaged_kernel_speedup": round(speedup, 2),
        "programs": rows,
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"engaged programs      : {len(engaged)}  boxes/s "
        f"{payload['engaged_boxes_per_sec_scalar']:,.0f} -> "
        f"{payload['engaged_boxes_per_sec_kernel']:,.0f} ({speedup:.1f}x)"
    )
