"""Shared configuration for the benchmark suite.

Every benchmark prints the quantity the paper reports next to the timing so
that ``pytest benchmarks/ --benchmark-only -s`` regenerates the table rows;
EXPERIMENTS.md records the measured values against the paper's.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the benchmarks at the paper's exploration depths (slower)",
    )


@pytest.fixture(scope="session")
def paper_scale(request):
    return request.config.getoption("--paper-scale")
