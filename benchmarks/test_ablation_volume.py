"""Ablation A1: the volume oracle (exact polytope vs. certified sweep vs. MC).

The paper's verifier delegates branching probabilities to an exact polytope
volume oracle (Sec. 7.2).  This ablation measures the three oracles of the
reproduction on the same multivariate constraint set (the simplex
``a_0 + a_1 + a_2 <= 1`` and a two-dimensional coupling ``a_3 <= a_0``) and
reports accuracy against the closed form alongside the timings.
"""


import pytest

from repro.geometry import MeasureOptions, measure_constraints, monte_carlo_measure
from repro.symbolic import Constraint, ConstraintSet, Relation
from repro.symbolic.values import ConstVal, PrimVal, SampleVar


def _constraints() -> ConstraintSet:
    simplex = Constraint(
        PrimVal(
            "sub",
            (
                PrimVal("add", (PrimVal("add", (SampleVar(0), SampleVar(1))), SampleVar(2))),
                ConstVal(1),
            ),
        ),
        Relation.LE,
    )
    coupling = Constraint(PrimVal("sub", (SampleVar(3), SampleVar(0))), Relation.LE)
    return ConstraintSet([simplex, coupling])


# volume of the simplex is 1/6; the coupling a3 <= a0 has conditional volume
# E[a0 | simplex] = 1/4, so the joint measure is 1/6 * 1/4 = 1/24.
_TRUE = 1 / 24


def test_oracle_polytope(benchmark):
    constraints = _constraints()
    result = benchmark(measure_constraints, constraints, 4)
    print(f"\n[A1] polytope oracle: {float(result.value):.6f} (true {_TRUE:.6f}), method={result.method}")
    assert float(result.value) == pytest.approx(_TRUE, rel=1e-6)


def test_oracle_sweep(benchmark):
    constraints = _constraints()
    options = MeasureOptions(prefer_sweep=True, sweep_depth=16)
    result = benchmark(measure_constraints, constraints, 4, options)
    print(f"\n[A1] sweep oracle (certified lower bound): {float(result.value):.6f} (true {_TRUE:.6f})")
    assert 0 < float(result.value) <= _TRUE


def test_oracle_monte_carlo(benchmark):
    constraints = _constraints()
    result = benchmark(monte_carlo_measure, constraints, 4, 20_000)
    print(f"\n[A1] Monte-Carlo oracle: {result.estimate:.6f} +/- {result.stderr:.6f}")
    assert result.within(_TRUE)
