"""Diff freshly emitted ``BENCH_*.json`` files against committed baselines.

The perf benchmarks (``benchmarks/test_perf_measure_cache.py`` and
``benchmarks/test_perf_batch.py``) write ``BENCH_papprox.json`` and
``BENCH_batch.json`` at the repository root.  This script compares them with
the baselines committed under ``benchmarks/baselines/`` and fails (exit 1)
on a perf-trajectory regression, so CI tracks the trajectory instead of
merely uploading artifacts.

Gated metrics come in two kinds:

* **counter** -- deterministic work counters (measure calls, base block
  computations, cache hits) and the speedup ratios derived from them.  Any
  worsening at all fails: these are machine-independent, so there is no
  noise to tolerate.
* **ratio** -- *within-run* timing ratios (e.g. warm/cold wall-clock of the
  batch suite, cached/baseline milliseconds of the papprox workload).  Both
  sides of such a ratio come from the same process on the same machine, so
  they transfer across runners; a slowdown beyond the tolerance
  (default 25%) fails.

Absolute wall-clock seconds are reported as **info** rows by default --
comparing them across different runner hardware would gate on noise.  Pass
``--gate-wallclock`` (useful when baseline and current run on the same
machine) to gate them at the same tolerance.

Usage::

    python benchmarks/compare_bench.py              # compare, exit 1 on fail
    python benchmarks/compare_bench.py --update     # bless current numbers
    python benchmarks/compare_bench.py --gate-wallclock --tolerance 0.25
    python benchmarks/compare_bench.py --history    # trajectory across commits

``--history`` walks the git history of the committed baselines and renders
one row per blessing commit with the headline metric of every bench file,
so the *trajectory* (did the speedups keep improving release over release?)
is visible at a glance, not just the latest two points.

The markdown trajectory table goes to stdout and, when the
``GITHUB_STEP_SUMMARY`` environment variable is set (as it is in GitHub
Actions), is appended to the job summary as well.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import shutil
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

BENCH_FILES = (
    "BENCH_papprox.json",
    "BENCH_batch.json",
    "BENCH_sweep.json",
    "BENCH_anytime.json",
    "BENCH_kernel.json",
    "BENCH_dist.json",
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

LOWER = "lower-is-better"
HIGHER = "higher-is-better"

COUNTER = "counter"
RATIO = "ratio"
WALLCLOCK = "wallclock"
INFO = "info"


@dataclass
class Metric:
    """One gated (or informational) scalar extracted from a bench file."""

    name: str
    baseline: Optional[float]
    current: Optional[float]
    direction: str
    kind: str

    def verdict(self, tolerance: float, gate_wallclock: bool) -> str:
        """``ok`` / ``FAIL`` / ``info`` / ``missing`` for this metric."""
        if self.baseline is None or self.current is None:
            return "missing"
        kind = self.kind
        if kind == WALLCLOCK:
            kind = RATIO if gate_wallclock else INFO
        if kind == INFO:
            return "info"
        allowance = 0.0 if kind == COUNTER else tolerance
        if self.direction == LOWER:
            limit = self.baseline * (1.0 + allowance)
            return "ok" if self.current <= limit + 1e-12 else "FAIL"
        limit = self.baseline * (1.0 - allowance)
        return "ok" if self.current >= limit - 1e-12 else "FAIL"

    def delta(self) -> str:
        if self.baseline is None or self.current is None:
            return "-"
        if self.baseline == 0:
            return "n/a" if self.current else "+0%"
        change = (self.current - self.baseline) / abs(self.baseline) * 100.0
        return f"{change:+.1f}%"


def _number(value) -> Optional[float]:
    return float(value) if isinstance(value, (int, float)) else None


def _load(path: Path) -> Optional[dict]:
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


def _papprox_metrics(baseline: dict, current: dict) -> List[Metric]:
    metrics = [
        Metric(
            "papprox: aggregate block speedup",
            _number(baseline.get("aggregate_block_speedup")),
            _number(current.get("aggregate_block_speedup")),
            HIGHER,
            COUNTER,
        ),
        Metric(
            "papprox: base block computations (total)",
            _number(baseline.get("block_computations_total")),
            _number(current.get("block_computations_total")),
            LOWER,
            COUNTER,
        ),
    ]
    baseline_programs = baseline.get("programs") or {}
    current_programs = current.get("programs") or {}
    for name in sorted(baseline_programs):
        old_row = baseline_programs.get(name) or {}
        new_row = current_programs.get(name)
        if new_row is None:
            # A program dropping out of the benchmark is a coverage
            # regression, surfaced through a missing-counter failure.
            metrics.append(
                Metric(f"papprox[{name}]: cached measure calls",
                       _number(old_row.get("cached_measure_calls")), None,
                       LOWER, COUNTER)
            )
            continue
        for field, direction in (
            ("cached_measure_calls", LOWER),
            ("block_computations", LOWER),
            ("measure_call_speedup", HIGHER),
        ):
            old_value = _number(old_row.get(field))
            new_value = _number(new_row.get(field))
            if old_value is None and new_value is None:
                # Deliberately absent on both sides (e.g. the call-speedup of
                # programs that never invoke measure_constraints): no gate.
                continue
            metrics.append(
                Metric(
                    f"papprox[{name}]: {field.replace('_', ' ')}",
                    old_value,
                    new_value,
                    direction,
                    COUNTER,
                )
            )
    # Within-run timing ratio: cached vs baseline milliseconds, totalled over
    # the common programs (per-program timings are sub-millisecond noise).
    common = [name for name in baseline_programs if name in current_programs]

    def _totals(programs, names):
        baseline_ms = sum(_number(programs[n].get("baseline_ms")) or 0.0 for n in names)
        cached_ms = sum(_number(programs[n].get("cached_ms")) or 0.0 for n in names)
        return (cached_ms / baseline_ms) if baseline_ms else None

    metrics.append(
        Metric(
            "papprox: cached/baseline wall-clock ratio",
            _totals(baseline_programs, common),
            _totals(current_programs, common),
            LOWER,
            RATIO,
        )
    )
    return metrics


def _multicore(document: dict) -> bool:
    """Whether a bench document was produced on a machine that can fan out."""
    cores = document.get("cpu_count")
    return isinstance(cores, (int, float)) and cores >= 2


def _batch_metrics(baseline: dict, current: dict) -> List[Metric]:
    metrics = [
        Metric("batch: jobs in suite", _number(baseline.get("job_count")),
               _number(current.get("job_count")), HIGHER, COUNTER),
        Metric("batch: warm job-cache hits", _number(baseline.get("warm_job_cache_hits")),
               _number(current.get("warm_job_cache_hits")), HIGHER, COUNTER),
        Metric("batch: warm/cold wall-clock ratio", _number(baseline.get("warm_ratio")),
               _number(current.get("warm_ratio")), LOWER, RATIO),
        Metric("batch: cold seconds", _number(baseline.get("cold_seconds")),
               _number(current.get("cold_seconds")), LOWER, WALLCLOCK),
        Metric("batch: serial seconds", _number(baseline.get("serial_seconds")),
               _number(current.get("serial_seconds")), LOWER, WALLCLOCK),
    ]
    # The parallel-speedup ratio only means something when both sides had
    # >= 2 cores to fan out over *and* both recorded the field (a 1-core
    # emitter skips the parallel run entirely): comparing a single-core
    # "speedup" would gate on pure scheduling noise, so it is skipped, not
    # reported as missing.
    baseline_speedup = _number(baseline.get("parallel_speedup"))
    current_speedup = _number(current.get("parallel_speedup"))
    if (
        _multicore(baseline)
        and _multicore(current)
        and baseline_speedup is not None
        and current_speedup is not None
    ):
        metrics.append(
            Metric("batch: parallel speedup", baseline_speedup, current_speedup,
                   HIGHER, RATIO)
        )
    return metrics


def _sweep_metrics(baseline: dict, current: dict) -> List[Metric]:
    metrics = [
        Metric(
            "sweep: aggregate box reduction (multi-block)",
            _number(baseline.get("aggregate_box_reduction")),
            _number(current.get("aggregate_box_reduction")),
            HIGHER,
            COUNTER,
        ),
        Metric(
            "sweep: block boxes examined (multi-block total)",
            _number(baseline.get("multi_block_block_boxes")),
            _number(current.get("multi_block_block_boxes")),
            LOWER,
            COUNTER,
        ),
        Metric(
            "sweep: warm base sweep computations",
            _number(baseline.get("warm_sweep_blocks")),
            _number(current.get("warm_sweep_blocks")),
            LOWER,
            COUNTER,
        ),
    ]
    baseline_programs = baseline.get("programs") or {}
    current_programs = current.get("programs") or {}
    for name in sorted(baseline_programs):
        old_row = baseline_programs.get(name) or {}
        new_row = current_programs.get(name)
        if new_row is None:
            metrics.append(
                Metric(f"sweep[{name}]: block boxes",
                       _number(old_row.get("block_boxes")), None, LOWER, COUNTER)
            )
            continue
        for field, direction in (
            ("block_boxes", LOWER),
            ("block_bound", HIGHER),
        ):
            metrics.append(
                Metric(
                    f"sweep[{name}]: {field.replace('_', ' ')}",
                    _number(old_row.get(field)),
                    _number(new_row.get(field)),
                    direction,
                    COUNTER,
                )
            )
    # Within-run timing ratio: block vs joint wall-clock, totalled over the
    # common programs (both sides run in the same process).
    common = [name for name in baseline_programs if name in current_programs]

    def _totals(programs, names):
        joint_ms = sum(_number(programs[n].get("joint_ms")) or 0.0 for n in names)
        block_ms = sum(_number(programs[n].get("block_ms")) or 0.0 for n in names)
        return (block_ms / joint_ms) if joint_ms else None

    metrics.append(
        Metric(
            "sweep: block/joint wall-clock ratio",
            _totals(baseline_programs, common),
            _totals(current_programs, common),
            LOWER,
            RATIO,
        )
    )
    return metrics


def _anytime_metrics(baseline: dict, current: dict) -> List[Metric]:
    metrics = [
        Metric(
            "anytime: aggregate step reduction",
            _number(baseline.get("aggregate_step_reduction")),
            _number(current.get("aggregate_step_reduction")),
            HIGHER,
            COUNTER,
        ),
        Metric(
            "anytime: incremental symbolic steps (total)",
            _number(baseline.get("incremental_steps_total")),
            _number(current.get("incremental_steps_total")),
            LOWER,
            COUNTER,
        ),
        Metric(
            "anytime: aggregate sweep-box reduction",
            _number(baseline.get("aggregate_box_reduction")),
            _number(current.get("aggregate_box_reduction")),
            HIGHER,
            COUNTER,
        ),
        Metric(
            "anytime: incremental sweep boxes (total)",
            _number(baseline.get("incremental_sweep_boxes_total")),
            _number(current.get("incremental_sweep_boxes_total")),
            LOWER,
            COUNTER,
        ),
    ]
    baseline_warm = baseline.get("warm_start") or {}
    current_warm = current.get("warm_start") or {}
    metrics.append(
        Metric(
            "anytime: warm-started sweeps",
            _number(baseline_warm.get("warm_starts")),
            _number(current_warm.get("warm_starts")),
            HIGHER,
            COUNTER,
        )
    )
    metrics.append(
        Metric(
            "anytime: warm-resumed sweep boxes",
            _number(baseline_warm.get("warm_boxes")),
            _number(current_warm.get("warm_boxes")),
            LOWER,
            COUNTER,
        )
    )
    baseline_programs = baseline.get("programs") or {}
    current_programs = current.get("programs") or {}
    for name in sorted(baseline_programs):
        old_row = baseline_programs.get(name) or {}
        new_row = current_programs.get(name)
        if new_row is None:
            metrics.append(
                Metric(f"anytime[{name}]: incremental steps",
                       _number(old_row.get("incremental_steps")), None,
                       LOWER, COUNTER)
            )
            continue
        for field, direction in (
            ("incremental_steps", LOWER),
            ("step_reduction", HIGHER),
            ("incremental_sweep_boxes", LOWER),
            ("final_bound", HIGHER),
        ):
            metrics.append(
                Metric(
                    f"anytime[{name}]: {field.replace('_', ' ')}",
                    _number(old_row.get(field)),
                    _number(new_row.get(field)),
                    direction,
                    COUNTER,
                )
            )
    # Within-run timing ratio: incremental vs from-scratch wall-clock,
    # totalled over the common programs (both run in the same process).
    common = [name for name in baseline_programs if name in current_programs]

    def _totals(programs, names):
        scratch_ms = sum(_number(programs[n].get("scratch_ms")) or 0.0 for n in names)
        incremental_ms = sum(
            _number(programs[n].get("incremental_ms")) or 0.0 for n in names
        )
        return (incremental_ms / scratch_ms) if scratch_ms else None

    metrics.append(
        Metric(
            "anytime: incremental/scratch wall-clock ratio",
            _totals(baseline_programs, common),
            _totals(current_programs, common),
            LOWER,
            RATIO,
        )
    )
    metrics.append(
        Metric(
            "anytime: incremental steps/sec",
            _number(baseline.get("steps_per_second_incremental")),
            _number(current.get("steps_per_second_incremental")),
            HIGHER,
            WALLCLOCK,
        )
    )
    # Cross-referenced from the distributed bench; ``null`` on machines
    # where a fleet could not fan out, so only gated when both sides
    # recorded it (the BENCH_batch parallel-speedup convention).
    baseline_speedup = _number(baseline.get("parallel_deepening_speedup"))
    current_speedup = _number(current.get("parallel_deepening_speedup"))
    if baseline_speedup is not None and current_speedup is not None:
        metrics.append(
            Metric(
                "anytime: parallel deepening speedup",
                baseline_speedup,
                current_speedup,
                HIGHER,
                RATIO,
            )
        )
    return metrics


def _kernel_metrics(baseline: dict, current: dict) -> List[Metric]:
    metrics = [
        # Both sides of the speedup come from the same process on the same
        # machine (scalar vs kernel interleaved in one run), so the ratio
        # transfers across runners like the other within-run ratios.
        Metric(
            "kernel: engaged boxes/sec speedup",
            _number(baseline.get("engaged_kernel_speedup")),
            _number(current.get("engaged_kernel_speedup")),
            HIGHER,
            RATIO,
        ),
        Metric(
            "kernel: engaged programs",
            _number(baseline.get("engaged_programs")),
            _number(current.get("engaged_programs")),
            HIGHER,
            COUNTER,
        ),
        Metric(
            "kernel: boxes classified in batches (total)",
            _number(baseline.get("kernel_boxes_total")),
            _number(current.get("kernel_boxes_total")),
            HIGHER,
            COUNTER,
        ),
        Metric(
            "kernel: engaged boxes/sec (kernel)",
            _number(baseline.get("engaged_boxes_per_sec_kernel")),
            _number(current.get("engaged_boxes_per_sec_kernel")),
            HIGHER,
            WALLCLOCK,
        ),
    ]
    baseline_programs = baseline.get("programs") or {}
    current_programs = current.get("programs") or {}
    for name in sorted(baseline_programs):
        old_row = baseline_programs.get(name) or {}
        new_row = current_programs.get(name)
        if new_row is None:
            metrics.append(
                Metric(f"kernel[{name}]: boxes",
                       _number(old_row.get("boxes")), None, LOWER, COUNTER)
            )
            continue
        # The bound and the box count are bit-identity witnesses (zero
        # tolerance); per-program speedups are informational -- programs
        # inside the warmup window hover at 1x by design.
        for field, direction, kind in (
            ("boxes", LOWER, COUNTER),
            ("bound", HIGHER, COUNTER),
            ("kernel_speedup", HIGHER, WALLCLOCK),
        ):
            metrics.append(
                Metric(
                    f"kernel[{name}]: {field.replace('_', ' ')}",
                    _number(old_row.get(field)),
                    _number(new_row.get(field)),
                    direction,
                    kind,
                )
            )
    return metrics


def _dist_metrics(baseline: dict, current: dict) -> List[Metric]:
    metrics = [
        # Byte-identity and the resume counters are the correctness
        # witnesses of distribution: they are machine-independent booleans
        # and counters, so any worsening at all fails.
        Metric(
            "dist: byte-identical trajectory",
            _number(baseline.get("byte_identical_trajectory")),
            _number(current.get("byte_identical_trajectory")),
            HIGHER,
            COUNTER,
        ),
        Metric(
            "dist: single-process symbolic steps",
            _number(baseline.get("single_steps")),
            _number(current.get("single_steps")),
            LOWER,
            COUNTER,
        ),
        Metric(
            "dist: shards executed",
            _number(baseline.get("shards_executed")),
            _number(current.get("shards_executed")),
            HIGHER,
            COUNTER,
        ),
        Metric(
            "dist: steps/sec (single)",
            _number(baseline.get("steps_per_second_single")),
            _number(current.get("steps_per_second_single")),
            HIGHER,
            WALLCLOCK,
        ),
        Metric(
            "dist: steps/sec (fleet)",
            _number(baseline.get("steps_per_second_fleet")),
            _number(current.get("steps_per_second_fleet")),
            HIGHER,
            WALLCLOCK,
        ),
    ]
    baseline_resume = baseline.get("resume") or {}
    current_resume = current.get("resume") or {}
    metrics.append(
        Metric(
            "dist: resumed paths after crash",
            _number(baseline_resume.get("paths_resumed")),
            _number(current_resume.get("paths_resumed")),
            HIGHER,
            COUNTER,
        )
    )
    metrics.append(
        Metric(
            "dist: frontier restores on resume",
            _number(baseline_resume.get("frontier_restores")),
            _number(current_resume.get("frontier_restores")),
            HIGHER,
            COUNTER,
        )
    )
    # The fleet-vs-single wall-clock ratio only means something when both
    # sides had >= 2 cores to fan out over *and* both recorded the field
    # (a 1-core emitter omits it): skipped otherwise, not missing.  The
    # stolen-shard count is not gated at all -- under real concurrency it
    # depends on scheduling, and byte-identity already covers correctness.
    baseline_speedup = _number(baseline.get("parallel_deepening_speedup"))
    current_speedup = _number(current.get("parallel_deepening_speedup"))
    if (
        _multicore(baseline)
        and _multicore(current)
        and baseline_speedup is not None
        and current_speedup is not None
    ):
        metrics.append(
            Metric(
                "dist: parallel deepening speedup",
                baseline_speedup,
                current_speedup,
                HIGHER,
                RATIO,
            )
        )
    return metrics


METRIC_BUILDERS = {
    "BENCH_papprox.json": _papprox_metrics,
    "BENCH_batch.json": _batch_metrics,
    "BENCH_sweep.json": _sweep_metrics,
    "BENCH_anytime.json": _anytime_metrics,
    "BENCH_kernel.json": _kernel_metrics,
    "BENCH_dist.json": _dist_metrics,
}


def collect_metrics(baseline_dir: Path, current_dir: Path) -> List[Metric]:
    metrics: List[Metric] = []
    for filename in BENCH_FILES:
        baseline = _load(baseline_dir / filename)
        current = _load(current_dir / filename)
        if baseline is None or current is None:
            side = "baseline" if baseline is None else "current"
            metrics.append(Metric(f"{filename} ({side} file)", None, None, LOWER, COUNTER))
            continue
        metrics.extend(METRIC_BUILDERS[filename](baseline, current))
    return metrics


def _format(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if not math.isfinite(value):
        return str(value)
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.4g}"


def render_table(metrics: List[Metric], tolerance: float, gate_wallclock: bool) -> str:
    lines = [
        "## Perf trajectory",
        "",
        "| metric | baseline | current | delta | status |",
        "| --- | ---: | ---: | ---: | :---: |",
    ]
    for metric in metrics:
        status = metric.verdict(tolerance, gate_wallclock)
        marker = {"ok": "✅ ok", "FAIL": "❌ FAIL", "info": "ℹ️ info",
                  "missing": "❌ missing"}[status]
        lines.append(
            f"| {metric.name} | {_format(metric.baseline)} | "
            f"{_format(metric.current)} | {metric.delta()} | {marker} |"
        )
    return "\n".join(lines)


def update_baselines(baseline_dir: Path, current_dir: Path) -> int:
    baseline_dir.mkdir(parents=True, exist_ok=True)
    missing = []
    for filename in BENCH_FILES:
        source = current_dir / filename
        if not source.is_file():
            missing.append(filename)
            continue
        shutil.copyfile(source, baseline_dir / filename)
        print(f"blessed {source} -> {baseline_dir / filename}")
    if missing:
        print(
            "missing current bench files (run the perf benchmarks first): "
            + ", ".join(missing),
            file=sys.stderr,
        )
        return 1
    return 0


# One headline scalar per bench file for the --history trajectory table.
HISTORY_METRICS = (
    ("BENCH_papprox.json", "aggregate_block_speedup", "papprox block speedup"),
    ("BENCH_batch.json", "warm_ratio", "batch warm/cold ratio"),
    ("BENCH_sweep.json", "aggregate_box_reduction", "sweep box reduction"),
    ("BENCH_anytime.json", "aggregate_step_reduction", "anytime step reduction"),
    ("BENCH_kernel.json", "engaged_kernel_speedup", "kernel speedup"),
    ("BENCH_dist.json", "parallel_deepening_speedup", "dist deepening speedup"),
)


def _git(*args: str) -> Optional[str]:
    try:
        completed = subprocess.run(
            ["git", *args],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return completed.stdout if completed.returncode == 0 else None


def baseline_history(baseline_dir: Path, limit: int) -> List[dict]:
    """One row per commit that touched the baselines, oldest first.

    Each row is ``{"commit", "date", "subject", <metric label>: value...}``;
    a metric a revision did not record simply stays absent from its row.
    """
    try:
        relative = baseline_dir.resolve().relative_to(REPO_ROOT)
    except ValueError:
        return []
    listing = _git(
        "log", f"-{limit}", "--format=%h%x09%cs%x09%s", "--", str(relative)
    )
    if not listing:
        return []
    rows = []
    for line in listing.splitlines():
        commit, _, rest = line.partition("\t")
        date, _, subject = rest.partition("\t")
        row = {"commit": commit, "date": date, "subject": subject}
        for filename, key, label in HISTORY_METRICS:
            blob = _git("show", f"{commit}:{relative}/{filename}")
            if blob is None:
                continue
            try:
                document = json.loads(blob)
            except ValueError:
                continue
            value = _number(document.get(key)) if isinstance(document, dict) else None
            if value is not None:
                row[label] = value
        rows.append(row)
    rows.reverse()  # git log is newest-first; a trajectory reads oldest-first
    return rows


def render_history(rows: List[dict]) -> str:
    labels = [label for _, _, label in HISTORY_METRICS]
    lines = [
        "## Perf trajectory history",
        "",
        "| commit | date | " + " | ".join(labels) + " |",
        "| --- | --- | " + " | ".join("---:" for _ in labels) + " |",
    ]
    for row in rows:
        cells = [_format(row.get(label)) for label in labels]
        lines.append(f"| {row['commit']} | {row['date']} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def history_main(baseline_dir: Path, limit: int) -> int:
    rows = baseline_history(baseline_dir, limit)
    if not rows:
        print(
            "no baseline history found (not a git checkout, or the baselines "
            "are outside the repository)",
            file=sys.stderr,
        )
        return 1
    table = render_history(rows)
    print(table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        try:
            with open(summary_path, "a") as stream:
                stream.write(table + "\n")
        except OSError as error:
            print(f"could not append to GITHUB_STEP_SUMMARY: {error}", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir", type=Path, default=DEFAULT_BASELINE_DIR,
        help="directory of committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--current-dir", type=Path, default=REPO_ROOT,
        help="directory of freshly emitted BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional worsening of ratio metrics (default 0.25)",
    )
    parser.add_argument(
        "--gate-wallclock", action="store_true",
        help="also gate absolute wall-clock seconds (same-machine baselines only)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="copy the current BENCH_*.json files over the baselines and exit",
    )
    parser.add_argument(
        "--history", action="store_true",
        help="render the committed baselines' trajectory across git history "
        "instead of comparing fresh results",
    )
    parser.add_argument(
        "--history-limit", type=int, default=20,
        help="how many baseline-touching commits --history walks (default 20)",
    )
    arguments = parser.parse_args(argv)

    if arguments.update:
        return update_baselines(arguments.baseline_dir, arguments.current_dir)
    if arguments.history:
        return history_main(arguments.baseline_dir, arguments.history_limit)

    metrics = collect_metrics(arguments.baseline_dir, arguments.current_dir)
    table = render_table(metrics, arguments.tolerance, arguments.gate_wallclock)
    print(table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        try:
            with open(summary_path, "a") as stream:
                stream.write(table + "\n")
        except OSError as error:
            print(f"could not append to GITHUB_STEP_SUMMARY: {error}", file=sys.stderr)

    failures = [
        metric.name
        for metric in metrics
        if metric.verdict(arguments.tolerance, arguments.gate_wallclock)
        in ("FAIL", "missing")
    ]
    if failures:
        print(
            f"\nperf trajectory REGRESSED on {len(failures)} metric(s): "
            + "; ".join(failures),
            file=sys.stderr,
        )
        return 1
    print("\nperf trajectory OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
