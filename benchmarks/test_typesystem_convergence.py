"""Experiment E6: Thm. 4.1 numerically -- the sup over typings approaches Pterm.

The intersection type system characterises ``Pterm`` as the least upper bound
of ``omega(A)`` over all derivable set types (Thm. 4.1).  The benchmark infers
set types at increasing exploration/subdivision depths for two programs with
known ``Pterm`` and checks that the weights increase towards the limit while
always remaining sound lower bounds.
"""

from fractions import Fraction

import pytest

from repro.programs import geometric, printer_nonaffine
from repro.typesystem import infer_set_type

_CASES = {
    "geo(1/2)": (geometric(Fraction(1, 2)), 1.0),
    "ex1.1(1/4)": (printer_nonaffine(Fraction(1, 4)), 1 / 3),
}

_DEPTHS = ((20, 6), (40, 8), (60, 10))


@pytest.mark.parametrize("name", list(_CASES))
def test_typesystem_weight_converges(benchmark, name):
    program, limit = _CASES[name]

    def infer_at_all_depths():
        return [
            infer_set_type(program.applied, max_steps=steps, sweep_depth=depth)
            for steps, depth in _DEPTHS
        ]

    results = benchmark(infer_at_all_depths)

    weights = [float(result.weight) for result in results]
    print(f"\n[E6] {name}: omega(A) at increasing depth = {[f'{w:.4f}' for w in weights]} -> {limit:.4f}")
    assert all(earlier <= later + 1e-12 for earlier, later in zip(weights, weights[1:]))
    assert all(weight <= limit + 1e-9 for weight in weights)
    assert weights[-1] > 0.5 * limit
