"""Experiment E5: the linear-time Thm. 5.4 criterion vs. ground truth.

The paper's point (Sec. 5.1) is that AST of the extracted random walk is
decidable in *linear time* in the size of the step distribution, replacing the
polynomial-time one-counter-MDP detour of earlier work.  The benchmark
measures the criterion on step distributions of growing support and contrasts
it with the truncated matrix iteration used as ground truth (which is orders
of magnitude slower), asserting that the two agree.
"""

from fractions import Fraction

import pytest

from repro.randomwalk import StepDistribution, termination_probability


def _wide_step_distribution(width: int, drift_negative: bool) -> StepDistribution:
    """A step distribution with support {-1, ..., width} and controllable drift."""
    mass = {}
    total_points = width + 2
    for point in range(-1, width + 1):
        mass[point] = Fraction(1, total_points)
    if drift_negative:
        # Move extra weight onto -1 to force the drift below 0.
        shift = Fraction(width, 2 * total_points * max(width, 1))
        mass[-1] += sum(Fraction(point, 1) * mass[point] for point in range(0, width + 1)) / 1
        total = sum(mass.values())
        mass = {point: weight / total for point, weight in mass.items()}
    return StepDistribution(mass)


@pytest.mark.parametrize("width", [4, 16, 64, 256])
def test_criterion_scales_linearly(benchmark, width):
    step = _wide_step_distribution(width, drift_negative=True)

    verdict = benchmark(step.is_ast)

    print(f"\n[E5] support width = {width + 2}, drift = {float(step.drift):+.4f}, AST = {verdict}")
    assert verdict == (step.total_mass == 1 and step.drift <= 0 and not step.is_dirac_at(0))


@pytest.mark.parametrize("width", [4, 16])
def test_matrix_iteration_ground_truth(benchmark, width):
    step = _wide_step_distribution(width, drift_negative=True)

    bound = benchmark(termination_probability, step, 1, 120)

    print(f"\n[E5] truncated iteration P^120(1,0) = {float(bound):.4f} (criterion: {step.is_ast()})")
    if step.is_ast() and step.drift < 0:
        assert bound > Fraction(1, 2)


def test_criterion_detects_positive_drift(benchmark):
    step = StepDistribution({-1: Fraction(1, 4), 1: Fraction(3, 4)})
    verdict = benchmark(step.is_ast)
    assert not verdict
    assert termination_probability(step, 1, 300) < Fraction(9, 10)
