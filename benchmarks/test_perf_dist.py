"""Perf benchmark for distributed anytime deepening (persisted frontiers).

The workload is the rank-3 *non-affine* ``sig-branch3(3/5,pad=60)`` (every
failed round spawns three recursive calls, every path constraint set needs
the subdivision sweep, and the guard padding makes each round compute-bound
-- see :func:`repro.programs.extra.sigmoid_tri_branching`) on a three-point
depth schedule, deepened two ways:

* **single process** -- ``run_distributed_schedule`` with ``jobs=1``: the
  plain resumable session, no sharding (the reference trajectory),
* **worker fleet** -- the same schedule with a 4-slot ``explore-shard``
  fleet: the persisted frontier is split into per-subtree shards, extended
  by work-stealing workers, and absorbed back.

Asserted (deterministically, so it can run on any machine):

* the fleet's per-depth trajectory payload is **byte-identical** to the
  single-process run (the paper's anytime semantics survive distribution),
* a run that "crashes" between depths resumes from the store with
  ``paths_resumed > 0`` and reports exactly the uninterrupted run's
  ``symbolic_steps`` (no completed step re-executes).

Asserted only on machines with >= 4 cores (CI's runners; a 1-core emitter
records ``parallel_gate_enforced: false`` instead, the ``BENCH_batch``
convention):

* the 4-worker fleet finishes the deepening >= 2x faster wall-clock.

Counters, steps/sec and the parallel-deepening speedup go to
``BENCH_dist.json`` at the repository root; ``benchmarks/compare_bench.py``
diffs that file against the committed baseline in CI's ``perf-trajectory``
job.  The committed ``BENCH_anytime`` baseline is not touched: the
distributed workload lives in its own registry
(``repro.programs.extra.dist_programs``).
"""

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.astcheck import build_execution_tree
from repro.batch.distribute import run_distributed_schedule
from repro.batch.store_sqlite import open_store
from repro.geometry import MeasureEngine
from repro.programs import dist_programs

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dist.json"
_DIST_SPEEDUP_FLOOR = 2.0
_WORKLOAD = "sig-branch3(3/5,pad=60)"
_SCHEDULE = (260, 520, 780)
_MAX_PATHS = 100_000
_FLEET_JOBS = 4


def _run_schedule(program, store_dir, jobs, schedule=_SCHEDULE):
    engine = MeasureEngine()
    store = open_store(store_dir, backend="json")
    started = time.perf_counter()
    report = run_distributed_schedule(
        program.name,
        program,
        list(schedule),
        store=store,
        engine=engine,
        jobs=jobs,
        max_paths=_MAX_PATHS,
    )
    elapsed = time.perf_counter() - started
    return report, engine, elapsed


def test_fleet_deepening_is_byte_identical_and_faster():
    name = _WORKLOAD
    program = dist_programs()[name]
    rank = build_execution_tree(program.fix).max_recursive_calls
    assert rank >= 3, f"{name} is not a rank >= 3 workload program"
    cores = os.cpu_count() or 1

    scratch = Path(tempfile.mkdtemp(prefix="repro-dist-bench-"))
    try:
        # -- single process (the reference trajectory) -----------------------
        single_report, single_engine, single_seconds = _run_schedule(
            program, scratch / "single", jobs=1
        )
        single_payload = json.dumps(single_report.payload(), sort_keys=True)
        single_steps = single_engine.stats.symbolic_steps
        assert single_steps > 0

        # -- 4-worker fleet --------------------------------------------------
        fleet_report, fleet_engine, fleet_seconds = _run_schedule(
            program, scratch / "fleet", jobs=_FLEET_JOBS
        )
        fleet_payload = json.dumps(fleet_report.payload(), sort_keys=True)
        assert fleet_payload == single_payload, (
            "fleet trajectory diverged from the single-process run"
        )
        assert fleet_engine.stats.symbolic_steps == single_steps
        assert fleet_engine.stats.paths_resumed == single_engine.stats.paths_resumed
        assert fleet_engine.stats.frontier_peak == single_engine.stats.frontier_peak
        shards_executed = fleet_engine.stats.shards_executed
        shards_stolen = fleet_engine.stats.shards_stolen
        assert shards_executed > 0

        speedup = single_seconds / fleet_seconds if fleet_seconds else None
        gate_enforced = cores >= _FLEET_JOBS
        if gate_enforced:
            assert speedup is not None and speedup >= _DIST_SPEEDUP_FLOOR, (
                f"4-worker deepening only {speedup:.2f}x faster "
                f"({single_seconds:.2f}s -> {fleet_seconds:.2f}s), "
                f"expected >= {_DIST_SPEEDUP_FLOOR}x on {cores} cores"
            )

        # -- crash-resume: no completed step re-executes ---------------------
        crash_dir = scratch / "crash"
        _run_schedule(program, crash_dir, jobs=2, schedule=_SCHEDULE[:2])
        resumed_report, resumed_engine, _ = _run_schedule(
            program, crash_dir, jobs=2
        )
        assert resumed_report.resumed
        assert json.dumps(resumed_report.payload(), sort_keys=True) == single_payload
        assert resumed_engine.stats.symbolic_steps == single_steps
        assert resumed_engine.stats.paths_resumed == single_engine.stats.paths_resumed
        assert resumed_engine.stats.paths_resumed > 0
        assert resumed_engine.stats.frontier_restores == 1
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    payload = {
        "benchmark": "distributed anytime deepening over a persisted frontier",
        "program": name,
        "rank": rank,
        "schedule": list(_SCHEDULE),
        "max_paths": _MAX_PATHS,
        "cpu_count": cores,
        "fleet_jobs": _FLEET_JOBS,
        "byte_identical_trajectory": True,
        "single_steps": single_steps,
        "single_seconds": round(single_seconds, 4),
        "steps_per_second_single": round(single_steps / single_seconds, 1)
        if single_seconds
        else None,
        "fleet_seconds": round(fleet_seconds, 4),
        "steps_per_second_fleet": round(single_steps / fleet_seconds, 1)
        if fleet_seconds
        else None,
        "shards_executed": shards_executed,
        "shards_stolen": shards_stolen,
        "dist_speedup_floor": _DIST_SPEEDUP_FLOOR,
        "parallel_gate_enforced": gate_enforced,
        "resume": {
            "paths_resumed": resumed_engine.stats.paths_resumed,
            "symbolic_steps_equal": True,
            "frontier_restores": resumed_engine.stats.frontier_restores,
        },
    }
    # A 1-core "speedup" would be pure scheduling noise: record the ratio
    # only where a fleet could actually fan out (the BENCH_batch convention).
    if cores >= 2 and speedup is not None:
        payload["parallel_deepening_speedup"] = round(speedup, 3)
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"dist workload      : {name} (rank {rank}), schedule {list(_SCHEDULE)}")
    print(f"single  (jobs=1)   : {single_seconds:8.2f} s   {single_steps} steps")
    print(
        f"fleet   (jobs={_FLEET_JOBS})   : {fleet_seconds:8.2f} s   "
        f"{shards_executed} shards, {shards_stolen} stolen"
        + (f"   speedup {speedup:4.2f}x" if speedup is not None else "")
    )
    if not gate_enforced:
        print(f"speedup gate       : skipped ({cores} core(s) < {_FLEET_JOBS})")
    print(
        f"crash-resume       : {resumed_engine.stats.paths_resumed} paths resumed, "
        "steps equal to uninterrupted"
    )
