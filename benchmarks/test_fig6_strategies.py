"""Experiment E3: Fig. 6 -- the symbolic execution tree and its strategies.

Fig. 6a shows the execution tree of the running example (Ex. 5.1): a
probabilistic root branch, one Environment ("red") branch on ``sig(x)``, one
fair probabilistic branch, and paths with 0, 2 and 3 recursive-call nodes.
Fig. 6b lists its two Environment strategies.  The benchmark times tree
construction plus strategy enumeration and asserts the structure.
"""

from fractions import Fraction

from repro.astcheck import build_execution_tree, count_strategies, enumerate_strategies
from repro.astcheck.exectree import ExecMu, ExecNondetBranch, ExecProbBranch
from repro.programs import running_example


def _build_and_enumerate():
    tree = build_execution_tree(running_example(Fraction(3, 5)).fix)
    strategies = list(enumerate_strategies(tree))
    return tree, strategies


def test_fig6_tree_and_strategies(benchmark):
    tree, strategies = benchmark(_build_and_enumerate)

    mu_nodes = sum(1 for node in tree.nodes() if isinstance(node, ExecMu))
    print(
        f"\n[Fig. 6] probabilistic branches = {tree.prob_node_count}, "
        f"Environment branches = {tree.nondet_node_count}, "
        f"mu nodes = {mu_nodes}, leaves = {tree.leaf_count}, "
        f"strategies = {len(strategies)}"
    )
    # Fig. 6a: one red node, two probabilistic branches, paths with 0/2/3 calls.
    assert isinstance(tree.root, ExecProbBranch)
    assert tree.nondet_node_count == 1
    assert tree.prob_node_count == 2
    assert tree.max_recursive_calls == 3
    assert isinstance(tree.root.else_child, ExecNondetBranch)
    # Fig. 6b: exactly two Environment strategies.
    assert count_strategies(tree) == 2
    assert len(strategies) == 2
