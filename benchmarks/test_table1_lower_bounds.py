"""Experiment E1: Table 1 -- lower bounds on the probability of termination.

One benchmark per row of Table 1.  Each run reports the certified lower bound
(``LB``), the exploration depth ``d`` and the number of terminating paths; the
timing is pytest-benchmark's.  The depths are scaled down from the paper's so
the suite runs in seconds (pass ``--paper-scale`` for depths closer to the
paper's); the qualitative shape -- which programs reach high bounds at a given
depth and which saturate below 1 -- is what EXPERIMENTS.md compares.
"""


import pytest

from repro.lowerbound import LowerBoundEngine
from repro.programs import table1_programs

# name -> (bench depth, paper depth, paper-reported LB)
_ROWS = {
    "geo(1/2)": (100, 100, 0.9999990463),
    "geo(1/5)": (100, 200, 0.9995620416),
    "1dRW(1/2,1)": (60, 200, 0.8036193847),
    "1dRW(7/10,1)": (60, 150, 0.9720964250),
    "gr": (50, 80, 0.6112594604),
    "ex1.1(1/2)": (50, 90, 0.8318119049),
    "ex1.1(1/4)": (50, 90, 0.3328795089),
    "3print(3/4)": (50, 80, 0.9606655982),
    "bin(1/2,2)": (80, 100, 0.9998493194),
    "pedestrian": (35, 40, 0.6002376673),
}


@pytest.mark.parametrize("name", list(_ROWS))
def test_table1_row(benchmark, name, paper_scale):
    program = table1_programs()[name]
    bench_depth, paper_depth, paper_lb = _ROWS[name]
    depth = paper_depth if paper_scale else bench_depth
    engine = LowerBoundEngine(strategy=program.strategy)

    result = benchmark(engine.lower_bound, program.applied, depth)

    bound = float(result.probability)
    print(
        f"\n[Table 1] {name:14s} LB = {bound:.10f}  depth = {depth:>3}  "
        f"paths = {result.path_count:>5}  (paper: LB = {paper_lb:.10f} at d = {paper_depth})"
    )
    # Soundness: never exceed the known probability of termination.
    if program.known_probability is not None:
        assert bound <= program.known_probability + 1e-9
    # Sanity: the bound is non-trivial at the benchmark depth.
    assert bound > 0.1
