"""Perf benchmark for the resumable anytime exploration core (PR 5).

The completeness result (Thm. 3.8) is anytime: the lower bound converges to
``Pterm`` as the step budget grows.  Before this PR, evaluating a depth
schedule meant ``len(schedule)`` independent jobs, each re-deriving every
shallow path from the root and re-measuring (and re-sweeping) every path
constraint set.  The workload here is a 10-point depth schedule on the
rank >= 2 library programs -- ``gr`` (the golden-ratio branching recursion)
and ``sig-branch(3/5)`` (the same rank-2 shape with a non-affine sigmoid
guard, so every path needs the subdivision sweep) -- computed two ways:

* **from scratch** -- one fresh ``LowerBoundEngine`` + ``MeasureEngine`` per
  scheduled depth (the pre-PR pipeline: independent jobs),
* **incremental** -- one ``LowerBoundSession`` extended through the whole
  schedule: suspended symbolic paths resume instead of restarting, each
  distinct terminated path is measured once, and swept blocks are shared
  across depths.

Asserted (deterministically, so it can run in CI):

* every intermediate bound of the incremental session is *bit-identical* --
  full ``LowerBoundResult`` equality, path order included -- to the
  from-scratch run at the same depth,
* the incremental run executes >= 3x fewer symbolic reduction steps in
  aggregate, and >= 2x fewer sweep boxes on the sweeping programs,
* a deeper sweep budget warm-started from a shallower budget's persisted
  undecided-box frontier reproduces the from-scratch bounds bit-for-bit
  while examining strictly fewer boxes (``sweep_warm_starts`` > 0).

Counters and within-run timings go to ``BENCH_anytime.json`` at the
repository root; ``benchmarks/compare_bench.py`` diffs that file against the
committed baseline in CI's ``perf-trajectory`` job.  The committed
``BENCH_papprox`` / ``BENCH_batch`` / ``BENCH_sweep`` baselines are not
touched: the anytime workload lives in its own program registry
(``repro.programs.extra.anytime_programs``).
"""

import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.astcheck import build_execution_tree
from repro.batch import BatchCache
from repro.geometry import MeasureEngine, MeasureOptions
from repro.lowerbound import LowerBoundEngine
from repro.programs import anytime_programs, golden_ratio

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_anytime.json"
_DIST_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dist.json"
_STEP_REDUCTION_FLOOR = 3.0
_BOX_REDUCTION_FLOOR = 2.0
_SCHEDULE = tuple(range(34, 44))


def _parallel_deepening_speedup():
    """The fleet-vs-single ratio from a fresh distributed-bench run, if any.

    ``test_perf_dist`` writes ``BENCH_dist.json`` next to this file's output;
    the ``perf-trajectory`` job runs it first so the ratio lands here too.
    On < 2-core machines (or when the dist bench did not run) the field is
    absent there and recorded as ``null`` here -- ``compare_bench`` only
    gates the ratio when both sides actually fanned out.
    """
    try:
        doc = json.loads(_DIST_RESULT_PATH.read_text())
    except (OSError, ValueError):
        return None
    value = doc.get("parallel_deepening_speedup")
    return value if isinstance(value, (int, float)) else None


def _workload():
    """The rank >= 2 schedule workload: gr plus the anytime registry."""
    programs = {"gr": golden_ratio()}
    programs.update(anytime_programs())
    return programs


def test_incremental_schedule_is_bit_identical_and_cuts_steps_and_boxes():
    rows = {}
    for name, program in sorted(_workload().items()):
        rank = build_execution_tree(program.fix).max_recursive_calls
        assert rank >= 2, f"{name} is not a rank >= 2 workload program"

        # From scratch: one fresh engine per scheduled depth (independent
        # jobs, the pre-PR shape of a Table 1 depth column).
        references = []
        scratch_steps = 0
        scratch_boxes = 0
        scratch_started = time.perf_counter()
        for depth in _SCHEDULE:
            engine = MeasureEngine()
            bound_engine = LowerBoundEngine(
                strategy=program.strategy, measure_engine=engine
            )
            references.append(bound_engine.lower_bound(program.applied, max_steps=depth))
            scratch_steps += engine.stats.symbolic_steps
            scratch_boxes += engine.stats.sweep_boxes_examined
        scratch_elapsed = time.perf_counter() - scratch_started

        # Incremental: one resumable session through the whole schedule.
        engine = MeasureEngine()
        session = LowerBoundEngine(
            strategy=program.strategy, measure_engine=engine
        ).session(program.applied)
        incremental_started = time.perf_counter()
        for depth, reference in zip(_SCHEDULE, references):
            result = session.extend(depth)
            # Full dataclass equality: probability, expected steps, measure
            # gap, flags, and the measured path tuple in exploration order.
            assert result == reference, f"{name} diverged at depth {depth}"
        incremental_elapsed = time.perf_counter() - incremental_started

        incremental_steps = engine.stats.symbolic_steps
        incremental_boxes = engine.stats.sweep_boxes_examined
        assert incremental_steps > 0
        assert engine.stats.paths_resumed > 0, name
        assert engine.stats.frontier_peak > 0, name
        step_reduction = scratch_steps / incremental_steps
        rows[name] = {
            "rank": rank,
            "scratch_steps": scratch_steps,
            "incremental_steps": incremental_steps,
            "step_reduction": round(step_reduction, 2),
            "scratch_sweep_boxes": scratch_boxes,
            "incremental_sweep_boxes": incremental_boxes,
            "paths_resumed": engine.stats.paths_resumed,
            "frontier_peak": engine.stats.frontier_peak,
            "final_paths": references[-1].path_count,
            "final_bound": float(references[-1].probability),
            "scratch_ms": round(scratch_elapsed * 1000, 3),
            "incremental_ms": round(incremental_elapsed * 1000, 3),
        }
        print(
            f"{name:18s} rank={rank} steps {scratch_steps:6d} -> "
            f"{incremental_steps:5d} ({step_reduction:5.2f}x)  boxes "
            f"{scratch_boxes:5d} -> {incremental_boxes:5d}  "
            f"{scratch_elapsed * 1000:7.1f}ms -> {incremental_elapsed * 1000:6.1f}ms"
        )

    scratch_total = sum(row["scratch_steps"] for row in rows.values())
    incremental_total = sum(row["incremental_steps"] for row in rows.values())
    aggregate_step_reduction = scratch_total / incremental_total
    assert aggregate_step_reduction >= _STEP_REDUCTION_FLOOR, (
        f"symbolic steps only dropped {aggregate_step_reduction:.2f}x "
        f"({scratch_total} -> {incremental_total}), "
        f"expected >= {_STEP_REDUCTION_FLOOR}x across the schedule"
    )

    sweeping = {
        name: row for name, row in rows.items() if row["scratch_sweep_boxes"]
    }
    assert sweeping, "the workload should contain sweeping (non-affine) programs"
    scratch_box_total = sum(row["scratch_sweep_boxes"] for row in sweeping.values())
    incremental_box_total = sum(
        row["incremental_sweep_boxes"] for row in sweeping.values()
    )
    box_reduction = (
        scratch_box_total / incremental_box_total
        if incremental_box_total
        else float("inf")
    )
    assert box_reduction >= _BOX_REDUCTION_FLOOR, (
        f"sweep boxes only dropped {box_reduction:.2f}x "
        f"({scratch_box_total} -> {incremental_box_total}), "
        f"expected >= {_BOX_REDUCTION_FLOOR}x across the schedule"
    )

    # -- sweep warm-start across budgets --------------------------------------
    # A shallow-budget run persists its undecided-box frontiers; a deeper
    # budget seeded from the store resumes them: bit-identical bounds, fewer
    # boxes, and the warm-start counter records the resumes.
    program = anytime_programs()["sig-branch(3/5)"]
    depth = _SCHEDULE[-1]
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-anytime-bench-"))
    try:
        cache = BatchCache(cache_dir)
        shallow_engine = MeasureEngine(MeasureOptions(sweep_depth=11))
        LowerBoundEngine(
            strategy=program.strategy, measure_engine=shallow_engine
        ).lower_bound(program.applied, max_steps=depth)
        cache.merge_sweeps(shallow_engine, shallow_engine.export_sweep_entries())

        warm_engine = MeasureEngine()  # default budget, deeper than 11
        warm_engine.import_sweep_entries(cache.load_sweeps(warm_engine))
        warm = LowerBoundEngine(
            strategy=program.strategy, measure_engine=warm_engine
        ).lower_bound(program.applied, max_steps=depth)

        fresh_engine = MeasureEngine()
        fresh = LowerBoundEngine(
            strategy=program.strategy, measure_engine=fresh_engine
        ).lower_bound(program.applied, max_steps=depth)

        assert warm == fresh, "warm-started sweep bounds must be bit-identical"
        warm_starts = warm_engine.stats.sweep_warm_starts
        warm_boxes = warm_engine.stats.sweep_boxes_examined
        fresh_boxes = fresh_engine.stats.sweep_boxes_examined
        assert warm_starts > 0
        assert warm_boxes < fresh_boxes, (warm_boxes, fresh_boxes)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    print(
        f"warm-started sweeps   : {warm_starts}  boxes {fresh_boxes} -> "
        f"{warm_boxes} at depth budget 11 -> {MeasureOptions().sweep_depth}"
    )

    scratch_seconds = sum(row["scratch_ms"] for row in rows.values()) / 1000
    incremental_seconds = (
        sum(row["incremental_ms"] for row in rows.values()) / 1000
    )
    payload = {
        "benchmark": "resumable anytime exploration + sweep warm starts",
        "workload": "lower-bound depth schedule over rank >= 2 programs",
        "schedule": list(_SCHEDULE),
        "step_reduction_floor": _STEP_REDUCTION_FLOOR,
        "box_reduction_floor": _BOX_REDUCTION_FLOOR,
        "scratch_steps_total": scratch_total,
        "incremental_steps_total": incremental_total,
        "aggregate_step_reduction": round(aggregate_step_reduction, 2),
        "steps_per_second_scratch": round(scratch_total / scratch_seconds, 1)
        if scratch_seconds
        else None,
        "steps_per_second_incremental": round(
            incremental_total / incremental_seconds, 1
        )
        if incremental_seconds
        else None,
        "parallel_deepening_speedup": _parallel_deepening_speedup(),
        "scratch_sweep_boxes_total": scratch_box_total,
        "incremental_sweep_boxes_total": incremental_box_total,
        "aggregate_box_reduction": round(box_reduction, 2),
        "warm_start": {
            "shallow_depth": 11,
            "deep_depth": MeasureOptions().sweep_depth,
            "warm_starts": warm_starts,
            "warm_boxes": warm_boxes,
            "fresh_boxes": fresh_boxes,
        },
        "programs": rows,
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"schedule {list(_SCHEDULE)}: steps {scratch_total} -> {incremental_total} "
        f"({aggregate_step_reduction:.1f}x), sweep boxes {scratch_box_total} -> "
        f"{incremental_box_total} ({box_reduction:.1f}x)"
    )
