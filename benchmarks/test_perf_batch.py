"""Perf benchmark for the batch runner and its persistent cross-process cache.

Two gates, both over the table1 + table2 suite:

* **parallel speedup** -- the same cold suite at ``jobs=1`` (inline, one
  shared engine) vs ``jobs=min(4, cores)`` worker processes.  On machines
  with >= 2 cores the parallel run must be at least 1.5x faster; on a single
  core the parallel run is skipped outright and no speedup is recorded
  (``benchmarks/compare_bench.py`` likewise skips the ratio), because a
  1-core "speedup" would only measure scheduling noise.
* **warm cache** -- the suite against an empty cache directory (cold) and
  again over the same directory (warm).  The warm run must replay every job
  from the cache, take at most half the cold wall-clock, and produce
  byte-identical result lines.

Wall-clock numbers and the ratios are written to ``BENCH_batch.json`` at the
repository root (run with ``-s`` to see the table).
"""

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.batch import BatchCache, run_batch, table1_suite, table2_suite

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch.json"
_PARALLEL_SPEEDUP_FLOOR = 1.5
_WARM_RATIO_CEILING = 0.5


def _suite(depth: int):
    return table1_suite(depth=depth) + table2_suite()


def _timed_run(specs, jobs, cache=None, repeats=1):
    """Best-of-``repeats`` wall-clock (noise on shared CI runners is one-sided:
    interference only ever slows a run down, so the minimum is the fairest
    comparison).  Cached runs must use ``repeats=1`` -- a second pass would
    hit the cache the first one populated."""
    best_elapsed, best_report = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        report = run_batch(specs, jobs=jobs, cache=cache)
        elapsed = time.perf_counter() - started
        assert all(result.ok for result in report.results)
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed, best_report = elapsed, report
    return best_elapsed, best_report


def _lines(report):
    return [result.to_json_line() for result in report.results]


def test_parallel_speedup_and_warm_cache():
    # Depth 50 is the paper's Table 1 depth and the sweet spot for the
    # speedup gate: deeper, and the `pedestrian` row alone dominates the
    # suite (its path count grows super-linearly), capping the achievable
    # parallel speedup near the floor.
    depth = 50
    specs = _suite(depth)
    cores = os.cpu_count() or 1
    parallel_jobs = min(4, cores)

    # -- cold serial vs cold parallel (both uncached, best of 2) -------------
    serial_seconds, serial_report = _timed_run(specs, jobs=1, repeats=2)
    parallel_seconds = speedup = None
    if cores >= 2:
        parallel_seconds, parallel_report = _timed_run(
            specs, jobs=parallel_jobs, repeats=2
        )
        assert _lines(serial_report) == _lines(parallel_report)
        speedup = serial_seconds / parallel_seconds if parallel_seconds else float("inf")

    # -- cold vs warm over one persistent cache directory --------------------
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-batch-bench-"))
    try:
        cold_seconds, cold_report = _timed_run(specs, jobs=1, cache=BatchCache(cache_dir))
        warm_seconds, warm_report = _timed_run(specs, jobs=1, cache=BatchCache(cache_dir))
        assert _lines(cold_report) == _lines(warm_report)
        assert warm_report.cache_hits == len(specs)
        warm_ratio = warm_seconds / cold_seconds if cold_seconds else 0.0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    payload = {
        "suite": "table1+table2",
        "depth": depth,
        "job_count": len(specs),
        "cpu_count": cores,
        "parallel_jobs": parallel_jobs,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_speedup_floor": _PARALLEL_SPEEDUP_FLOOR,
        "parallel_gate_enforced": cores >= 2,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_ratio": round(warm_ratio, 4),
        "warm_ratio_ceiling": _WARM_RATIO_CEILING,
        "warm_job_cache_hits": warm_report.cache_hits,
    }
    if speedup is not None:
        payload["parallel_seconds"] = round(parallel_seconds, 4)
        payload["parallel_speedup"] = round(speedup, 3)
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"batch suite        : {len(specs)} jobs (depth {depth}, {cores} cores)")
    print(f"serial   (jobs=1)  : {serial_seconds:8.2f} s")
    if speedup is not None:
        print(f"parallel (jobs={parallel_jobs})  : {parallel_seconds:8.2f} s   "
              f"speedup {speedup:4.2f}x")
    else:
        print(f"parallel           : skipped ({cores} core, nothing to fan out over)")
    print(f"cold cache         : {cold_seconds:8.2f} s")
    print(f"warm cache         : {warm_seconds:8.2f} s   ratio {warm_ratio:4.2f}")

    assert warm_ratio <= _WARM_RATIO_CEILING, (
        f"warm cache run took {warm_ratio:.2f}x of the cold run "
        f"(ceiling {_WARM_RATIO_CEILING})"
    )
    if speedup is not None:
        assert speedup >= _PARALLEL_SPEEDUP_FLOOR, (
            f"parallel speedup {speedup:.2f}x below the "
            f"{_PARALLEL_SPEEDUP_FLOOR}x floor on {cores} cores"
        )
