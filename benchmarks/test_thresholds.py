"""Experiment E4: the AST thresholds stated in the paper.

* Ex. 1.1 (2) is AST iff p >= 1/2 (Sec. 1.1, Ex. 5.14);
* Ex. 5.1 is verified AST by Thm. 5.9 for p >= 3/5 but by Cor. 5.13 only for
  p >= 2/3 (Ex. 5.11 / Ex. 5.14);
* Ex. 5.15 is verified AST for p >= sqrt(7) - 2 ~ 0.6458 (Ex. 5.15, App. D.5).

The benchmark sweeps p across each threshold with the automatic verifier and
checks that the verdict flips exactly where the paper says it does.
"""

import math
from fractions import Fraction


from repro.astcheck import verify_ast
from repro.counting import verify_ast_by_corollary
from repro.programs import printer_nonaffine, running_example, running_example_first_class


def _sweep(builder, probabilities):
    return {p: verify_ast(builder(p)).verified for p in probabilities}


def test_threshold_printer_nonaffine(benchmark):
    probabilities = [Fraction(n, 100) for n in (40, 45, 49, 50, 55, 60)]
    verdicts = benchmark(_sweep, printer_nonaffine, probabilities)
    print(f"\n[E4] Ex. 1.1 (2) verdicts: { {float(k): v for k, v in verdicts.items()} }")
    for probability, verdict in verdicts.items():
        assert verdict == (probability >= Fraction(1, 2))


def test_threshold_running_example(benchmark):
    probabilities = [Fraction(n, 100) for n in (55, 59, 60, 62, 70)]
    verdicts = benchmark(_sweep, running_example, probabilities)
    print(f"\n[E4] Ex. 5.1 verdicts: { {float(k): v for k, v in verdicts.items()} }")
    for probability, verdict in verdicts.items():
        assert verdict == (probability >= Fraction(3, 5))


def test_threshold_running_example_first_class(benchmark):
    threshold = math.sqrt(7) - 2
    probabilities = [Fraction(n, 1000) for n in (630, 640, 645, 646, 650, 700)]
    verdicts = benchmark(_sweep, running_example_first_class, probabilities)
    print(f"\n[E4] Ex. 5.15 verdicts: { {float(k): v for k, v in verdicts.items()} }")
    for probability, verdict in verdicts.items():
        assert verdict == (float(probability) >= threshold)


def test_corollary_is_weaker_than_the_verifier_on_ex_5_1(benchmark):
    def both(probability):
        return (
            verify_ast_by_corollary(running_example(probability).fix, arguments=(0, 1, 5)).verified,
            verify_ast(running_example(probability)).verified,
        )

    corollary, verifier = benchmark(both, Fraction(3, 5))
    print(f"\n[E4] Ex. 5.1 at p=3/5: Cor. 5.13 = {corollary}, Thm. 5.9 verifier = {verifier}")
    assert verifier and not corollary
    corollary_at_two_thirds, _ = both(Fraction(2, 3))
    assert corollary_at_two_thirds
