"""Perf benchmark for the block-decomposed, memoizing measure engine.

The seed implementation evaluated ``min_sigma P(sigma, n)`` with one full
tree walk per budget ``n``, re-measuring every leaf's path constraint set up
to ``rank + 1`` times, and every analysis (the AST verifier, the PAST
verifier, the refutation) re-measured the same sets from scratch.  PR 1
replaced that with a single-pass traversal over one shared memoizing
:class:`MeasureEngine`; this benchmark additionally gates the block
decomposition added on top: constraint sets are split into independent
variable blocks, each memoized under its own position-independent key, so
two sets sharing a block measure it once.

Asserted (deterministically, so it can run in CI):

* cumulative vectors and ``Papprox`` distributions are bit-identical with the
  cache enabled, with it disabled, per-budget (``exact`` flag included), and
  with the block decomposition turned off (the PR 1 engine),
* on every program of recursive rank >= 3 the ``measure_constraints``
  invocation counter drops by at least 5x against the uncached baseline,
* block decomposition never performs *more* base (innermost) block
  computations than the PR 1 engine, and across the programs whose
  constraint sets contain >= 2 independent blocks it performs at least 2x
  fewer of them in aggregate.

Wall-clock timings are recorded alongside the counters in
``BENCH_papprox.json`` at the repository root (run with ``-s`` to see the
table).  ``benchmarks/compare_bench.py`` diffs that file against the
committed baseline in CI's ``perf-trajectory`` job.
"""

import json
import time
from pathlib import Path

from repro.astcheck import (
    build_execution_tree,
    min_probability_at_most,
    papprox_distribution,
    verify_ast,
)
from repro.geometry import MeasureEngine
from repro.pastcheck import verify_past
from repro.programs import extra_programs, table2_programs

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_papprox.json"
_SPEEDUP_FLOOR = 5.0
_BLOCK_SPEEDUP_FLOOR = 2.0


def _library():
    programs = dict(table2_programs())
    for name, program in extra_programs().items():
        programs.setdefault(name, program)
    return programs


def _analysable(programs):
    """The library programs whose bodies admit a finite execution tree."""
    usable = {}
    for name, program in programs.items():
        try:
            tree = build_execution_tree(program.fix)
        except Exception:
            continue
        if tree.has_star_guards:
            continue
        usable[name] = (program, tree)
    return usable


def _verify_both(program, engine):
    """The benchmark workload: AST + PAST verification over one engine."""
    ast_result = verify_ast(program, engine=engine)
    past_result = verify_past(program, engine=engine)
    return ast_result, past_result


def test_shared_cache_is_bit_identical_and_cuts_measure_calls():
    rows = {}
    for name, (program, tree) in _analysable(_library()).items():
        rank = tree.max_recursive_calls

        # Baseline: the seed's per-budget evaluation, uncached, once for the
        # AST verification and once for the PAST verification.
        baseline_engine = MeasureEngine(cache_enabled=False)
        start = time.perf_counter()
        baseline_vector = None
        for _ in range(2):
            baseline_vector = [
                min_probability_at_most(tree, budget, engine=baseline_engine)
                for budget in range(rank + 1)
            ]
        baseline_elapsed = time.perf_counter() - start

        # Cache off, single pass: bit-identity of the new traversal alone.
        uncached = papprox_distribution(tree, engine=MeasureEngine(cache_enabled=False))

        # The PR 1 engine: cached and shared, but whole-set memoization only.
        pr1 = MeasureEngine(block_decomposition=False)
        pr1_ast, pr1_past = _verify_both(program, pr1)
        pr1_distribution = papprox_distribution(tree, engine=pr1)

        # The block-decomposed engine, shared across both verifiers.
        shared = MeasureEngine()
        start = time.perf_counter()
        ast_result, past_result = _verify_both(program, shared)
        cached_elapsed = time.perf_counter() - start
        cached = papprox_distribution(tree, engine=shared)

        assert list(cached.cumulative) == list(uncached.cumulative) == baseline_vector, name
        assert list(cached.cumulative) == list(pr1_distribution.cumulative), name
        assert cached.exact == uncached.exact == pr1_distribution.exact, name
        assert (
            cached.distribution.as_dict()
            == uncached.distribution.as_dict()
            == pr1_distribution.distribution.as_dict()
        ), name
        if ast_result.papprox is not None and pr1_ast.papprox is not None:
            assert ast_result.papprox.as_dict() == pr1_ast.papprox.as_dict(), name
        if ast_result.papprox is not None and past_result.ast_result.papprox is not None:
            assert (
                ast_result.papprox.as_dict()
                == past_result.ast_result.papprox.as_dict()
                == cached.distribution.as_dict()
            ), name

        baseline_calls = baseline_engine.stats.measure_calls
        cached_calls = shared.stats.measure_calls
        # Programs resolved without any measure_constraints invocation (the
        # non-affine library goes through per-block sweeps instead) have no
        # meaningful call ratio: record None, which the comparator skips.
        speedup = baseline_calls / cached_calls if cached_calls else None
        if rank >= 3 and speedup is not None:
            assert speedup >= _SPEEDUP_FLOOR, (
                f"{name}: measure calls only dropped {speedup:.2f}x "
                f"({baseline_calls} -> {cached_calls}), expected >= {_SPEEDUP_FLOOR}x"
            )

        pr1_blocks = pr1.stats.block_computations
        new_blocks = shared.stats.block_computations
        # The decomposition must never do *more* base work than PR 1.
        assert new_blocks <= pr1_blocks, (
            f"{name}: block decomposition did {new_blocks} base computations, "
            f"PR 1 did {pr1_blocks}"
        )
        block_speedup = pr1_blocks / new_blocks if new_blocks else float("inf")

        rows[name] = {
            "rank": rank,
            "leaves": tree.leaf_count,
            "baseline_measure_calls": baseline_calls,
            "cached_measure_calls": cached_calls,
            "measure_call_speedup": None if speedup is None else round(speedup, 2),
            "cache_hits": shared.stats.cache_hits,
            "complement_derivations": shared.stats.complement_derivations,
            "pr1_block_computations": pr1_blocks,
            "block_computations": new_blocks,
            "block_speedup": round(block_speedup, 2) if new_blocks else None,
            "multi_block_sets": shared.stats.multi_block_sets,
            "block_cache_hits": shared.stats.block_cache_hits,
            "baseline_ms": round(baseline_elapsed * 1000, 3),
            "cached_ms": round(cached_elapsed * 1000, 3),
            "exact": cached.exact,
            "papprox": {
                str(calls): str(mass)
                for calls, mass in sorted(cached.distribution.as_dict().items())
            },
        }
        speedup_label = "    -" if speedup is None else f"{speedup:5.1f}"
        print(
            f"{name:22s} rank={rank} calls {baseline_calls:4d} -> {cached_calls:2d} "
            f"({speedup_label}x)  blocks {pr1_blocks:3d} -> {new_blocks:3d}  "
            f"{baseline_elapsed * 1000:7.1f}ms -> {cached_elapsed * 1000:6.1f}ms"
        )

    high_rank = {name: row for name, row in rows.items() if row["rank"] >= 3}
    assert high_rank, "the library should contain rank >= 3 programs"

    # The block gate: over the programs whose sets decompose into >= 2
    # independent blocks, the base computations must drop >= 2x in aggregate.
    multi_block = {name: row for name, row in rows.items() if row["multi_block_sets"]}
    assert multi_block, "the library should contain multi-block programs"
    pr1_total = sum(row["pr1_block_computations"] for row in multi_block.values())
    new_total = sum(row["block_computations"] for row in multi_block.values())
    aggregate_block_speedup = pr1_total / new_total if new_total else float("inf")
    assert aggregate_block_speedup >= _BLOCK_SPEEDUP_FLOOR, (
        f"block computations on multi-block programs only dropped "
        f"{aggregate_block_speedup:.2f}x ({pr1_total} -> {new_total}), "
        f"expected >= {_BLOCK_SPEEDUP_FLOOR}x"
    )
    print(
        f"multi-block programs   : {len(multi_block)}  base computations "
        f"{pr1_total} -> {new_total} ({aggregate_block_speedup:.1f}x)"
    )

    payload = {
        "benchmark": "papprox single-pass + block-decomposed measure cache",
        "workload": "verify_ast + verify_past per program, one shared MeasureEngine",
        "baseline": "per-budget min_probability_at_most, cache disabled, per analysis",
        "speedup_floor_rank_ge_3": _SPEEDUP_FLOOR,
        "block_speedup_floor": _BLOCK_SPEEDUP_FLOOR,
        "multi_block_programs": len(multi_block),
        "pr1_block_computations_total": pr1_total,
        "block_computations_total": new_total,
        "aggregate_block_speedup": round(aggregate_block_speedup, 2),
        "programs": rows,
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
