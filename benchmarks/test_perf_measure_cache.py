"""Perf benchmark for the single-pass Papprox + shared memoizing measure engine.

The seed implementation evaluated ``min_sigma P(sigma, n)`` with one full
tree walk per budget ``n``, re-measuring every leaf's path constraint set up
to ``rank + 1`` times, and every analysis (the AST verifier, the PAST
verifier, the refutation) re-measured the same sets from scratch.  This
benchmark pits that baseline -- the per-budget reference evaluator
:func:`min_probability_at_most` with the cache disabled, run once for the AST
verification and once for the PAST verification, exactly the work the seed
performed for the Table-2 + classification pipeline -- against the new
single-pass traversal with one :class:`MeasureEngine` shared by both
analyses.

Asserted (deterministically, so it can run in CI):

* cumulative vectors and ``Papprox`` distributions are bit-identical with the
  cache enabled, with it disabled, and per-budget (``exact`` flag included),
* on every program of recursive rank >= 3 the ``measure_constraints``
  invocation counter drops by at least 5x.

Wall-clock timings are recorded alongside the counters in
``BENCH_papprox.json`` at the repository root (run with ``-s`` to see the
table).
"""

import json
import time
from pathlib import Path

from repro.astcheck import (
    build_execution_tree,
    min_probability_at_most,
    papprox_distribution,
    verify_ast,
)
from repro.geometry import MeasureEngine
from repro.pastcheck import verify_past
from repro.programs import extra_programs, table2_programs

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_papprox.json"
_SPEEDUP_FLOOR = 5.0


def _library():
    programs = dict(table2_programs())
    for name, program in extra_programs().items():
        programs.setdefault(name, program)
    return programs


def _analysable(programs):
    """The library programs whose bodies admit a finite execution tree."""
    usable = {}
    for name, program in programs.items():
        try:
            tree = build_execution_tree(program.fix)
        except Exception:
            continue
        if tree.has_star_guards:
            continue
        usable[name] = (program, tree)
    return usable


def test_shared_cache_is_bit_identical_and_cuts_measure_calls():
    rows = {}
    for name, (program, tree) in _analysable(_library()).items():
        rank = tree.max_recursive_calls

        # Baseline: the seed's per-budget evaluation, uncached, once for the
        # AST verification and once for the PAST verification.
        baseline_engine = MeasureEngine(cache_enabled=False)
        start = time.perf_counter()
        baseline_vector = None
        for _ in range(2):
            baseline_vector = [
                min_probability_at_most(tree, budget, engine=baseline_engine)
                for budget in range(rank + 1)
            ]
        baseline_elapsed = time.perf_counter() - start

        # Cache off, single pass: bit-identity of the new traversal alone.
        uncached = papprox_distribution(tree, engine=MeasureEngine(cache_enabled=False))

        # Cache on, shared across the AST verifier and the PAST verifier.
        shared = MeasureEngine()
        start = time.perf_counter()
        ast_result = verify_ast(program, engine=shared)
        past_result = verify_past(program, engine=shared)
        cached_elapsed = time.perf_counter() - start
        cached = papprox_distribution(tree, engine=shared)

        assert list(cached.cumulative) == list(uncached.cumulative) == baseline_vector, name
        assert cached.exact == uncached.exact, name
        assert cached.distribution.as_dict() == uncached.distribution.as_dict(), name
        if ast_result.papprox is not None and past_result.ast_result.papprox is not None:
            assert (
                ast_result.papprox.as_dict()
                == past_result.ast_result.papprox.as_dict()
                == cached.distribution.as_dict()
            ), name

        baseline_calls = baseline_engine.stats.measure_calls
        cached_calls = shared.stats.measure_calls
        speedup = baseline_calls / cached_calls if cached_calls else float("inf")
        if rank >= 3:
            assert speedup >= _SPEEDUP_FLOOR, (
                f"{name}: measure calls only dropped {speedup:.2f}x "
                f"({baseline_calls} -> {cached_calls}), expected >= {_SPEEDUP_FLOOR}x"
            )

        rows[name] = {
            "rank": rank,
            "leaves": tree.leaf_count,
            "baseline_measure_calls": baseline_calls,
            "cached_measure_calls": cached_calls,
            "measure_call_speedup": round(speedup, 2),
            "cache_hits": shared.stats.cache_hits,
            "complement_derivations": shared.stats.complement_derivations,
            "baseline_ms": round(baseline_elapsed * 1000, 3),
            "cached_ms": round(cached_elapsed * 1000, 3),
            "exact": cached.exact,
            "papprox": {
                str(calls): str(mass)
                for calls, mass in sorted(cached.distribution.as_dict().items())
            },
        }
        print(
            f"{name:22s} rank={rank} calls {baseline_calls:4d} -> {cached_calls:2d} "
            f"({speedup:5.1f}x)  {baseline_elapsed * 1000:7.1f}ms -> {cached_elapsed * 1000:6.1f}ms"
        )

    high_rank = {name: row for name, row in rows.items() if row["rank"] >= 3}
    assert high_rank, "the library should contain rank >= 3 programs"
    payload = {
        "benchmark": "papprox single-pass + shared measure cache",
        "workload": "verify_ast + verify_past per program, one shared MeasureEngine",
        "baseline": "per-budget min_probability_at_most, cache disabled, per analysis",
        "speedup_floor_rank_ge_3": _SPEEDUP_FLOOR,
        "programs": rows,
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
