"""Ablation A4: recursion-tree mass vs. the walk's absorption probability.

The decomposition of App. D.1 identifies terminating runs with number trees;
the cumulative probability of all trees up to a node budget is a certified
lower bound on the termination probability of the extracted walk and
converges to it (Lem. D.6).  The benchmark measures the dynamic-programming
computation of the cumulative mass for the Table 2 counting distributions and
checks the convergence against the branching-process extinction probability.
"""

from fractions import Fraction

import pytest

from repro.counting.numbertrees import (
    extinction_probability,
    termination_mass_up_to,
)
from repro.randomwalk import CountingDistribution

_DISTRIBUTIONS = {
    "geo(1/2)": CountingDistribution({0: Fraction(1, 2), 1: Fraction(1, 2)}),
    "printer(1/2)": CountingDistribution({0: Fraction(1, 2), 2: Fraction(1, 2)}),
    "3print(2/3)": CountingDistribution({0: Fraction(2, 3), 3: Fraction(1, 3)}),
    "gr": CountingDistribution({0: Fraction(1, 2), 3: Fraction(1, 2)}),
}


@pytest.mark.parametrize("name", list(_DISTRIBUTIONS))
def test_tree_mass_convergence(benchmark, name, paper_scale):
    distribution = _DISTRIBUTIONS[name]
    budget = 101 if paper_scale else 41

    mass = benchmark(termination_mass_up_to, distribution, budget)

    limit = extinction_probability(distribution)
    print(
        f"\n[A4] {name:14s} tree mass up to {budget} nodes = {float(mass):.6f}, "
        f"extinction probability = {limit:.6f}"
    )
    assert float(mass) <= limit + 1e-9
    # Sub- and critically-branching examples approach 1; gr approaches the
    # inverse golden ratio. The budgeted mass should be within striking
    # distance of its limit.
    assert float(mass) >= limit - 0.25


def test_tree_mass_monotone_in_budget(benchmark):
    distribution = _DISTRIBUTIONS["printer(1/2)"]

    def masses():
        return [termination_mass_up_to(distribution, budget) for budget in (5, 11, 21)]

    values = benchmark(masses)
    print("\n[A4] printer(1/2) cumulative masses:", [float(value) for value in values])
    assert values == sorted(values)
