"""Set types, intersections, and their quantitative functionals (Sec. 4.1).

The grammar of the paper is

    alpha ::= [a, b] | sigma -> A        (element types)
    sigma ::= {A_1, ..., A_n}            (intersections)
    A     ::= {(alpha_1, p_1, tau_1), ..., (alpha_m, p_m, tau_m)}   (set types)

where each ``p_i`` is an interval trace and ``tau_i`` a step count.  A set
type lists finitely many ways a term can converge: the value description, the
interval trace consumed, and the number of steps taken.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Tuple, Union

from repro.intervals.interval import Interval
from repro.intervals.trace import IntervalTrace

Number = Union[Fraction, float]


class TypeElement:
    """Base class of element types ``alpha``."""

    __slots__ = ()


@dataclass(frozen=True)
class IntervalElement(TypeElement):
    """A base-type element: the value lies in ``interval``."""

    interval: Interval

    def __repr__(self) -> str:
        return f"IntervalElement({self.interval!r})"


@dataclass(frozen=True)
class ArrowElement(TypeElement):
    """A functional element ``sigma -> target``."""

    source: Tuple["SetType", ...]
    target: "SetType"

    def __init__(self, source: Iterable["SetType"], target: "SetType") -> None:
        object.__setattr__(self, "source", tuple(source))
        object.__setattr__(self, "target", target)

    def __repr__(self) -> str:
        return f"ArrowElement({list(self.source)!r} -> {self.target!r})"


@dataclass(frozen=True)
class TypedTriple:
    """One element ``(alpha, p, tau)`` of a set type."""

    element: TypeElement
    trace: IntervalTrace
    steps: int

    def shifted(self, prefix: IntervalTrace, extra_steps: int) -> "TypedTriple":
        """``(alpha, prefix . p, tau + extra_steps)`` -- the paper's ``A^(p, t)``."""
        return TypedTriple(self.element, prefix.concat(self.trace), self.steps + extra_steps)


@dataclass(frozen=True)
class SetType:
    """A finite set of typed triples."""

    triples: Tuple[TypedTriple, ...]

    def __init__(self, triples: Iterable[TypedTriple] = ()) -> None:
        object.__setattr__(self, "triples", tuple(triples))

    def __iter__(self) -> Iterator[TypedTriple]:
        return iter(self.triples)

    def __len__(self) -> int:
        return len(self.triples)

    def union(self, other: "SetType") -> "SetType":
        return SetType(self.triples + other.triples)

    def shifted(self, prefix: IntervalTrace, extra_steps: int) -> "SetType":
        """Prepend ``prefix`` to every trace and add ``extra_steps`` to every count."""
        return SetType(triple.shifted(prefix, extra_steps) for triple in self.triples)

    def traces(self) -> Tuple[IntervalTrace, ...]:
        return tuple(triple.trace for triple in self.triples)

    def pairwise_compatible(self) -> bool:
        """Compatibility of the witnessing traces (needed for Thm. 3.4 soundness)."""
        traces = self.traces()
        for index, first in enumerate(traces):
            for second in traces[index + 1 :]:
                if not first.compatible(second):
                    return False
        return True

    def __repr__(self) -> str:
        return f"SetType({list(self.triples)!r})"


def weight(set_type: SetType) -> Number:
    """``omega(A)``: the summed weight of the witnessing interval traces."""
    total: Number = Fraction(0)
    for triple in set_type:
        total = total + triple.trace.weight
    return total


def expected_steps(set_type: SetType) -> Number:
    """``E(A)``: the trace-weighted sum of step counts."""
    total: Number = Fraction(0)
    for triple in set_type:
        total = total + triple.trace.weight * triple.steps
    return total
