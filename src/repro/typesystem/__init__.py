"""The intersection type system of Sec. 4.

Set types annotate a term of type R with triples ``(alpha, p, tau)``: a value
description ``alpha`` (an interval for base-type results, an arrow shape for
functions), a terminating interval trace ``p`` and the number of reduction
steps ``tau`` taken along it.  The weight ``omega(A)`` of a set type is the
summed weight of its traces and ``E(A)`` the trace-weighted sum of step
counts; Thm. 4.1 states that the suprema of these two quantities over all
derivations are exactly ``Pterm`` and (for AST terms) ``Eterm``.

The package provides the type syntax with ``omega``/``E``, an explicit
derivation representation with a rule-by-rule checker for the judgement forms
used by base-type programs, and an inference oracle that produces set types
(together with their witnessing interval traces) from the interval-based
semantics, so that the sup-convergence of Thm. 4.1 can be observed
numerically.
"""

from repro.typesystem.settypes import (
    ArrowElement,
    IntervalElement,
    SetType,
    TypeElement,
    expected_steps,
    weight,
)
from repro.typesystem.derivation import Derivation, DerivationError, check_derivation
from repro.typesystem.inference import infer_set_type, InferenceResult

__all__ = [
    "ArrowElement",
    "Derivation",
    "DerivationError",
    "InferenceResult",
    "IntervalElement",
    "SetType",
    "TypeElement",
    "check_derivation",
    "expected_steps",
    "infer_set_type",
    "weight",
]
