"""Explicit typing derivations and a rule-by-rule checker (Fig. 4).

A :class:`Derivation` records the rule applied, the subject term, the typing
environment (mapping variables to intersections, i.e. tuples of set types),
the concluded set type, and the sub-derivations for the premises.  The checker
validates the local side conditions of each rule:

* ``(num)``   -- an interval numeral is typed by itself with the empty trace,
* ``(sample)``-- the sampled intervals are pairwise almost disjoint and each
  triple consumes exactly its own interval in one step,
* ``(if)``    -- the branch premises are selected by the sign of the guard
  intervals and the conclusion is the union of the branch types shifted by
  the guard's trace and step count plus one,
* ``(score)`` -- only non-negative intervals survive, one step is added,
* ``(prim)``  -- the conclusion applies the interval extension of the
  primitive to the argument triples, concatenating traces and adding one step,
* ``(app)``/``(abs)``/``(fix)``/``(var)``/``(empty)`` -- the CbN application
  discipline of the paper.

The checker validates derivations; building them is the business of
:mod:`repro.typesystem.inference` (for base-type programs) or of the caller
(the tests construct small derivations by hand, including invalid ones).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.intervals.interval import Interval
from repro.intervals.terms import IntervalNumeral
from repro.intervals.trace import IntervalTrace
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import App, Fix, If, Lam, Prim, Sample, Score, Term, Var
from repro.typesystem.settypes import (
    ArrowElement,
    IntervalElement,
    SetType,
    TypedTriple,
)

Environment = Mapping[str, Tuple[SetType, ...]]


class DerivationError(Exception):
    """Raised when a derivation violates a side condition of its rule."""


@dataclass(frozen=True)
class Derivation:
    """One node of a typing derivation."""

    rule: str
    term: Term
    conclusion: SetType
    environment: Dict[str, Tuple[SetType, ...]] = field(default_factory=dict)
    premises: Tuple["Derivation", ...] = ()


def _triples_multiset(set_type: SetType) -> Counter:
    return Counter((repr(t.element), t.trace.intervals, t.steps) for t in set_type)


def _same_set_type(left: SetType, right: SetType) -> bool:
    return _triples_multiset(left) == _triples_multiset(right)


def check_derivation(
    derivation: Derivation, registry: Optional[PrimitiveRegistry] = None
) -> bool:
    """Check every rule application in ``derivation``; raise on violations."""
    registry = registry or default_registry()
    _check(derivation, registry)
    return True


def _check(derivation: Derivation, registry: PrimitiveRegistry) -> None:
    for premise in derivation.premises:
        _check(premise, registry)
    handler = _RULES.get(derivation.rule)
    if handler is None:
        raise DerivationError(f"unknown rule {derivation.rule!r}")
    handler(derivation, registry)


# -- individual rules --------------------------------------------------------


def _check_empty(derivation: Derivation, registry: PrimitiveRegistry) -> None:
    if len(derivation.conclusion) != 0:
        raise DerivationError("the (empty) rule concludes the empty set type")


def _check_num(derivation: Derivation, registry: PrimitiveRegistry) -> None:
    term = derivation.term
    if not isinstance(term, IntervalNumeral):
        raise DerivationError("the (num) rule applies to interval numerals")
    expected = SetType(
        (TypedTriple(IntervalElement(term.interval), IntervalTrace(()), 0),)
    )
    if not _same_set_type(derivation.conclusion, expected):
        raise DerivationError("the (num) conclusion must be {([a,b], eps, 0)}")


def _check_var(derivation: Derivation, registry: PrimitiveRegistry) -> None:
    term = derivation.term
    if not isinstance(term, Var):
        raise DerivationError("the (var) rule applies to variables")
    intersection = derivation.environment.get(term.name)
    if intersection is None:
        raise DerivationError(f"variable {term.name!r} is not in the environment")
    if not any(_same_set_type(derivation.conclusion, member) for member in intersection):
        raise DerivationError(
            "the (var) conclusion must be one of the environment's set types"
        )


def _check_sample(derivation: Derivation, registry: PrimitiveRegistry) -> None:
    if not isinstance(derivation.term, Sample):
        raise DerivationError("the (sample) rule applies to sample")
    intervals = []
    for triple in derivation.conclusion:
        if not isinstance(triple.element, IntervalElement):
            raise DerivationError("sample is typed with interval elements")
        if len(triple.trace) != 1 or triple.trace[0] != triple.element.interval:
            raise DerivationError(
                "each sample triple must consume exactly its own interval"
            )
        if triple.steps != 1:
            raise DerivationError("a sample reduction takes exactly one step")
        if not triple.element.interval.within_unit():
            raise DerivationError("sampled intervals must lie within [0, 1]")
        intervals.append(triple.element.interval)
    for index, first in enumerate(intervals):
        for second in intervals[index + 1 :]:
            if not first.almost_disjoint(second):
                raise DerivationError("sampled intervals must be pairwise almost disjoint")


def _check_abs(derivation: Derivation, registry: PrimitiveRegistry) -> None:
    term = derivation.term
    if not isinstance(term, Lam):
        raise DerivationError("the (abs) rule applies to lambda abstractions")
    if len(derivation.conclusion) != 1:
        raise DerivationError("the (abs) conclusion is a singleton")
    triple = derivation.conclusion.triples[0]
    if not isinstance(triple.element, ArrowElement):
        raise DerivationError("the (abs) conclusion must be an arrow element")
    if len(triple.trace) != 0 or triple.steps != 0:
        raise DerivationError("an abstraction is a value: empty trace, zero steps")
    if len(derivation.premises) != 1:
        raise DerivationError("the (abs) rule has exactly one premise")
    premise = derivation.premises[0]
    bound = premise.environment.get(term.var)
    if bound is None or Counter(map(repr, bound)) != Counter(
        map(repr, triple.element.source)
    ):
        raise DerivationError(
            "the premise must bind the abstracted variable to the arrow's source"
        )
    if not _same_set_type(premise.conclusion, triple.element.target):
        raise DerivationError("the premise must conclude the arrow's target")


def _check_fix(derivation: Derivation, registry: PrimitiveRegistry) -> None:
    term = derivation.term
    if not isinstance(term, Fix):
        raise DerivationError("the (fix) rule applies to fixpoint abstractions")
    if len(derivation.conclusion) != 1:
        raise DerivationError("the (fix) conclusion is a singleton")
    triple = derivation.conclusion.triples[0]
    if not isinstance(triple.element, ArrowElement):
        raise DerivationError("the (fix) conclusion must be an arrow element")
    if len(triple.trace) != 0 or triple.steps != 0:
        raise DerivationError("a fixpoint abstraction is a value: empty trace, zero steps")
    if not derivation.premises:
        raise DerivationError("the (fix) rule needs at least the body premise")
    body_premise = derivation.premises[0]
    if not _same_set_type(body_premise.conclusion, triple.element.target):
        raise DerivationError("the body premise must conclude the arrow's target")
    bound = body_premise.environment.get(term.var)
    if bound is None or Counter(map(repr, bound)) != Counter(
        map(repr, triple.element.source)
    ):
        raise DerivationError(
            "the body premise must bind the argument variable to the arrow's source"
        )


def _check_score(derivation: Derivation, registry: PrimitiveRegistry) -> None:
    term = derivation.term
    if not isinstance(term, Score):
        raise DerivationError("the (score) rule applies to score terms")
    if len(derivation.premises) != 1:
        raise DerivationError("the (score) rule has exactly one premise")
    premise = derivation.premises[0]
    expected = []
    for triple in premise.conclusion:
        if not isinstance(triple.element, IntervalElement):
            raise DerivationError("score premises must have interval elements")
        if triple.element.interval.lo >= 0:
            expected.append(
                TypedTriple(triple.element, triple.trace, triple.steps + 1)
            )
    if not _same_set_type(derivation.conclusion, SetType(expected)):
        raise DerivationError(
            "the (score) conclusion keeps the non-negative triples with one more step"
        )


def _check_if(derivation: Derivation, registry: PrimitiveRegistry) -> None:
    term = derivation.term
    if not isinstance(term, If):
        raise DerivationError("the (if) rule applies to conditionals")
    if not derivation.premises:
        raise DerivationError("the (if) rule needs a guard premise")
    guard = derivation.premises[0]
    branch_premises = list(derivation.premises[1:])
    expected = SetType(())
    for triple in guard.conclusion:
        if not isinstance(triple.element, IntervalElement):
            raise DerivationError("the guard must have interval elements")
        interval = triple.element.interval
        if interval.hi <= 0 or interval.lo > 0:
            if not branch_premises:
                raise DerivationError("missing a branch premise for a decided guard triple")
            branch = branch_premises.pop(0)
            expected = expected.union(branch.conclusion.shifted(triple.trace, triple.steps + 1))
        else:
            raise DerivationError(
                "guard intervals must decide the branch (no straddling of 0)"
            )
    if branch_premises:
        raise DerivationError("too many branch premises")
    if not _same_set_type(derivation.conclusion, expected):
        raise DerivationError(
            "the (if) conclusion must be the union of the shifted branch types"
        )


def _check_prim(derivation: Derivation, registry: PrimitiveRegistry) -> None:
    term = derivation.term
    if not isinstance(term, Prim):
        raise DerivationError("the (prim) rule applies to primitive applications")
    primitive = registry[term.op]
    if len(derivation.premises) < 1:
        raise DerivationError("the (prim) rule needs its argument premises")
    if primitive.arity == 1:
        expected = []
        for triple in derivation.premises[0].conclusion:
            interval = _interval_of(triple)
            lo, hi = primitive.on_box(interval.as_pair())
            expected.append(
                TypedTriple(IntervalElement(Interval(lo, hi)), triple.trace, triple.steps + 1)
            )
        if not _same_set_type(derivation.conclusion, SetType(expected)):
            raise DerivationError("unary (prim) conclusion mismatch")
        return
    if primitive.arity != 2:
        raise DerivationError("the checker supports primitives of arity 1 and 2")
    first = derivation.premises[0]
    rest = list(derivation.premises[1:])
    expected = []
    for triple in first.conclusion:
        if not rest:
            raise DerivationError("missing a second-argument premise")
        second = rest.pop(0)
        for other in second.conclusion:
            lo, hi = primitive.on_box(
                _interval_of(triple).as_pair(), _interval_of(other).as_pair()
            )
            expected.append(
                TypedTriple(
                    IntervalElement(Interval(lo, hi)),
                    triple.trace.concat(other.trace),
                    triple.steps + other.steps + 1,
                )
            )
    if rest:
        raise DerivationError("too many second-argument premises")
    if not _same_set_type(derivation.conclusion, SetType(expected)):
        raise DerivationError("binary (prim) conclusion mismatch")


def _check_app(derivation: Derivation, registry: PrimitiveRegistry) -> None:
    term = derivation.term
    if not isinstance(term, App):
        raise DerivationError("the (app) rule applies to applications")
    if not derivation.premises:
        raise DerivationError("the (app) rule needs the function premise")
    function = derivation.premises[0]
    argument_premises = list(derivation.premises[1:])
    expected = SetType(())
    for triple in function.conclusion:
        if not isinstance(triple.element, ArrowElement):
            raise DerivationError("the function premise must have arrow elements")
        for required in triple.element.source:
            if not argument_premises:
                raise DerivationError("missing an argument premise")
            premise = argument_premises.pop(0)
            if not _same_set_type(premise.conclusion, required):
                raise DerivationError(
                    "an argument premise does not match the arrow's source"
                )
        expected = expected.union(
            triple.element.target.shifted(triple.trace, triple.steps + 1)
        )
    if argument_premises:
        raise DerivationError("too many argument premises")
    if not _same_set_type(derivation.conclusion, expected):
        raise DerivationError(
            "the (app) conclusion must be the union of the shifted targets"
        )


def _interval_of(triple: TypedTriple) -> Interval:
    if not isinstance(triple.element, IntervalElement):
        raise DerivationError("expected an interval element")
    return triple.element.interval


_RULES = {
    "empty": _check_empty,
    "num": _check_num,
    "var": _check_var,
    "sample": _check_sample,
    "abs": _check_abs,
    "fix": _check_fix,
    "score": _check_score,
    "if": _check_if,
    "prim": _check_prim,
    "app": _check_app,
}
