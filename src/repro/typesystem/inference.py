"""Type inference oracle: set types from the interval-based semantics.

Thm. 4.1 characterises ``Pterm`` (and ``Eterm``) as suprema over all typing
derivations of ``omega`` (and ``E``).  This module realises the *lower-bound
producing* direction operationally, which is how the paper's prototype uses
the system (Sec. 4: "by incrementally searching for typing derivations, we can
compute arbitrarily tight bounds"): terminating symbolic paths are translated
into families of pairwise-compatible terminating interval traces (via the
sweep's accepted boxes), each of which is one triple ``(alpha, p, tau)`` of a
set type for the whole program.  The weight of the inferred set type is then a
certified lower bound on ``Pterm``, converging to it as the exploration depth
and subdivision depth grow (Thm. 3.8 / Thm. 4.1), and ``E`` of the set type
lower-bounds ``Eterm``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Union

from repro.geometry.sweep import sweep_accepted_boxes
from repro.intervals.interval import Interval
from repro.intervals.trace import IntervalTrace
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import Numeral, Term, free_variables
from repro.symbolic.constraints import box_to_mapping
from repro.symbolic.execute import Strategy, SymbolicExplorer
from repro.symbolic.values import SymNumeral
from repro.typesystem.settypes import (
    ArrowElement,
    IntervalElement,
    SetType,
    TypedTriple,
    expected_steps,
    weight,
)

Number = Union[Fraction, float]


@dataclass(frozen=True)
class InferenceResult:
    """An inferred set type with its quantitative summaries."""

    set_type: SetType
    weight: Number
    expected_steps: Number
    paths_used: int
    exhaustive: bool


def infer_set_type(
    term: Term,
    max_steps: int = 100,
    sweep_depth: int = 10,
    max_paths: int = 100_000,
    strategy: Strategy = Strategy.CBN,
    registry: Optional[PrimitiveRegistry] = None,
) -> InferenceResult:
    """Infer a set type for the closed term ``term`` up to the given depths.

    The triples of the returned set type carry pairwise-compatible terminating
    interval traces; ``weight``/``expected_steps`` of the result are certified
    lower bounds on ``Pterm``/``Eterm`` (Thm. 4.1 direction "<=").
    """
    if free_variables(term):
        raise ValueError("set types are inferred for closed terms only")
    registry = registry or default_registry()
    explorer = SymbolicExplorer(strategy, registry)
    exploration = explorer.explore(term, max_steps_per_path=max_steps, max_paths=max_paths)
    triples: List[TypedTriple] = []
    for path in exploration.terminated:
        boxes = sweep_accepted_boxes(
            path.constraints, path.num_variables, max_depth=sweep_depth, registry=registry
        )
        element = _element_for_result(path.result, registry)
        for box in boxes:
            trace = IntervalTrace(box.intervals)
            refined = _refine_element(element, path.result, box, registry)
            triples.append(TypedTriple(refined, trace, path.steps))
    set_type = SetType(triples)
    return InferenceResult(
        set_type=set_type,
        weight=weight(set_type),
        expected_steps=expected_steps(set_type),
        paths_used=len(exploration.terminated),
        exhaustive=exploration.complete,
    )


def _element_for_result(result: Term, registry: PrimitiveRegistry):
    if isinstance(result, Numeral):
        return IntervalElement(Interval.point(result.value))
    if isinstance(result, SymNumeral) and result.value.is_concrete():
        value = result.value.evaluate({}, registry)
        return IntervalElement(Interval.point(value))
    if isinstance(result, SymNumeral):
        return None  # refined per box below
    # Functional results are summarised by an uninformative arrow element.
    return ArrowElement((), SetType(()))


def _refine_element(element, result: Term, box, registry: PrimitiveRegistry):
    if element is not None:
        return element
    assert isinstance(result, SymNumeral)
    bounds = result.value.interval_evaluate(box_to_mapping(box), registry)
    return IntervalElement(bounds)
