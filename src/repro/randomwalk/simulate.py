"""Monte-Carlo simulation of the truncated random walk.

Used in tests and in the random-walk scaling benchmark as an independent
cross check of the Thm. 5.4 criterion and of the truncated matrix iteration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.randomwalk.step_distribution import StepDistribution


@dataclass(frozen=True)
class WalkOutcome:
    """One simulated trajectory of the walk."""

    absorbed_at_zero: bool
    failed: bool
    steps: int
    final_state: int


def simulate_walk(
    step: StepDistribution,
    start: int = 1,
    max_steps: int = 10_000,
    rng: Optional[random.Random] = None,
) -> WalkOutcome:
    """Simulate one trajectory until absorption, failure, or the step budget."""
    rng = rng or random
    state = start
    cumulative: List[Tuple[float, int]] = []
    running = 0.0
    for point, mass in step.mass:
        running += float(mass)
        cumulative.append((running, point))
    for taken in range(max_steps):
        if state == 0:
            return WalkOutcome(True, False, taken, 0)
        draw = rng.random()
        jump = None
        for threshold, point in cumulative:
            if draw <= threshold:
                jump = point
                break
        if jump is None:
            return WalkOutcome(False, True, taken + 1, state)
        state = max(0, state + jump)
    return WalkOutcome(state == 0, False, max_steps, state)


def estimate_absorption(
    step: StepDistribution,
    start: int = 1,
    runs: int = 2000,
    max_steps: int = 10_000,
    seed: Optional[int] = 0,
) -> float:
    """Empirical probability of absorption at 0 within ``max_steps`` steps."""
    rng = random.Random(seed)
    hits = 0
    for _ in range(runs):
        outcome = simulate_walk(step, start=start, max_steps=max_steps, rng=rng)
        if outcome.absorbed_at_zero:
            hits += 1
    return hits / runs if runs else 0.0
