"""The stochastic matrix of Def. 5.2 and truncated ground-truth iteration.

Given a step distribution ``s`` the walk lives on ``N + {bottom}``: state 0 is
absorbing (success), ``bottom`` is absorbing (failure, fed by the missing mass
of ``s``), and from a state ``n > 0`` the walk moves to ``m`` with probability
``s(m - n)`` (moves below 0 are truncated into 0).  ``P^k(m, 0)`` converges
monotonically to the absorption probability; iterating the matrix product for
finitely many steps therefore yields certified lower bounds on it, which the
tests use as ground truth for the Thm. 5.4 criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Union

from repro.randomwalk.step_distribution import StepDistribution

Number = Union[Fraction, float]


@dataclass
class RandomWalkMatrix:
    """Truncated-at-0 random walk driven by a finite step distribution."""

    step: StepDistribution

    def transition(self, state: int, target: int) -> Number:
        """``P(state, target)`` per Def. 5.2 (states are naturals; -1 encodes bottom)."""
        if state == -1:
            return Fraction(1) if target == -1 else Fraction(0)
        if state == 0:
            return Fraction(1) if target == 0 else Fraction(0)
        if target == -1:
            return self.step.missing_mass
        if target == 0:
            return sum(
                (probability for point, probability in self.step.mass if point <= -state),
                Fraction(0),
            )
        return self.step(target - state)

    def absorption_lower_bound(self, start: int, steps: int) -> Number:
        """``P^steps(start, 0)``: the probability of having been absorbed at 0.

        Computed by iterating the distribution over states forward; states are
        pruned when their probability is exactly 0.  Because absorption
        probabilities are monotone in ``steps`` this is a lower bound on the
        true absorption probability.
        """
        if start == 0:
            return Fraction(1)
        distribution: Dict[int, Number] = {start: Fraction(1)}
        absorbed: Number = Fraction(0)
        for _ in range(steps):
            if not distribution:
                break
            updated: Dict[int, Number] = {}
            for state, probability in distribution.items():
                if probability == 0:
                    continue
                # Success: every jump of size <= -state.
                to_zero = sum(
                    (mass for point, mass in self.step.mass if point <= -state),
                    Fraction(0),
                )
                if to_zero:
                    absorbed = absorbed + probability * to_zero
                for point, mass in self.step.mass:
                    target = state + point
                    if target <= 0:
                        continue
                    updated[target] = updated.get(target, Fraction(0)) + probability * mass
                # The missing mass transitions to bottom and is dropped.
            distribution = updated
        return absorbed


def termination_probability(
    step: StepDistribution, start: int = 1, steps: int = 200
) -> Number:
    """Convenience wrapper: ``P^steps(start, 0)`` for the walk driven by ``step``."""
    return RandomWalkMatrix(step).absorption_lower_bound(start, steps)
