"""The cumulative-weight order on counting distributions and uniform AST.

Section 5.3 introduces a partial order compatible with termination:

    s <= t   iff   for every n,  sum_{m <= n} s(m)  <=  sum_{m <= n} t(m).

Lem. 5.10: if ``s <= t_i`` for every member of a family and the shifted walk
of ``s`` is AST, then the family is *uniform AST* -- no matter which member is
chosen at each step, the walk reaches 0 almost surely.  Lem. 5.6: a finite
family each member of which is AST is uniform AST.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.randomwalk.step_distribution import CountingDistribution


def cumulative_dominates(
    lower: CountingDistribution, upper: CountingDistribution
) -> bool:
    """``lower <= upper`` in the cumulative-weight order of Sec. 5.3."""
    points = set(lower.support()) | set(upper.support())
    if not points:
        return True
    for point in range(max(points) + 1):
        if lower.cumulative(point) > upper.cumulative(point):
            return False
    return True


def family_uniform_ast(family: Sequence[CountingDistribution]) -> bool:
    """Uniform AST of a *finite* family by Lem. 5.6 (each member AST)."""
    family = list(family)
    if not family:
        return True
    return all(member.is_ast() for member in family)


def uniform_ast_by_domination(
    witness: CountingDistribution, family: Iterable[CountingDistribution]
) -> bool:
    """Uniform AST of ``family`` by Lem. 5.10.

    ``witness`` must be cumulative-dominated by every member of the family and
    its shifted walk must be AST.  (The family may be infinite as long as the
    caller can enumerate or spot-check it; this function checks the supplied
    members.)
    """
    if not witness.is_ast():
        return False
    return all(cumulative_dominates(witness, member) for member in family)
