"""Random walks on the natural numbers (Sec. 5.1 of the paper).

Counting-based AST verification reduces the termination of a non-affine
recursive program to the almost-sure absorption at 0 of a left-truncated
random walk driven by a *step distribution* on the integers.  This package
provides

* counting distributions (sub-pmfs on N) and their shift to step
  distributions (footnote 10),
* the linear-time AST criterion of Thm. 5.4 with exact rational arithmetic,
* uniform AST for finite families (Lem. 5.6) and the ``cumulative-weight``
  partial order with its compatibility lemma (Lem. 5.10),
* the stochastic matrix of Def. 5.2 with truncated iteration (ground truth
  for the criterion) and Monte-Carlo simulation.
"""

from repro.randomwalk.step_distribution import (
    CountingDistribution,
    StepDistribution,
    dirac,
)
from repro.randomwalk.matrix import RandomWalkMatrix, termination_probability
from repro.randomwalk.order import (
    cumulative_dominates,
    family_uniform_ast,
    uniform_ast_by_domination,
)
from repro.randomwalk.simulate import simulate_walk, estimate_absorption

__all__ = [
    "CountingDistribution",
    "RandomWalkMatrix",
    "StepDistribution",
    "cumulative_dominates",
    "dirac",
    "estimate_absorption",
    "family_uniform_ast",
    "simulate_walk",
    "termination_probability",
    "uniform_ast_by_domination",
]
