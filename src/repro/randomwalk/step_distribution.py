"""Counting distributions, step distributions, and the Thm. 5.4 AST criterion.

A *counting distribution* is a sub-probability mass function on the natural
numbers: it gives, for a run of a recursion body, the probability of making
recursive calls from exactly ``n`` distinct call sites (Def. 5.7).  Shifting
it by ``-1`` (a body resolving into ``n`` new calls changes the number of
pending calls by ``n - 1``) yields a *step distribution* on the integers,
which drives the random walk of Def. 5.2.

Thm. 5.4 characterises almost-sure absorption of that walk in linear time: a
finite step distribution ``s`` is AST iff

  (a) its total mass is 1,
  (b) it is not the Dirac distribution at 0, and
  (c) its drift ``sum_i i * s(i)`` is at most 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Tuple, Union

Number = Union[Fraction, float, int]


def _normalise(value: Number) -> Union[Fraction, float]:
    if isinstance(value, bool):
        raise TypeError("probabilities cannot be booleans")
    if isinstance(value, int):
        return Fraction(value)
    return value


def _clean(mass: Mapping[int, Number]) -> Dict[int, Union[Fraction, float]]:
    cleaned: Dict[int, Union[Fraction, float]] = {}
    for support_point, probability in mass.items():
        probability = _normalise(probability)
        if probability < 0:
            raise ValueError(f"negative probability {probability} at {support_point}")
        if probability == 0:
            continue
        cleaned[int(support_point)] = probability
    return cleaned


@dataclass(frozen=True)
class StepDistribution:
    """A finite sub-pmf on the integers giving the relative change per step."""

    mass: Tuple[Tuple[int, Union[Fraction, float]], ...]

    def __init__(self, mass: Mapping[int, Number]) -> None:
        cleaned = _clean(mass)
        total = sum(cleaned.values(), Fraction(0))
        if total > 1 and not _approximately_le(total, 1):
            raise ValueError(f"total probability mass {total} exceeds 1")
        object.__setattr__(self, "mass", tuple(sorted(cleaned.items())))

    # -- pmf interface -------------------------------------------------------

    def __call__(self, value: int) -> Union[Fraction, float]:
        return dict(self.mass).get(value, Fraction(0))

    def as_dict(self) -> Dict[int, Union[Fraction, float]]:
        return dict(self.mass)

    def support(self) -> Tuple[int, ...]:
        return tuple(point for point, _ in self.mass)

    @property
    def total_mass(self) -> Union[Fraction, float]:
        return sum((probability for _, probability in self.mass), Fraction(0))

    @property
    def missing_mass(self) -> Union[Fraction, float]:
        """The probability of failure (transition to the error state)."""
        return 1 - self.total_mass

    @property
    def drift(self) -> Union[Fraction, float]:
        """The expected relative change ``sum_i i * s(i)``."""
        return sum((point * probability for point, probability in self.mass), Fraction(0))

    def is_dirac_at(self, value: int) -> bool:
        return self.mass == ((value, Fraction(1)),) or (
            len(self.mass) == 1 and self.mass[0][0] == value and self.mass[0][1] == 1
        )

    # -- the Thm. 5.4 criterion ------------------------------------------------

    def is_ast(self) -> bool:
        """Decide almost-sure absorption at 0 of the truncated walk (Thm. 5.4)."""
        if self.total_mass != 1:
            return False
        if self.is_dirac_at(0):
            return False
        return self.drift <= 0

    def ast_certificate(self) -> Dict[str, object]:
        """A human-readable record of the three Thm. 5.4 conditions."""
        return {
            "total_mass": self.total_mass,
            "total_mass_is_one": self.total_mass == 1,
            "is_dirac_at_zero": self.is_dirac_at(0),
            "drift": self.drift,
            "drift_nonpositive": self.drift <= 0,
            "ast": self.is_ast(),
        }

    def __repr__(self) -> str:
        entries = ", ".join(f"{point}: {probability}" for point, probability in self.mass)
        return f"StepDistribution({{{entries}}})"


def _approximately_le(left: Number, right: Number) -> bool:
    if isinstance(left, Fraction) and isinstance(right, (Fraction, int)):
        return left <= right
    return float(left) <= float(right) + 1e-9


@dataclass(frozen=True)
class CountingDistribution:
    """A finite sub-pmf on the naturals: the law of the number of recursive calls."""

    mass: Tuple[Tuple[int, Union[Fraction, float]], ...]

    def __init__(self, mass: Mapping[int, Number]) -> None:
        cleaned = _clean(mass)
        if any(point < 0 for point in cleaned):
            raise ValueError("counting distributions live on the natural numbers")
        total = sum(cleaned.values(), Fraction(0))
        if total > 1 and not _approximately_le(total, 1):
            raise ValueError(f"total probability mass {total} exceeds 1")
        object.__setattr__(self, "mass", tuple(sorted(cleaned.items())))

    def __call__(self, value: int) -> Union[Fraction, float]:
        return dict(self.mass).get(value, Fraction(0))

    def as_dict(self) -> Dict[int, Union[Fraction, float]]:
        return dict(self.mass)

    def support(self) -> Tuple[int, ...]:
        return tuple(point for point, _ in self.mass)

    @property
    def total_mass(self) -> Union[Fraction, float]:
        return sum((probability for _, probability in self.mass), Fraction(0))

    @property
    def expected_calls(self) -> Union[Fraction, float]:
        return sum((point * probability for point, probability in self.mass), Fraction(0))

    @property
    def rank(self) -> int:
        """The largest number of calls with positive probability (0 if none)."""
        support = self.support()
        return max(support) if support else 0

    def shifted(self) -> StepDistribution:
        """The shifted step distribution ``s(z) = self(z + 1)`` (footnote 10)."""
        return StepDistribution({point - 1: probability for point, probability in self.mass})

    def is_ast(self) -> bool:
        """Decide AST of the associated shifted random walk."""
        return self.shifted().is_ast()

    def cumulative(self, value: int) -> Union[Fraction, float]:
        """``sum_{m <= value} self(m)``."""
        return sum(
            (probability for point, probability in self.mass if point <= value),
            Fraction(0),
        )

    def scaled(self, factor: Number) -> "CountingDistribution":
        factor = _normalise(factor)
        return CountingDistribution(
            {point: probability * factor for point, probability in self.mass}
        )

    def mixed_with(self, other: "CountingDistribution") -> "CountingDistribution":
        """Pointwise sum (the caller is responsible for keeping total mass <= 1)."""
        combined: Dict[int, Union[Fraction, float]] = dict(self.mass)
        for point, probability in other.mass:
            combined[point] = combined.get(point, Fraction(0)) + probability
        return CountingDistribution(combined)

    def __repr__(self) -> str:
        entries = " + ".join(f"{probability}*d{point}" for point, probability in self.mass)
        return f"CountingDistribution({entries or '0'})"


def dirac(point: int) -> CountingDistribution:
    """The Dirac counting distribution at ``point``."""
    return CountingDistribution({point: Fraction(1)})
