"""The automatic AST verifier (Sec. 6 / Sec. 7.2 of the paper).

``verify_ast`` takes a first-order recursive program ``mu phi x. M`` (or a
:class:`~repro.programs.library.Program`) and runs the full pipeline:

1. the progress check of App. D.3 (recursive outcomes may not flow into
   guards or scores -- otherwise the counting analysis does not apply),
2. construction of the symbolic execution tree of the body on the unknown
   argument (Sec. 6.1),
3. computation of ``Papprox`` via strategy-worst-case path measures
   (Sec. 6.2, Thm. 6.2),
4. the Thm. 5.4 criterion on the shifted ``Papprox`` walk; by Thm. 5.9 and
   Lem. 5.10 success implies the program is AST on every actual argument.

The verifier is *sound but incomplete*: a negative answer means "not verified
by this method", not "not AST".
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple, Union

from repro.astcheck.exectree import ExecutionTree, ExecutionTreeError, build_execution_tree
from repro.astcheck.papprox import PapproxResult, papprox_distribution
from repro.counting.progress import ProgressCheckResult, guards_independent_of_recursion
from repro.counting.rank import recursive_rank_bound
from repro.geometry.engine import MeasureEngine
from repro.geometry.measure import MeasureOptions
from repro.randomwalk.step_distribution import CountingDistribution
from repro.spcf.primitives import PrimitiveRegistry
from repro.spcf.syntax import Fix

Number = Union[Fraction, float]

_FLOAT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class ASTVerificationResult:
    """Outcome of the automatic AST verification."""

    verified: bool
    papprox: Optional[CountingDistribution]
    rank: int
    progress: ProgressCheckResult
    tree: Optional[ExecutionTree]
    reasons: Tuple[str, ...]
    exact: bool

    def summary(self) -> str:
        """A one-line, Table-2-style summary."""
        status = "AST verified" if self.verified else "not verified"
        papprox = repr(self.papprox) if self.papprox is not None else "-"
        return f"{status}; Papprox = {papprox}"


def _counting_distribution_is_ast(
    distribution: CountingDistribution, exact: bool
) -> Tuple[bool, List[str]]:
    """Thm. 5.4 on the shifted walk, with a tolerance when measures are floats."""
    reasons: List[str] = []
    total = distribution.total_mass
    drift = distribution.expected_calls - 1  # drift of the shifted step distribution
    if exact:
        mass_ok = total == 1
        drift_ok = drift <= 0
    else:
        mass_ok = abs(float(total) - 1.0) <= _FLOAT_TOLERANCE
        drift_ok = float(drift) <= _FLOAT_TOLERANCE
    if not mass_ok:
        reasons.append(
            f"the worst-case counting distribution has total mass {float(total):.6f} < 1 "
            "(some strategy loses probability mass)"
        )
    dirac_zero = distribution.support() == (0,) and mass_ok
    if dirac_zero:
        # The walk started at 1 never moves; but a recursion that never calls
        # itself trivially terminates, so treat delta_0 as verified.
        return True, reasons
    if not drift_ok:
        reasons.append(
            f"the worst-case expected number of recursive calls is {float(distribution.expected_calls):.6f} > 1"
        )
    return mass_ok and drift_ok, reasons


def verify_ast(
    program: Union[Fix, "object"],
    max_steps: int = 5_000,
    measure_options: Optional[MeasureOptions] = None,
    registry: Optional[PrimitiveRegistry] = None,
    engine: Optional[MeasureEngine] = None,
) -> ASTVerificationResult:
    """Verify AST of a first-order recursive program on every argument.

    ``program`` may be a ``Fix`` term or any object with a ``fix`` attribute
    (such as :class:`repro.programs.library.Program`).

    ``engine`` is the shared memoizing measure engine; pass the same instance
    to other analyses (``verify_past``, ``LowerBoundEngine``, ...) to share
    one measure cache across them.  When given, it supersedes both
    ``measure_options`` and ``registry`` (the engine carries its own), so
    tree construction and measuring always agree on primitive semantics.
    """
    engine = engine or MeasureEngine(measure_options, registry)
    registry = engine.registry
    measure_options = engine.options
    fix = program if isinstance(program, Fix) else getattr(program, "fix", None)
    if not isinstance(fix, Fix):
        raise TypeError("verify_ast expects a Fix term or a Program with a .fix")

    rank = recursive_rank_bound(fix)
    reasons: List[str] = []

    progress = guards_independent_of_recursion(fix)
    if not progress.ok:
        reasons.append(f"progress check failed: {progress.reason}")
        return ASTVerificationResult(
            verified=False,
            papprox=None,
            rank=rank,
            progress=progress,
            tree=None,
            reasons=tuple(reasons),
            exact=True,
        )

    try:
        tree = build_execution_tree(fix, max_steps=max_steps, registry=registry)
    except ExecutionTreeError as error:
        reasons.append(str(error))
        return ASTVerificationResult(
            verified=False,
            papprox=None,
            rank=rank,
            progress=progress,
            tree=None,
            reasons=tuple(reasons),
            exact=True,
        )

    if tree.has_star_guards:
        reasons.append(
            "a branch guard depends on a recursive outcome; the counting analysis "
            "does not apply (this should have been caught by the progress check)"
        )
        return ASTVerificationResult(
            verified=False,
            papprox=None,
            rank=rank,
            progress=progress,
            tree=tree,
            reasons=tuple(reasons),
            exact=True,
        )

    result: PapproxResult = papprox_distribution(tree, engine=engine)
    verified, criterion_reasons = _counting_distribution_is_ast(
        result.distribution, result.exact
    )
    reasons.extend(criterion_reasons)
    if tree.has_stuck_paths and verified:
        verified = False
        reasons.append(
            "some path of the body gets stuck (e.g. a failing score); its "
            "probability mass is missing from the counting distribution"
        )
    return ASTVerificationResult(
        verified=verified,
        papprox=result.distribution,
        rank=max(rank, result.rank),
        progress=progress,
        tree=tree,
        reasons=tuple(reasons),
        exact=result.exact,
    )
