"""Environment strategies on symbolic execution trees (Sec. 6.2, Fig. 6b).

A *strategy* resolves every nondeterministic ("red") branch of the execution
tree by picking one of its children; the result is a tree with only
probabilistic branching, for which path probabilities are well defined.  This
module enumerates strategies explicitly (useful for the Fig. 6 reproduction
and for small trees); the ``Papprox`` computation itself uses the equivalent
but exponentially cheaper tree recursion in :mod:`repro.astcheck.papprox`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.astcheck.exectree import (
    ExecLeaf,
    ExecMu,
    ExecNode,
    ExecNondetBranch,
    ExecProbBranch,
    ExecScore,
    ExecStuck,
    ExecutionTree,
)


@dataclass(frozen=True)
class ResolvedTree:
    """An execution tree with every nondeterministic branch resolved."""

    root: ExecNode
    choices: Tuple[bool, ...]
    """The left/right decisions taken at nondeterministic nodes, in discovery order."""


def count_strategies(tree: ExecutionTree) -> int:
    """The number of distinct Environment strategies of the tree."""
    return _count(tree.root)


def _count(node: ExecNode) -> int:
    if isinstance(node, (ExecLeaf, ExecStuck)):
        return 1
    if isinstance(node, (ExecMu, ExecScore)):
        return _count(node.child)
    if isinstance(node, ExecProbBranch):
        return _count(node.then_child) * _count(node.else_child)
    if isinstance(node, ExecNondetBranch):
        return _count(node.then_child) + _count(node.else_child)
    raise TypeError(f"unknown node {node!r}")


def enumerate_strategies(tree: ExecutionTree) -> Iterator[ResolvedTree]:
    """Enumerate every resolved tree (Fig. 6b lists them for the running example)."""
    for root, choices in _enumerate(tree.root):
        yield ResolvedTree(root, tuple(choices))


def _enumerate(node: ExecNode) -> Iterator[Tuple[ExecNode, List[bool]]]:
    if isinstance(node, (ExecLeaf, ExecStuck)):
        yield node, []
        return
    if isinstance(node, ExecMu):
        for child, choices in _enumerate(node.child):
            yield ExecMu(node.argument, child), choices
        return
    if isinstance(node, ExecScore):
        for child, choices in _enumerate(node.child):
            yield ExecScore(node.value, child), choices
        return
    if isinstance(node, ExecProbBranch):
        for then_child, then_choices in _enumerate(node.then_child):
            for else_child, else_choices in _enumerate(node.else_child):
                yield (
                    ExecProbBranch(node.guard, then_child, else_child),
                    then_choices + else_choices,
                )
        return
    if isinstance(node, ExecNondetBranch):
        for then_child, choices in _enumerate(node.then_child):
            yield then_child, [True] + choices
        for else_child, choices in _enumerate(node.else_child):
            yield else_child, [False] + choices
        return
    raise TypeError(f"unknown node {node!r}")


def resolve_tree(tree: ExecutionTree, choices: Tuple[bool, ...]) -> ResolvedTree:
    """Resolve nondeterministic branches with explicit left/right ``choices``.

    Choices are consumed in the order nondeterministic nodes are encountered
    on a depth-first traversal of the chosen subtrees.
    """
    remaining = list(choices)
    root = _resolve(tree.root, remaining)
    if remaining:
        raise ValueError("more choices supplied than nondeterministic nodes reached")
    return ResolvedTree(root, tuple(choices))


def _resolve(node: ExecNode, choices: List[bool]) -> ExecNode:
    if isinstance(node, (ExecLeaf, ExecStuck)):
        return node
    if isinstance(node, ExecMu):
        return ExecMu(node.argument, _resolve(node.child, choices))
    if isinstance(node, ExecScore):
        return ExecScore(node.value, _resolve(node.child, choices))
    if isinstance(node, ExecProbBranch):
        then_child = _resolve(node.then_child, choices)
        else_child = _resolve(node.else_child, choices)
        return ExecProbBranch(node.guard, then_child, else_child)
    if isinstance(node, ExecNondetBranch):
        if not choices:
            raise ValueError("ran out of choices while resolving the tree")
        pick_left = choices.pop(0)
        chosen = node.then_child if pick_left else node.else_child
        return _resolve(chosen, choices)
    raise TypeError(f"unknown node {node!r}")
