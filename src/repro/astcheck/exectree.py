"""Symbolic execution trees for recursion bodies (Sec. 6.1, App. E.1).

The tree records everything the counting analysis needs about one evaluation
of the body ``M[(*)/x, mu/phi]`` of a recursive program ``mu phi x. M``:

* ``ExecLeaf`` -- the body reached a value,
* ``ExecMu`` -- a recursive call was made (its outcome continues as the
  unknown numeral ``star``),
* ``ExecScore`` -- a ``score(v)`` was crossed (the path requires ``v >= 0``),
* ``ExecProbBranch`` -- a conditional whose guard only mentions sample
  variables: both branches are explored and the guard becomes a constraint,
* ``ExecNondetBranch`` -- a conditional whose guard mentions the unknown
  argument ``(*)`` (or a recursive outcome): the branch is resolved by the
  Environment player, not probabilistically (the "red" nodes of Fig. 6).

The builder is the call-by-value symbolic executor of
:mod:`repro.symbolic.execute`, with recursive calls cut off at ``mu`` nodes,
so it terminates whenever one evaluation of the body terminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import Fix, Term, substitute
from repro.symbolic.execute import (
    RecMarker,
    StepBranch,
    StepRecCall,
    StepScore,
    StepStuck,
    StepTerm,
    StepValue,
    Strategy,
    SymbolicStepper,
)
from repro.symbolic.values import ArgVal, SymNumeral, SymVal


class ExecNode:
    """Base class of execution-tree nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class ExecLeaf(ExecNode):
    """The body reached a value."""

    result: Term


@dataclass(frozen=True)
class ExecMu(ExecNode):
    """A recursive call; ``argument`` is the symbolic call argument."""

    argument: SymVal
    child: ExecNode


@dataclass(frozen=True)
class ExecScore(ExecNode):
    """A ``score(value)``; the path continues only when ``value >= 0``."""

    value: SymVal
    child: ExecNode


@dataclass(frozen=True)
class ExecProbBranch(ExecNode):
    """A conditional resolved probabilistically (guard over sample variables)."""

    guard: SymVal
    then_child: ExecNode
    else_child: ExecNode


@dataclass(frozen=True)
class ExecNondetBranch(ExecNode):
    """A conditional resolved by the Environment (guard mentions ``(*)``/``star``)."""

    guard: SymVal
    then_child: ExecNode
    else_child: ExecNode

    @property
    def depends_on_star(self) -> bool:
        return self.guard.contains_star()


@dataclass(frozen=True)
class ExecStuck(ExecNode):
    """The body got stuck (e.g. a failing score on a constant)."""

    reason: str


@dataclass(frozen=True)
class _TreeStats:
    """Derived statistics of an execution tree, collected in one traversal."""

    node_count: int
    leaf_count: int
    nondet_node_count: int
    prob_node_count: int
    stuck_count: int
    max_recursive_calls: int
    has_star_guards: bool


@dataclass(frozen=True)
class ExecutionTree:
    """A symbolic execution tree together with summary statistics.

    The statistics are derived from the (immutable) tree in a single
    iterative walk the first time any of them is requested, then cached on
    the instance: the verifier consults several of them per run, and the
    walk is explicit-stack so arbitrarily deep trees cannot overflow
    Python's recursion limit.
    """

    root: ExecNode
    sample_variables: int
    """An upper bound on the number of sample variables used along any path."""

    def nodes(self) -> Iterator[ExecNode]:
        yield from _iter_nodes(self.root)

    @property
    def _stats(self) -> _TreeStats:
        try:
            return self._cached_stats
        except AttributeError:
            stats = _compute_tree_stats(self.root)
            object.__setattr__(self, "_cached_stats", stats)
            return stats

    @property
    def max_recursive_calls(self) -> int:
        """The maximal number of ``mu`` nodes on any root-to-leaf path."""
        return self._stats.max_recursive_calls

    @property
    def node_count(self) -> int:
        return self._stats.node_count

    @property
    def nondet_node_count(self) -> int:
        return self._stats.nondet_node_count

    @property
    def prob_node_count(self) -> int:
        return self._stats.prob_node_count

    @property
    def leaf_count(self) -> int:
        return self._stats.leaf_count

    @property
    def has_stuck_paths(self) -> bool:
        return self._stats.stuck_count > 0

    @property
    def has_star_guards(self) -> bool:
        """True if some Environment branch depends on a recursive outcome."""
        return self._stats.has_star_guards


def _iter_nodes(node: ExecNode) -> Iterator[ExecNode]:
    """Pre-order traversal with an explicit stack (deep trees stay safe)."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (ExecMu, ExecScore)):
            stack.append(current.child)
        elif isinstance(current, (ExecProbBranch, ExecNondetBranch)):
            stack.append(current.else_child)
            stack.append(current.then_child)


def _compute_tree_stats(root: ExecNode) -> _TreeStats:
    """All summary statistics in one explicit-stack walk.

    ``max_recursive_calls`` is tracked by carrying the number of ``mu`` nodes
    on the path to each node; every root-to-leaf path ends in a leaf or a
    stuck node, where the running count is folded into the maximum.
    """
    node_count = leaves = nondet = prob = stuck = 0
    max_mu = 0
    star_guards = False
    stack = [(root, 0)]
    while stack:
        node, mu_on_path = stack.pop()
        node_count += 1
        if isinstance(node, ExecLeaf):
            leaves += 1
            max_mu = max(max_mu, mu_on_path)
        elif isinstance(node, ExecStuck):
            stuck += 1
            max_mu = max(max_mu, mu_on_path)
        elif isinstance(node, ExecMu):
            stack.append((node.child, mu_on_path + 1))
        elif isinstance(node, ExecScore):
            stack.append((node.child, mu_on_path))
        elif isinstance(node, ExecProbBranch):
            prob += 1
            stack.append((node.then_child, mu_on_path))
            stack.append((node.else_child, mu_on_path))
        elif isinstance(node, ExecNondetBranch):
            nondet += 1
            star_guards = star_guards or node.depends_on_star
            stack.append((node.then_child, mu_on_path))
            stack.append((node.else_child, mu_on_path))
        else:
            raise TypeError(f"unknown node {node!r}")
    return _TreeStats(
        node_count=node_count,
        leaf_count=leaves,
        nondet_node_count=nondet,
        prob_node_count=prob,
        stuck_count=stuck,
        max_recursive_calls=max_mu,
        has_star_guards=star_guards,
    )


def _max_mu(node: ExecNode) -> int:
    """The maximal number of ``mu`` nodes on any path below ``node``."""
    return _compute_tree_stats(node).max_recursive_calls


class ExecutionTreeError(Exception):
    """Raised when the body cannot be summarised as a finite execution tree."""


def build_execution_tree(
    fix: Fix,
    max_steps: int = 5_000,
    registry: Optional[PrimitiveRegistry] = None,
) -> ExecutionTree:
    """Build the symbolic execution tree of ``body((*)) = M[(*)/x, mu/phi]``."""
    registry = registry or default_registry()
    stepper = SymbolicStepper(Strategy.CBV, registry)
    body = substitute(
        fix.body, {fix.var: SymNumeral(ArgVal()), fix.fvar: RecMarker()}
    )
    max_variables = [0]
    root = _build(stepper, body, 0, max_steps, max_variables)
    return ExecutionTree(root, max_variables[0])


def _build(
    stepper: SymbolicStepper,
    term: Term,
    next_variable: int,
    budget: int,
    max_variables: List[int],
) -> ExecNode:
    """Symbolically execute ``term`` into an execution tree.

    Runs on an explicit work stack: recursion bodies that are themselves deep
    towers of calls and branches (e.g. the ``nested`` program at large rank)
    produce trees far deeper than Python's recursion limit, so the tree is
    assembled bottom-up from two kinds of work item -- *expand* (step a term
    to its next branching point) and *assemble* (pop finished children and
    wrap them in their parent node).  Each expand item carries its own
    remaining step budget, matching the budget split of the old recursive
    builder exactly.
    """
    work: List[Tuple] = [("expand", term, next_variable, budget)]
    finished: List[ExecNode] = []
    while work:
        item = work.pop()
        if item[0] == "assemble":
            _, assemble = item
            finished.append(assemble(finished))
            continue
        _, term, next_variable, budget = item
        steps = 0
        while True:
            if steps > budget:
                raise ExecutionTreeError(
                    "the recursion body did not reach a value within the step "
                    "budget; it may diverge without making recursive calls"
                )
            outcome = stepper.step(term, next_variable)
            if isinstance(outcome, StepValue):
                max_variables[0] = max(max_variables[0], next_variable)
                finished.append(ExecLeaf(term))
                break
            if isinstance(outcome, StepTerm):
                term = outcome.term
                if outcome.consumed_sample:
                    next_variable += 1
                steps += 1
                continue
            if isinstance(outcome, StepScore):
                value = outcome.value
                work.append(
                    ("assemble", lambda done, value=value: ExecScore(value, done.pop()))
                )
                work.append(("expand", outcome.term, next_variable, budget - steps))
                break
            if isinstance(outcome, StepRecCall):
                argument = outcome.argument
                work.append(
                    (
                        "assemble",
                        lambda done, argument=argument: ExecMu(argument, done.pop()),
                    )
                )
                work.append(("expand", outcome.term, next_variable, budget - steps))
                break
            if isinstance(outcome, StepBranch):
                guard = outcome.guard
                nondet = guard.contains_argument() or guard.contains_star()
                kind = ExecNondetBranch if nondet else ExecProbBranch

                def assemble_branch(done, guard=guard, kind=kind):
                    else_child = done.pop()
                    then_child = done.pop()
                    return kind(guard, then_child, else_child)

                work.append(("assemble", assemble_branch))
                # Popped in LIFO order: the then-branch expands first, so its
                # result sits below the else-branch on the finished stack.
                work.append(("expand", outcome.else_term, next_variable, budget - steps))
                work.append(("expand", outcome.then_term, next_variable, budget - steps))
                break
            if isinstance(outcome, StepStuck):
                finished.append(ExecStuck(outcome.reason))
                break
            raise TypeError(f"unexpected step outcome {outcome!r}")
    (root,) = finished
    return root


def render_tree(tree: ExecutionTree) -> str:
    """A small ASCII rendering of the execution tree (compare Fig. 6a).

    Pre-order with an explicit stack, like every other tree walk here: a
    rendering must not overflow on trees the builder can produce.
    """
    lines: List[str] = []
    stack: List[Tuple[ExecNode, str]] = [(tree.root, "")]
    while stack:
        node, indent = stack.pop()
        if isinstance(node, ExecLeaf):
            lines.append(f"{indent}leaf")
        elif isinstance(node, ExecMu):
            lines.append(f"{indent}mu")
            stack.append((node.child, indent + "  "))
        elif isinstance(node, ExecScore):
            lines.append(f"{indent}score({node.value!r})")
            stack.append((node.child, indent + "  "))
        elif isinstance(node, ExecProbBranch):
            lines.append(f"{indent}branch[{node.guard!r}]")
            stack.append((node.else_child, indent + "  "))
            stack.append((node.then_child, indent + "  "))
        elif isinstance(node, ExecNondetBranch):
            lines.append(f"{indent}branch*[{node.guard!r}]   (Environment)")
            stack.append((node.else_child, indent + "  "))
            stack.append((node.then_child, indent + "  "))
        elif isinstance(node, ExecStuck):
            lines.append(f"{indent}stuck: {node.reason}")
        else:
            raise TypeError(f"unknown node {node!r}")
    return "\n".join(lines)
