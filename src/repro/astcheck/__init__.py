"""Automatic AST verification for non-affine recursive programs (Sec. 6).

The verifier

1. symbolically executes the body of the recursion on the unknown argument
   ``(*)``, producing a finite *symbolic execution tree* whose nodes are
   recursive calls, score statements, probabilistic branches (guards over
   sample variables only) and nondeterministic branches (guards that mention
   the unknown argument or a recursive outcome) -- Fig. 6,
2. lets the Environment resolve nondeterministic branches by a strategy and
   computes ``Papprox``, the worst-case (over strategies) distribution of the
   number of recursive calls, via exact/certified measures of the path
   constraints (Sec. 6.2, Thm. 6.2),
3. checks that the shifted ``Papprox`` walk is AST with the linear-time
   criterion of Thm. 5.4, which by Thm. 5.9 implies AST of the program on
   every actual argument.
"""

from repro.astcheck.exectree import (
    ExecLeaf,
    ExecMu,
    ExecNode,
    ExecNondetBranch,
    ExecProbBranch,
    ExecScore,
    ExecutionTree,
    build_execution_tree,
)
from repro.astcheck.strategy import count_strategies, enumerate_strategies, resolve_tree
from repro.astcheck.papprox import (
    cumulative_vector,
    min_probability_at_most,
    papprox_distribution,
)
from repro.astcheck.verifier import ASTVerificationResult, verify_ast

__all__ = [
    "ASTVerificationResult",
    "ExecLeaf",
    "ExecMu",
    "ExecNode",
    "ExecNondetBranch",
    "ExecProbBranch",
    "ExecScore",
    "ExecutionTree",
    "build_execution_tree",
    "count_strategies",
    "cumulative_vector",
    "enumerate_strategies",
    "min_probability_at_most",
    "papprox_distribution",
    "resolve_tree",
    "verify_ast",
]
