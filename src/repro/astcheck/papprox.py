"""Computing ``Papprox``: the worst-case counting distribution (Sec. 6.2).

``Papprox(0) = min_sigma P(sigma, 0)`` and
``Papprox(n) = min_sigma P(sigma, n) - min_sigma P(sigma, n-1)``, where
``P(sigma, n)`` is the probability (over the sample variables) of following a
path of the resolved tree that traverses at most ``n`` recursive-call nodes.

``min_sigma P(sigma, n)`` is computed by a single tree recursion that carries
the constraint prefix of the current path:

* a leaf contributes the measure of the accumulated constraints,
* a ``mu`` node consumes one unit of budget (contributing 0 when exhausted),
* a score node adds the constraint ``value >= 0``,
* a probabilistic branch splits the measure between its two children (the two
  guard constraints are disjoint events, so the minimum distributes over the
  sum -- strategies resolve disjoint subtrees independently),
* a nondeterministic branch takes the minimum of its children.

Theorem 6.2 guarantees ``Papprox`` is below every member of the counting
pattern in the cumulative order, so (with Lem. 5.10 and Thm. 5.9) AST of the
shifted ``Papprox`` walk implies AST of the program on every argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from repro.astcheck.exectree import (
    ExecLeaf,
    ExecMu,
    ExecNode,
    ExecNondetBranch,
    ExecProbBranch,
    ExecScore,
    ExecStuck,
    ExecutionTree,
)
from repro.geometry.measure import MeasureOptions, measure_constraints
from repro.randomwalk.step_distribution import CountingDistribution
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.symbolic.constraints import Constraint, ConstraintSet, Relation

Number = Union[Fraction, float]


def min_probability_at_most(
    tree: ExecutionTree,
    budget: int,
    measure_options: Optional[MeasureOptions] = None,
    registry: Optional[PrimitiveRegistry] = None,
) -> Number:
    """``min_sigma P(sigma, budget)``: worst-case probability of <= budget calls."""
    registry = registry or default_registry()
    measure_options = measure_options or MeasureOptions()
    return _go(tree.root, ConstraintSet(), budget, measure_options, registry)


def _measure(
    constraints: ConstraintSet,
    measure_options: MeasureOptions,
    registry: PrimitiveRegistry,
) -> Number:
    dimension = constraints.dimension()
    result = measure_constraints(
        constraints, dimension, options=measure_options, registry=registry
    )
    return result.value


def _go(
    node: ExecNode,
    constraints: ConstraintSet,
    budget: int,
    measure_options: MeasureOptions,
    registry: PrimitiveRegistry,
) -> Number:
    if isinstance(node, ExecLeaf):
        return _measure(constraints, measure_options, registry)
    if isinstance(node, ExecStuck):
        # A stuck path never reaches a value, so it contributes nothing to the
        # probability of completing with at most ``budget`` calls.
        return Fraction(0)
    if isinstance(node, ExecMu):
        if budget == 0:
            return Fraction(0)
        return _go(node.child, constraints, budget - 1, measure_options, registry)
    if isinstance(node, ExecScore):
        extended = constraints.add(Constraint(node.value, Relation.GE))
        return _go(node.child, extended, budget, measure_options, registry)
    if isinstance(node, ExecProbBranch):
        left = _go(
            node.then_child,
            constraints.add(Constraint(node.guard, Relation.LE)),
            budget,
            measure_options,
            registry,
        )
        right = _go(
            node.else_child,
            constraints.add(Constraint(node.guard, Relation.GT)),
            budget,
            measure_options,
            registry,
        )
        return left + right
    if isinstance(node, ExecNondetBranch):
        left = _go(node.then_child, constraints, budget, measure_options, registry)
        right = _go(node.else_child, constraints, budget, measure_options, registry)
        return min(left, right)
    raise TypeError(f"unknown node {node!r}")


@dataclass(frozen=True)
class PapproxResult:
    """``Papprox`` together with the worst-case cumulative probabilities."""

    distribution: CountingDistribution
    cumulative: Tuple[Number, ...]
    """``min_sigma P(sigma, n)`` for ``n = 0 .. rank``."""

    rank: int
    exact: bool


def papprox_distribution(
    tree: ExecutionTree,
    measure_options: Optional[MeasureOptions] = None,
    registry: Optional[PrimitiveRegistry] = None,
) -> PapproxResult:
    """Compute ``Papprox`` for an execution tree (Sec. 6.2)."""
    registry = registry or default_registry()
    measure_options = measure_options or MeasureOptions()
    rank = tree.max_recursive_calls
    cumulative: List[Number] = []
    for budget in range(rank + 1):
        cumulative.append(
            min_probability_at_most(tree, budget, measure_options, registry)
        )
    masses: Dict[int, Number] = {}
    previous: Number = Fraction(0)
    for calls, value in enumerate(cumulative):
        mass = value - previous
        if mass < 0:
            # Measures from the float polytope oracle can introduce tiny
            # negative increments; clamp them (soundly: this only lowers the
            # cumulative weight of Papprox).
            mass = Fraction(0)
        if mass > 0:
            masses[calls] = mass
        previous = value
    exact = all(isinstance(value, Fraction) for value in cumulative)
    return PapproxResult(
        distribution=CountingDistribution(masses),
        cumulative=tuple(cumulative),
        rank=rank,
        exact=exact,
    )
