"""Computing ``Papprox``: the worst-case counting distribution (Sec. 6.2).

``Papprox(0) = min_sigma P(sigma, 0)`` and
``Papprox(n) = min_sigma P(sigma, n) - min_sigma P(sigma, n-1)``, where
``P(sigma, n)`` is the probability (over the sample variables) of following a
path of the resolved tree that traverses at most ``n`` recursive-call nodes.

The full cumulative vector ``[min_sigma P(sigma, n) for n in 0..rank]`` is
computed in a **single bottom-up traversal** of the execution tree, with the
constraint prefix of the current path carried top-down:

* a leaf measures its accumulated constraints *once* and broadcasts the value
  across every budget (the measure does not depend on the budget),
* a ``mu`` node shifts the child's vector by one (a unit of budget is
  consumed; budget 0 contributes 0),
* a score node extends the constraint prefix with ``value >= 0``,
* a probabilistic branch adds the children's vectors element-wise (the two
  guard constraints are disjoint events, so the minimum distributes over the
  sum -- strategies resolve disjoint subtrees independently),
* a nondeterministic branch takes the element-wise minimum.

This visits every node exactly once instead of once per budget, and all
measuring goes through a shared :class:`~repro.geometry.engine.MeasureEngine`
so identical path constraint sets -- across budgets, shared prefixes, and the
verifier / lower-bound / pastcheck callers -- are measured a single time.
The per-budget evaluator :func:`min_probability_at_most` is kept as the
reference implementation (it is the paper's definition read off directly) and
is what the perf benchmark uses as its baseline.

Theorem 6.2 guarantees ``Papprox`` is below every member of the counting
pattern in the cumulative order, so (with Lem. 5.10 and Thm. 5.9) AST of the
shifted ``Papprox`` walk implies AST of the program on every argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from repro.astcheck.exectree import (
    ExecLeaf,
    ExecMu,
    ExecNode,
    ExecNondetBranch,
    ExecProbBranch,
    ExecScore,
    ExecStuck,
    ExecutionTree,
)
from repro.geometry.engine import MeasureEngine
from repro.geometry.measure import MeasureOptions
from repro.randomwalk.step_distribution import CountingDistribution
from repro.spcf.primitives import PrimitiveRegistry
from repro.symbolic.constraints import Constraint, ConstraintSet, Relation

Number = Union[Fraction, float]


def min_probability_at_most(
    tree: ExecutionTree,
    budget: int,
    measure_options: Optional[MeasureOptions] = None,
    registry: Optional[PrimitiveRegistry] = None,
    engine: Optional[MeasureEngine] = None,
) -> Number:
    """``min_sigma P(sigma, budget)``: worst-case probability of <= budget calls.

    This is the reference per-budget evaluator (one full tree walk per call);
    :func:`papprox_distribution` computes every budget in one walk instead.
    """
    engine = engine or MeasureEngine(measure_options, registry)
    return _go(tree.root, ConstraintSet(), budget, engine)


def _go(
    node: ExecNode,
    constraints: ConstraintSet,
    budget: int,
    engine: MeasureEngine,
) -> Number:
    if isinstance(node, ExecLeaf):
        return engine.measure(constraints).value
    if isinstance(node, ExecStuck):
        # A stuck path never reaches a value, so it contributes nothing to the
        # probability of completing with at most ``budget`` calls.
        return Fraction(0)
    if isinstance(node, ExecMu):
        if budget == 0:
            return Fraction(0)
        return _go(node.child, constraints, budget - 1, engine)
    if isinstance(node, ExecScore):
        extended = constraints.add(Constraint(node.value, Relation.GE))
        return _go(node.child, extended, budget, engine)
    if isinstance(node, ExecProbBranch):
        left = _go(
            node.then_child,
            constraints.add(Constraint(node.guard, Relation.LE)),
            budget,
            engine,
        )
        right = _go(
            node.else_child,
            constraints.add(Constraint(node.guard, Relation.GT)),
            budget,
            engine,
        )
        return left + right
    if isinstance(node, ExecNondetBranch):
        left = _go(node.then_child, constraints, budget, engine)
        right = _go(node.else_child, constraints, budget, engine)
        return min(left, right)
    raise TypeError(f"unknown node {node!r}")


# Explicit-stack actions of the single-pass evaluation: expand a node, or
# combine the vectors its children left on the result stack.
_EXPAND, _SHIFT, _ADD, _MIN = 0, 1, 2, 3


def cumulative_vector(
    tree: ExecutionTree, rank: int, engine: MeasureEngine
) -> List[Number]:
    """``[min_sigma P(sigma, n) for n in 0..rank]`` in one tree traversal.

    The traversal is post-order with an explicit stack (deep trees cannot
    overflow the recursion limit); constraints accumulate top-down, budget
    vectors combine bottom-up.  Element ``n`` is bit-for-bit the value the
    per-budget evaluator :func:`min_probability_at_most` computes for budget
    ``n``: the combination at every node applies the same operations to the
    same operands in the same order, just across all budgets at once.
    """
    width = rank + 1
    results: List[List[Number]] = []
    stack = [(_EXPAND, tree.root, ConstraintSet())]
    while stack:
        action, node, constraints = stack.pop()
        if action is not _EXPAND:
            if action == _SHIFT:
                child = results.pop()
                results.append([Fraction(0)] + child[: width - 1])
            elif action == _ADD:
                right = results.pop()
                left = results.pop()
                results.append([x + y for x, y in zip(left, right)])
            else:  # _MIN
                right = results.pop()
                left = results.pop()
                results.append([min(x, y) for x, y in zip(left, right)])
            continue
        # Chase score chains: they only extend the constraint prefix.
        while isinstance(node, ExecScore):
            constraints = constraints.add(Constraint(node.value, Relation.GE))
            node = node.child
        if isinstance(node, ExecLeaf):
            value = engine.measure(constraints).value
            results.append([value] * width)
        elif isinstance(node, ExecStuck):
            results.append([Fraction(0)] * width)
        elif isinstance(node, ExecMu):
            stack.append((_SHIFT, None, None))
            stack.append((_EXPAND, node.child, constraints))
        elif isinstance(node, ExecProbBranch):
            stack.append((_ADD, None, None))
            stack.append(
                (_EXPAND, node.else_child, constraints.add(Constraint(node.guard, Relation.GT)))
            )
            stack.append(
                (_EXPAND, node.then_child, constraints.add(Constraint(node.guard, Relation.LE)))
            )
        elif isinstance(node, ExecNondetBranch):
            stack.append((_MIN, None, None))
            stack.append((_EXPAND, node.else_child, constraints))
            stack.append((_EXPAND, node.then_child, constraints))
        else:
            raise TypeError(f"unknown node {node!r}")
    (vector,) = results
    return vector


@dataclass(frozen=True)
class PapproxResult:
    """``Papprox`` together with the worst-case cumulative probabilities."""

    distribution: CountingDistribution
    cumulative: Tuple[Number, ...]
    """``min_sigma P(sigma, n)`` for ``n = 0 .. rank``."""

    rank: int
    exact: bool


def papprox_distribution(
    tree: ExecutionTree,
    measure_options: Optional[MeasureOptions] = None,
    registry: Optional[PrimitiveRegistry] = None,
    engine: Optional[MeasureEngine] = None,
) -> PapproxResult:
    """Compute ``Papprox`` for an execution tree (Sec. 6.2).

    Pass a shared :class:`MeasureEngine` to reuse measure results across
    analyses; when ``engine`` is given, ``measure_options`` and ``registry``
    are taken from it and the parameters here are ignored.
    """
    engine = engine or MeasureEngine(measure_options, registry)
    rank = tree.max_recursive_calls
    cumulative = cumulative_vector(tree, rank, engine)
    masses: Dict[int, Number] = {}
    previous: Number = Fraction(0)
    for calls, value in enumerate(cumulative):
        mass = value - previous
        if mass < 0:
            # Measures from the float polytope oracle can introduce tiny
            # negative increments; clamp them (soundly: this only lowers the
            # cumulative weight of Papprox).
            mass = Fraction(0)
        if mass > 0:
            masses[calls] = mass
        previous = value
    exact = all(isinstance(value, Fraction) for value in cumulative)
    return PapproxResult(
        distribution=CountingDistribution(masses),
        cumulative=tuple(cumulative),
        rank=rank,
        exact=exact,
    )
