"""One-counter MDPs over families of step distributions.

A *one-counter MDP* has states ``N + {bottom}``; at every state ``n > 0`` the
controller picks one of finitely many actions, each a finite step
distribution ``s_a`` on the integers, and the counter moves to
``max(0, n + i)`` with probability ``s_a(i)`` (the missing mass of ``s_a``
goes to the absorbing failure state ``bottom``).  State 0 is absorbing.

Uniform AST of a family of step distributions (Def. 5.5) is exactly the
statement that the *adversarial* (minimising) value of reaching 0 is 1 from
every start state.  The paper decides this in linear time via Thm. 5.4 and
Lem. 5.6; this module also provides the classical value-iteration route so
that benchmarks can compare the two, and an explicit adversary simulation as
a further cross check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.randomwalk.step_distribution import CountingDistribution, StepDistribution

Number = Union[Fraction, float]

__all__ = [
    "AdversaryPolicy",
    "OneCounterMDP",
    "UniformASTDecision",
    "from_counting_distributions",
    "simulate_adversarial_walk",
]


AdversaryPolicy = Callable[[int], int]
"""A (memoryless) adversary: maps the current counter value to an action index."""


@dataclass(frozen=True)
class UniformASTDecision:
    """The outcome of deciding uniform AST for the actions of a one-counter MDP."""

    uniform_ast: bool
    failing_action: Optional[int]
    certificates: Tuple[Dict[str, object], ...]

    def __repr__(self) -> str:
        verdict = "uniform AST" if self.uniform_ast else "not uniform AST"
        suffix = "" if self.failing_action is None else f" (action {self.failing_action} fails)"
        return f"UniformASTDecision({verdict}{suffix})"


@dataclass(frozen=True)
class OneCounterMDP:
    """A one-counter MDP whose actions are finite step distributions."""

    actions: Tuple[StepDistribution, ...]

    def __init__(self, actions: Sequence[StepDistribution]) -> None:
        actions = tuple(actions)
        if not actions:
            raise ValueError("a one-counter MDP needs at least one action")
        object.__setattr__(self, "actions", actions)

    # -- structural helpers -------------------------------------------------

    @property
    def action_count(self) -> int:
        return len(self.actions)

    def max_upward_jump(self) -> int:
        """The largest positive counter change any action can make."""
        jumps = [max((point for point, _ in action.mass), default=0) for action in self.actions]
        return max(max(jumps), 0)

    # -- the paper's decision route (Thm. 5.4 + Lem. 5.6) --------------------

    def decide_uniform_ast(self) -> UniformASTDecision:
        """Uniform AST of the action family.

        For a finite family this is equivalent (Lem. 5.6) to every individual
        action driving an almost-surely absorbed walk, which Thm. 5.4 decides
        in time linear in the support sizes.
        """
        certificates: List[Dict[str, object]] = []
        failing: Optional[int] = None
        for index, action in enumerate(self.actions):
            certificate = action.ast_certificate()
            certificates.append(certificate)
            if failing is None and not action.is_ast():
                failing = index
        return UniformASTDecision(
            uniform_ast=failing is None,
            failing_action=failing,
            certificates=tuple(certificates),
        )

    # -- value iteration ------------------------------------------------------

    def value_iteration(
        self,
        start: int,
        horizon: int,
        max_counter: Optional[int] = None,
        minimise: bool = True,
        exact: bool = True,
    ) -> Number:
        """The ``horizon``-step value of reaching counter 0 from ``start``.

        With ``minimise=True`` the controller is adversarial (the inf of
        Def. 5.5); with ``minimise=False`` it is angelic.  The counter is
        truncated at ``max_counter`` (default: large enough for the horizon)
        and states beyond the truncation are treated as value 0, so the
        returned value is a certified lower bound on the true optimal value
        and is monotone in ``horizon``.  ``exact=False`` switches to floats,
        which is useful for long horizons where rational denominators blow up.
        """
        if start < 0:
            raise ValueError("the counter lives on the naturals")
        if start == 0:
            return Fraction(1)
        cap = max_counter if max_counter is not None else start + horizon * max(
            1, self.max_upward_jump()
        )
        choose = min if minimise else max
        zero: Number = Fraction(0) if exact else 0.0
        one: Number = Fraction(1) if exact else 1.0
        masses = [
            [(point, mass if exact else float(mass)) for point, mass in action.mass]
            for action in self.actions
        ]
        # values[n] for n in 0..cap; beyond cap the value is pessimistically 0.
        values: List[Number] = [zero] * (cap + 1)
        values[0] = one
        for _ in range(horizon):
            updated: List[Number] = [zero] * (cap + 1)
            updated[0] = one
            for state in range(1, cap + 1):
                best: Optional[Number] = None
                for action_mass in masses:
                    total: Number = zero
                    for point, mass in action_mass:
                        target = state + point
                        if target <= 0:
                            total = total + mass
                        elif target <= cap:
                            total = total + mass * values[target]
                        # beyond the cap: counts as 0.
                    best = total if best is None else choose(best, total)
                updated[state] = best if best is not None else zero
            values = updated
        return values[start]

    def adversarial_value(
        self,
        start: int,
        horizon: int,
        max_counter: Optional[int] = None,
        exact: bool = True,
    ) -> Number:
        """The minimising controller's value (the quantity of Def. 5.5)."""
        return self.value_iteration(start, horizon, max_counter, minimise=True, exact=exact)

    def angelic_value(
        self,
        start: int,
        horizon: int,
        max_counter: Optional[int] = None,
        exact: bool = True,
    ) -> Number:
        """The maximising controller's value."""
        return self.value_iteration(start, horizon, max_counter, minimise=False, exact=exact)

    def greedy_adversary(self) -> AdversaryPolicy:
        """A memoryless adversary that always plays the action with the
        largest drift (ties broken by the smallest mass at or below -1).

        For families of shifted counting distributions this is the natural
        worst case: it maximises the expected growth of the number of pending
        calls.  It is only a heuristic -- the value iteration is the sound
        reference -- but it is useful for simulation cross checks.
        """
        drifts = [action.drift for action in self.actions]
        down_mass = [
            sum((mass for point, mass in action.mass if point <= -1), Fraction(0))
            for action in self.actions
        ]
        order = sorted(
            range(len(self.actions)),
            key=lambda index: (float(drifts[index]), -float(down_mass[index])),
            reverse=True,
        )
        worst = order[0]
        return lambda _state: worst


def from_counting_distributions(
    family: Sequence[CountingDistribution],
) -> OneCounterMDP:
    """Build the one-counter MDP whose actions are the shifted members of
    ``family`` (the walk of Sec. 5.3 with an adversarial choice of member)."""
    members = list(family)
    if not members:
        raise ValueError("the family of counting distributions must be non-empty")
    return OneCounterMDP(tuple(member.shifted() for member in members))


def simulate_adversarial_walk(
    mdp: OneCounterMDP,
    policy: AdversaryPolicy,
    start: int = 1,
    max_steps: int = 10_000,
    rng: Optional[random.Random] = None,
) -> Tuple[bool, int]:
    """Simulate one trajectory under ``policy``.

    Returns ``(absorbed_at_zero, steps_taken)``; failure (the missing mass)
    and running out of the step budget both count as not absorbed.
    """
    rng = rng or random.Random(0)
    state = start
    for taken in range(max_steps):
        if state == 0:
            return True, taken
        action = mdp.actions[policy(state)]
        draw = rng.random()
        running = 0.0
        jump: Optional[int] = None
        for point, mass in action.mass:
            running += float(mass)
            if draw <= running:
                jump = point
                break
        if jump is None:
            return False, taken + 1
        state = max(0, state + jump)
    return state == 0, max_steps
