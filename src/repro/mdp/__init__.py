"""One-counter Markov decision processes (Sec. 5.1, the route via [6]/[36]).

Before Thm. 5.4 the paper notes that a step distribution (or a family of
them) "can be shown AST by reduction to a one-counter Markov decision
process" and that its direct criterion gives a tighter complexity bound than
that detour.  This package implements the detour so the two routes can be
compared: a one-counter MDP whose actions are finite step distributions, the
adversarial (minimising) and angelic (maximising) value iterations for the
probability of hitting counter value 0, uniform-AST decisions, and simulation
under explicit adversaries.
"""

from repro.mdp.onecounter import (
    AdversaryPolicy,
    OneCounterMDP,
    UniformASTDecision,
    from_counting_distributions,
    simulate_adversarial_walk,
)

__all__ = [
    "AdversaryPolicy",
    "OneCounterMDP",
    "UniformASTDecision",
    "from_counting_distributions",
    "simulate_adversarial_walk",
]
