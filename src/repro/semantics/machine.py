"""Shared machinery of the CbN and CbV small-step machines.

Both machines evaluate configurations ``<M, s>`` where ``M`` is a closed SPCF
term and ``s`` a trace; a run either reaches ``<V, eps>`` (termination: the
value and the entire trace were consumed -- Def. 2.1 requires the terminating
trace to be consumed exactly), runs out of the supplied trace, gets stuck on a
failing ``score``, or exceeds the step budget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.spcf.syntax import Term
from repro.semantics.traces import Trace


class RunStatus(enum.Enum):
    """Outcome of running a configuration to quiescence."""

    TERMINATED = "terminated"
    """Reached a value with the whole trace consumed."""

    VALUE_WITH_LEFTOVER_TRACE = "value-with-leftover-trace"
    """Reached a value but some of the supplied trace was not consumed."""

    TRACE_EXHAUSTED = "trace-exhausted"
    """A ``sample`` redex found an empty trace: the supplied trace is too short."""

    SCORE_FAILED = "score-failed"
    """A ``score(r)`` redex with ``r < 0`` (conditioning on an impossible event)."""

    STUCK = "stuck"
    """Any other stuck non-value configuration (ill-typed or open term)."""

    STEP_LIMIT = "step-limit"
    """The step budget was exhausted before reaching a value."""


@dataclass(frozen=True)
class RunResult:
    """The result of running a term on a trace."""

    status: RunStatus
    term: Term
    trace: Trace
    steps: int
    detail: Optional[str] = None

    @property
    def terminated(self) -> bool:
        """True iff the run reached a value and consumed its whole trace."""
        return self.status is RunStatus.TERMINATED

    @property
    def reached_value(self) -> bool:
        """True iff the run reached a value (whether or not trace remains)."""
        return self.status in (
            RunStatus.TERMINATED,
            RunStatus.VALUE_WITH_LEFTOVER_TRACE,
        )


class SPCFMachineError(Exception):
    """Raised on malformed configurations (e.g. stepping an open term)."""


class StuckSignal(Exception):
    """Internal signal used by the machines to report a stuck configuration.

    :meth:`CbNMachine.run` / :meth:`CbVMachine.run` convert this signal into a
    :class:`RunResult`; single-step drivers (such as the Monte-Carlo sampler)
    may catch it directly.
    """

    def __init__(self, status: RunStatus, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail
