"""Standard traces: finite sequences of draws from [0, 1] (Sec. 2.3).

The set of traces ``S`` is the disjoint union of the ``R^n_[0,1]``; the trace
measure assigns to a measurable subset of ``R^n_[0,1]`` its ``n``-dimensional
Lebesgue measure.  Traces are represented as immutable tuples of numbers; a
thin :class:`Trace` wrapper provides the head/rest operations the small-step
machines need plus validation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

Number = Union[Fraction, float, int]


def _validate_draw(value: Number) -> Union[Fraction, float]:
    if isinstance(value, bool):
        raise ValueError("booleans are not valid random draws")
    if isinstance(value, int):
        value = Fraction(value)
    if not 0 <= value <= 1:
        raise ValueError(f"trace entries must lie in [0, 1], got {value}")
    return value


@dataclass(frozen=True)
class Trace:
    """A finite sequence of random draws, each in [0, 1]."""

    draws: Tuple[Union[Fraction, float], ...]

    def __init__(self, draws: Iterable[Number] = ()) -> None:
        object.__setattr__(self, "draws", tuple(_validate_draw(d) for d in draws))

    def __len__(self) -> int:
        return len(self.draws)

    def __iter__(self) -> Iterator[Union[Fraction, float]]:
        return iter(self.draws)

    def __getitem__(self, index: int) -> Union[Fraction, float]:
        return self.draws[index]

    def is_empty(self) -> bool:
        return not self.draws

    def head(self) -> Union[Fraction, float]:
        """The first draw; raises ``IndexError`` on the empty trace."""
        if not self.draws:
            raise IndexError("empty trace has no head")
        return self.draws[0]

    def rest(self) -> "Trace":
        """The trace with its first draw removed."""
        if not self.draws:
            raise IndexError("empty trace has no rest")
        return Trace(self.draws[1:])

    def prepend(self, value: Number) -> "Trace":
        return Trace((value,) + self.draws)

    def concat(self, other: "Trace") -> "Trace":
        return Trace(self.draws + other.draws)

    def __repr__(self) -> str:
        return f"Trace({list(self.draws)!r})"


EMPTY_TRACE = Trace(())


def random_trace(
    length: int, rng: Optional[random.Random] = None, as_fraction: bool = False
) -> Trace:
    """Draw ``length`` i.i.d. uniform samples from [0, 1].

    With ``as_fraction=True`` the draws are dyadic rationals (53-bit), which
    keeps downstream arithmetic exact while remaining uniformly distributed
    to within float resolution.
    """
    rng = rng or random
    draws: Sequence[Number]
    if as_fraction:
        draws = [Fraction(rng.getrandbits(53), 1 << 53) for _ in range(length)]
    else:
        draws = [rng.random() for _ in range(length)]
    return Trace(draws)
