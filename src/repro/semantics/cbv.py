"""Call-by-value small-step semantics for SPCF (Fig. 8 / App. A.3).

The CbV strategy evaluates the argument of an application before performing
the beta or fixpoint step, and the redexes require the argument to be a
value::

    R ::= (lam x. M) V | (mu phi x. M) V | if(r, N, P)
        | f(r_1, ..., r_|f|) | sample | score(r)
    E ::= [.] | E M | (lam x. M) E | (mu phi x. M) E | if(E, N, P)
        | f(r_1, ..., r_{k-1}, E, M_{k+1}, ..., M_|f|) | score(E)

The AST verification machinery of Sections 5-6 of the paper works over CbV
programs; the lower-bound machinery of Sections 3-4 uses CbN.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Term,
    Var,
    is_value,
    substitute,
)
from repro.semantics.machine import RunResult, RunStatus, SPCFMachineError, StuckSignal
from repro.semantics.traces import Trace


class CbVMachine:
    """The call-by-value SPCF machine."""

    def __init__(self, registry: Optional[PrimitiveRegistry] = None) -> None:
        self.registry = registry or default_registry()

    def step(self, term: Term, trace: Trace) -> Optional[Tuple[Term, Trace]]:
        """Perform one CbV reduction step; return ``None`` if ``term`` is a value."""
        if is_value(term):
            return None
        return self._step(term, trace)

    def _step(self, term: Term, trace: Trace) -> Tuple[Term, Trace]:
        if isinstance(term, App):
            fn, arg = term.fn, term.arg
            if not is_value(fn):
                new_fn, new_trace = self._step(fn, trace)
                return App(new_fn, arg), new_trace
            if isinstance(fn, (Lam, Fix)) and not is_value(arg):
                new_arg, new_trace = self._step(arg, trace)
                return App(fn, new_arg), new_trace
            if isinstance(fn, Lam):
                return substitute(fn.body, {fn.var: arg}), trace
            if isinstance(fn, Fix):
                return substitute(fn.body, {fn.var: arg, fn.fvar: fn}), trace
            raise StuckSignal(RunStatus.STUCK, "application of a non-function value")
        if isinstance(term, If):
            cond = term.cond
            if isinstance(cond, Numeral):
                return (term.then if cond.value <= 0 else term.orelse), trace
            if is_value(cond):
                raise StuckSignal(RunStatus.STUCK, "conditional guard is not a numeral")
            new_cond, new_trace = self._step(cond, trace)
            return If(new_cond, term.then, term.orelse), new_trace
        if isinstance(term, Prim):
            for index, argument in enumerate(term.args):
                if isinstance(argument, Numeral):
                    continue
                if is_value(argument):
                    raise StuckSignal(
                        RunStatus.STUCK, f"primitive argument {index} is not a numeral"
                    )
                new_argument, new_trace = self._step(argument, trace)
                new_args = term.args[:index] + (new_argument,) + term.args[index + 1 :]
                return Prim(term.op, new_args), new_trace
            primitive = self.registry[term.op]
            values = [arg.value for arg in term.args]  # type: ignore[union-attr]
            try:
                result = primitive(*values)
            except (ValueError, ZeroDivisionError, OverflowError) as error:
                raise StuckSignal(RunStatus.STUCK, f"primitive {term.op!r} failed: {error}")
            return Numeral(result), trace
        if isinstance(term, Sample):
            if trace.is_empty():
                raise StuckSignal(RunStatus.TRACE_EXHAUSTED, "sample on an empty trace")
            return Numeral(trace.head()), trace.rest()
        if isinstance(term, Score):
            argument = term.arg
            if isinstance(argument, Numeral):
                if argument.value < 0:
                    raise StuckSignal(RunStatus.SCORE_FAILED, "score of a negative value")
                return argument, trace
            if is_value(argument):
                raise StuckSignal(RunStatus.STUCK, "score argument is not a numeral")
            new_argument, new_trace = self._step(argument, trace)
            return Score(new_argument), new_trace
        if isinstance(term, Var):
            raise StuckSignal(RunStatus.STUCK, f"free variable {term.name!r}")
        raise SPCFMachineError(f"cannot step term {term!r}")

    def run(self, term: Term, trace: Trace, max_steps: int = 100_000) -> RunResult:
        """Run ``<term, trace>`` until a value, stuckness, or the step budget."""
        steps = 0
        current, remaining = term, trace
        while steps < max_steps:
            try:
                outcome = self.step(current, remaining)
            except StuckSignal as stuck:
                return RunResult(stuck.status, current, remaining, steps, stuck.detail)
            except RecursionError:
                # The evaluation context is deeper than the Python stack allows
                # (a very long chain of pending calls); report the run as
                # exceeding its budget rather than crashing the caller.
                return RunResult(RunStatus.STEP_LIMIT, current, remaining, steps)
            if outcome is None:
                if remaining.is_empty():
                    return RunResult(RunStatus.TERMINATED, current, remaining, steps)
                return RunResult(
                    RunStatus.VALUE_WITH_LEFTOVER_TRACE, current, remaining, steps
                )
            current, remaining = outcome
            steps += 1
        return RunResult(RunStatus.STEP_LIMIT, current, remaining, steps)

    def terminates_on(
        self, term: Term, trace: Trace, max_steps: int = 100_000
    ) -> bool:
        """True iff ``trace`` is a terminating trace for ``term``."""
        return self.run(term, trace, max_steps=max_steps).terminated
