"""Monte-Carlo estimation of termination probability and expected runtime.

The standard semantics evaluates a term against a trace that is fixed up
front.  For estimation we instead supply random draws *lazily*: whenever the
machine needs a sample and the working trace is empty, a fresh uniform draw is
appended.  A run that reaches a value therefore corresponds exactly to a
terminating trace (the draws actually consumed), and the empirical frequency
of such runs is an unbiased estimator of ``Pterm`` restricted to runs within
the step budget -- i.e. an estimator of ``mu_S(T^{<= max_steps}_{M, term})``,
which lower-bounds ``Pterm(M)`` in expectation and converges to it as the
budget grows.

These estimates serve as the ground-truth cross check for the paper's
lower-bound engine (Sec. 3 / Sec. 7.1) and for the AST verifier (Sec. 6).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Union

from repro.spcf.syntax import Term, is_value
from repro.semantics.cbn import CbNMachine
from repro.semantics.cbv import CbVMachine
from repro.semantics.machine import RunStatus, StuckSignal
from repro.semantics.traces import Trace

Machine = Union[CbNMachine, CbVMachine]


@dataclass(frozen=True)
class LazyRunResult:
    """Result of a single lazily-sampled run."""

    status: RunStatus
    steps: int
    samples_used: int
    value: Optional[Term]


@dataclass(frozen=True)
class TerminationEstimate:
    """Empirical estimate of termination probability and expected runtime."""

    runs: int
    terminated: int
    probability: float
    mean_steps: Optional[float]
    mean_samples: Optional[float]
    stderr: float

    def confidence_interval(self, z: float = 2.576) -> tuple:
        """A (by default 99%) normal-approximation confidence interval."""
        low = max(0.0, self.probability - z * self.stderr)
        high = min(1.0, self.probability + z * self.stderr)
        return low, high


def run_lazily(
    machine: Machine,
    term: Term,
    rng: Optional[random.Random] = None,
    max_steps: int = 10_000,
) -> LazyRunResult:
    """Run ``term`` supplying uniform draws on demand, up to ``max_steps``."""
    rng = rng or random
    current = term
    trace = Trace(())
    steps = 0
    samples_used = 0
    while steps < max_steps:
        if is_value(current):
            if not trace.is_empty():
                # A speculatively appended draw was never consumed.
                samples_used -= 1
            return LazyRunResult(RunStatus.TERMINATED, steps, samples_used, current)
        if trace.is_empty():
            trace = Trace((rng.random(),))
            samples_used += 1
        try:
            outcome = machine.step(current, trace)
        except RecursionError:
            # Deeper pending-call chains than the Python stack allows: treat
            # the run as exceeding its budget (it is certainly not a short
            # terminating run).
            return LazyRunResult(RunStatus.STEP_LIMIT, steps, samples_used, None)
        except StuckSignal as stuck:
            # A fresh draw was speculatively appended but the stuck redex was
            # not a sample; it does not count as consumed.
            if not trace.is_empty():
                samples_used -= 1
            return LazyRunResult(stuck.status, steps, samples_used, None)
        assert outcome is not None
        current, trace = outcome
        steps += 1
    return LazyRunResult(RunStatus.STEP_LIMIT, steps, samples_used, None)


def estimate_termination(
    term: Term,
    runs: int = 2000,
    max_steps: int = 10_000,
    machine: Optional[Machine] = None,
    seed: Optional[int] = 0,
) -> TerminationEstimate:
    """Estimate ``Pterm(term)`` (and expected steps on terminating runs).

    ``machine`` defaults to the call-by-value machine, matching the semantics
    under which the paper's AST verification examples are stated; pass a
    :class:`CbNMachine` to estimate the call-by-name probability instead.
    """
    machine = machine or CbVMachine()
    rng = random.Random(seed)
    terminated = 0
    total_steps = 0
    total_samples = 0
    for _ in range(runs):
        result = run_lazily(machine, term, rng=rng, max_steps=max_steps)
        if result.status is RunStatus.TERMINATED:
            terminated += 1
            total_steps += result.steps
            total_samples += result.samples_used
    probability = terminated / runs if runs else 0.0
    mean_steps = total_steps / terminated if terminated else None
    mean_samples = total_samples / terminated if terminated else None
    stderr = math.sqrt(max(probability * (1 - probability), 1e-12) / runs) if runs else 0.0
    return TerminationEstimate(
        runs=runs,
        terminated=terminated,
        probability=probability,
        mean_steps=mean_steps,
        mean_samples=mean_samples,
        stderr=stderr,
    )
