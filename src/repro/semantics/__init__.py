"""Trace-based (sampling-style) operational semantics for SPCF (Sec. 2.3).

A probabilistic program is evaluated against a *trace*: the finite sequence of
values in [0, 1] that successive ``sample`` statements consume.  This package
provides the call-by-name and call-by-value small-step machines of Fig. 2 /
Fig. 8, utilities for traces, and Monte-Carlo estimation of the probability of
termination and of the expected number of reduction steps (used throughout the
tests and benchmarks as a ground-truth cross check for the paper's lower-bound
machinery).
"""

from repro.semantics.traces import Trace, random_trace
from repro.semantics.cbn import CbNMachine
from repro.semantics.cbv import CbVMachine
from repro.semantics.machine import RunResult, RunStatus
from repro.semantics.sampler import TerminationEstimate, estimate_termination
from repro.semantics.oracle import (
    ConditionalOracle,
    Direction,
    OracleMachine,
    OracleRunResult,
    OracleRunStatus,
    branching_classes,
    in_branching_class,
    record_branching,
)

__all__ = [
    "CbNMachine",
    "CbVMachine",
    "ConditionalOracle",
    "Direction",
    "OracleMachine",
    "OracleRunResult",
    "OracleRunStatus",
    "RunResult",
    "RunStatus",
    "TerminationEstimate",
    "Trace",
    "branching_classes",
    "estimate_termination",
    "in_branching_class",
    "random_trace",
    "record_branching",
]
