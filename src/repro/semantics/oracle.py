"""Conditional oracles and the branching-behaviour partition (App. B.4, Fig. 11).

The completeness proof of the interval-based semantics partitions the
terminating traces of a term by their *branching behaviour*: the sequence of
left/right decisions the run makes at conditionals.  The oracle-annotated
reduction ``<M, s, kappa> -> <M', s', kappa'>`` consumes one direction from
``kappa`` at every conditional redex and is stuck when the direction does not
match the sign of the guard; ``T^(kappa)_{M, term}`` collects the traces whose
run follows ``kappa`` exactly (Lem. B.5: the partition is well defined because
every terminating trace determines a unique oracle).

This module provides

* :func:`record_branching` -- run the standard machine and record the
  directions actually taken (the unique ``kappa`` of Lem. B.5),
* :class:`OracleMachine` -- the annotated reduction of Fig. 11, reporting a
  dedicated status when the supplied oracle disagrees with the run,
* :func:`in_branching_class` -- membership in ``T^(kappa)_{M, term}``,
* :func:`branching_classes` -- an empirical view of the partition obtained by
  sampling traces, used by the tests to check that the classes are disjoint
  and exhaust the terminating traces.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.semantics.cbn import CbNMachine
from repro.semantics.cbv import CbVMachine
from repro.semantics.machine import RunResult, RunStatus, StuckSignal
from repro.semantics.traces import Trace
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Term,
    Var,
    is_value,
)
from repro.symbolic.execute import Strategy

__all__ = [
    "Direction",
    "ConditionalOracle",
    "OracleRunStatus",
    "OracleRunResult",
    "OracleMachine",
    "branching_classes",
    "find_redex",
    "in_branching_class",
    "record_branching",
]


class Direction(enum.Enum):
    """One conditional decision: the left (``<= 0``) or right (``> 0``) branch."""

    LEFT = "l"
    RIGHT = "r"

    def __repr__(self) -> str:
        return f"Direction.{self.name}"


ConditionalOracle = Tuple[Direction, ...]
"""A conditional oracle ``kappa``: the sequence of directions of a run."""


class OracleRunStatus(enum.Enum):
    """Outcome of the oracle-annotated reduction."""

    TERMINATED = "terminated"
    """Reached a value with the trace and the oracle both fully consumed."""

    ORACLE_MISMATCH = "oracle-mismatch"
    """A conditional guard disagreed with the direction supplied by the oracle."""

    ORACLE_EXHAUSTED = "oracle-exhausted"
    """A conditional redex was reached but the oracle was already empty."""

    ORACLE_LEFTOVER = "oracle-leftover"
    """The run terminated but some oracle directions were never consumed."""

    MACHINE_STOPPED = "machine-stopped"
    """The underlying machine stopped for its own reasons (stuck, trace, budget)."""


@dataclass(frozen=True)
class OracleRunResult:
    """The result of running a term against a trace and a conditional oracle."""

    status: OracleRunStatus
    machine_result: Optional[RunResult]
    directions_consumed: int
    steps: int

    @property
    def terminated(self) -> bool:
        return self.status is OracleRunStatus.TERMINATED


def _machine_for(strategy: Strategy, registry: PrimitiveRegistry):
    if strategy is Strategy.CBV:
        return CbVMachine(registry)
    return CbNMachine(registry)


def find_redex(term: Term, strategy: Strategy = Strategy.CBN) -> Optional[Term]:
    """The redex of the unique decomposition ``term = E[R]`` (or ``None`` for values).

    Mirrors the search order of the CbN / CbV machines, so the returned
    subterm is exactly the one the next :meth:`step` call will contract.
    """
    if is_value(term):
        return None
    if isinstance(term, App):
        fn, arg = term.fn, term.arg
        if strategy is Strategy.CBV:
            if not is_value(fn):
                return find_redex(fn, strategy)
            if not is_value(arg):
                return find_redex(arg, strategy)
            return term
        if isinstance(fn, (Lam, Fix)) or is_value(fn):
            return term
        return find_redex(fn, strategy)
    if isinstance(term, If):
        if is_value(term.cond):
            return term
        return find_redex(term.cond, strategy)
    if isinstance(term, Prim):
        for argument in term.args:
            if isinstance(argument, Numeral):
                continue
            if is_value(argument):
                return term
            return find_redex(argument, strategy)
        return term
    if isinstance(term, Sample):
        return term
    if isinstance(term, Score):
        if is_value(term.arg):
            return term
        return find_redex(term.arg, strategy)
    if isinstance(term, Var):
        return term
    return term


def _conditional_direction(term: Term, strategy: Strategy) -> Optional[Direction]:
    """The direction the next step will take, when the redex is a conditional
    whose guard is already a numeral."""
    redex = find_redex(term, strategy)
    if isinstance(redex, If) and isinstance(redex.cond, Numeral):
        return Direction.LEFT if redex.cond.value <= 0 else Direction.RIGHT
    return None


def record_branching(
    term: Term,
    trace: Trace,
    strategy: Strategy = Strategy.CBN,
    max_steps: int = 100_000,
    registry: Optional[PrimitiveRegistry] = None,
) -> Tuple[RunResult, ConditionalOracle]:
    """Run the standard machine and record the conditional directions taken.

    For a terminating trace this returns the unique oracle ``kappa`` with
    ``s  in  T^(kappa)_{M, term}`` (Lem. B.5).
    """
    registry = registry or default_registry()
    machine = _machine_for(strategy, registry)
    directions = []
    current, remaining = term, trace
    steps = 0
    while steps < max_steps:
        direction = _conditional_direction(current, strategy)
        try:
            outcome = machine.step(current, remaining)
        except StuckSignal as stuck:
            return (
                RunResult(stuck.status, current, remaining, steps, stuck.detail),
                tuple(directions),
            )
        if outcome is None:
            status = (
                RunStatus.TERMINATED
                if remaining.is_empty()
                else RunStatus.VALUE_WITH_LEFTOVER_TRACE
            )
            return RunResult(status, current, remaining, steps), tuple(directions)
        if direction is not None:
            directions.append(direction)
        current, remaining = outcome
        steps += 1
    return RunResult(RunStatus.STEP_LIMIT, current, remaining, steps), tuple(directions)


class OracleMachine:
    """The oracle-annotated reduction of Fig. 11.

    The machine follows the standard strategy but, at every conditional whose
    guard is a numeral, requires the next oracle direction to agree with the
    sign of the guard; disagreement or exhaustion stops the run with a
    dedicated status.
    """

    def __init__(
        self,
        strategy: Strategy = Strategy.CBN,
        registry: Optional[PrimitiveRegistry] = None,
    ) -> None:
        self.strategy = strategy
        self.registry = registry or default_registry()
        self._machine = _machine_for(strategy, self.registry)

    def run(
        self,
        term: Term,
        trace: Trace,
        oracle: ConditionalOracle,
        max_steps: int = 100_000,
    ) -> OracleRunResult:
        """Run ``<term, trace, oracle>`` per Fig. 11."""
        current, remaining = term, trace
        position = 0
        steps = 0
        while steps < max_steps:
            direction = _conditional_direction(current, self.strategy)
            if direction is not None:
                if position >= len(oracle):
                    return OracleRunResult(
                        OracleRunStatus.ORACLE_EXHAUSTED, None, position, steps
                    )
                if oracle[position] is not direction:
                    return OracleRunResult(
                        OracleRunStatus.ORACLE_MISMATCH, None, position, steps
                    )
                position += 1
            try:
                outcome = self._machine.step(current, remaining)
            except StuckSignal as stuck:
                result = RunResult(stuck.status, current, remaining, steps, stuck.detail)
                return OracleRunResult(
                    OracleRunStatus.MACHINE_STOPPED, result, position, steps
                )
            if outcome is None:
                terminated = remaining.is_empty()
                machine_status = (
                    RunStatus.TERMINATED
                    if terminated
                    else RunStatus.VALUE_WITH_LEFTOVER_TRACE
                )
                result = RunResult(machine_status, current, remaining, steps)
                if not terminated:
                    return OracleRunResult(
                        OracleRunStatus.MACHINE_STOPPED, result, position, steps
                    )
                if position != len(oracle):
                    return OracleRunResult(
                        OracleRunStatus.ORACLE_LEFTOVER, result, position, steps
                    )
                return OracleRunResult(
                    OracleRunStatus.TERMINATED, result, position, steps
                )
            current, remaining = outcome
            steps += 1
        result = RunResult(RunStatus.STEP_LIMIT, current, remaining, steps)
        return OracleRunResult(OracleRunStatus.MACHINE_STOPPED, result, position, steps)


def in_branching_class(
    term: Term,
    trace: Trace,
    oracle: ConditionalOracle,
    strategy: Strategy = Strategy.CBN,
    max_steps: int = 100_000,
    registry: Optional[PrimitiveRegistry] = None,
) -> bool:
    """Membership of ``trace`` in ``T^(oracle)_{term, term}`` (App. B.4)."""
    machine = OracleMachine(strategy, registry)
    return machine.run(term, trace, oracle, max_steps=max_steps).terminated


def branching_classes(
    term: Term,
    runs: int = 500,
    trace_length: int = 64,
    strategy: Strategy = Strategy.CBN,
    max_steps: int = 50_000,
    seed: int = 0,
    registry: Optional[PrimitiveRegistry] = None,
) -> Dict[ConditionalOracle, int]:
    """Sample traces and histogram the branching behaviours of terminating runs.

    Non-terminating samples (trace exhausted or budget reached) are dropped;
    the result is an empirical view of the countable partition
    ``{T^(kappa)}_kappa`` of ``T_{term, term}``.
    """
    registry = registry or default_registry()
    rng = random.Random(seed)
    histogram: Dict[ConditionalOracle, int] = {}
    for _ in range(runs):
        trace = Trace(tuple(rng.random() for _ in range(trace_length)))
        result, oracle = record_branching(
            term, trace, strategy=strategy, max_steps=max_steps, registry=registry
        )
        if result.status not in (
            RunStatus.TERMINATED,
            RunStatus.VALUE_WITH_LEFTOVER_TRACE,
        ):
            continue
        histogram[oracle] = histogram.get(oracle, 0) + 1
    return histogram
