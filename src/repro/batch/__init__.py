"""Parallel analysis batches with a persistent cross-process cache.

The paper's evaluation is a batch of (program x analysis x parameters) runs;
this subsystem makes that batch a first-class object:

* :mod:`repro.batch.jobs`   -- ``JobSpec`` / ``JobResult`` with deterministic
  content-hash keys and JSON-safe payloads,
* :mod:`repro.batch.runner` -- the scheduler (``--jobs N`` worker processes,
  per-job failure tolerance, submission-order JSONL output),
* :mod:`repro.batch.cache`  -- the versioned, checksummed on-disk store of
  finished job results and measure-engine entries shared across processes
  and sessions (damaged files are quarantined, multi-shard merges are
  journalled),
* :mod:`repro.batch.store_sqlite` -- the same store protocol over one WAL
  SQLite database (concurrent readers, transactional merges, indexed GC);
  :func:`~repro.batch.store_sqlite.open_store` picks the backend and
  :func:`~repro.batch.store_sqlite.migrate_store` converts a directory,
* :mod:`repro.batch.distribute` -- distributed anytime deepening: a
  store-persisted exploration frontier is split into per-subtree shards and
  extended by a work-stealing fleet of ``explore-shard`` jobs, with
  per-depth results byte-identical to a single process
  (``--explore-jobs``),
* :mod:`repro.batch.faults` -- deterministic fault injection (worker kills,
  hangs, torn writes, bit flips) driving the fault-tolerance test suite,
* :mod:`repro.batch.doctor` -- the read-only store health checks behind
  ``python -m repro doctor``,
* :mod:`repro.batch.suites` -- named suites mirroring Table 1 / Table 2 /
  the classification extension, and job-file loading.

The CLI surface is ``python -m repro batch`` (see :mod:`repro.cli`);
``table1``/``table2``/``report`` delegate to the same runner.
"""

from repro.batch.cache import BatchCache, verify_document
from repro.batch.distribute import (
    DistributedScheduleReport,
    frontier_key,
    run_distributed_schedule,
)
from repro.batch.doctor import DoctorReport, Finding, diagnose
from repro.batch.faults import Fault, FaultPlan
from repro.batch.jobs import ANALYSES, JobResult, JobSpec, run_job
from repro.batch.store_sqlite import (
    MigrationReport,
    SqliteStore,
    migrate_store,
    open_store,
)
from repro.batch.runner import (
    BatchReport,
    ResultScan,
    RetryPolicy,
    read_result_keys,
    run_batch,
    scan_results_jsonl,
    write_results_jsonl,
)
from repro.batch.suites import (
    SUITE_NAMES,
    classify_suite,
    load_job_file,
    suite,
    table1_suite,
    table2_suite,
)

__all__ = [
    "ANALYSES",
    "BatchCache",
    "BatchReport",
    "DistributedScheduleReport",
    "DoctorReport",
    "Fault",
    "FaultPlan",
    "Finding",
    "JobResult",
    "JobSpec",
    "MigrationReport",
    "ResultScan",
    "RetryPolicy",
    "SUITE_NAMES",
    "SqliteStore",
    "classify_suite",
    "diagnose",
    "frontier_key",
    "load_job_file",
    "migrate_store",
    "open_store",
    "read_result_keys",
    "run_batch",
    "run_distributed_schedule",
    "run_job",
    "scan_results_jsonl",
    "suite",
    "table1_suite",
    "table2_suite",
    "verify_document",
    "write_results_jsonl",
]
