"""Parallel analysis batches with a persistent cross-process cache.

The paper's evaluation is a batch of (program x analysis x parameters) runs;
this subsystem makes that batch a first-class object:

* :mod:`repro.batch.jobs`   -- ``JobSpec`` / ``JobResult`` with deterministic
  content-hash keys and JSON-safe payloads,
* :mod:`repro.batch.runner` -- the scheduler (``--jobs N`` worker processes,
  per-job failure tolerance, submission-order JSONL output),
* :mod:`repro.batch.cache`  -- the versioned on-disk store of finished job
  results and measure-engine entries shared across processes and sessions,
* :mod:`repro.batch.suites` -- named suites mirroring Table 1 / Table 2 /
  the classification extension, and job-file loading.

The CLI surface is ``python -m repro batch`` (see :mod:`repro.cli`);
``table1``/``table2``/``report`` delegate to the same runner.
"""

from repro.batch.cache import BatchCache
from repro.batch.jobs import ANALYSES, JobResult, JobSpec, run_job
from repro.batch.runner import (
    BatchReport,
    read_result_keys,
    run_batch,
    write_results_jsonl,
)
from repro.batch.suites import (
    SUITE_NAMES,
    classify_suite,
    load_job_file,
    suite,
    table1_suite,
    table2_suite,
)

__all__ = [
    "ANALYSES",
    "BatchCache",
    "BatchReport",
    "JobResult",
    "JobSpec",
    "SUITE_NAMES",
    "classify_suite",
    "load_job_file",
    "read_result_keys",
    "run_batch",
    "run_job",
    "suite",
    "table1_suite",
    "table2_suite",
    "write_results_jsonl",
]
