"""The SQLite store backend: one WAL database instead of sharded JSON.

:class:`SqliteStore` is a drop-in replacement for
:class:`repro.batch.cache.BatchCache` -- same methods, same envelope
semantics, same quarantine policy -- backed by a single
``<cache-dir>/store.sqlite3`` database in WAL mode:

* **concurrent readers, single writer** -- WAL readers never block on the
  writer and vice versa; writes go through short ``BEGIN IMMEDIATE``
  transactions serialized by SQLite itself (with a busy timeout), replacing
  the JSON store's ``fcntl`` shard locks;
* **indexed lookups** -- job results and measure/sweep entries are fetched
  by primary key instead of read-modify-writing a whole shard document;
* **incremental GC** -- every entry row carries its touch stamp in an
  indexed column, so :meth:`SqliteStore.prune` is one indexed ``DELETE``
  instead of ``batch prune``'s full parse of every shard;
* **no merge intents** -- a multi-entry merge is a transaction; a process
  killed mid-merge rolls back to a consistent state, so there is nothing to
  journal and nothing to replay (:meth:`SqliteStore.pending_intents` is
  always empty).

Every row still holds the *same checksummed envelope* the JSON store writes
to files (:func:`repro.batch.cache.seal_document`): the database's own page
checksums do not cover application-level corruption, and keeping one
envelope format is what lets ``repro store migrate`` carry documents over
verbatim and lets ``repro doctor`` verify either backend with one code
path.  A row that fails verification is moved into the ``quarantine``
table -- visible to the doctor, never silently dropped -- and reads as a
miss, exactly like a quarantined shard file.

Unlike the JSON store's shard documents -- where a merge under one registry
fingerprint clobbers a shard written under another -- entry rows are keyed
``(kind, fingerprint, key)``, so stores written under different primitive
semantics coexist side by side.

:func:`open_store` is the backend chooser shared by the CLI, the batch
runner and the daemon: ``"auto"`` picks SQLite when ``store.sqlite3``
exists and the JSON layout otherwise, so migrated directories keep working
with every command unchanged.
"""

from __future__ import annotations

import json
import logging
import sqlite3
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

import repro.telemetry as telemetry
from repro.batch.cache import (
    BatchCache,
    PruneReport,
    seal_document,
    verify_document,
    verify_payload,
)
from repro.batch.jobs import JobResult
from repro.geometry.engine import MeasureEngine

STORE_SCHEMA_VERSION = 1
"""The SQLite schema generation (``meta.store_version``)."""

DB_FILENAME = "store.sqlite3"
"""The database file inside a cache directory; its presence is what makes
``open_store(..., backend="auto")`` pick this backend."""

_BUSY_TIMEOUT_MS = 30_000

_ENTRY_KINDS = ("measures", "sweeps", "frontiers")

_LOGGER = logging.getLogger("repro.batch")

__all__ = [
    "DB_FILENAME",
    "MigrationReport",
    "STORE_SCHEMA_VERSION",
    "SqliteStore",
    "migrate_store",
    "open_store",
    "sqlite_store_path",
]


def sqlite_store_path(directory: Union[str, Path]) -> Path:
    return Path(directory) / DB_FILENAME


def open_store(
    directory: Union[str, Path], backend: str = "auto"
) -> Union[BatchCache, "SqliteStore"]:
    """Open the persistent store of ``directory`` under the right backend.

    ``"json"`` and ``"sqlite"`` force a backend; ``"auto"`` (the default
    everywhere) picks SQLite exactly when the database file already exists,
    so a fresh directory keeps the JSON layout and a migrated one is served
    from the database by every command without further flags.
    """
    if backend == "json":
        return BatchCache(directory)
    if backend == "sqlite":
        return SqliteStore(directory)
    if backend == "auto":
        if sqlite_store_path(directory).exists():
            return SqliteStore(directory)
        return BatchCache(directory)
    raise ValueError(
        f"unknown store backend {backend!r}; expected 'auto', 'json' or 'sqlite'"
    )


class SqliteStore:
    """A persistent job/measure/sweep store in one WAL SQLite database.

    Method-compatible with :class:`repro.batch.cache.BatchCache`; see the
    module docstring for what changes underneath.
    """

    backend_name = "sqlite"
    """How ``open_store(..., backend=...)`` names this layout (workers of a
    distributed deepening reopen the supervisor's store by this name)."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = sqlite_store_path(self.directory)
        self.quarantined: List[Tuple[str, str]] = []
        """``(origin key, reason)`` for every row this instance quarantined."""

        # One connection per store instance.  The daemon touches the store
        # from its single engine thread, the batch runner from the
        # supervisor thread -- but ``check_same_thread=False`` plus our own
        # write lock keeps the instance safe either way.
        self._connection = sqlite3.connect(
            str(self.path), timeout=_BUSY_TIMEOUT_MS / 1000, check_same_thread=False
        )
        self._write_lock = threading.Lock()
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        self._initialize_schema()

    # -- schema ---------------------------------------------------------------

    def _initialize_schema(self) -> None:
        with self._transaction() as connection:
            connection.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY,"
                " value TEXT NOT NULL)"
            )
            connection.execute(
                "CREATE TABLE IF NOT EXISTS jobs ("
                " key TEXT PRIMARY KEY,"
                " document TEXT NOT NULL)"
            )
            connection.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " kind TEXT NOT NULL,"
                " fingerprint TEXT NOT NULL,"
                " key TEXT NOT NULL,"
                " document TEXT NOT NULL,"
                " touched INTEGER NOT NULL DEFAULT 0,"
                " PRIMARY KEY (kind, fingerprint, key))"
            )
            # The GC index: prune is one range DELETE over (kind, touched).
            connection.execute(
                "CREATE INDEX IF NOT EXISTS entries_by_touch"
                " ON entries (kind, touched)"
            )
            connection.execute(
                "CREATE TABLE IF NOT EXISTS quarantine ("
                " id INTEGER PRIMARY KEY AUTOINCREMENT,"
                " origin TEXT NOT NULL,"
                " key TEXT NOT NULL,"
                " document TEXT NOT NULL,"
                " reason TEXT NOT NULL)"
            )
            connection.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("store_version", str(STORE_SCHEMA_VERSION)),
            )

    def _transaction(self):
        return _Transaction(self._connection, self._write_lock)

    def close(self) -> None:
        self._connection.close()

    # -- damage handling -------------------------------------------------------

    @property
    def quarantine_count(self) -> int:
        """How many damaged rows this instance has quarantined."""
        return len(self.quarantined)

    def _quarantine_row(
        self, origin: str, key: str, document_text: str, reason: str
    ) -> None:
        """Move a damaged row into the quarantine table -- never delete
        silently, never fail the read.  Mirrors the JSON store's policy of
        quarantining damaged files with a ``.reason`` sidecar."""
        try:
            with self._transaction() as connection:
                connection.execute(
                    "INSERT INTO quarantine (origin, key, document, reason)"
                    " VALUES (?, ?, ?, ?)",
                    (origin, key, document_text, reason),
                )
                if origin == "jobs":
                    connection.execute("DELETE FROM jobs WHERE key = ?", (key,))
                else:
                    connection.execute(
                        "DELETE FROM entries WHERE kind = ? AND key = ?",
                        (origin, key),
                    )
        except sqlite3.Error:
            return  # a read-only database still reads damage as a miss
        self.quarantined.append((f"{origin}/{key}", reason))
        telemetry.emit("quarantine", path=f"{origin}/{key}", reason=reason)
        _LOGGER.warning("quarantined damaged store row %s/%s (%s)", origin, key, reason)

    def _verify_row(self, origin: str, key: str, text: str) -> Optional[dict]:
        """Parse and verify one row's envelope; damaged rows are quarantined.

        Unknown (future) versions read as misses but stay in place, exactly
        like the file backend's policy.
        """
        try:
            document = json.loads(text)
        except ValueError:
            self._quarantine_row(origin, key, text, "corrupt-json")
            return None
        status, verified = verify_payload(document)
        if status in ("ok", "legacy"):
            return verified
        if status == "unknown-version":
            return None
        self._quarantine_row(origin, key, text, status)
        return None

    def quarantine_rows(self) -> List[Tuple[str, str, str]]:
        """Every quarantined row: ``(origin, key, reason)`` (doctor feed)."""
        cursor = self._connection.execute(
            "SELECT origin, key, reason FROM quarantine ORDER BY id"
        )
        return [(origin, key, reason) for origin, key, reason in cursor]

    def clear_quarantine(self) -> int:
        """Drop every quarantined row (the operator looked; exit-0 again)."""
        with self._transaction() as connection:
            cursor = connection.execute("DELETE FROM quarantine")
            return cursor.rowcount

    # -- job results -----------------------------------------------------------

    def load_job(self, key: str) -> Optional[JobResult]:
        """The cached result for ``key``, or ``None`` (incl. damaged rows)."""
        row = self._connection.execute(
            "SELECT document FROM jobs WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        document = self._verify_row("jobs", key, row[0])
        if document is None:
            return None
        record = document.get("result")
        try:
            result = JobResult.from_cache_dict(record)
        except (TypeError, KeyError, ValueError):
            return None
        if result.key != key or not result.ok:
            return None
        return result

    def store_job(self, result: JobResult) -> None:
        """Persist a finished job (error results are recomputed, not cached)."""
        if not result.ok:
            return
        document = _canonical(seal_document({"result": result.to_cache_dict()}))
        with self._transaction() as connection:
            connection.execute(
                "INSERT OR REPLACE INTO jobs (key, document) VALUES (?, ?)",
                (result.key, document),
            )

    def job_count(self) -> int:
        return self._connection.execute("SELECT COUNT(*) FROM jobs").fetchone()[0]

    # -- the run counter -------------------------------------------------------

    def run_counter(self) -> int:
        """The number of batch runs that have written to this store."""
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = 'run_counter'"
        ).fetchone()
        if row is None:
            return 0
        try:
            counter = int(row[0])
        except (TypeError, ValueError):
            return 0
        return counter if counter >= 0 else 0

    def begin_run(self) -> int:
        """Bump and return the run counter (the GC clock, as in the JSON
        store) -- atomically, under the write transaction."""
        with self._transaction() as connection:
            counter = self.run_counter() + 1
            connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("run_counter", str(counter)),
            )
            return counter

    # -- measure- and sweep-engine entries -------------------------------------

    def _load_kind(self, kind: str, fingerprint: str) -> Dict[str, List]:
        entries: Dict[str, List] = {}
        damaged: List[Tuple[str, str]] = []
        cursor = self._connection.execute(
            "SELECT key, document FROM entries WHERE kind = ? AND fingerprint = ?",
            (kind, fingerprint),
        )
        for key, text in cursor.fetchall():
            document = self._verify_row_deferred(kind, key, text, damaged)
            if document is None:
                continue
            entry = document.get("entry")
            if isinstance(entry, list):
                entries[key] = entry
        for key, text in damaged:
            # Quarantined after the read loop: mutating mid-cursor is unsafe.
            self._verify_row(kind, key, text)
        return entries

    def _verify_row_deferred(
        self, origin: str, key: str, text: str, damaged: List[Tuple[str, str]]
    ) -> Optional[dict]:
        try:
            document = json.loads(text)
        except ValueError:
            damaged.append((key, text))
            return None
        status, verified = verify_payload(document)
        if status in ("ok", "legacy"):
            return verified
        if status == "unknown-version":
            return None
        damaged.append((key, text))
        return None

    def load_measures(self, engine: MeasureEngine) -> Dict[str, List]:
        """The stored measure entries compatible with ``engine``."""
        return self._load_kind("measures", engine.registry_fingerprint())

    def load_sweeps(self, engine: MeasureEngine) -> Dict[str, List]:
        """The stored per-block sweep entries compatible with ``engine``."""
        return self._load_kind("sweeps", engine.registry_fingerprint())

    def load_frontiers(self, engine: MeasureEngine) -> Dict[str, List]:
        """The stored exploration-frontier entries compatible with ``engine``."""
        return self._load_kind("frontiers", engine.registry_fingerprint())

    def measure_entry_count(self, engine: MeasureEngine) -> int:
        return self._count_kind("measures", engine.registry_fingerprint())

    def sweep_entry_count(self, engine: MeasureEngine) -> int:
        return self._count_kind("sweeps", engine.registry_fingerprint())

    def load_frontier_entry(self, engine: MeasureEngine, key: str):
        """One frontier entry by key (one indexed row read, not a kind scan).

        Same contract as :meth:`BatchCache.load_frontier_entry`: the
        work-stealing scan polls shard keys far too often to parse every
        frontier entry -- master encodings included -- per poll.
        """
        fingerprint = engine.registry_fingerprint()
        row = self._connection.execute(
            "SELECT document FROM entries"
            " WHERE kind = ? AND fingerprint = ? AND key = ?",
            ("frontiers", fingerprint, key),
        ).fetchone()
        if row is None:
            return None
        document = self._verify_row("frontiers", key, row[0])
        if document is None:
            return None
        entry = document.get("entry")
        return entry if isinstance(entry, list) else None

    def frontier_entry_count(self, engine: MeasureEngine) -> int:
        return self._count_kind("frontiers", engine.registry_fingerprint())

    def _count_kind(self, kind: str, fingerprint: str) -> int:
        return self._connection.execute(
            "SELECT COUNT(*) FROM entries WHERE kind = ? AND fingerprint = ?",
            (kind, fingerprint),
        ).fetchone()[0]

    def merge_measures(
        self,
        engine: MeasureEngine,
        new_entries: Mapping[str, List],
        run: Optional[int] = None,
        touched_keys: Iterable[str] = (),
    ) -> int:
        """Fold ``new_entries`` into the measure store (one transaction)."""
        return self._merge_kind("measures", engine, new_entries, run, touched_keys)

    def merge_sweeps(
        self,
        engine: MeasureEngine,
        new_entries: Mapping[str, List],
        run: Optional[int] = None,
        touched_keys: Iterable[str] = (),
    ) -> int:
        """Fold per-block sweep entries into the sweep store."""
        return self._merge_kind("sweeps", engine, new_entries, run, touched_keys)

    def merge_frontiers(
        self,
        engine: MeasureEngine,
        new_entries: Mapping[str, List],
        run: Optional[int] = None,
        touched_keys: Iterable[str] = (),
    ) -> int:
        """Fold encoded exploration frontiers into the store.

        Same transaction, checksum and touch-stamp semantics as the other
        entry kinds, so frontiers share GC (``prune``) and ``doctor``
        coverage with measures and sweeps.
        """
        return self._merge_kind("frontiers", engine, new_entries, run, touched_keys)

    def _merge_kind(
        self,
        kind: str,
        engine: MeasureEngine,
        new_entries: Mapping[str, List],
        run: Optional[int],
        touched_keys: Iterable[str],
    ) -> int:
        touched_keys = set(touched_keys)
        if not new_entries and not touched_keys:
            return 0
        fingerprint = engine.registry_fingerprint()
        if run is None:
            run = self.run_counter()
        with self._transaction() as connection:
            connection.executemany(
                "INSERT OR REPLACE INTO entries"
                " (kind, fingerprint, key, document, touched)"
                " VALUES (?, ?, ?, ?, ?)",
                (
                    (
                        kind,
                        fingerprint,
                        key,
                        _canonical(seal_document({"entry": list(entry)})),
                        run,
                    )
                    for key, entry in sorted(new_entries.items())
                ),
            )
            # Refresh the GC stamps of entries this run answered from the
            # store -- the "touch" half of the JSON store's merge.
            connection.executemany(
                "UPDATE entries SET touched = ?"
                " WHERE kind = ? AND fingerprint = ? AND key = ?",
                ((run, kind, fingerprint, key) for key in sorted(touched_keys)),
            )
        telemetry.emit(
            "store-merge",
            kind=kind,
            written=len(new_entries),
            touched=len(touched_keys),
        )
        return len(new_entries)

    def import_entries(
        self,
        kind: str,
        fingerprint: str,
        entries: Mapping[str, List],
        touched: Mapping[str, int],
    ) -> int:
        """Bulk-load migrated entries, preserving their original touch
        stamps (entries a migration resets to "fresh" would dodge the GC
        for another full aging cycle)."""
        if kind not in _ENTRY_KINDS:
            raise ValueError(f"unknown entry kind {kind!r}")
        with self._transaction() as connection:
            connection.executemany(
                "INSERT OR REPLACE INTO entries"
                " (kind, fingerprint, key, document, touched)"
                " VALUES (?, ?, ?, ?, ?)",
                (
                    (
                        kind,
                        fingerprint,
                        key,
                        _canonical(seal_document({"entry": list(entry)})),
                        int(touched.get(key, 0)),
                    )
                    for key, entry in sorted(entries.items())
                ),
            )
        return len(entries)

    def import_job_document(self, key: str, document: dict) -> None:
        """Carry one verified job envelope over from the JSON store."""
        with self._transaction() as connection:
            connection.execute(
                "INSERT OR REPLACE INTO jobs (key, document) VALUES (?, ?)",
                (key, _canonical(seal_document(dict(document)))),
            )

    def set_run_counter(self, counter: int) -> None:
        with self._transaction() as connection:
            connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("run_counter", str(max(0, int(counter)))),
            )

    # -- garbage collection ----------------------------------------------------

    def prune(self, min_age_runs: int) -> PruneReport:
        """Drop entries untouched for ``min_age_runs`` runs -- incrementally.

        One indexed range ``DELETE`` per kind over ``(kind, touched)``: the
        database never parses an entry document to age it, unlike the JSON
        backend's full scan of every shard.  Same aging semantics and the
        same :class:`~repro.batch.cache.PruneReport` shape as
        :meth:`BatchCache.prune` (``removed_files`` is always 0: there are
        no shard files to unlink).
        """
        if min_age_runs < 1:
            raise ValueError("min_age_runs must be at least 1")
        counter = self.run_counter()
        cutoff = counter - min_age_runs
        report = PruneReport(run_counter=counter, min_age_runs=min_age_runs)
        with self._transaction() as connection:
            for kind in _ENTRY_KINDS:
                cursor = connection.execute(
                    "DELETE FROM entries WHERE kind = ? AND touched <= ?",
                    (kind, cutoff),
                )
                report.pruned[kind] = cursor.rowcount
                report.kept[kind] = connection.execute(
                    "SELECT COUNT(*) FROM entries WHERE kind = ?", (kind,)
                ).fetchone()[0]
        return report

    # -- parity shims ----------------------------------------------------------

    def pending_intents(self) -> List[Tuple[Path, bool]]:
        """Always empty: merges are transactions, there is nothing to replay."""
        return []

    # -- doctor feed -----------------------------------------------------------

    def integrity_check(self) -> Optional[str]:
        """SQLite's own page-level check; ``None`` when clean."""
        try:
            row = self._connection.execute("PRAGMA integrity_check").fetchone()
        except sqlite3.Error as error:
            return f"{type(error).__name__}: {error}"
        verdict = row[0] if row else "no verdict"
        return None if verdict == "ok" else str(verdict)

    def store_version(self) -> Optional[int]:
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = 'store_version'"
        ).fetchone()
        if row is None:
            return None
        try:
            return int(row[0])
        except (TypeError, ValueError):
            return None

    def scan_rows(self, stale_runs: int) -> "SqliteScan":
        """Read-only full verification pass for ``repro doctor``.

        Unlike the cache's own reads this never quarantines -- the doctor
        only *names* damage -- mirroring how the file backend's doctor reads
        through :func:`verify_document` instead of the quarantining path.
        """
        scan = SqliteScan(run_counter=self.run_counter())
        for key, text in self._connection.execute("SELECT key, document FROM jobs"):
            scan.job_rows += 1
            status = _row_status(text)
            if status == "ok":
                continue
            if status == "legacy":
                scan.legacy_rows += 1
            elif status == "unknown-version":
                scan.unknown_version_rows += 1
            else:
                scan.damaged.append(("jobs", key, status))
        cursor = self._connection.execute(
            "SELECT kind, key, document, touched FROM entries"
        )
        for kind, key, text, touched in cursor:
            scan.entry_rows[kind] = scan.entry_rows.get(kind, 0) + 1
            if scan.run_counter - int(touched) >= stale_runs:
                scan.stale_entries += 1
            status = _row_status(text)
            if status == "ok":
                continue
            if status == "legacy":
                scan.legacy_rows += 1
            elif status == "unknown-version":
                scan.unknown_version_rows += 1
            else:
                scan.damaged.append((kind, key, status))
        return scan


@dataclass
class SqliteScan:
    """What one :meth:`SqliteStore.scan_rows` doctor pass found."""

    run_counter: int
    job_rows: int = 0
    entry_rows: Dict[str, int] = field(default_factory=dict)
    stale_entries: int = 0
    legacy_rows: int = 0
    unknown_version_rows: int = 0
    damaged: List[Tuple[str, str, str]] = field(default_factory=list)
    """``(origin, key, status)`` for rows failing envelope verification."""


def _row_status(text: str) -> str:
    try:
        document = json.loads(text)
    except ValueError:
        return "corrupt-json"
    status, _document = verify_payload(document)
    return status


def _canonical(document: dict) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


class _Transaction:
    """A short write transaction: our instance lock + ``BEGIN IMMEDIATE``.

    The instance lock serializes this store object's own threads; ``BEGIN
    IMMEDIATE`` takes the database write lock up front so a concurrent
    *process* waits (bounded by the busy timeout) instead of failing at
    commit time.
    """

    def __init__(self, connection: sqlite3.Connection, lock: threading.Lock) -> None:
        self._connection = connection
        self._lock = lock

    def __enter__(self) -> sqlite3.Connection:
        self._lock.acquire()
        try:
            self._connection.execute("BEGIN IMMEDIATE")
        except BaseException:
            self._lock.release()
            raise
        return self._connection

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None:
                self._connection.commit()
            else:
                self._connection.rollback()
        finally:
            self._lock.release()


# ---------------------------------------------------------------------------
# Migration: JSON shards -> SQLite, one shot.
# ---------------------------------------------------------------------------


@dataclass
class MigrationReport:
    """What ``repro store migrate`` carried over (and what it removed)."""

    directory: str
    jobs: int = 0
    entries: Dict[str, int] = field(default_factory=dict)
    run_counter: int = 0
    skipped_jobs: int = 0
    removed_files: int = 0
    kept_json: bool = False

    def summary(self) -> str:
        lines = [
            f"cache directory  : {self.directory}",
            f"backend          : sqlite ({DB_FILENAME})",
            f"job results      : {self.jobs} migrated"
            + (f", {self.skipped_jobs} skipped (damaged)" if self.skipped_jobs else ""),
        ]
        for kind in _ENTRY_KINDS:
            lines.append(f"{kind:<17s}: {self.entries.get(kind, 0)} entries migrated")
        lines.append(f"run counter      : {self.run_counter}")
        if self.kept_json:
            lines.append("json files       : kept (--keep-json); 'auto' now picks sqlite")
        else:
            lines.append(f"json files       : {self.removed_files} removed")
        return "\n".join(lines)


def migrate_store(
    directory: Union[str, Path], keep_json: bool = False
) -> MigrationReport:
    """Import a JSON-shard cache directory into the SQLite backend.

    Checksummed envelopes are carried over (legacy version-1 documents are
    re-sealed, exactly as a shard write would), GC touch stamps and the run
    counter survive, and every registry fingerprint's entries are kept.
    Orphaned merge intents are replayed first, so entries a crashed run was
    still carrying are migrated too.  Unless ``keep_json`` is set, the JSON
    layout (shards, job files, meta, locks) is removed afterwards, leaving a
    SQLite-only directory that ``open_store`` auto-detects; either way the
    migration is idempotent -- re-running it re-imports whatever JSON files
    remain and changes nothing else.
    """
    directory = Path(directory)
    source = BatchCache(directory)
    with source._directory_lock(exclusive=True):
        source._replay_orphaned_intents()
    target = SqliteStore(directory)
    report = MigrationReport(directory=str(directory))

    for kind in _ENTRY_KINDS:
        migrated = 0
        for fingerprint, entries, touched in source.export_entry_documents(kind):
            migrated += target.import_entries(kind, fingerprint, entries, touched)
        report.entries[kind] = migrated

    if source.jobs_directory.is_dir():
        for path in sorted(source.jobs_directory.glob("*.json")):
            status, document = verify_document(path)
            if status not in ("ok", "legacy") or not isinstance(
                document.get("result"), dict
            ):
                report.skipped_jobs += 1
                continue
            target.import_job_document(path.stem, {"result": document["result"]})
            report.jobs += 1

    report.run_counter = max(target.run_counter(), source.run_counter())
    target.set_run_counter(report.run_counter)

    if not keep_json:
        removed = 0
        patterns = ["measures-*.json", "sweeps-*.json", "frontiers-*.json",
                    "measures-*.lock", "sweeps-*.lock", "frontiers-*.lock",
                    "intent-*.json"]
        for pattern in patterns:
            for path in sorted(directory.glob(pattern)):
                path.unlink(missing_ok=True)
                removed += 1
        for path in (source.measures_path, source.meta_path,
                     directory / "measures.lock", directory / "meta.lock"):
            if path.exists():
                path.unlink(missing_ok=True)
                removed += 1
        if source.jobs_directory.is_dir():
            for path in sorted(source.jobs_directory.glob("*.json")):
                path.unlink(missing_ok=True)
                removed += 1
            try:
                source.jobs_directory.rmdir()
            except OSError:
                pass
        report.removed_files = removed
    else:
        report.kept_json = True
    return report
