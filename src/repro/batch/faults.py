"""Deterministic fault injection for the batch execution layer.

A :class:`FaultPlan` is a seeded, serializable list of faults that the batch
runner and the persistent store consult at well-defined hook points:

* ``worker-kill``     -- the worker process running job *N* dies outright
  (``os._exit``) before executing it, exactly as if the OOM killer or a
  segfault took it down mid-batch;
* ``hang``            -- the worker running job *N* sleeps for ``seconds``
  before executing it, tripping the runner's per-job wall-clock timeout;
* ``torn-write``      -- a store file whose name contains ``match`` is
  truncated to half its length right after being written, simulating a
  write that a crash (or a lying disk) tore mid-flight;
* ``bit-flip``        -- one seeded-random bit of a store file whose name
  contains ``match`` is inverted after the write, simulating silent media
  corruption that only a checksum can catch.

Every fault fires a bounded number of ``times`` (default once) and the
accounting lives in marker files under the plan's ``state_dir``, so the
fire-once guarantee holds *across processes*: a worker killed by the plan is
not re-killed when the supervisor retries its job, which is what lets the
fault-injection suite assert that an injected crash converges to the same
bytes as an uninjected run.

Activation is deliberately out-of-band so production code paths carry no
fault-plan plumbing: tests write the plan to disk with :meth:`FaultPlan.dump`
and point the ``REPRO_FAULTS`` environment variable at it (worker processes
inherit the environment under both ``fork`` and ``spawn``).  When the
variable is unset -- always, outside the fault suite -- every hook is a
cheap no-op.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

ENV_VAR = "REPRO_FAULTS"

FAULT_KINDS = ("worker-kill", "hang", "torn-write", "bit-flip")

_JOB_FAULTS = ("worker-kill", "hang")
_STORE_FAULTS = ("torn-write", "bit-flip")

_KILL_EXIT_CODE = 137
"""The exit status of a plan-killed worker (mirrors SIGKILL's 128+9)."""

__all__ = ["ENV_VAR", "FAULT_KINDS", "Fault", "FaultPlan", "active_plan"]


@dataclass(frozen=True)
class Fault:
    """One injected failure; which fields matter depends on ``kind``."""

    kind: str
    job_index: Optional[int] = None
    """For job faults: the submission index of the job to sabotage."""

    match: str = ""
    """For store faults: fire on files whose name contains this substring."""

    seconds: float = 3600.0
    """For ``hang``: how long the worker sleeps before running the job."""

    times: int = 1
    """How many firings before the fault disarms (across all processes)."""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.kind in _JOB_FAULTS and self.job_index is None:
            raise ValueError(f"{self.kind!r} faults need a job_index")
        if self.times < 1:
            raise ValueError("times must be at least 1")

    def as_dict(self) -> Dict[str, Union[str, int, float, None]]:
        return {
            "kind": self.kind,
            "job_index": self.job_index,
            "match": self.match,
            "seconds": self.seconds,
            "times": self.times,
        }

    @staticmethod
    def from_dict(data: dict) -> "Fault":
        return Fault(
            kind=data["kind"],
            job_index=data.get("job_index"),
            match=data.get("match", ""),
            seconds=float(data.get("seconds", 3600.0)),
            times=int(data.get("times", 1)),
        )


class FaultPlan:
    """A seeded, cross-process collection of injected faults."""

    def __init__(
        self,
        faults: List[Fault],
        state_dir: Union[str, Path],
        seed: int = 0,
    ) -> None:
        self.faults = list(faults)
        self.state_dir = Path(state_dir)
        self.seed = seed

    # -- (de)serialization -----------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "state_dir": str(self.state_dir),
            "faults": [fault.as_dict() for fault in self.faults],
        }

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        return FaultPlan(
            faults=[Fault.from_dict(entry) for entry in data.get("faults", [])],
            state_dir=data["state_dir"],
            seed=int(data.get("seed", 0)),
        )

    def dump(self, path: Union[str, Path]) -> Path:
        """Write the plan to ``path``; point ``REPRO_FAULTS`` at it to arm."""
        path = Path(path)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), sort_keys=True, indent=2))
        return path

    @staticmethod
    def load(path: Union[str, Path]) -> "FaultPlan":
        return FaultPlan.from_dict(json.loads(Path(path).read_text()))

    # -- fire-once accounting --------------------------------------------------

    def _claim(self, fault_id: int, times: int) -> bool:
        """Atomically claim one of the fault's firings (cross-process).

        Each firing is one ``O_CREAT | O_EXCL`` marker file: exactly one
        process can create it, so concurrent workers racing on the same
        fault never fire it more than ``times`` in total.
        """
        try:
            self.state_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False
        for firing in range(times):
            marker = self.state_dir / f"fired-{fault_id}-{firing}"
            try:
                handle = os.open(str(marker), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False
            os.close(handle)
            return True
        return False

    def fired_count(self, fault_id: int) -> int:
        """How many times fault ``fault_id`` has fired so far."""
        return sum(
            1
            for firing in range(self.faults[fault_id].times)
            if (self.state_dir / f"fired-{fault_id}-{firing}").exists()
        )

    # -- hook points -----------------------------------------------------------

    def on_job_start(self, job_index: int) -> None:
        """Called in a worker process right before it executes a job."""
        for fault_id, fault in enumerate(self.faults):
            if fault.kind not in _JOB_FAULTS or fault.job_index != job_index:
                continue
            if not self._claim(fault_id, fault.times):
                continue
            if fault.kind == "worker-kill":
                # Exactly what a SIGKILL'd worker looks like to the pool:
                # no exception, no cleanup, the process is simply gone.
                os._exit(_KILL_EXIT_CODE)
            time.sleep(fault.seconds)

    def on_store_write(self, path: Path) -> None:
        """Called by the store right after atomically writing ``path``."""
        for fault_id, fault in enumerate(self.faults):
            if fault.kind not in _STORE_FAULTS:
                continue
            if fault.match and fault.match not in path.name:
                continue
            if not self._claim(fault_id, fault.times):
                continue
            if fault.kind == "torn-write":
                _tear_file(path)
            else:
                _flip_bit(path, random.Random(self.seed * 1000003 + fault_id))


def _tear_file(path: Path) -> None:
    """Truncate ``path`` to half its length (a crash-torn write)."""
    try:
        size = path.stat().st_size
        with open(path, "r+b") as stream:
            stream.truncate(size // 2)
    except OSError:
        pass


def _flip_bit(path: Path, rng: random.Random) -> None:
    """Invert one seeded-random bit of ``path`` (silent media corruption)."""
    try:
        data = bytearray(path.read_bytes())
        if not data:
            return
        position = rng.randrange(len(data))
        data[position] ^= 1 << rng.randrange(8)
        path.write_bytes(bytes(data))
    except OSError:
        pass


# -- activation ----------------------------------------------------------------

_CACHED: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def active_plan() -> Optional[FaultPlan]:
    """The plan ``REPRO_FAULTS`` points at, or ``None`` (the common case).

    The parsed plan is cached per path, so arming a different plan (or
    unsetting the variable) between runs in one process takes effect
    immediately while the steady-state cost stays one ``environ`` lookup.
    """
    global _CACHED
    source = os.environ.get(ENV_VAR)
    if not source:
        return None
    cached_source, cached_plan = _CACHED
    if cached_source == source:
        return cached_plan
    try:
        plan = FaultPlan.load(source)
    except (OSError, ValueError, KeyError, TypeError):
        plan = None
    _CACHED = (source, plan)
    return plan
