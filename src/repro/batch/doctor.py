"""``python -m repro doctor``: explain the health of a batch cache directory.

The doctor is the operator-facing half of the fault-tolerance layer: the
store detects damage (checksums, quarantine, orphaned merge intents) at read
time, and the doctor reports all of it *without waiting for a read* -- plus
the slow-burn conditions no single read would notice: stale entries the GC
should collect, sweep frontiers bumping against the persistence cap, locks
held by live processes, a legacy store awaiting migration.

Everything here is strictly read-only.  The doctor never quarantines,
never replays an intent, never migrates -- it only *names* what the next
writing run would do (or what the operator should look at), so running it
concurrently with live batches is always safe.  That is why it reads
envelopes through :func:`repro.batch.cache.verify_document` (pure) rather
than through the cache's quarantining read path.

Exit-code contract (the CI ``fault-smoke`` job relies on it):

* ``0`` -- healthy: every envelope verifies, no quarantined files;
* ``1`` -- at least one *error*-level finding: a damaged file, a
  checksum mismatch, or a non-empty quarantine.

Warnings (orphaned intents, stale entries, a legacy store) do not fail the
exit code: they describe states the store repairs or tolerates on its own.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.batch.cache import (
    _SHARD_KINDS,
    BatchCache,
    CACHE_VERSION,
    verify_document,
)
from repro.geometry import engine as _engine_module
from repro.geometry.engine import MeasureEngine

__all__ = ["DoctorReport", "Finding", "check_trace", "diagnose"]

_LEVELS = ("info", "warning", "error")

_FRONTIER_CAP = _engine_module._MAX_PERSISTED_FRONTIER_BOXES
_FRONTIER_INDEX = 6  # a sweep entry's optional persisted-frontier blob
_FRONTIER_BOXES_INDEX = 5  # the box list inside that blob


@dataclass(frozen=True)
class Finding:
    """One observation about the store: a fact, a smell, or damage."""

    level: str  # "info" | "warning" | "error"
    code: str  # stable machine-readable slug, e.g. "checksum-mismatch"
    message: str
    path: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "level": self.level,
            "code": self.code,
            "message": self.message,
            "path": self.path,
        }


@dataclass
class DoctorReport:
    """Everything one diagnostic pass learned about a cache directory."""

    directory: str
    findings: List[Finding] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, level: str, code: str, message: str, path: Optional[Path] = None) -> None:
        assert level in _LEVELS
        self.findings.append(
            Finding(level, code, message, str(path) if path is not None else None)
        )

    @property
    def errors(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.level == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.level == "warning"]

    @property
    def healthy(self) -> bool:
        return not self.errors

    @property
    def exit_code(self) -> int:
        return 0 if self.healthy else 1

    def as_dict(self) -> dict:
        return {
            "directory": self.directory,
            "healthy": self.healthy,
            "counts": dict(self.counts),
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def summary(self) -> str:
        """The human-readable report printed by ``python -m repro doctor``."""
        lines = [f"cache directory  : {self.directory}"]
        for label, key in (
            ("run counter", "run_counter"),
            ("job results", "job_files"),
            ("measure shards", "measures_shards"),
            ("measure entries", "measures_entries"),
            ("sweep shards", "sweeps_shards"),
            ("sweep entries", "sweeps_entries"),
            ("frontier shards", "frontiers_shards"),
            ("frontier entries", "frontiers_entries"),
            ("stale entries", "stale_entries"),
            ("legacy envelopes", "legacy_documents"),
            ("persisted frontiers", "frontiers"),
            ("frontier boxes", "frontier_boxes"),
            ("frontiers at cap", "frontiers_at_cap"),
            ("merge intents", "intents"),
            ("quarantined files", "quarantined"),
            ("trace events", "trace_events"),
            ("trace open spans", "trace_open_spans"),
        ):
            if key in self.counts:
                lines.append(f"{label:<17s}: {self.counts[key]}")
        for finding in self.findings:
            if finding.level == "info":
                continue
            location = f" [{finding.path}]" if finding.path else ""
            lines.append(f"{finding.level.upper():<7s} {finding.code}: {finding.message}{location}")
        lines.append("status           : " + ("healthy" if self.healthy else "PROBLEMS FOUND"))
        return "\n".join(lines)


def _check_envelope(report: DoctorReport, path: Path, expect_kind: str) -> Optional[dict]:
    """Verify one store file; record damage as an error finding."""
    status, document = verify_document(path)
    if status == "ok":
        return document
    if status == "legacy":
        report.counts["legacy_documents"] = report.counts.get("legacy_documents", 0) + 1
        report.add(
            "info",
            "legacy-envelope",
            f"{expect_kind} file predates the checksummed envelope "
            f"(version 1 < {CACHE_VERSION}); it will be re-sealed on next write",
            path,
        )
        return document
    if status == "unknown-version":
        report.add(
            "warning",
            "unknown-version",
            f"{expect_kind} file has an unknown format version "
            f"(newer tool?); it reads as a miss",
            path,
        )
        return None
    report.add(
        "error",
        status,
        f"{expect_kind} file is damaged ({status}); the next cache read "
        "will quarantine it",
        path,
    )
    return None


def _shard_entries(document: Optional[dict]) -> Dict[str, list]:
    if document is None:
        return None  # type: ignore[return-value]
    entries = document.get("entries")
    return entries if isinstance(entries, dict) else {}


def diagnose(
    directory: Union[str, Path],
    stale_runs: int = 20,
    engine: Optional[MeasureEngine] = None,
) -> DoctorReport:
    """Run every read-only health check over one cache directory.

    Both store backends are discovered: a directory holding a
    ``store.sqlite3`` is diagnosed through the database (page integrity,
    per-row envelope verification, staleness, quarantine table); JSON
    artifacts are diagnosed whenever any are present -- so a migrated
    directory reports cleanly, and one migrated with ``--keep-json``
    reports on both halves.
    """
    from repro.batch.store_sqlite import sqlite_store_path

    directory = Path(directory)
    report = DoctorReport(directory=str(directory))
    if not directory.is_dir():
        report.add("error", "missing-directory", "cache directory does not exist")
        return report
    sqlite_path = sqlite_store_path(directory)
    if sqlite_path.exists():
        _diagnose_sqlite(report, directory, stale_runs)
        json_leftovers = (
            any(directory.glob("measures-*.json"))
            or any(directory.glob("sweeps-*.json"))
            or any(directory.glob("frontiers-*.json"))
            or (directory / "jobs").is_dir()
            or (directory / "meta.json").exists()
        )
        if not json_leftovers:
            return report
        report.add(
            "info",
            "dual-backend",
            "JSON store files coexist with store.sqlite3 (a --keep-json "
            "migration?); both are diagnosed, but only the database is read",
        )
    cache = BatchCache(directory)
    engine = engine or MeasureEngine()
    fingerprint = engine.registry_fingerprint()

    # The run counter (meta.json) -- the GC clock everything is aged against.
    run_counter = 0
    meta_document = None
    if cache.meta_path.exists():
        meta_document = _check_envelope(report, cache.meta_path, "meta")
    if meta_document is not None:
        counter = meta_document.get("run_counter")
        if isinstance(counter, int) and counter >= 0:
            run_counter = counter
        else:
            report.add(
                "error",
                "bad-run-counter",
                f"meta.json holds an invalid run counter ({counter!r})",
                cache.meta_path,
            )
    report.counts["run_counter"] = run_counter

    # Job result files.
    job_files = 0
    if cache.jobs_directory.is_dir():
        for path in sorted(cache.jobs_directory.glob("*.json")):
            job_files += 1
            document = _check_envelope(report, path, "job result")
            if document is None:
                continue
            record = document.get("result")
            if not isinstance(record, dict) or record.get("key") != path.stem:
                report.add(
                    "error",
                    "key-mismatch",
                    "job result file does not match the key it is stored under",
                    path,
                )
    report.counts["job_files"] = job_files

    # Measure, sweep and exploration-frontier shards: envelopes,
    # fingerprints, staleness, persisted sweep-frontier blobs.
    stale_total = 0
    for kind in _SHARD_KINDS:
        shard_count = 0
        entry_count = 0
        foreign_shards = 0
        for path in sorted(directory.glob(f"{kind}-*.json")):
            shard_count += 1
            document = _check_envelope(report, path, f"{kind} shard")
            if document is None:
                continue
            entries = _shard_entries(document)
            entry_count += len(entries)
            if document.get("fingerprint") != fingerprint:
                foreign_shards += 1
            touched = document.get("touched")
            touched = touched if isinstance(touched, dict) else {}
            stale = sum(
                1
                for key in entries
                if run_counter - touched.get(key, 0) >= stale_runs
            )
            stale_total += stale
            if kind == "sweeps":
                for entry in entries.values():
                    if not isinstance(entry, list) or len(entry) <= _FRONTIER_INDEX:
                        continue
                    blob = entry[_FRONTIER_INDEX]
                    if not isinstance(blob, list) or len(blob) <= _FRONTIER_BOXES_INDEX:
                        continue
                    boxes = blob[_FRONTIER_BOXES_INDEX]
                    if not isinstance(boxes, list):
                        continue
                    report.counts["frontiers"] = report.counts.get("frontiers", 0) + 1
                    report.counts["frontier_boxes"] = (
                        report.counts.get("frontier_boxes", 0) + len(boxes)
                    )
                    if len(boxes) >= _FRONTIER_CAP:
                        report.counts["frontiers_at_cap"] = (
                            report.counts.get("frontiers_at_cap", 0) + 1
                        )
        report.counts[f"{kind}_shards"] = shard_count
        report.counts[f"{kind}_entries"] = entry_count
        if foreign_shards:
            report.add(
                "warning",
                "foreign-fingerprint",
                f"{foreign_shards} {kind} shard(s) were written under a "
                "different primitive-registry fingerprint; their entries "
                "read as misses here",
            )
    report.counts["stale_entries"] = stale_total
    if stale_total:
        report.add(
            "info",
            "stale-entries",
            f"{stale_total} entries untouched for >= {stale_runs} runs; "
            f"`repro batch prune --keep-runs {stale_runs}` would drop them",
        )
    if report.counts.get("frontiers_at_cap"):
        report.add(
            "info",
            "frontier-cap",
            f"{report.counts['frontiers_at_cap']} persisted sweep frontier(s) "
            f"at the {_FRONTIER_CAP}-box persistence cap; deeper budgets "
            "re-sweep those blocks from scratch",
        )

    # The legacy single-file store, if one is still awaiting migration.
    if cache.measures_path.exists():
        document = _check_envelope(report, cache.measures_path, "legacy measures")
        if document is not None:
            entries = _shard_entries(document)
            report.add(
                "warning",
                "legacy-store",
                f"pre-shard measures.json holds {len(entries)} entries; the "
                "next writing merge migrates them into the shards",
                cache.measures_path,
            )

    # In-flight and orphaned merge intents (lock liveness probes).
    intents = cache.pending_intents()
    report.counts["intents"] = len(intents)
    for path, live in intents:
        if live:
            report.add(
                "info",
                "live-merge",
                "a merge currently holds this intent (another process is writing)",
                path,
            )
        else:
            report.add(
                "warning",
                "orphaned-intent",
                "a merge died mid-way; the next merge or prune replays this "
                "intent automatically",
                path,
            )

    # Quarantine: damage already caught.  Non-empty is an error by design --
    # an operator should look at (and then delete) what was set aside.
    quarantined = 0
    if cache.quarantine_directory.is_dir():
        for path in sorted(cache.quarantine_directory.iterdir()):
            if path.name.endswith(".reason"):
                continue
            quarantined += 1
            reason_path = path.with_name(path.name + ".reason")
            reason = "unknown"
            if reason_path.exists():
                try:
                    reason = reason_path.read_text().strip() or "unknown"
                except OSError:
                    pass
            report.add(
                "error",
                "quarantined",
                f"damaged store file was quarantined ({reason}); inspect and "
                "delete it to clear this error",
                path,
            )
    report.counts["quarantined"] = quarantined

    return report


def _diagnose_sqlite(
    report: DoctorReport, directory: Path, stale_runs: int
) -> None:
    """The database half of :func:`diagnose`: read-only, never quarantines."""
    import sqlite3

    from repro.batch.store_sqlite import STORE_SCHEMA_VERSION, SqliteStore

    db_path = directory / "store.sqlite3"
    try:
        store = SqliteStore(directory)
    except sqlite3.Error as error:
        report.add(
            "error",
            "unreadable-database",
            f"store.sqlite3 cannot be opened ({error})",
            db_path,
        )
        return
    verdict = store.integrity_check()
    if verdict is not None:
        report.add(
            "error",
            "integrity-check-failed",
            f"SQLite page integrity check failed: {verdict}",
            db_path,
        )
    version = store.store_version()
    if version != STORE_SCHEMA_VERSION:
        report.add(
            "warning",
            "unknown-store-version",
            f"database schema version {version!r} (this tool knows "
            f"{STORE_SCHEMA_VERSION})",
            db_path,
        )
    scan = store.scan_rows(stale_runs)
    report.counts["run_counter"] = scan.run_counter
    report.counts["job_files"] = scan.job_rows
    for kind in _SHARD_KINDS:
        report.counts[f"{kind}_entries"] = scan.entry_rows.get(kind, 0)
    report.counts["stale_entries"] = scan.stale_entries
    if scan.legacy_rows:
        report.counts["legacy_documents"] = scan.legacy_rows
        report.add(
            "info",
            "legacy-envelope",
            f"{scan.legacy_rows} row(s) predate the checksummed envelope; "
            "they will be re-sealed on next write",
            db_path,
        )
    if scan.unknown_version_rows:
        report.add(
            "warning",
            "unknown-version",
            f"{scan.unknown_version_rows} row(s) have an unknown envelope "
            "version (newer tool?); they read as misses",
            db_path,
        )
    for origin, key, status in scan.damaged:
        report.add(
            "error",
            status,
            f"{origin} row {key[:16]}... is damaged ({status}); the next "
            "store read will quarantine it",
            db_path,
        )
    if scan.stale_entries:
        report.add(
            "info",
            "stale-entries",
            f"{scan.stale_entries} entries untouched for >= {stale_runs} "
            f"runs; `repro batch prune --keep-runs {stale_runs}` would "
            "drop them",
        )
    quarantined = store.quarantine_rows()
    report.counts["quarantined"] = len(quarantined)
    for origin, key, reason in quarantined:
        report.add(
            "error",
            "quarantined",
            f"damaged {origin} row {key[:16]}... was quarantined ({reason}); "
            "inspect and clear the quarantine table to clear this error",
            db_path,
        )


def check_trace(report: DoctorReport, path: Union[str, Path]) -> None:
    """Read-only health checks over one telemetry trace file (``--trace``).

    Severity follows the writer's durability contract: a *torn final line*
    is exactly what a killed process legitimately leaves behind, so it is a
    warning (reported, never failed), as are unbalanced spans (a worker kill
    interrupts whatever span was open).  Corrupt lines anywhere *else*, an
    unknown schema version, or schema-invalid events mean the file was
    damaged after writing -- errors.
    """
    from repro.telemetry.analyze import read_trace
    from repro.telemetry.events import SCHEMA_VERSION

    path = Path(path)
    try:
        accumulator = read_trace(path)
    except OSError:
        report.add("error", "missing-trace", "trace file cannot be read", path)
        return
    report.counts["trace_events"] = accumulator.events
    report.counts["trace_open_spans"] = len(accumulator.open_spans)
    unknown = sorted(
        version
        for version in accumulator.schema_versions
        if version != SCHEMA_VERSION
    )
    if unknown:
        report.add(
            "error",
            "unknown-trace-schema",
            f"trace holds schema version(s) {unknown}; this reader knows "
            f"only version {SCHEMA_VERSION}",
            path,
        )
    if accumulator.invalid_events:
        report.add(
            "error",
            "invalid-trace-event",
            f"{len(accumulator.invalid_events)} schema-invalid event(s); "
            f"first: {accumulator.invalid_events[0]}",
            path,
        )
    if accumulator.corrupt_lines:
        report.add(
            "error",
            "corrupt-trace-line",
            f"{accumulator.corrupt_lines} unparseable non-final line(s); "
            "the file was damaged after writing",
            path,
        )
    if accumulator.torn_tail:
        report.add(
            "warning",
            "torn-trace-tail",
            "the final line is torn (a process died mid-write); every "
            "trace reader tolerates this by design",
            path,
        )
    if accumulator.open_spans or accumulator.unmatched_span_ends:
        report.add(
            "warning",
            "unbalanced-spans",
            f"{len(accumulator.open_spans)} span(s) never closed, "
            f"{accumulator.unmatched_span_ends} span-end(s) without a start "
            "(expected after worker kills)",
            path,
        )
    if not accumulator.ended:
        report.add(
            "warning",
            "no-trace-end",
            "no orderly trace-end from the root process (the run is still "
            "going, or it died)",
            path,
        )


def write_report_json(report: DoctorReport, path: Union[str, Path]) -> None:
    """Write the machine-readable report (``--json``)."""
    Path(path).write_text(json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n")
