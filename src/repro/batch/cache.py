"""The persistent cross-process cache behind ``python -m repro batch``.

Layout (everything lives under one ``--cache-dir``)::

    <cache-dir>/
      jobs/<sha256-key>.json    one finished JobResult per file
      measures-<prefix>.json    one shard of serialized MeasureEngine entries
      sweeps-<prefix>.json      one shard of serialized per-block SweepResults
      meta.json                 the monotone run counter driving the GC
      measures.json             legacy single-file store (read, then migrated)

Every kind of file is versioned JSON.  Reads are *strictly best-effort*: a
missing, corrupted, truncated, or version-mismatched file is treated as a
cache miss and silently discarded -- a damaged cache must never take an
analysis down, it can only cost recomputation.  Writes go through a
temp-file + :func:`os.replace` so a killed run never leaves a torn file
behind, and job results live in one file per key so concurrent batches
sharing a directory do not contend on a single growing file.

Measure entries are keyed by the deterministic canonical constraint-set key
of :meth:`repro.geometry.engine.MeasureEngine.persistent_key` (since the
block decomposition these are mostly per-*block* keys, shared across
programs); sweep entries by
:meth:`~repro.geometry.engine.MeasureEngine.persistent_sweep_key`, which
carries the sweep budget.  Both are tagged with the engine's registry
fingerprint: a cache written under different primitive semantics is ignored
wholesale.  Entries are sharded across ``<kind>-<prefix>.json`` files by the
first two hex digits of the SHA-256 of their key, so two batches merging
different blocks rewrite different small files instead of contending on (and
re-serializing) one growing file.  Merging takes a shared directory-wide
lock plus an exclusive per-shard lock; a legacy single-file ``measures.json``
written by an older version is still read transparently and is folded into
the shards (then removed) on the first merge that writes.

The store would otherwise only ever grow, so every shard document also
records per-entry *touch stamps*: the value of the monotone run counter
(``meta.json``, bumped once per batch run that performs work) when the entry
was last written *or* last served as a persistent hit.  :meth:`BatchCache.prune`
drops entries whose stamp is at least ``min_age_runs`` runs old -- the CLI's
``python -m repro batch prune --cache-dir ... --keep-runs N``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Union

from repro.batch.jobs import JobResult
from repro.geometry.engine import MeasureEngine

CACHE_VERSION = 1

_SHARD_PREFIX_LENGTH = 2
"""Hex digits of the key hash used as the shard name (256 shards)."""

_SHARD_KINDS = ("measures", "sweeps")
"""The sharded entry stores (measure results and per-block sweep results)."""

__all__ = ["BatchCache", "CACHE_VERSION", "PruneReport", "shard_prefix"]


def shard_prefix(key: str) -> str:
    """The shard a store entry key belongs to (first hash hex digits)."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:_SHARD_PREFIX_LENGTH]


def _atomic_write_json(path: Path, document: dict) -> None:
    """Write ``document`` to ``path`` without ever exposing a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(document, stream, sort_keys=True, separators=(",", ":"))
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def _read_versioned_json(path: Path) -> Optional[dict]:
    """Read a versioned JSON document; anything suspect reads as ``None``."""
    try:
        with open(path, "r") as stream:
            document = json.load(stream)
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict) or document.get("version") != CACHE_VERSION:
        return None
    return document


def _document_entries(document: Optional[dict], fingerprint: str) -> Dict[str, List]:
    """The store entries of one shard document matching ``fingerprint``."""
    if document is None or document.get("fingerprint") != fingerprint:
        return {}
    entries = document.get("entries")
    return entries if isinstance(entries, dict) else {}


def _document_touched(document: Optional[dict]) -> Dict[str, int]:
    """The touch stamps of one shard document (missing/malformed = empty)."""
    if document is None:
        return {}
    touched = document.get("touched")
    if not isinstance(touched, dict):
        return {}
    return {
        key: stamp
        for key, stamp in touched.items()
        if isinstance(key, str) and isinstance(stamp, int)
    }


@dataclass
class PruneReport:
    """What one :meth:`BatchCache.prune` pass removed (and kept)."""

    run_counter: int
    min_age_runs: int
    pruned: Dict[str, int] = field(default_factory=dict)
    kept: Dict[str, int] = field(default_factory=dict)
    removed_files: int = 0

    @property
    def pruned_total(self) -> int:
        return sum(self.pruned.values())

    @property
    def kept_total(self) -> int:
        return sum(self.kept.values())

    def summary(self) -> str:
        lines = [
            f"run counter      : {self.run_counter}",
            f"stale after      : {self.min_age_runs} runs untouched",
        ]
        for kind in _SHARD_KINDS:
            lines.append(
                f"{kind:<17s}: pruned {self.pruned.get(kind, 0)}, "
                f"kept {self.kept.get(kind, 0)}"
            )
        lines.append(f"shards removed   : {self.removed_files}")
        return "\n".join(lines)


class BatchCache:
    """A persistent store of job results, measure entries and sweep entries."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.jobs_directory = self.directory / "jobs"
        self.measures_path = self.directory / "measures.json"
        self.meta_path = self.directory / "meta.json"
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- job results ---------------------------------------------------------

    def _job_path(self, key: str) -> Path:
        return self.jobs_directory / f"{key}.json"

    def load_job(self, key: str) -> Optional[JobResult]:
        """The cached result for ``key``, or ``None`` (incl. damaged files)."""
        document = _read_versioned_json(self._job_path(key))
        if document is None:
            return None
        record = document.get("result")
        try:
            result = JobResult.from_cache_dict(record)
        except (TypeError, KeyError, ValueError):
            return None
        if result.key != key or not result.ok:
            return None
        return result

    def store_job(self, result: JobResult) -> None:
        """Persist a finished job.  Error results are not cached: they are
        recomputed on the next run in case the failure was environmental."""
        if not result.ok:
            return
        _atomic_write_json(
            self._job_path(result.key),
            {"version": CACHE_VERSION, "result": result.to_cache_dict()},
        )

    def job_count(self) -> int:
        if not self.jobs_directory.is_dir():
            return 0
        return sum(1 for entry in self.jobs_directory.glob("*.json"))

    # -- the run counter -------------------------------------------------------

    def run_counter(self) -> int:
        """The number of batch runs that have written to this store."""
        document = _read_versioned_json(self.meta_path)
        if document is None:
            return 0
        counter = document.get("run_counter")
        return counter if isinstance(counter, int) and counter >= 0 else 0

    def begin_run(self) -> int:
        """Bump and return the run counter (one tick per working batch run).

        The counter is the GC clock: entries written or hit during run ``N``
        are stamped ``N`` and survive a later ``prune(min_age_runs=K)`` as
        long as the counter has not advanced past ``N + K - 1``.
        """
        with self._lock(self.directory / "meta.lock"):
            counter = self.run_counter() + 1
            _atomic_write_json(
                self.meta_path, {"version": CACHE_VERSION, "run_counter": counter}
            )
            return counter

    # -- measure- and sweep-engine entries -------------------------------------

    def shard_path(self, prefix: str, kind: str = "measures") -> Path:
        return self.directory / f"{kind}-{prefix}.json"

    def _shard_paths(self, kind: str = "measures") -> List[Path]:
        return sorted(self.directory.glob(f"{kind}-*.json"))

    def load_measures(self, engine: MeasureEngine) -> Dict[str, List]:
        """The stored measure entries compatible with ``engine``.

        All shard files are merged with the legacy single-file store (if one
        still exists).  Entries recorded under a different primitive-registry
        fingerprint -- and corrupt or version-mismatched shards -- read as
        misses, never as errors.
        """
        fingerprint = engine.registry_fingerprint()
        entries: Dict[str, List] = dict(
            _document_entries(_read_versioned_json(self.measures_path), fingerprint)
        )
        for path in self._shard_paths("measures"):
            entries.update(_document_entries(_read_versioned_json(path), fingerprint))
        return entries

    def load_sweeps(self, engine: MeasureEngine) -> Dict[str, List]:
        """The stored per-block sweep entries compatible with ``engine``."""
        fingerprint = engine.registry_fingerprint()
        entries: Dict[str, List] = {}
        for path in self._shard_paths("sweeps"):
            entries.update(_document_entries(_read_versioned_json(path), fingerprint))
        return entries

    def measure_entry_count(self, engine: MeasureEngine) -> int:
        """How many compatible measure entries the store currently holds."""
        return len(self.load_measures(engine))

    def sweep_entry_count(self, engine: MeasureEngine) -> int:
        """How many compatible sweep entries the store currently holds."""
        return len(self.load_sweeps(engine))

    def merge_measures(
        self,
        engine: MeasureEngine,
        new_entries: Mapping[str, List],
        run: Optional[int] = None,
        touched_keys: Iterable[str] = (),
    ) -> int:
        """Fold ``new_entries`` into the on-disk measure store.

        Entries land in their key's shard file.  The merge holds the
        directory lock *shared* (so a migration cannot run mid-merge) and
        each affected shard's lock *exclusive* during its read-modify-write
        cycle -- two batches merging disjoint shards into one cache directory
        proceed in parallel, and merges into the same shard cannot silently
        drop each other's entries.  A legacy ``measures.json`` is migrated
        into the shards (under the exclusive directory lock) the first time a
        merge writes.

        ``run`` (default: the current run counter) stamps the written
        entries for the GC; ``touched_keys`` are existing entries this run
        answered from the store, whose stamps are refreshed in place.

        Returns the number of entries written by this merge (new entries
        plus any migrated legacy entries) -- deliberately *not* the total
        store size, which would cost a full read of every shard for a number
        no caller needs.
        """
        migrated = 0
        if new_entries and self.measures_path.exists():
            migrated = self._migrate_legacy_measures(engine.registry_fingerprint())
        written = self._merge_kind("measures", engine, new_entries, run, touched_keys)
        return written + migrated

    def merge_sweeps(
        self,
        engine: MeasureEngine,
        new_entries: Mapping[str, List],
        run: Optional[int] = None,
        touched_keys: Iterable[str] = (),
    ) -> int:
        """Fold per-block sweep entries into the on-disk sweep store.

        Same sharding, locking and touch-stamp semantics as
        :meth:`merge_measures` (there is no legacy single-file sweep store).
        """
        return self._merge_kind("sweeps", engine, new_entries, run, touched_keys)

    def _merge_kind(
        self,
        kind: str,
        engine: MeasureEngine,
        new_entries: Mapping[str, List],
        run: Optional[int],
        touched_keys: Iterable[str],
    ) -> int:
        touched_keys = set(touched_keys)
        if not new_entries and not touched_keys:
            return 0
        fingerprint = engine.registry_fingerprint()
        if run is None:
            run = self.run_counter()
        by_shard: Dict[str, Dict[str, List]] = {}
        for key, entry in new_entries.items():
            by_shard.setdefault(shard_prefix(key), {})[key] = entry
        touched_by_shard: Dict[str, set] = {}
        for key in touched_keys:
            touched_by_shard.setdefault(shard_prefix(key), set()).add(key)
        with self._directory_lock(exclusive=False):
            for prefix in sorted(set(by_shard) | set(touched_by_shard)):
                self._merge_shard(
                    kind,
                    prefix,
                    fingerprint,
                    by_shard.get(prefix, {}),
                    run,
                    touched_by_shard.get(prefix, set()),
                )
        return len(new_entries)

    def _merge_shard(
        self,
        kind: str,
        prefix: str,
        fingerprint: str,
        shard_entries: Dict[str, List],
        run: int,
        touched_keys: set,
    ) -> None:
        path = self.shard_path(prefix, kind)
        with self._lock(path.with_suffix(".lock")):
            document = _read_versioned_json(path)
            entries = _document_entries(document, fingerprint)
            touched = _document_touched(document)
            entries.update(shard_entries)
            for key in shard_entries:
                touched[key] = run
            for key in touched_keys:
                if key in entries:
                    touched[key] = run
            # Stamps for keys no longer present carry no information.
            touched = {key: stamp for key, stamp in touched.items() if key in entries}
            if not entries:
                # A pure-touch merge with nothing to stamp (the shard never
                # existed, or holds another fingerprint's entries): writing
                # would only create -- or clobber -- an empty document.
                return
            _atomic_write_json(
                path,
                {
                    "version": CACHE_VERSION,
                    "fingerprint": fingerprint,
                    "entries": entries,
                    "touched": touched,
                },
            )

    def _migrate_legacy_measures(self, fingerprint: str) -> int:
        """Fold a pre-shard ``measures.json`` into the shard files.

        Runs under the *exclusive* directory lock, which no concurrent merge
        can hold even partially, so the legacy file cannot vanish while
        another process is still counting on reading it.  The legacy entries
        are written to their shards *before* the legacy file is unlinked: a
        crash mid-migration at worst leaves both representations behind
        (harmless -- shard entries win on load and the next merge retries the
        unlink), never neither.  Entries recorded under a different
        fingerprint would be unusable and are dropped, the same policy
        ``merge_measures`` has always applied to the single file.  Returns
        the number of migrated entries.
        """
        with self._directory_lock(exclusive=True):
            if not self.measures_path.exists():
                return 0  # someone else migrated in the meantime
            legacy = _document_entries(
                _read_versioned_json(self.measures_path), fingerprint
            )
            run = self.run_counter()
            by_shard: Dict[str, Dict[str, List]] = {}
            for key, entry in legacy.items():
                by_shard.setdefault(shard_prefix(key), {})[key] = entry
            for prefix, shard_entries in sorted(by_shard.items()):
                self._merge_shard("measures", prefix, fingerprint, shard_entries, run, set())
            try:
                self.measures_path.unlink()
            except OSError:
                pass
            return len(legacy)

    # -- garbage collection ----------------------------------------------------

    def prune(self, min_age_runs: int) -> PruneReport:
        """Drop measure/sweep entries untouched for ``min_age_runs`` runs.

        An entry is stale when the run counter has advanced by at least
        ``min_age_runs`` since the entry was last written or last served as
        a persistent hit (entries with no stamp -- e.g. migrated legacy
        ones -- count as stamped at run 0).  Shards left empty are removed
        outright.  Job results are content-addressed by program text and
        parameters and are not aged here.

        The whole pass holds the exclusive directory lock: a prune never
        races a merge into losing freshly written entries.
        """
        if min_age_runs < 1:
            raise ValueError("min_age_runs must be at least 1")
        counter = self.run_counter()
        cutoff = counter - min_age_runs
        report = PruneReport(run_counter=counter, min_age_runs=min_age_runs)
        with self._directory_lock(exclusive=True):
            for kind in _SHARD_KINDS:
                pruned = kept = 0
                for path in self._shard_paths(kind):
                    with self._lock(path.with_suffix(".lock")):
                        document = _read_versioned_json(path)
                        if document is None:
                            continue  # corrupt shards are misses, not errors
                        entries = document.get("entries")
                        if not isinstance(entries, dict):
                            continue
                        touched = _document_touched(document)
                        survivors = {
                            key: entry
                            for key, entry in entries.items()
                            if touched.get(key, 0) > cutoff
                        }
                        pruned += len(entries) - len(survivors)
                        kept += len(survivors)
                        if not survivors:
                            try:
                                path.unlink()
                                path.with_suffix(".lock").unlink()
                            except OSError:
                                pass
                            report.removed_files += 1
                            continue
                        if len(survivors) != len(entries):
                            document["entries"] = survivors
                            document["touched"] = {
                                key: stamp
                                for key, stamp in touched.items()
                                if key in survivors
                            }
                            _atomic_write_json(path, document)
                report.pruned[kind] = pruned
                report.kept[kind] = kept
        return report

    # -- locking ---------------------------------------------------------------

    @contextmanager
    def _lock(self, path: Path, exclusive: bool = True):
        """An advisory :mod:`fcntl` file lock (no-op where fcntl is missing:
        the atomic per-file writes still prevent torn reads on their own)."""
        try:
            import fcntl
        except ImportError:  # non-POSIX: fall back to the atomic writes alone
            yield
            return
        with open(path, "w") as lock_file:
            fcntl.flock(
                lock_file.fileno(), fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH
            )
            try:
                yield
            finally:
                fcntl.flock(lock_file.fileno(), fcntl.LOCK_UN)

    def _directory_lock(self, exclusive: bool):
        """The store-wide lock: shared for shard merges, exclusive for the
        legacy-file migration and the GC."""
        return self._lock(self.directory / "measures.lock", exclusive=exclusive)
