"""The persistent cross-process cache behind ``python -m repro batch``.

Layout (everything lives under one ``--cache-dir``)::

    <cache-dir>/
      jobs/<sha256-key>.json    one finished JobResult per file
      measures-<prefix>.json    one shard of serialized MeasureEngine entries
      sweeps-<prefix>.json      one shard of serialized per-block SweepResults
      meta.json                 the monotone run counter driving the GC
      intent-<kind>-*.json      write-ahead intents of in-flight merges
      quarantine/               damaged files set aside for inspection
      measures.json             legacy single-file store (read, then migrated)

Every kind of file is a versioned JSON *envelope*: the document carries a
format version plus a ``sha256`` checksum over its canonical payload, so a
bit-flipped or crash-torn file is *detected*, not misread.  Reads are still
non-fatal -- a damaged cache must never take an analysis down, it can only
cost recomputation -- but damage is never silent either: a file that fails
to parse or to verify is moved into ``<cache-dir>/quarantine/`` (with a
``.reason`` sidecar naming what was wrong), counted, and reported by
``python -m repro doctor``.  Documents written by the pre-checksum layout
(version 1) are still read transparently and are re-sealed under the
current envelope the next time their file is written.

Writes go through a temp-file + :func:`os.replace` so a killed run never
leaves a torn file behind, and job results live in one file per key so
concurrent batches sharing a directory do not contend on a single growing
file.  Multi-shard merges (:meth:`BatchCache.merge_measures` /
:meth:`BatchCache.merge_sweeps`) additionally write a *write-ahead intent
file* first: the full set of entries about to be folded in, flushed to disk
and held under an exclusive :mod:`fcntl` lock for the duration of the
merge.  A process killed mid-merge therefore loses nothing -- the next
merge (or prune) finds the orphaned intent, detects that its writer is dead
because the lock is free, and replays the remaining entries into their
shards before proceeding.  Shard writes themselves stay atomic, so every
individual file is consistent at every instant.

Measure entries are keyed by the deterministic canonical constraint-set key
of :meth:`repro.geometry.engine.MeasureEngine.persistent_key` (since the
block decomposition these are mostly per-*block* keys, shared across
programs); sweep entries by
:meth:`~repro.geometry.engine.MeasureEngine.persistent_sweep_key`, which
carries the sweep budget.  Both are tagged with the engine's registry
fingerprint: a cache written under different primitive semantics is ignored
wholesale.  Entries are sharded across ``<kind>-<prefix>.json`` files by the
first two hex digits of the SHA-256 of their key, so two batches merging
different blocks rewrite different small files instead of contending on (and
re-serializing) one growing file.  Merging takes a shared directory-wide
lock plus an exclusive per-shard lock; a legacy single-file ``measures.json``
written by an older version is still read transparently and is folded into
the shards (then removed) on the first merge that writes.

The store would otherwise only ever grow, so every shard document also
records per-entry *touch stamps*: the value of the monotone run counter
(``meta.json``, bumped once per batch run that performs work) when the entry
was last written *or* last served as a persistent hit.  :meth:`BatchCache.prune`
drops entries whose stamp is at least ``min_age_runs`` runs old -- the CLI's
``python -m repro batch prune --cache-dir ... --keep-runs N``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

import repro.telemetry as telemetry
from repro.batch.faults import active_plan
from repro.batch.jobs import JobResult
from repro.geometry.engine import MeasureEngine

CACHE_VERSION = 2
"""The checksummed-envelope store format (PR 6)."""

_LEGACY_CACHE_VERSION = 1
"""The pre-checksum format (PRs 2-5): still readable, re-sealed on write."""

_SHARD_PREFIX_LENGTH = 2
"""Hex digits of the key hash used as the shard name (256 shards)."""

_SHARD_KINDS = ("measures", "sweeps", "frontiers")
"""The sharded entry stores (measure results and per-block sweep results)."""

_LOGGER = logging.getLogger("repro.batch")

_INTENT_SEQUENCE = itertools.count(1)
"""Process-wide intent-file sequence: with the pid it makes names unique
across every cache instance and thread of one process."""

__all__ = [
    "BatchCache",
    "CACHE_VERSION",
    "PruneReport",
    "seal_document",
    "shard_prefix",
    "verify_document",
    "verify_payload",
]


def shard_prefix(key: str) -> str:
    """The shard a store entry key belongs to (first hash hex digits)."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:_SHARD_PREFIX_LENGTH]


def _canonical_json(document: dict) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _document_checksum(document: dict) -> str:
    """SHA-256 over the canonical JSON of everything except ``sha256``."""
    payload = {key: value for key, value in document.items() if key != "sha256"}
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


def _seal_document(document: dict) -> dict:
    """Stamp ``document`` with the current version and its payload checksum."""
    sealed = dict(document)
    sealed["version"] = CACHE_VERSION
    sealed.pop("sha256", None)
    sealed["sha256"] = _document_checksum(sealed)
    return sealed


def seal_document(document: dict) -> dict:
    """Public alias of the envelope sealer, shared with the SQLite backend.

    Both store backends persist the *same* checksummed envelope -- a version
    field plus a SHA-256 over the canonical payload -- whether the envelope
    lives in a file (:class:`BatchCache`) or in a table row
    (:class:`repro.batch.store_sqlite.SqliteStore`), which is what makes
    ``repro store migrate`` a carry-over rather than a re-encode.
    """
    return _seal_document(document)


def verify_payload(document) -> Tuple[str, Optional[dict]]:
    """Verify one already-parsed store envelope, without side effects.

    The object-level half of :func:`verify_document`: the same statuses,
    minus the file-system ones (``"missing"``/``"corrupt-json"`` become the
    caller's concern).  The SQLite backend verifies its rows through this.
    """
    if not isinstance(document, dict):
        return "not-object", None
    version = document.get("version")
    if version == _LEGACY_CACHE_VERSION:
        return "legacy", document
    if version != CACHE_VERSION:
        return "unknown-version", None
    recorded = document.get("sha256")
    if not isinstance(recorded, str):
        return "missing-checksum", None
    if recorded != _document_checksum(document):
        return "checksum-mismatch", None
    return "ok", document


def verify_document(path: Path) -> Tuple[str, Optional[dict]]:
    """Read and verify one store envelope, without side effects.

    Returns ``(status, document)`` where ``status`` is one of ``"ok"``
    (current version, checksum verified), ``"legacy"`` (version-1 document,
    no checksum to verify), ``"missing"`` (no file), ``"unknown-version"``
    (left in place: a newer tool may own it), or one of the *damaged*
    statuses ``"corrupt-json"``, ``"not-object"``, ``"missing-checksum"``
    and ``"checksum-mismatch"``; the document is ``None`` unless readable.
    The ``doctor`` command reports on these statuses; the cache's own read
    path quarantines the damaged ones.
    """
    try:
        raw = path.read_text()
    except OSError:
        return "missing", None
    try:
        document = json.loads(raw)
    except ValueError:
        return "corrupt-json", None
    return verify_payload(document)


_DAMAGED_STATUSES = frozenset(
    {"corrupt-json", "not-object", "missing-checksum", "checksum-mismatch"}
)


def _atomic_write_json(path: Path, document: dict) -> None:
    """Write ``document`` to ``path`` without ever exposing a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(document, stream, sort_keys=True, separators=(",", ":"))
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    plan = active_plan()
    if plan is not None:  # fault injection: tear or bit-flip the fresh file
        plan.on_store_write(path)


def _document_entries(document: Optional[dict], fingerprint: str) -> Dict[str, List]:
    """The store entries of one shard document matching ``fingerprint``."""
    if document is None or document.get("fingerprint") != fingerprint:
        return {}
    entries = document.get("entries")
    return entries if isinstance(entries, dict) else {}


def _document_touched(document: Optional[dict]) -> Dict[str, int]:
    """The touch stamps of one shard document (missing/malformed = empty)."""
    if document is None:
        return {}
    touched = document.get("touched")
    if not isinstance(touched, dict):
        return {}
    return {
        key: stamp
        for key, stamp in touched.items()
        if isinstance(key, str) and isinstance(stamp, int)
    }


@dataclass
class PruneReport:
    """What one :meth:`BatchCache.prune` pass removed (and kept)."""

    run_counter: int
    min_age_runs: int
    pruned: Dict[str, int] = field(default_factory=dict)
    kept: Dict[str, int] = field(default_factory=dict)
    removed_files: int = 0

    @property
    def pruned_total(self) -> int:
        return sum(self.pruned.values())

    @property
    def kept_total(self) -> int:
        return sum(self.kept.values())

    def summary(self) -> str:
        lines = [
            f"run counter      : {self.run_counter}",
            f"stale after      : {self.min_age_runs} runs untouched",
        ]
        for kind in _SHARD_KINDS:
            lines.append(
                f"{kind:<17s}: pruned {self.pruned.get(kind, 0)}, "
                f"kept {self.kept.get(kind, 0)}"
            )
        lines.append(f"shards removed   : {self.removed_files}")
        return "\n".join(lines)


class BatchCache:
    """A persistent store of job results, measure, sweep and frontier entries."""

    backend_name = "json"
    """How ``open_store(..., backend=...)`` names this layout (workers of a
    distributed deepening reopen the supervisor's store by this name)."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.jobs_directory = self.directory / "jobs"
        self.measures_path = self.directory / "measures.json"
        self.meta_path = self.directory / "meta.json"
        self.quarantine_directory = self.directory / "quarantine"
        self.quarantined: List[Tuple[Path, str]] = []
        """``(quarantined path, reason)`` for every file this instance moved."""

        self.directory.mkdir(parents=True, exist_ok=True)

    @property
    def quarantine_count(self) -> int:
        """How many damaged files this instance has quarantined."""
        return len(self.quarantined)

    # -- damage handling -------------------------------------------------------

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a damaged store file aside -- never delete, never skip silently.

        The file lands in ``quarantine/`` under its own name (a numeric
        suffix on collision) next to a ``.reason`` sidecar, so an operator
        -- or ``repro doctor`` -- can see what was refused and why.  A store
        that cannot be written (read-only mount) still reads as a miss.
        """
        try:
            self.quarantine_directory.mkdir(parents=True, exist_ok=True)
            destination = self.quarantine_directory / path.name
            suffix = 0
            while destination.exists():
                suffix += 1
                destination = self.quarantine_directory / f"{path.name}.{suffix}"
            os.replace(path, destination)
            destination.with_name(destination.name + ".reason").write_text(
                reason + "\n"
            )
        except OSError:
            return
        self.quarantined.append((destination, reason))
        telemetry.emit("quarantine", path=destination.name, reason=reason)
        _LOGGER.warning(
            "quarantined damaged store file %s (%s)", path.name, reason
        )

    def _read_document(self, path: Path) -> Optional[dict]:
        """Read one store envelope; damaged files are quarantined.

        Missing files and unknown (future) versions read as plain misses;
        legacy version-1 documents are readable as-is.  Anything damaged --
        torn JSON, a missing or mismatched checksum -- is moved to
        ``quarantine/`` so it is visible to operators instead of silently
        costing recomputation forever.
        """
        status, document = verify_document(path)
        if status in _DAMAGED_STATUSES:
            self._quarantine(path, status)
            return None
        return document

    # -- job results ---------------------------------------------------------

    def _job_path(self, key: str) -> Path:
        return self.jobs_directory / f"{key}.json"

    def load_job(self, key: str) -> Optional[JobResult]:
        """The cached result for ``key``, or ``None`` (incl. damaged files)."""
        document = self._read_document(self._job_path(key))
        if document is None:
            return None
        record = document.get("result")
        try:
            result = JobResult.from_cache_dict(record)
        except (TypeError, KeyError, ValueError):
            return None
        if result.key != key or not result.ok:
            return None
        return result

    def store_job(self, result: JobResult) -> None:
        """Persist a finished job.  Error results are not cached: they are
        recomputed on the next run in case the failure was environmental."""
        if not result.ok:
            return
        _atomic_write_json(
            self._job_path(result.key),
            _seal_document({"result": result.to_cache_dict()}),
        )

    def job_count(self) -> int:
        if not self.jobs_directory.is_dir():
            return 0
        return sum(1 for entry in self.jobs_directory.glob("*.json"))

    # -- the run counter -------------------------------------------------------

    def run_counter(self) -> int:
        """The number of batch runs that have written to this store."""
        document = self._read_document(self.meta_path)
        if document is None:
            return 0
        counter = document.get("run_counter")
        return counter if isinstance(counter, int) and counter >= 0 else 0

    def begin_run(self) -> int:
        """Bump and return the run counter (one tick per working batch run).

        The counter is the GC clock: entries written or hit during run ``N``
        are stamped ``N`` and survive a later ``prune(min_age_runs=K)`` as
        long as the counter has not advanced past ``N + K - 1``.
        """
        with self._lock(self.directory / "meta.lock"):
            counter = self.run_counter() + 1
            _atomic_write_json(
                self.meta_path, _seal_document({"run_counter": counter})
            )
            return counter

    # -- measure- and sweep-engine entries -------------------------------------

    def shard_path(self, prefix: str, kind: str = "measures") -> Path:
        return self.directory / f"{kind}-{prefix}.json"

    def _shard_paths(self, kind: str = "measures") -> List[Path]:
        return sorted(self.directory.glob(f"{kind}-*.json"))

    def load_measures(self, engine: MeasureEngine) -> Dict[str, List]:
        """The stored measure entries compatible with ``engine``.

        All shard files are merged with the legacy single-file store (if one
        still exists).  Entries recorded under a different primitive-registry
        fingerprint -- and unknown-version files -- read as misses; damaged
        files are quarantined and read as misses, never as errors.
        """
        fingerprint = engine.registry_fingerprint()
        entries: Dict[str, List] = dict(
            _document_entries(self._read_document(self.measures_path), fingerprint)
        )
        for path in self._shard_paths("measures"):
            entries.update(_document_entries(self._read_document(path), fingerprint))
        return entries

    def load_sweeps(self, engine: MeasureEngine) -> Dict[str, List]:
        """The stored per-block sweep entries compatible with ``engine``."""
        fingerprint = engine.registry_fingerprint()
        entries: Dict[str, List] = {}
        for path in self._shard_paths("sweeps"):
            entries.update(_document_entries(self._read_document(path), fingerprint))
        return entries

    def load_frontiers(self, engine: MeasureEngine) -> Dict[str, List]:
        """The stored exploration-frontier entries compatible with ``engine``.

        Values are the encoded frontier documents written by the distributed
        deepening scheduler (see :mod:`repro.batch.distribute`); like sweep
        entries they are keyed under the engine's primitive-registry
        fingerprint, since the symbolic steps a frontier froze depend on
        primitive semantics.
        """
        fingerprint = engine.registry_fingerprint()
        entries: Dict[str, List] = {}
        for path in self._shard_paths("frontiers"):
            entries.update(_document_entries(self._read_document(path), fingerprint))
        return entries

    def export_entry_documents(self, kind: str):
        """Yield ``(fingerprint, entries, touched)`` per readable shard.

        The migration feed of ``repro store migrate``: unlike
        :meth:`load_measures` this keeps every fingerprint's entries (the
        SQLite store keys rows by fingerprint, so foreign entries survive a
        migration instead of being clobbered) and carries the GC touch
        stamps across.  Damaged shards are quarantined as usual; the legacy
        single-file ``measures.json`` is included for ``kind="measures"``.
        """
        paths = list(self._shard_paths(kind))
        if kind == "measures" and self.measures_path.exists():
            paths.insert(0, self.measures_path)
        for path in paths:
            document = self._read_document(path)
            if document is None:
                continue
            fingerprint = document.get("fingerprint")
            entries = document.get("entries")
            if not isinstance(fingerprint, str) or not isinstance(entries, dict):
                continue
            yield fingerprint, entries, _document_touched(document)

    def measure_entry_count(self, engine: MeasureEngine) -> int:
        """How many compatible measure entries the store currently holds."""
        return len(self.load_measures(engine))

    def sweep_entry_count(self, engine: MeasureEngine) -> int:
        """How many compatible sweep entries the store currently holds."""
        return len(self.load_sweeps(engine))

    def load_frontier_entry(self, engine: MeasureEngine, key: str):
        """One frontier entry by key, reading only the shard that can hold it.

        The distributed-deepening hot path: workers poll individual shard
        artifacts (``<master>:<depth>:<i>:in|out``) on every scan, and a
        master frontier encoding can run to megabytes -- re-parsing the
        whole kind per poll would swamp the stepping the fleet is there to
        parallelize.  Returns ``None`` for a missing (or incompatible) key.
        """
        fingerprint = engine.registry_fingerprint()
        path = self.shard_path(shard_prefix(key), "frontiers")
        return _document_entries(self._read_document(path), fingerprint).get(key)

    def frontier_entry_count(self, engine: MeasureEngine) -> int:
        """How many compatible frontier entries the store currently holds."""
        return len(self.load_frontiers(engine))

    def merge_measures(
        self,
        engine: MeasureEngine,
        new_entries: Mapping[str, List],
        run: Optional[int] = None,
        touched_keys: Iterable[str] = (),
    ) -> int:
        """Fold ``new_entries`` into the on-disk measure store.

        Entries land in their key's shard file.  The merge holds the
        directory lock *shared* (so a migration cannot run mid-merge) and
        each affected shard's lock *exclusive* during its read-modify-write
        cycle -- two batches merging disjoint shards into one cache directory
        proceed in parallel, and merges into the same shard cannot silently
        drop each other's entries.  Before the first shard is written the
        whole merge is journalled in an intent file, so a process killed
        mid-merge loses none of the entries it was carrying: the next merge
        replays the orphaned intent.  A legacy ``measures.json`` is migrated
        into the shards (under the exclusive directory lock) the first time a
        merge writes.

        ``run`` (default: the current run counter) stamps the written
        entries for the GC; ``touched_keys`` are existing entries this run
        answered from the store, whose stamps are refreshed in place.

        Returns the number of entries written by this merge (new entries
        plus any migrated legacy entries) -- deliberately *not* the total
        store size, which would cost a full read of every shard for a number
        no caller needs.
        """
        migrated = 0
        if new_entries and self.measures_path.exists():
            migrated = self._migrate_legacy_measures(engine.registry_fingerprint())
        written = self._merge_kind("measures", engine, new_entries, run, touched_keys)
        return written + migrated

    def merge_sweeps(
        self,
        engine: MeasureEngine,
        new_entries: Mapping[str, List],
        run: Optional[int] = None,
        touched_keys: Iterable[str] = (),
    ) -> int:
        """Fold per-block sweep entries into the on-disk sweep store.

        Same sharding, locking, intent-journal and touch-stamp semantics as
        :meth:`merge_measures` (there is no legacy single-file sweep store).
        """
        return self._merge_kind("sweeps", engine, new_entries, run, touched_keys)

    def merge_frontiers(
        self,
        engine: MeasureEngine,
        new_entries: Mapping[str, List],
        run: Optional[int] = None,
        touched_keys: Iterable[str] = (),
    ) -> int:
        """Fold encoded exploration frontiers into the on-disk store.

        Same sharding, locking, intent-journal and touch-stamp semantics as
        :meth:`merge_measures`; frontier entries therefore also participate
        in ``batch prune`` GC accounting and ``doctor`` reports exactly like
        measure and sweep entries.
        """
        return self._merge_kind("frontiers", engine, new_entries, run, touched_keys)

    def _merge_kind(
        self,
        kind: str,
        engine: MeasureEngine,
        new_entries: Mapping[str, List],
        run: Optional[int],
        touched_keys: Iterable[str],
    ) -> int:
        touched_keys = set(touched_keys)
        if not new_entries and not touched_keys:
            return 0
        fingerprint = engine.registry_fingerprint()
        if run is None:
            run = self.run_counter()
        by_shard: Dict[str, Dict[str, List]] = {}
        for key, entry in new_entries.items():
            by_shard.setdefault(shard_prefix(key), {})[key] = entry
        touched_by_shard: Dict[str, set] = {}
        for key in touched_keys:
            touched_by_shard.setdefault(shard_prefix(key), set()).add(key)
        with self._directory_lock(exclusive=False):
            self._replay_orphaned_intents()
            with self._intent(kind, fingerprint, run, new_entries, touched_keys):
                for prefix in sorted(set(by_shard) | set(touched_by_shard)):
                    self._merge_shard(
                        kind,
                        prefix,
                        fingerprint,
                        by_shard.get(prefix, {}),
                        run,
                        touched_by_shard.get(prefix, set()),
                    )
        telemetry.emit(
            "store-merge",
            kind=kind,
            written=len(new_entries),
            touched=len(touched_keys),
        )
        return len(new_entries)

    def _merge_shard(
        self,
        kind: str,
        prefix: str,
        fingerprint: str,
        shard_entries: Dict[str, List],
        run: int,
        touched_keys: set,
    ) -> None:
        path = self.shard_path(prefix, kind)
        with self._lock(path.with_suffix(".lock")):
            document = self._read_document(path)
            entries = _document_entries(document, fingerprint)
            touched = _document_touched(document)
            entries.update(shard_entries)
            for key in shard_entries:
                touched[key] = run
            for key in touched_keys:
                if key in entries:
                    touched[key] = run
            # Stamps for keys no longer present carry no information.
            touched = {key: stamp for key, stamp in touched.items() if key in entries}
            if not entries:
                # A pure-touch merge with nothing to stamp (the shard never
                # existed, or holds another fingerprint's entries): writing
                # would only create -- or clobber -- an empty document.
                return
            _atomic_write_json(
                path,
                _seal_document(
                    {
                        "fingerprint": fingerprint,
                        "entries": entries,
                        "touched": touched,
                    }
                ),
            )

    # -- write-ahead merge intents ---------------------------------------------

    @contextmanager
    def _intent(self, kind: str, fingerprint: str, run: int, new_entries, touched_keys):
        """Journal a multi-shard merge before its first shard write.

        The intent file carries everything needed to redo the merge and is
        held under an exclusive :mod:`fcntl` lock for the merge's duration:
        a free lock on an intent file therefore *proves* its writer is dead,
        which is how :meth:`_replay_orphaned_intents` distinguishes a crashed
        merge (replay it) from a live one (leave it alone).  The file is
        created empty-and-locked first and filled in place -- so a racing
        replayer can never observe a complete-looking intent that is still
        being merged -- and unlinked once every shard write has landed.
        """
        while True:
            name = f"intent-{kind}-{os.getpid()}-{next(_INTENT_SEQUENCE)}.json"
            path = self.directory / name
            try:
                # Exclusive creation: colliding with an existing file (e.g. a
                # dead run's orphan under a recycled pid) must never truncate
                # it -- pick the next sequence number instead.
                handle = open(path, "x")
                break
            except FileExistsError:
                continue
        with handle:
            try:
                with self._flocked(handle):
                    json.dump(
                        _seal_document(
                            {
                                "kind": kind,
                                "fingerprint": fingerprint,
                                "run": run,
                                "entries": dict(new_entries),
                                "touched": sorted(touched_keys),
                            }
                        ),
                        handle,
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                    handle.flush()
                    os.fsync(handle.fileno())
                    yield
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
            except BaseException:
                # The merge itself failed: keep the intent for replay, but
                # release the lock so a successor can pick it up.
                raise

    def _replay_orphaned_intents(self) -> None:
        """Redo merges whose writer died mid-way (their intent lock is free).

        Replaying is idempotent -- entries overwrite themselves -- so two
        processes racing on the same orphan at worst do the same writes
        twice.  An intent that no longer parses means its writer died before
        the journal was complete, i.e. before any shard was touched: there
        is nothing to recover and the file is removed.
        """
        for path in sorted(self.directory.glob("intent-*.json")):
            try:
                handle = open(path, "r")
            except OSError:
                continue
            with handle:
                if not self._try_exclusive(handle):
                    continue  # a live merge still owns this intent
                status, document = verify_document(path)
                if status in ("ok", "legacy") and document.get("kind") in _SHARD_KINDS:
                    self._replay_intent(document)
                try:
                    os.unlink(path)
                except OSError:
                    pass

    def _replay_intent(self, document: dict) -> None:
        kind = document["kind"]
        fingerprint = document.get("fingerprint")
        run = document.get("run")
        entries = document.get("entries")
        touched = document.get("touched")
        if not isinstance(fingerprint, str) or not isinstance(run, int):
            return
        entries = entries if isinstance(entries, dict) else {}
        touched = set(touched) if isinstance(touched, list) else set()
        by_shard: Dict[str, Dict[str, List]] = {}
        for key, entry in entries.items():
            by_shard.setdefault(shard_prefix(key), {})[key] = entry
        touched_by_shard: Dict[str, set] = {}
        for key in touched:
            if isinstance(key, str):
                touched_by_shard.setdefault(shard_prefix(key), set()).add(key)
        for prefix in sorted(set(by_shard) | set(touched_by_shard)):
            self._merge_shard(
                kind,
                prefix,
                fingerprint,
                by_shard.get(prefix, {}),
                run,
                touched_by_shard.get(prefix, set()),
            )
        _LOGGER.warning(
            "replayed an interrupted %s merge (%d entries) from its intent file",
            kind,
            len(entries),
        )

    def pending_intents(self) -> List[Tuple[Path, bool]]:
        """Every intent file present, with whether its writer is still alive.

        ``(path, live)`` pairs: ``live`` means the exclusive lock is held,
        i.e. a merge is in flight right now.  Used by ``repro doctor``.
        """
        report = []
        for path in sorted(self.directory.glob("intent-*.json")):
            try:
                with open(path, "r") as handle:
                    live = not self._try_exclusive(handle)
            except OSError:
                continue
            report.append((path, live))
        return report

    def _migrate_legacy_measures(self, fingerprint: str) -> int:
        """Fold a pre-shard ``measures.json`` into the shard files.

        Runs under the *exclusive* directory lock, which no concurrent merge
        can hold even partially, so the legacy file cannot vanish while
        another process is still counting on reading it.  The legacy entries
        are written to their shards *before* the legacy file is unlinked: a
        crash mid-migration at worst leaves both representations behind
        (harmless -- shard entries win on load and the next merge retries the
        unlink), never neither.  Entries recorded under a different
        fingerprint would be unusable and are dropped, the same policy
        ``merge_measures`` has always applied to the single file.  Returns
        the number of migrated entries.
        """
        with self._directory_lock(exclusive=True):
            if not self.measures_path.exists():
                return 0  # someone else migrated in the meantime
            legacy = _document_entries(
                self._read_document(self.measures_path), fingerprint
            )
            run = self.run_counter()
            by_shard: Dict[str, Dict[str, List]] = {}
            for key, entry in legacy.items():
                by_shard.setdefault(shard_prefix(key), {})[key] = entry
            for prefix, shard_entries in sorted(by_shard.items()):
                self._merge_shard("measures", prefix, fingerprint, shard_entries, run, set())
            try:
                self.measures_path.unlink()
            except OSError:
                pass
            return len(legacy)

    # -- garbage collection ----------------------------------------------------

    def prune(self, min_age_runs: int) -> PruneReport:
        """Drop measure/sweep entries untouched for ``min_age_runs`` runs.

        An entry is stale when the run counter has advanced by at least
        ``min_age_runs`` since the entry was last written or last served as
        a persistent hit (entries with no stamp -- e.g. migrated legacy
        ones -- count as stamped at run 0).  Shards left empty are removed
        outright.  Job results are content-addressed by program text and
        parameters and are not aged here.

        The whole pass holds the exclusive directory lock: a prune never
        races a merge into losing freshly written entries.  Orphaned merge
        intents are replayed first, so entries a crashed run was still
        carrying get their stamps before the age check.
        """
        if min_age_runs < 1:
            raise ValueError("min_age_runs must be at least 1")
        counter = self.run_counter()
        cutoff = counter - min_age_runs
        report = PruneReport(run_counter=counter, min_age_runs=min_age_runs)
        with self._directory_lock(exclusive=True):
            self._replay_orphaned_intents()
            for kind in _SHARD_KINDS:
                pruned = kept = 0
                for path in self._shard_paths(kind):
                    with self._lock(path.with_suffix(".lock")):
                        document = self._read_document(path)
                        if document is None:
                            continue  # damaged shards are quarantined, not errors
                        entries = document.get("entries")
                        if not isinstance(entries, dict):
                            continue
                        touched = _document_touched(document)
                        survivors = {
                            key: entry
                            for key, entry in entries.items()
                            if touched.get(key, 0) > cutoff
                        }
                        pruned += len(entries) - len(survivors)
                        kept += len(survivors)
                        if not survivors:
                            try:
                                path.unlink()
                                path.with_suffix(".lock").unlink()
                            except OSError:
                                pass
                            report.removed_files += 1
                            continue
                        if len(survivors) != len(entries):
                            document["entries"] = survivors
                            document["touched"] = {
                                key: stamp
                                for key, stamp in touched.items()
                                if key in survivors
                            }
                            _atomic_write_json(path, _seal_document(document))
                report.pruned[kind] = pruned
                report.kept[kind] = kept
        return report

    # -- locking ---------------------------------------------------------------

    @contextmanager
    def _lock(self, path: Path, exclusive: bool = True):
        """An advisory :mod:`fcntl` file lock (no-op where fcntl is missing:
        the atomic per-file writes still prevent torn reads on their own)."""
        try:
            import fcntl
        except ImportError:  # non-POSIX: fall back to the atomic writes alone
            yield
            return
        with open(path, "w") as lock_file:
            fcntl.flock(
                lock_file.fileno(), fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH
            )
            try:
                yield
            finally:
                fcntl.flock(lock_file.fileno(), fcntl.LOCK_UN)

    @contextmanager
    def _flocked(self, handle):
        """Hold an exclusive lock on an already-open file for a whole block."""
        try:
            import fcntl
        except ImportError:
            yield
            return
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass

    @staticmethod
    def _try_exclusive(handle) -> bool:
        """Probe an open file's exclusive lock without blocking.

        ``True`` means the lock was free (its holder, if any, is dead) and is
        now briefly ours; ``False`` means a live process holds it.  Where
        :mod:`fcntl` is unavailable liveness cannot be probed and the caller
        proceeds as if the writer were dead -- safe, because intent replays
        are idempotent.
        """
        try:
            import fcntl
        except ImportError:
            return True
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            return False
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        return True

    def _directory_lock(self, exclusive: bool):
        """The store-wide lock: shared for shard merges, exclusive for the
        legacy-file migration and the GC."""
        return self._lock(self.directory / "measures.lock", exclusive=exclusive)
