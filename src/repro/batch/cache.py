"""The persistent cross-process cache behind ``python -m repro batch``.

Layout (everything lives under one ``--cache-dir``)::

    <cache-dir>/
      jobs/<sha256-key>.json   one finished JobResult per file
      measures.json            serialized MeasureEngine cache entries

Both kinds of file are versioned JSON.  Reads are *strictly best-effort*: a
missing, corrupted, truncated, or version-mismatched file is treated as a
cache miss and silently discarded -- a damaged cache must never take an
analysis down, it can only cost recomputation.  Writes go through a
temp-file + :func:`os.replace` so a killed run never leaves a torn file
behind, and job results live in one file per key so concurrent batches
sharing a directory do not contend on a single growing file.

Measure entries are keyed by the deterministic canonical constraint-set key
of :meth:`repro.geometry.engine.MeasureEngine.persistent_key` and tagged with
the engine's registry fingerprint: a cache written under different primitive
semantics is ignored wholesale.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.batch.jobs import JobResult
from repro.geometry.engine import MeasureEngine

CACHE_VERSION = 1

__all__ = ["BatchCache", "CACHE_VERSION"]


def _atomic_write_json(path: Path, document: dict) -> None:
    """Write ``document`` to ``path`` without ever exposing a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(document, stream, sort_keys=True, separators=(",", ":"))
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def _read_versioned_json(path: Path) -> Optional[dict]:
    """Read a versioned JSON document; anything suspect reads as ``None``."""
    try:
        with open(path, "r") as stream:
            document = json.load(stream)
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict) or document.get("version") != CACHE_VERSION:
        return None
    return document


class BatchCache:
    """A persistent store of job results and measure-engine entries."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.jobs_directory = self.directory / "jobs"
        self.measures_path = self.directory / "measures.json"
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- job results ---------------------------------------------------------

    def _job_path(self, key: str) -> Path:
        return self.jobs_directory / f"{key}.json"

    def load_job(self, key: str) -> Optional[JobResult]:
        """The cached result for ``key``, or ``None`` (incl. damaged files)."""
        document = _read_versioned_json(self._job_path(key))
        if document is None:
            return None
        record = document.get("result")
        try:
            result = JobResult.from_cache_dict(record)
        except (TypeError, KeyError, ValueError):
            return None
        if result.key != key or not result.ok:
            return None
        return result

    def store_job(self, result: JobResult) -> None:
        """Persist a finished job.  Error results are not cached: they are
        recomputed on the next run in case the failure was environmental."""
        if not result.ok:
            return
        _atomic_write_json(
            self._job_path(result.key),
            {"version": CACHE_VERSION, "result": result.to_cache_dict()},
        )

    def job_count(self) -> int:
        if not self.jobs_directory.is_dir():
            return 0
        return sum(1 for entry in self.jobs_directory.glob("*.json"))

    # -- measure-engine entries ----------------------------------------------

    def load_measures(self, engine: MeasureEngine) -> Dict[str, List]:
        """The stored measure entries compatible with ``engine``.

        Entries recorded under a different primitive-registry fingerprint are
        ignored: they were computed under different semantics.
        """
        document = _read_versioned_json(self.measures_path)
        if document is None:
            return {}
        if document.get("fingerprint") != engine.registry_fingerprint():
            return {}
        entries = document.get("entries")
        return entries if isinstance(entries, dict) else {}

    def merge_measures(
        self, engine: MeasureEngine, new_entries: Mapping[str, List]
    ) -> int:
        """Fold ``new_entries`` into the on-disk store; returns its new size.

        The read-modify-write cycle runs under an exclusive advisory lock
        (where :mod:`fcntl` exists), so two batches merging into one shared
        cache directory cannot silently drop each other's entries; the write
        itself stays atomic either way.
        """
        if not new_entries:
            document = _read_versioned_json(self.measures_path)
            entries = (document or {}).get("entries")
            return len(entries) if isinstance(entries, dict) else 0
        with self._measures_lock():
            entries = self.load_measures(engine)
            entries.update(new_entries)
            _atomic_write_json(
                self.measures_path,
                {
                    "version": CACHE_VERSION,
                    "fingerprint": engine.registry_fingerprint(),
                    "entries": entries,
                },
            )
        return len(entries)

    @contextmanager
    def _measures_lock(self):
        """Exclusive inter-process lock guarding the measures merge."""
        try:
            import fcntl
        except ImportError:  # non-POSIX: fall back to the atomic write alone
            yield
            return
        lock_path = self.directory / "measures.lock"
        with open(lock_path, "w") as lock_file:
            fcntl.flock(lock_file.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_file.fileno(), fcntl.LOCK_UN)
