"""The persistent cross-process cache behind ``python -m repro batch``.

Layout (everything lives under one ``--cache-dir``)::

    <cache-dir>/
      jobs/<sha256-key>.json    one finished JobResult per file
      measures-<prefix>.json    one shard of serialized MeasureEngine entries
      measures.json             legacy single-file store (read, then migrated)

Both kinds of file are versioned JSON.  Reads are *strictly best-effort*: a
missing, corrupted, truncated, or version-mismatched file is treated as a
cache miss and silently discarded -- a damaged cache must never take an
analysis down, it can only cost recomputation.  Writes go through a
temp-file + :func:`os.replace` so a killed run never leaves a torn file
behind, and job results live in one file per key so concurrent batches
sharing a directory do not contend on a single growing file.

Measure entries are keyed by the deterministic canonical constraint-set key
of :meth:`repro.geometry.engine.MeasureEngine.persistent_key` (since the
block decomposition these are mostly per-*block* keys, shared across
programs) and tagged with the engine's registry fingerprint: a cache written
under different primitive semantics is ignored wholesale.  Entries are
sharded across ``measures-<prefix>.json`` files by the first two hex digits
of the SHA-256 of their key, so two batches merging different blocks rewrite
different small files instead of contending on (and re-serializing) one
growing ``measures.json``.  Merging takes a shared directory-wide lock plus
an exclusive per-shard lock; a legacy single-file ``measures.json`` written
by an older version is still read transparently and is folded into the
shards (then removed) on the first merge that writes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.batch.jobs import JobResult
from repro.geometry.engine import MeasureEngine

CACHE_VERSION = 1

_SHARD_PREFIX_LENGTH = 2
"""Hex digits of the key hash used as the shard name (256 shards)."""

__all__ = ["BatchCache", "CACHE_VERSION", "shard_prefix"]


def shard_prefix(key: str) -> str:
    """The shard a measure entry key belongs to (first hash hex digits)."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:_SHARD_PREFIX_LENGTH]


def _atomic_write_json(path: Path, document: dict) -> None:
    """Write ``document`` to ``path`` without ever exposing a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(document, stream, sort_keys=True, separators=(",", ":"))
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def _read_versioned_json(path: Path) -> Optional[dict]:
    """Read a versioned JSON document; anything suspect reads as ``None``."""
    try:
        with open(path, "r") as stream:
            document = json.load(stream)
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict) or document.get("version") != CACHE_VERSION:
        return None
    return document


def _document_entries(document: Optional[dict], fingerprint: str) -> Dict[str, List]:
    """The measure entries of one store document matching ``fingerprint``."""
    if document is None or document.get("fingerprint") != fingerprint:
        return {}
    entries = document.get("entries")
    return entries if isinstance(entries, dict) else {}


class BatchCache:
    """A persistent store of job results and measure-engine entries."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.jobs_directory = self.directory / "jobs"
        self.measures_path = self.directory / "measures.json"
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- job results ---------------------------------------------------------

    def _job_path(self, key: str) -> Path:
        return self.jobs_directory / f"{key}.json"

    def load_job(self, key: str) -> Optional[JobResult]:
        """The cached result for ``key``, or ``None`` (incl. damaged files)."""
        document = _read_versioned_json(self._job_path(key))
        if document is None:
            return None
        record = document.get("result")
        try:
            result = JobResult.from_cache_dict(record)
        except (TypeError, KeyError, ValueError):
            return None
        if result.key != key or not result.ok:
            return None
        return result

    def store_job(self, result: JobResult) -> None:
        """Persist a finished job.  Error results are not cached: they are
        recomputed on the next run in case the failure was environmental."""
        if not result.ok:
            return
        _atomic_write_json(
            self._job_path(result.key),
            {"version": CACHE_VERSION, "result": result.to_cache_dict()},
        )

    def job_count(self) -> int:
        if not self.jobs_directory.is_dir():
            return 0
        return sum(1 for entry in self.jobs_directory.glob("*.json"))

    # -- measure-engine entries ----------------------------------------------

    def shard_path(self, prefix: str) -> Path:
        return self.directory / f"measures-{prefix}.json"

    def _shard_paths(self) -> List[Path]:
        return sorted(self.directory.glob("measures-*.json"))

    def load_measures(self, engine: MeasureEngine) -> Dict[str, List]:
        """The stored measure entries compatible with ``engine``.

        All shard files are merged with the legacy single-file store (if one
        still exists).  Entries recorded under a different primitive-registry
        fingerprint -- and corrupt or version-mismatched shards -- read as
        misses, never as errors.
        """
        fingerprint = engine.registry_fingerprint()
        entries: Dict[str, List] = dict(
            _document_entries(_read_versioned_json(self.measures_path), fingerprint)
        )
        for path in self._shard_paths():
            entries.update(_document_entries(_read_versioned_json(path), fingerprint))
        return entries

    def measure_entry_count(self, engine: MeasureEngine) -> int:
        """How many compatible measure entries the store currently holds."""
        return len(self.load_measures(engine))

    def merge_measures(
        self, engine: MeasureEngine, new_entries: Mapping[str, List]
    ) -> int:
        """Fold ``new_entries`` into the on-disk store; returns its new size.

        Entries land in their key's shard file.  The merge holds the
        directory lock *shared* (so a migration cannot run mid-merge) and
        each affected shard's lock *exclusive* during its read-modify-write
        cycle -- two batches merging disjoint shards into one cache directory
        proceed in parallel, and merges into the same shard cannot silently
        drop each other's entries.  A legacy ``measures.json`` is migrated
        into the shards (under the exclusive directory lock) the first time a
        merge writes.

        Returns the number of entries written by this merge (new entries plus
        any migrated legacy entries) -- deliberately *not* the total store
        size, which would cost a full read of every shard for a number no
        caller needs.
        """
        if not new_entries:
            return 0
        fingerprint = engine.registry_fingerprint()
        by_shard: Dict[str, Dict[str, List]] = {}
        for key, entry in new_entries.items():
            by_shard.setdefault(shard_prefix(key), {})[key] = entry
        migrated = 0
        if self.measures_path.exists():
            migrated = self._migrate_legacy_measures(fingerprint)
        with self._directory_lock(exclusive=False):
            for prefix, shard_entries in sorted(by_shard.items()):
                self._merge_shard(prefix, fingerprint, shard_entries)
        return len(new_entries) + migrated

    def _merge_shard(
        self, prefix: str, fingerprint: str, shard_entries: Dict[str, List]
    ) -> None:
        path = self.shard_path(prefix)
        with self._lock(path.with_suffix(".lock")):
            entries = _document_entries(_read_versioned_json(path), fingerprint)
            entries.update(shard_entries)
            _atomic_write_json(
                path,
                {
                    "version": CACHE_VERSION,
                    "fingerprint": fingerprint,
                    "entries": entries,
                },
            )

    def _migrate_legacy_measures(self, fingerprint: str) -> int:
        """Fold a pre-shard ``measures.json`` into the shard files.

        Runs under the *exclusive* directory lock, which no concurrent merge
        can hold even partially, so the legacy file cannot vanish while
        another process is still counting on reading it.  The legacy entries
        are written to their shards *before* the legacy file is unlinked: a
        crash mid-migration at worst leaves both representations behind
        (harmless -- shard entries win on load and the next merge retries the
        unlink), never neither.  Entries recorded under a different
        fingerprint would be unusable and are dropped, the same policy
        ``merge_measures`` has always applied to the single file.  Returns
        the number of migrated entries.
        """
        with self._directory_lock(exclusive=True):
            if not self.measures_path.exists():
                return 0  # someone else migrated in the meantime
            legacy = _document_entries(
                _read_versioned_json(self.measures_path), fingerprint
            )
            by_shard: Dict[str, Dict[str, List]] = {}
            for key, entry in legacy.items():
                by_shard.setdefault(shard_prefix(key), {})[key] = entry
            for prefix, shard_entries in sorted(by_shard.items()):
                self._merge_shard(prefix, fingerprint, shard_entries)
            try:
                self.measures_path.unlink()
            except OSError:
                pass
            return len(legacy)

    # -- locking ---------------------------------------------------------------

    @contextmanager
    def _lock(self, path: Path, exclusive: bool = True):
        """An advisory :mod:`fcntl` file lock (no-op where fcntl is missing:
        the atomic per-file writes still prevent torn reads on their own)."""
        try:
            import fcntl
        except ImportError:  # non-POSIX: fall back to the atomic writes alone
            yield
            return
        with open(path, "w") as lock_file:
            fcntl.flock(
                lock_file.fileno(), fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH
            )
            try:
                yield
            finally:
                fcntl.flock(lock_file.fileno(), fcntl.LOCK_UN)

    def _directory_lock(self, exclusive: bool):
        """The store-wide lock: shared for shard merges, exclusive for the
        legacy-file migration."""
        return self._lock(self.directory / "measures.lock", exclusive=exclusive)
