"""Named job suites mirroring the paper's evaluation, plus job-file loading.

A *suite* is the batch rendering of one evaluation section:

* ``table1``  -- lower bounds for every Table 1 program,
* ``table2``  -- AST verification for every Table 2 program,
* ``classify`` -- combined AST/PAST classification of the Table 2 programs,
* ``sweep``   -- lower bounds for the non-affine retry loops, the
  sweep-heavy workload exercising the block-decomposed subdivision sweep
  and its persistent ``sweeps-<prefix>.json`` store,
* ``all``     -- table1, table2 and classify, concatenated.

The lower-bound suites (``table1``, ``sweep``) also come in an *anytime*
form: given a depth ``schedule``, each program becomes one incremental
``lower-bound-schedule`` job whose resumable session streams a bound per
scheduled depth -- instead of ``len(schedule)`` independent jobs that each
re-explore from the root.  The recorded payload carries the whole anytime
trajectory, so a depth column in Table 1 costs one job.

Cost hints are derived from the term size (scaled by the exploration depth
for lower bounds): they only inform the scheduler's longest-first ordering,
never the results.

A *job file* is a JSON list of ``{"program": ..., "analysis": ...,
"params": {...}}`` objects, the on-disk counterpart of a suite.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Union

from repro.batch.jobs import JobSpec, encode_number
from repro.programs import table1_programs, table2_programs
from repro.programs.extra import nonaffine_programs
from repro.programs.library import Program
from repro.spcf.syntax import term_size

SUITE_NAMES = ("table1", "table2", "classify", "sweep", "all")

__all__ = [
    "SUITE_NAMES",
    "classify_suite",
    "load_job_file",
    "schedule_suite",
    "suite",
    "sweep_suite",
    "table1_suite",
    "table2_suite",
]


def table1_suite(
    depth: int = 50,
    max_paths: int = 100_000,
    programs: Optional[Mapping[str, Program]] = None,
) -> List[JobSpec]:
    """One ``lower-bound`` job per Table 1 program."""
    programs = dict(programs) if programs is not None else table1_programs()
    return [
        JobSpec(
            program=name,
            analysis="lower-bound",
            params={"depth": depth, "max_paths": max_paths},
            cost_hint=float(term_size(program.applied) * depth),
        )
        for name, program in programs.items()
    ]


def table2_suite(
    max_steps: int = 5_000, programs: Optional[Mapping[str, Program]] = None
) -> List[JobSpec]:
    """One ``verify`` job per Table 2 program."""
    programs = dict(programs) if programs is not None else table2_programs()
    return [
        JobSpec(
            program=name,
            analysis="verify",
            params={"max_steps": max_steps},
            cost_hint=float(term_size(program.fix)),
        )
        for name, program in programs.items()
    ]


def classify_suite(
    max_steps: int = 2_000, programs: Optional[Mapping[str, Program]] = None
) -> List[JobSpec]:
    """One ``classify`` job per Table 2 program (the extension table)."""
    programs = dict(programs) if programs is not None else table2_programs()
    return [
        JobSpec(
            program=name,
            analysis="classify",
            params={"max_steps": max_steps},
            # Classification runs verification, refutation and per-argument
            # counting; weigh it above a plain verify of the same term.
            cost_hint=float(term_size(program.fix) * 6),
        )
        for name, program in programs.items()
    ]


def sweep_suite(
    depth: int = 35,
    max_paths: int = 100_000,
    programs: Optional[Mapping[str, Program]] = None,
) -> List[JobSpec]:
    """One ``lower-bound`` job per non-affine retry program.

    Every path constraint set of these programs needs the subdivision sweep
    (no affine form exists), so the suite is the canonical workload for the
    block-sweep memoization and its persistent store.
    """
    programs = dict(programs) if programs is not None else nonaffine_programs()
    return [
        JobSpec(
            program=name,
            analysis="lower-bound",
            params={"depth": depth, "max_paths": max_paths},
            cost_hint=float(term_size(program.applied) * depth),
        )
        for name, program in programs.items()
    ]


def schedule_suite(
    schedule: Sequence[int],
    max_paths: int = 100_000,
    programs: Optional[Mapping[str, Program]] = None,
    target_gap: Optional[Fraction] = None,
) -> List[JobSpec]:
    """One incremental ``lower-bound-schedule`` job per program.

    The anytime rendering of a lower-bound suite: every program's whole
    depth schedule is a single resumable job (suspended paths resume, each
    terminated path is measured once), and its payload records a bound per
    scheduled depth.  Defaults to the Table 1 program set.
    """
    schedule = [int(depth) for depth in schedule]
    programs = dict(programs) if programs is not None else table1_programs()
    return [
        JobSpec(
            program=name,
            analysis="lower-bound-schedule",
            params={
                "schedule": schedule,
                "max_paths": max_paths,
                "target_gap": encode_number(target_gap),
            },
            # An incremental schedule costs about as much as one from-scratch
            # run at its deepest point.
            cost_hint=float(term_size(program.applied) * max(schedule)),
        )
        for name, program in programs.items()
    ]


def suite(
    name: str,
    depth: int = 50,
    schedule: Optional[Sequence[int]] = None,
    target_gap: Optional[Fraction] = None,
) -> List[JobSpec]:
    """Resolve a ``--suite`` name to its job list.

    A ``schedule`` turns the lower-bound suites (``table1``, ``sweep``) into
    their anytime form -- one incremental job per program streaming a bound
    per scheduled depth; the other suites have no depth axis and reject it.
    """
    if schedule is not None:
        if name == "table1":
            return schedule_suite(schedule, target_gap=target_gap)
        if name == "sweep":
            return schedule_suite(
                schedule, programs=nonaffine_programs(), target_gap=target_gap
            )
        raise ValueError(
            f"suite {name!r} has no depth axis; --schedule applies to "
            "'table1' and 'sweep'"
        )
    if name == "table1":
        return table1_suite(depth=depth)
    if name == "table2":
        return table2_suite()
    if name == "classify":
        return classify_suite()
    if name == "sweep":
        return sweep_suite(depth=depth)
    if name == "all":
        return table1_suite(depth=depth) + table2_suite() + classify_suite()
    raise ValueError(f"unknown suite {name!r}; expected one of {SUITE_NAMES}")


def load_job_file(path: Union[str, Path]) -> List[JobSpec]:
    """Load a JSON job file into specs (strictly validated, unlike caches)."""
    with open(path, "r") as stream:
        document = json.load(stream)
    if not isinstance(document, list):
        raise ValueError("a job file must be a JSON list of job objects")
    specs = []
    for position, entry in enumerate(document):
        if not isinstance(entry, dict) or "program" not in entry or "analysis" not in entry:
            raise ValueError(
                f"job #{position} must be an object with 'program' and 'analysis'"
            )
        specs.append(JobSpec.from_dict(entry))
    return specs
