"""Distributed anytime deepening: persisted, sharded, work-stolen frontiers.

This module turns one hard program's depth schedule into fleet work while
keeping the paper's anytime semantics *bit-identical* to a single process:

* The master :class:`~repro.symbolic.execute.ExplorationSession` is encoded
  (:mod:`repro.symbolic.codec`) and persisted in the batch store under a
  budget-independent :func:`frontier_key` after every scheduled depth, so a
  run that dies resumes the math -- restored sessions replay their recorded
  trajectory rows for depths already reached and continue stepping exactly
  where the persisted budget stopped.
* To deepen one more depth, the suspended frontier is split into per-subtree
  shards (contiguous ranges of the breadth-first key order), the shard
  inputs are written to the store (``<key>:<depth>:<i>:in``), and one
  ``explore-shard`` job per worker slot is fanned out through the supervised
  :func:`repro.batch.runner.run_batch` pool -- inheriting its job timeouts,
  bounded retries and pool resurrection.
* Each worker claims shards under non-blocking ``fcntl`` locks in
  ``<store>/frontier-claims/`` (a dead claimant's lock releases itself, the
  same liveness probe the merge-intent journal uses), *preferring its
  assigned shard but stealing any unclaimed one* when idle, extends the
  shard to the target depth, and merges the result back to the store
  (``...:out``).  Shard outputs are deterministic, so a double execution
  under a lost lock merges the identical entry -- harmless.
* The supervisor absorbs the shard results back into the master session
  (:meth:`~repro.symbolic.execute.ExplorationSession.absorb`) and replays
  the merged node list through the ordinary
  :meth:`~repro.lowerbound.engine.LowerBoundSession.extend`, so the
  per-depth :class:`~repro.lowerbound.result.LowerBoundResult` -- and the
  stats counters -- are byte-identical to a single-process run of the same
  schedule.  Shards a worker never completed (retries exhausted) are
  extended inline; a ``max_paths`` cap that would have bound in-process
  falls back to an inline extend of the same nodes
  (:class:`~repro.symbolic.execute.FrontierCapError`).

Crash-resume makes no step twice: shard outputs already in the store are
reused verbatim on resume (the split is a pure function of the restored
session, so the input shards match), and a worker killed mid-shard never
merged anything, so its shard simply re-runs from the persisted input.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import repro.telemetry as telemetry
from repro.geometry.engine import MeasureEngine
from repro.lowerbound.engine import LowerBoundEngine, LowerBoundSession
from repro.programs.library import Program
from repro.spcf.printer import pretty
from repro.symbolic.codec import (
    CODEC_VERSION,
    decode_session,
    encode_session,
    session_counters,
    split_session,
)
from repro.symbolic.execute import (
    FrontierCapError,
    Strategy,
    SymbolicExplorer,
)

FRONTIER_FORMAT_VERSION = 1
"""Envelope version of persisted frontier entries (distinct from the codec
version inside: the envelope adds trajectory rows and sharding metadata)."""

__all__ = [
    "FRONTIER_FORMAT_VERSION",
    "DepthOutcome",
    "frontier_entry",
    "frontier_entry_parts",
    "DistributedScheduleReport",
    "execute_shards",
    "frontier_key",
    "run_distributed_schedule",
    "shard_entry_key",
]


def frontier_key(program: Program, max_paths: int) -> str:
    """The store key of a program's persisted exploration frontier.

    Deliberately *budget-independent* (no depth, no schedule): every
    schedule over the same resolved program deepens the same frontier, which
    is exactly what lets a rerun resume the math.  The key pins
    everything that changes the node list: the resolved terms, the
    evaluation strategy, the path cap, and the codec version.
    """
    material = json.dumps(
        {
            "codec": CODEC_VERSION,
            "fix": pretty(program.fix, unicode_symbols=False),
            "applied": pretty(program.applied, unicode_symbols=False),
            "strategy": program.strategy.name,
            "max_paths": max_paths,
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def shard_entry_key(master: str, depth: int, index: int, side: str) -> str:
    """Store key of one shard artifact (``side`` is ``"in"`` or ``"out"``)."""
    return f"{master}:{depth}:{index}:{side}"


def _claim_name(master: str, depth: int, index: int) -> str:
    return f"{master[:16]}-{depth}-{index}"


def frontier_entry(encoded_session: list, rows: List[dict]) -> list:
    return [FRONTIER_FORMAT_VERSION, encoded_session, rows]


def frontier_entry_parts(entry) -> Optional[tuple]:
    """``(encoded_session, rows)`` from a store entry, or ``None`` if foreign."""
    if (
        not isinstance(entry, list)
        or len(entry) < 2
        or entry[0] != FRONTIER_FORMAT_VERSION
    ):
        return None
    rows = entry[2] if len(entry) > 2 and isinstance(entry[2], list) else []
    rows = [row for row in rows if isinstance(row, dict)]
    return entry[1], rows


class _ShardClaims:
    """Non-blocking advisory claims on shards, one lock file per shard.

    The lock is *held* for the duration of the shard's execution: a claim
    observed busy means a live worker is on it, and a worker that dies
    mid-shard releases its lock with its process -- the next scan (a retried
    job, or an idle worker stealing) claims the shard again.  Where
    :mod:`fcntl` is unavailable claims always succeed; shard outputs are
    deterministic, so duplicate execution merges identical entries.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory) / "frontier-claims"
        self.directory.mkdir(parents=True, exist_ok=True)
        self._held: Dict[str, Any] = {}

    def try_claim(self, name: str) -> bool:
        try:
            import fcntl
        except ImportError:
            self._held[name] = None
            return True
        handle = open(self.directory / f"{name}.lock", "w")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            return False
        self._held[name] = handle
        return True

    def release(self, name: str) -> None:
        handle = self._held.pop(name, None)
        if handle is None:
            return
        try:
            import fcntl

            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        except (ImportError, OSError):
            pass
        try:
            handle.close()
        except OSError:
            pass

    def release_all(self) -> None:
        for name in list(self._held):
            self.release(name)


# ---------------------------------------------------------------------------
# Worker side: the ``explore-shard`` analysis.
# ---------------------------------------------------------------------------


def execute_shards(
    program: Program, params: Dict[str, Any], engine: MeasureEngine
) -> Dict[str, Any]:
    """One worker slot's deepening pass (the ``explore-shard`` job body).

    Scans the depth's shards starting at the assigned ``prefer`` index,
    claims and extends every shard it can get, and keeps scanning until
    every shard is either merged back (``:out`` present) or claimed by a
    live worker.  Claiming a shard other than ``prefer`` is a *steal* --
    how idle workers absorb the stragglers of uneven subtree splits or of a
    killed sibling.
    """
    from repro.batch.store_sqlite import open_store

    strategy = program.strategy
    if params["strategy"] is not None:
        strategy = Strategy[params["strategy"]]
    store = open_store(params["store_dir"], backend=params["store_backend"])
    master = params["frontier"]
    depth = int(params["depth"])
    count = int(params["shards"])
    prefer = int(params["prefer"]) % max(count, 1)
    explorer = SymbolicExplorer(strategy, engine.registry, stats=engine.stats)
    claims = _ShardClaims(store.directory)
    executed: List[int] = []
    stolen: List[int] = []
    steps_total = 0
    order = list(range(prefer, count)) + list(range(0, prefer))
    try:
        made_progress = True
        while made_progress:
            made_progress = False
            for index in order:
                # Targeted single-key reads: the scan polls every shard on
                # every pass, and parsing the whole frontier kind (master
                # encoding included) per poll would swamp the stepping.
                out_key = shard_entry_key(master, depth, index, "out")
                if store.load_frontier_entry(engine, out_key) is not None:
                    continue
                entry = store.load_frontier_entry(
                    engine, shard_entry_key(master, depth, index, "in")
                )
                if entry is None:
                    continue
                name = _claim_name(master, depth, index)
                if not claims.try_claim(name):
                    continue  # a live worker is on it
                try:
                    # Re-check under the claim: the previous holder may have
                    # merged its output after our scan read the store.
                    if store.load_frontier_entry(engine, out_key) is not None:
                        continue
                    parts = frontier_entry_parts(entry)
                    if parts is None:
                        continue  # foreign version; the supervisor runs it inline
                    shard = decode_session(
                        parts[0], explorer, credit_stats=False
                    )
                    if shard is None:
                        continue  # damaged; the supervisor runs it inline
                    is_steal = index != prefer
                    if telemetry.enabled():
                        telemetry.emit(
                            "shard-stolen" if is_steal else "shard-claimed",
                            key=master,
                            shard=index,
                            preferred=prefer,
                        )
                    shard.extend(depth)
                    steps = session_counters(shard)[0]
                    store.merge_frontiers(
                        engine,
                        {out_key: frontier_entry(encode_session(shard), [])},
                    )
                    if telemetry.enabled():
                        telemetry.emit(
                            "shard-completed",
                            key=master,
                            shard=index,
                            depth=depth,
                            steps=steps,
                        )
                    executed.append(index)
                    if is_steal:
                        stolen.append(index)
                    steps_total += steps
                    engine.stats.shards_executed += 1
                    if is_steal:
                        engine.stats.shards_stolen += 1
                    made_progress = True
                finally:
                    claims.release(name)
    finally:
        claims.release_all()
    return {
        "executed": executed,
        "stolen": stolen,
        "steps": steps_total,
        "shards": count,
        "depth": depth,
    }


# ---------------------------------------------------------------------------
# Supervisor side.
# ---------------------------------------------------------------------------


@dataclass
class DepthOutcome:
    """How one scheduled depth was produced."""

    depth: int
    row: Dict[str, Any]
    """The trajectory row (the exact dict shape of a ``lower-bound-schedule``
    job payload row), byte-identical to a single-process run's."""

    replayed: bool = False
    """Served from the persisted trajectory without any stepping."""

    shards: int = 0
    """Shards the depth was split into (0 = extended inline)."""

    stolen: int = 0
    inline_shards: int = 0
    """Shards the supervisor had to extend itself (worker retries exhausted,
    or a damaged/cap-bound shard result)."""


@dataclass
class DistributedScheduleReport:
    """The outcome of one (possibly resumed, possibly distributed) schedule."""

    program: str
    key: str
    schedule: List[int]
    outcomes: List[DepthOutcome] = field(default_factory=list)
    resumed: bool = False
    restored_depth: int = 0
    jobs: int = 1
    elapsed_seconds: float = 0.0
    retries: int = 0
    timeouts: int = 0
    worker_restarts: int = 0

    @property
    def rows(self) -> List[Dict[str, Any]]:
        return [outcome.row for outcome in self.outcomes]

    def payload(self) -> Dict[str, Any]:
        """The ``lower-bound-schedule`` job payload these rows amount to.

        Byte-identical to :func:`repro.batch.jobs.run_job` on the same
        schedule in one process -- the CI ``dist-smoke`` job ``cmp``'s the
        two encodings.
        """
        trajectory = self.rows
        final = trajectory[-1]
        return {
            "schedule": list(self.schedule),
            "depths_run": len(trajectory),
            "trajectory": trajectory,
            "probability": final["probability"],
            "expected_steps": final["expected_steps"],
            "measure_gap": final["measure_gap"],
            "path_count": final["path_count"],
            "exhaustive": final["exhaustive"],
            "exact_measures": final["exact_measures"],
        }

    def summary(self) -> str:
        replayed = sum(1 for outcome in self.outcomes if outcome.replayed)
        sharded = sum(outcome.shards for outcome in self.outcomes)
        stolen = sum(outcome.stolen for outcome in self.outcomes)
        inline = sum(outcome.inline_shards for outcome in self.outcomes)
        lines = [
            f"frontier key     : {self.key[:16]}...",
            f"depths           : {len(self.outcomes)} run, {replayed} replayed "
            "from the persisted trajectory",
            f"workers          : {self.jobs}",
            f"frontier shards  : {sharded} ({stolen} stolen, {inline} inline)",
            f"elapsed          : {self.elapsed_seconds:.3f}s",
        ]
        if self.resumed:
            lines.insert(
                1, f"resumed          : frontier restored at depth {self.restored_depth}"
            )
        return "\n".join(lines)


def _result_row(result) -> Dict[str, Any]:
    """One trajectory row, exactly as ``jobs._execute`` builds them."""
    from repro.batch.jobs import encode_number

    return {
        "depth": result.max_steps,
        "probability": encode_number(result.probability),
        "expected_steps": encode_number(result.expected_steps),
        "measure_gap": encode_number(result.measure_gap),
        "anytime_gap": encode_number(result.anytime_gap()),
        "path_count": result.path_count,
        "exhaustive": result.exhaustive,
        "exact_measures": result.exact_measures,
    }


def run_distributed_schedule(
    program_source: str,
    program: Program,
    schedule: Sequence[int],
    *,
    store,
    engine: MeasureEngine,
    jobs: int = 1,
    max_paths: int = 200_000,
    strategy: Optional[Strategy] = None,
    target_gap=None,
    job_timeout: Optional[float] = None,
    retry_policy=None,
    progress=None,
    on_depth=None,
) -> DistributedScheduleReport:
    """Run a depth schedule over a store-persisted, worker-sharded frontier.

    Per-depth results (and the final stats counters) are byte-identical to
    :meth:`LowerBoundEngine.lower_bound_schedule` in one process; the store
    makes them crash-resumable and ``jobs > 1`` spreads the stepping over
    the supervised batch pool.  See the module docstring for the protocol.
    """
    from repro.batch.jobs import decode_number

    started = time.perf_counter()
    schedule = [int(depth) for depth in schedule]
    if (
        not schedule
        or schedule[0] <= 0
        or any(second < first for first, second in zip(schedule, schedule[1:]))
    ):
        raise ValueError(
            "schedule must be a non-empty, non-decreasing list of "
            f"positive depths, got {schedule!r}"
        )
    resolved_strategy = strategy or program.strategy
    if resolved_strategy is not program.strategy:
        program = Program(
            name=program.name,
            description=program.description,
            fix=program.fix,
            applied=program.applied,
            strategy=resolved_strategy,
        )
    key = frontier_key(program, max_paths)
    report = DistributedScheduleReport(
        program=program_source, key=key, schedule=list(schedule), jobs=jobs
    )
    bound_engine = LowerBoundEngine(
        strategy=resolved_strategy, measure_engine=engine
    )
    run = store.begin_run()
    detached = SymbolicExplorer(resolved_strategy, engine.registry, stats=None)

    # -- restore ------------------------------------------------------------
    # Probe-decode against a stats-less explorer first: only a frontier
    # whose recorded trajectory can serve every already-reached depth of
    # *this* schedule is adopted (budgets cannot shrink, so a frontier past
    # a depth with no recorded row cannot produce that depth's result).
    # The adopted frontier is decoded a second time against the real
    # explorer with ``credit_stats`` on, so the resumed process reports the
    # same counters an uninterrupted run would.
    exploration = None
    rows_by_depth: Dict[int, Dict[str, Any]] = {}
    entry = store.load_frontier_entry(engine, key)
    if entry is not None:
        parts = frontier_entry_parts(entry)
        if parts is not None:
            encoded, persisted_rows = parts
            probe = decode_session(encoded, detached, credit_stats=False)
            if probe is not None:
                candidate = {
                    int(row["depth"]): row
                    for row in persisted_rows
                    if isinstance(row.get("depth"), int)
                }
                replayable = [d for d in schedule if d <= probe.max_steps]
                if all(d in candidate for d in replayable):
                    exploration = decode_session(
                        encoded, bound_engine._explorer, stats=engine.stats
                    )
                    rows_by_depth = candidate
                    report.resumed = True
                    report.restored_depth = probe.max_steps
                    if telemetry.enabled():
                        telemetry.emit(
                            "frontier-resumed",
                            key=key,
                            depth=probe.max_steps,
                            nodes=len(probe._nodes),
                        )
    session = LowerBoundSession(
        bound_engine, program.applied, max_paths=max_paths, exploration=exploration
    )

    rows: List[Dict[str, Any]] = [rows_by_depth[d] for d in sorted(rows_by_depth)]

    def persist(depth: int) -> None:
        encoded = encode_session(session.exploration)
        store.merge_frontiers(
            engine, {key: frontier_entry(encoded, rows)}, run=run
        )
        if telemetry.enabled():
            telemetry.emit(
                "frontier-saved",
                key=key,
                depth=depth,
                nodes=len(session.exploration._nodes),
            )

    stopped = False
    for depth in schedule:
        if stopped:
            break
        if depth <= report.restored_depth:
            row = rows_by_depth[depth]
            outcome = DepthOutcome(depth=depth, row=row, replayed=True)
            report.outcomes.append(outcome)
            if on_depth is not None:
                on_depth(outcome)
        else:
            outcome = _deepen(
                session,
                depth,
                program_source=program_source,
                program=program,
                strategy=resolved_strategy,
                key=key,
                store=store,
                engine=engine,
                detached=detached,
                jobs=jobs,
                max_paths=max_paths,
                job_timeout=job_timeout,
                retry_policy=retry_policy,
                progress=progress,
                report=report,
            )
            rows.append(outcome.row)
            report.outcomes.append(outcome)
            persist(depth)
            row = outcome.row
            if on_depth is not None:
                on_depth(outcome)
        if target_gap is not None:
            gap = decode_number(row.get("anytime_gap"))
            if gap is not None and gap <= target_gap:
                stopped = True
    report.elapsed_seconds = time.perf_counter() - started
    return report


def _deepen(
    session: LowerBoundSession,
    depth: int,
    *,
    program_source: str,
    program: Program,
    strategy: Strategy,
    key: str,
    store,
    engine: MeasureEngine,
    detached: SymbolicExplorer,
    jobs: int,
    max_paths: int,
    job_timeout,
    retry_policy,
    progress,
    report: DistributedScheduleReport,
) -> DepthOutcome:
    """Extend one depth, distributing the frontier when it pays."""
    from repro.batch.jobs import JobSpec
    from repro.batch.runner import run_batch

    exploration = session.exploration
    frontier_size = exploration.frontier_size
    if jobs <= 1 or frontier_size < 2:
        result = session.extend(depth)
        return DepthOutcome(depth=depth, row=_result_row(result))

    shard_count = min(frontier_size, jobs * 2)
    shards = split_session(exploration, shard_count)
    shard_count = len(shards)
    in_entries = {
        shard_entry_key(key, depth, index, "in"): frontier_entry(shard, [])
        for index, shard in enumerate(shards)
    }
    store.merge_frontiers(engine, in_entries, touched_keys=[key])

    specs = [
        JobSpec(
            program=program_source,
            analysis="explore-shard",
            params={
                "frontier": key,
                "depth": depth,
                "shards": shard_count,
                "prefer": slot,
                "max_paths": max_paths,
                "strategy": strategy.name,
                "store_dir": str(store.directory),
                "store_backend": store.backend_name,
            },
            # Long shards first: slot i starts at shard i, and shards are
            # ordered by frontier position, so the hint just spreads slots.
            cost_hint=float(shard_count - slot),
        )
        for slot in range(min(jobs, shard_count))
    ]
    batch = run_batch(
        specs,
        jobs=jobs,
        cache=None,
        job_timeout=job_timeout,
        retry_policy=retry_policy,
        progress=progress,
    )
    report.retries += batch.stats.retries
    report.timeouts += batch.stats.timeouts
    report.worker_restarts += batch.stats.worker_restarts
    # Only the supervisor-side recovery counters flow into the engine stats:
    # the workers' stepping counters are reconciled exactly by ``absorb``
    # below (summing the worker deltas too would double-count).
    engine.stats.retries += batch.stats.retries
    engine.stats.timeouts += batch.stats.timeouts
    engine.stats.worker_restarts += batch.stats.worker_restarts

    stolen = 0
    for job_result in batch.results:
        if job_result.ok and isinstance(job_result.payload, dict):
            stolen += len(job_result.payload.get("stolen", ()))

    decoded = []
    inline_shards = 0
    for index, shard_encoded in enumerate(shards):
        out_entry = store.load_frontier_entry(
            engine, shard_entry_key(key, depth, index, "out")
        )
        shard_session = None
        if out_entry is not None:
            parts = frontier_entry_parts(out_entry)
            if parts is not None:
                shard_session = decode_session(
                    parts[0], detached, credit_stats=False
                )
                if shard_session is not None and shard_session.max_steps != depth:
                    shard_session = None
        if shard_session is None:
            # The fleet never delivered this shard (retries exhausted, or a
            # damaged entry): the supervisor extends it inline from the same
            # input, preserving exactness at the cost of parallelism.
            shard_session = decode_session(shard_encoded, detached, credit_stats=False)
            if shard_session is None:  # cannot happen: we just encoded it
                raise RuntimeError(f"frontier shard {index} round-trip failed")
            shard_session.extend(depth)
            store.merge_frontiers(
                engine,
                {
                    shard_entry_key(key, depth, index, "out"): frontier_entry(
                        encode_session(shard_session), []
                    )
                },
            )
            inline_shards += 1
            engine.stats.shards_executed += 1
        decoded.append(shard_session)

    executed_by_workers = shard_count - inline_shards
    engine.stats.shards_executed += executed_by_workers
    engine.stats.shards_stolen += stolen

    try:
        exploration.absorb(decoded, depth)
    except FrontierCapError:
        # The path cap would have bound in-process; the capped single-process
        # result is the contract, so produce exactly that.
        result = session.extend(depth)
        return DepthOutcome(
            depth=depth,
            row=_result_row(result),
            shards=shard_count,
            stolen=stolen,
            inline_shards=inline_shards,
        )
    result = session.extend(depth)
    return DepthOutcome(
        depth=depth,
        row=_result_row(result),
        shards=shard_count,
        stolen=stolen,
        inline_shards=inline_shards,
    )
