"""The batch job model: specifications, content-hash keys, and results.

A :class:`JobSpec` names one analysis run -- a program (library name or
surface syntax), an analysis kind, and its parameters.  Its :meth:`JobSpec.key`
is a content hash over the *resolved* program (the pretty-printed terms and
evaluation strategy, not just the reference) plus the analysis and its
canonical parameters, so

* the same job always hashes the same, across processes and sessions,
* editing a library program invalidates every cached result about it,
* parameters that change the answer (depth, seed, ...) are part of the key.

A :class:`JobResult` carries the analysis verdict as a *deterministic,
JSON-safe payload* (fractions as ``"p/q"`` strings, floats as plain JSON
numbers) next to non-deterministic bookkeeping (wall-clock, measure-engine
counters, whether the result came from cache).  :meth:`JobResult.to_json_line`
serializes only the deterministic part, which is what makes re-runs of an
unchanged batch byte-identical JSONL.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import repro.telemetry as telemetry
from repro.geometry.engine import MeasureEngine
from repro.programs import resolve_program
from repro.programs.library import Program
from repro.spcf.printer import pretty

# Version 2: the block-decomposed sweep (PR 4) tightened emitted non-affine
# lower bounds and added ``measure_gap`` to lower-bound payloads, so results
# cached under version 1 must not be replayed.
JOB_FORMAT_VERSION = 2

ANALYSES: Tuple[str, ...] = (
    "lower-bound",
    "lower-bound-schedule",
    "explore-shard",
    "verify",
    "classify",
    "estimate",
    "papprox",
)

_DEFAULT_PARAMS: Dict[str, Dict[str, Any]] = {
    "lower-bound": {"depth": 50, "max_paths": 100_000, "strategy": None},
    # One *incremental* job per program: the whole depth schedule runs over a
    # single resumable session, recording the full anytime trajectory.  The
    # optional ``target_gap`` ("p/q" string) stops the schedule early once
    # the certified anytime gap drops below it.
    "lower-bound-schedule": {
        "schedule": (10, 25, 50),
        "max_paths": 100_000,
        "strategy": None,
        "target_gap": None,
    },
    # One worker slot of a distributed deepening (repro.batch.distribute):
    # claims, extends and merges back frontier shards of ``frontier`` at
    # ``depth``, preferring shard ``prefer`` and stealing the rest.  Shard
    # jobs are never answered from the job cache (the runner gets
    # ``cache=None``); their effect lives in the store's frontier entries.
    "explore-shard": {
        "frontier": None,
        "depth": 50,
        "shards": 1,
        "prefer": 0,
        "max_paths": 100_000,
        "strategy": None,
        "store_dir": None,
        "store_backend": "auto",
    },
    "verify": {"max_steps": 5_000},
    "classify": {"max_steps": 2_000},
    "estimate": {"runs": 2_000, "max_steps": 20_000, "seed": 0},
    "papprox": {"max_steps": 5_000},
}


def encode_number(value: Union[Fraction, float, int, None]):
    """JSON-safe encoding of an analysis number: exact values stay exact.

    This is the human-readable *payload* codec (``"p/q"`` strings, plain JSON
    floats) used in result JSONL.  The measure cache uses the stricter tagged
    codec in :mod:`repro.geometry.engine` (``float.hex()`` for floats) --
    payloads favour readability, cache entries favour exact round-trips.
    """
    if value is None:
        return None
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, bool):
        raise TypeError("booleans are not analysis numbers")
    if isinstance(value, int):
        return str(Fraction(value))
    return float(value)


def decode_number(encoded) -> Union[Fraction, float, None]:
    """Invert :func:`encode_number` (``"p/q"`` strings back to fractions)."""
    if encoded is None:
        return None
    if isinstance(encoded, str):
        return Fraction(encoded)
    return float(encoded)


@dataclass(frozen=True)
class JobSpec:
    """One (program x analysis x parameters) cell of an evaluation batch."""

    program: str
    """A library program name or a surface-syntax source string."""

    analysis: str
    """One of :data:`ANALYSES`."""

    params: Mapping[str, Any] = field(default_factory=dict)
    """Analysis parameters; unset ones take the canonical defaults."""

    cost_hint: float = 1.0
    """Relative expected cost, used only to schedule long jobs first.

    Not part of the content hash: it never changes the result.
    """

    def __post_init__(self) -> None:
        if self.analysis not in ANALYSES:
            raise ValueError(
                f"unknown analysis {self.analysis!r}; expected one of {ANALYSES}"
            )
        unknown = set(self.params) - set(_DEFAULT_PARAMS[self.analysis])
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {sorted(unknown)} for analysis "
                f"{self.analysis!r}"
            )

    def canonical_params(self) -> Dict[str, Any]:
        """The full parameter dictionary, defaults applied, keys sorted."""
        merged = dict(_DEFAULT_PARAMS[self.analysis])
        merged.update(self.params)
        return {name: merged[name] for name in sorted(merged)}

    def resolve(self) -> Program:
        return resolve_program(self.program)

    def key(self) -> str:
        """The deterministic content-hash identity of this job.

        Hashes the resolved program's pretty-printed terms and strategy, so
        two references to the same program (by name or by identical source)
        share cached results, and any library change invalidates them.
        Memoized on the (frozen) instance: the resume filter, the cache
        pre-scan and the job execution all ask for it.
        """
        try:
            return self._key
        except AttributeError:
            pass
        program = self.resolve()
        material = json.dumps(
            {
                "version": JOB_FORMAT_VERSION,
                "analysis": self.analysis,
                "fix": pretty(program.fix, unicode_symbols=False),
                "applied": pretty(program.applied, unicode_symbols=False),
                "strategy": program.strategy.name,
                "params": self.canonical_params(),
            },
            sort_keys=True,
        )
        key = hashlib.sha256(material.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_key", key)
        return key

    def as_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "analysis": self.analysis,
            "params": self.canonical_params(),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "JobSpec":
        return JobSpec(
            program=data["program"],
            analysis=data["analysis"],
            params=dict(data.get("params", {})),
            cost_hint=float(data.get("cost_hint", 1.0)),
        )


@dataclass
class JobResult:
    """The outcome of one job: deterministic verdict plus bookkeeping."""

    spec: JobSpec
    key: str
    status: str
    """``"ok"`` or ``"error"``."""

    payload: Optional[Dict[str, Any]]
    """The analysis verdict (JSON-safe, deterministic); ``None`` on error."""

    error: Optional[str]
    """``"ExceptionType: message"`` for failed jobs."""

    error_kind: Optional[str] = None
    """How a failed job failed -- the retry policy's decision input.

    ``"job-exception"`` means the job itself raised deterministically (the
    same inputs will raise again, so retrying is pointless); ``"worker-died"``,
    ``"timeout"`` and ``"os-error"`` are environmental failures the
    supervised runner treats as transient and retries with backoff.
    ``None`` for successful jobs.
    """

    elapsed_ms: float = 0.0
    cached: bool = False
    stats: Optional[Dict[str, int]] = None
    """The measure-engine counter deltas attributable to this job."""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def deterministic_dict(self) -> Dict[str, Any]:
        """Everything about the result that must reproduce byte-identically."""
        return {
            "key": self.key,
            "spec": self.spec.as_dict(),
            "status": self.status,
            "result": self.payload,
            "error": self.error,
            "error_kind": self.error_kind,
        }

    def to_json_line(self) -> str:
        return json.dumps(self.deterministic_dict(), sort_keys=True, separators=(",", ":"))

    def to_cache_dict(self) -> Dict[str, Any]:
        """The full record persisted by :class:`repro.batch.cache.BatchCache`."""
        record = self.deterministic_dict()
        record["elapsed_ms"] = self.elapsed_ms
        record["stats"] = self.stats
        return record

    @staticmethod
    def from_cache_dict(data: Mapping[str, Any]) -> "JobResult":
        return JobResult(
            spec=JobSpec.from_dict(data["spec"]),
            key=data["key"],
            status=data["status"],
            payload=data["result"],
            error=data["error"],
            error_kind=data.get("error_kind"),
            elapsed_ms=float(data.get("elapsed_ms", 0.0)),
            cached=True,
            stats=data.get("stats"),
        )


# ---------------------------------------------------------------------------
# Execution: one job, one shared measure engine.
# ---------------------------------------------------------------------------


def run_job(spec: JobSpec, engine: Optional[MeasureEngine] = None) -> JobResult:
    """Execute ``spec`` against ``engine`` and package the verdict.

    Failures of any kind become a structured ``"error"`` result -- a crashing
    job must never take a batch down.  The measure-engine counters accumulated
    by this job (the delta over the shared engine) are recorded in
    :attr:`JobResult.stats`.
    """
    engine = engine or MeasureEngine()
    try:
        key = spec.key()
    except Exception as exc:  # unparseable program, bad params, ...
        return JobResult(
            spec=spec,
            key="invalid-" + hashlib.sha256(repr(spec).encode()).hexdigest()[:16],
            status="error",
            payload=None,
            error=f"{type(exc).__name__}: {exc}",
            error_kind="job-exception",
        )
    before = engine.stats.as_dict()
    started = time.perf_counter()
    error_kind = None
    writer = telemetry.active()
    if writer is not None:
        # Sticky context: every span/event the analysis emits while this job
        # runs carries the program it belongs to.
        writer.set_context(program=spec.program, analysis=spec.analysis)
    try:
        try:
            payload = _execute(spec, engine)
            status, error = "ok", None
        except Exception as exc:
            payload, status, error = None, "error", f"{type(exc).__name__}: {exc}"
            error_kind = "job-exception"
    finally:
        if writer is not None:
            writer.set_context(program=None, analysis=None)
    elapsed_ms = (time.perf_counter() - started) * 1000
    after = engine.stats.as_dict()
    # High-water marks report the engine's absolute peak, not a per-job
    # difference: a worker engine shared across jobs telescopes differences
    # into nonsense, whereas absolute peaks merge exactly (by max) no matter
    # how the scheduler spread the jobs over workers.
    high_water = engine.stats.high_water_marks()
    delta = {
        name: after[name]
        if name in high_water
        else after[name] - before.get(name, 0)
        for name in after
    }
    return JobResult(
        spec=spec,
        key=key,
        status=status,
        payload=payload,
        error=error,
        error_kind=error_kind,
        elapsed_ms=elapsed_ms,
        cached=False,
        stats=delta,
    )


def _execute(spec: JobSpec, engine: MeasureEngine) -> Dict[str, Any]:
    program = spec.resolve()
    params = spec.canonical_params()
    if spec.analysis == "lower-bound":
        from repro.lowerbound.engine import LowerBoundEngine
        from repro.symbolic.execute import Strategy

        strategy = program.strategy
        if params["strategy"] is not None:
            strategy = Strategy[params["strategy"]]
        bound_engine = LowerBoundEngine(strategy=strategy, measure_engine=engine)
        result = bound_engine.lower_bound(
            program.applied, max_steps=params["depth"], max_paths=params["max_paths"]
        )
        return {
            "probability": encode_number(result.probability),
            "expected_steps": encode_number(result.expected_steps),
            "measure_gap": encode_number(result.measure_gap),
            "path_count": result.path_count,
            "exhaustive": result.exhaustive,
            "exact_measures": result.exact_measures,
        }
    if spec.analysis == "lower-bound-schedule":
        from repro.lowerbound.engine import LowerBoundEngine
        from repro.symbolic.execute import Strategy

        strategy = program.strategy
        if params["strategy"] is not None:
            strategy = Strategy[params["strategy"]]
        schedule = [int(depth) for depth in params["schedule"]]
        if (
            not schedule
            or schedule[0] <= 0
            or any(second < first for first, second in zip(schedule, schedule[1:]))
        ):
            raise ValueError(
                "schedule must be a non-empty, non-decreasing list of "
                f"positive depths, got {schedule!r}"
            )
        bound_engine = LowerBoundEngine(strategy=strategy, measure_engine=engine)
        trajectory = []
        for result in bound_engine.lower_bound_schedule(
            program.applied,
            schedule,
            max_paths=params["max_paths"],
            target_gap=decode_number(params["target_gap"]),
        ):
            trajectory.append(
                {
                    "depth": result.max_steps,
                    "probability": encode_number(result.probability),
                    "expected_steps": encode_number(result.expected_steps),
                    "measure_gap": encode_number(result.measure_gap),
                    "anytime_gap": encode_number(result.anytime_gap()),
                    "path_count": result.path_count,
                    "exhaustive": result.exhaustive,
                    "exact_measures": result.exact_measures,
                }
            )
        final = trajectory[-1]
        # The final depth's fields are duplicated at the top level so the
        # payload is a drop-in superset of a plain lower-bound payload.
        return {
            "schedule": schedule,
            "depths_run": len(trajectory),
            "trajectory": trajectory,
            "probability": final["probability"],
            "expected_steps": final["expected_steps"],
            "measure_gap": final["measure_gap"],
            "path_count": final["path_count"],
            "exhaustive": final["exhaustive"],
            "exact_measures": final["exact_measures"],
        }
    if spec.analysis == "explore-shard":
        from repro.batch.distribute import execute_shards

        return execute_shards(program, params, engine)
    if spec.analysis == "verify":
        from repro.astcheck import verify_ast

        result = verify_ast(program, max_steps=params["max_steps"], engine=engine)
        return {
            "verified": result.verified,
            "papprox": repr(result.papprox) if result.papprox is not None else None,
            "rank": result.rank,
            "exact": result.exact,
            "reasons": list(result.reasons),
        }
    if spec.analysis == "classify":
        from repro.pastcheck import classify_termination

        classification = classify_termination(
            program, max_steps=params["max_steps"], engine=engine
        )
        past = classification.past
        return {
            "verdict": classification.verdict.name,
            "summary": classification.summary(),
            "ast_verified": classification.ast.verified,
            "past_verified": past.verified,
            "papprox": repr(past.papprox) if past.papprox is not None else None,
            "expected_calls_per_body": encode_number(past.expected_calls_per_body),
            "expected_total_calls": encode_number(past.expected_total_calls),
        }
    if spec.analysis == "estimate":
        from repro.semantics import estimate_termination

        estimate = estimate_termination(
            program.applied,
            runs=params["runs"],
            max_steps=params["max_steps"],
            seed=params["seed"],
        )
        return {
            "probability": estimate.probability,
            "terminated": estimate.terminated,
            "runs": estimate.runs,
            "mean_steps": estimate.mean_steps,
            "mean_samples": estimate.mean_samples,
            "stderr": estimate.stderr,
        }
    if spec.analysis == "papprox":
        from repro.astcheck.exectree import build_execution_tree
        from repro.astcheck.papprox import papprox_distribution

        tree = build_execution_tree(program.fix, max_steps=params["max_steps"])
        result = papprox_distribution(tree, engine=engine)
        return {
            "rank": result.rank,
            "exact": result.exact,
            "cumulative": [encode_number(value) for value in result.cumulative],
            "distribution": repr(result.distribution),
        }
    raise ValueError(f"unknown analysis {spec.analysis!r}")
