"""The batch scheduler: fan jobs out across cores, through the cache.

``run_batch`` executes a list of :class:`~repro.batch.jobs.JobSpec` and
returns every :class:`~repro.batch.jobs.JobResult` *in submission order*
(scheduling is free to reorder work -- longest-expected jobs first -- but the
output never depends on completion order, which is what keeps batch JSONL
files byte-identical across runs and across ``--jobs`` settings).

Execution modes:

* ``jobs <= 1`` -- inline in this process, one shared
  :class:`~repro.geometry.engine.MeasureEngine` across all jobs (the same
  semantics as the serial CLI commands);
* ``jobs > 1`` -- a ``ProcessPoolExecutor`` of worker processes, each owning
  one engine for the jobs it runs.  Workers are seeded with the persistent
  measure entries at startup, so sibling workers skip work the cache already
  knows.  A job that raises returns a structured error result; a worker
  process that dies outright surfaces as error results for its jobs, never as
  a batch crash.

With a :class:`~repro.batch.cache.BatchCache`, finished results are
persisted as they complete and already-cached jobs are never re-run, so an
unchanged batch re-runs near-instantly.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.batch.cache import BatchCache
from repro.batch.jobs import JobResult, JobSpec, run_job
from repro.geometry.engine import MeasureEngine
from repro.geometry.measure import MeasureOptions
from repro.geometry.stats import PerfStats

__all__ = [
    "BatchReport",
    "read_result_keys",
    "run_batch",
    "write_results_jsonl",
]

ProgressCallback = Callable[[JobResult, int, int], None]


@dataclass
class BatchReport:
    """Everything a batch run produced, plus scheduling bookkeeping."""

    results: List[JobResult]
    elapsed_seconds: float
    cache_hits: int
    cache_misses: int
    stats: PerfStats = field(default_factory=PerfStats)
    """Merged measure-engine counters over the jobs that actually ran."""

    cache_enabled: bool = True
    """Whether a persistent cache was consulted at all."""

    @property
    def error_count(self) -> int:
        return sum(1 for result in self.results if not result.ok)

    @property
    def ok_count(self) -> int:
        return len(self.results) - self.error_count

    def summary(self) -> str:
        """The human-readable footer printed by ``python -m repro batch``."""
        if self.cache_enabled:
            cache_line = f"job cache        : {self.cache_hits} hits, {self.cache_misses} misses"
        else:
            cache_line = "job cache        : disabled (no cache directory)"
        return "\n".join(
            [
                f"jobs             : {len(self.results)} total, "
                f"{self.ok_count} ok, {self.error_count} errors",
                cache_line,
                f"measure requests : {self.stats.measure_requests} "
                f"({self.stats.cache_hits} memo hits, "
                f"{self.stats.persistent_hits} persistent hits)",
                f"wall time        : {self.elapsed_seconds:.2f} s",
            ]
        )


def _safe_key(spec: JobSpec) -> Optional[str]:
    try:
        return spec.key()
    except Exception:
        return None


def _merge_stats(total: PerfStats, delta: Optional[Dict[str, int]]) -> None:
    if not delta:
        return
    addition = PerfStats()
    for name, value in delta.items():
        if hasattr(addition, name) and isinstance(value, int):
            setattr(addition, name, value)
    total.merge(addition)


# -- worker-process plumbing --------------------------------------------------

_WORKER_ENGINE: Optional[MeasureEngine] = None


def _worker_init(
    measure_entries: Dict[str, list], sweep_entries: Dict[str, list]
) -> None:
    """Build this worker's engine, pre-seeded from the persistent cache."""
    global _WORKER_ENGINE
    _WORKER_ENGINE = MeasureEngine()
    if measure_entries:
        _WORKER_ENGINE.import_cache_entries(measure_entries)
    if sweep_entries:
        _WORKER_ENGINE.import_sweep_entries(sweep_entries)


def _worker_run(indexed_spec):
    """Run one job in a worker; ship back the new measure and sweep entries
    plus the persistent keys the job was answered from (GC touch stamps)."""
    index, spec = indexed_spec
    engine = _WORKER_ENGINE or MeasureEngine()
    result = run_job(spec, engine)
    return (
        index,
        result,
        engine.export_cache_entries(),
        engine.export_sweep_entries(),
        engine.drain_persistent_hit_keys(),
    )


# -- the scheduler -------------------------------------------------------------


def run_batch(
    specs: Sequence[JobSpec],
    jobs: int = 1,
    cache: Optional[BatchCache] = None,
    engine: Optional[MeasureEngine] = None,
    progress: Optional[ProgressCallback] = None,
) -> BatchReport:
    """Execute ``specs`` and return their results in submission order."""
    started = time.perf_counter()
    specs = list(specs)
    total = len(specs)
    results: List[Optional[JobResult]] = [None] * total
    completed = 0
    hits = 0

    def note(result: JobResult) -> None:
        nonlocal completed
        completed += 1
        if progress is not None:
            progress(result, completed, total)

    # Cached job results were computed under the default engine options, so
    # an explicitly configured engine (``--no-block-sweep``, a sweep budget,
    # ...) must not replay them -- its own answers can differ -- and must
    # run inline: pool workers build default engines and would silently
    # compute default-option results.  The measure/sweep stores stay shared
    # either way; their persistent keys carry the options.
    job_cache = cache
    if engine is not None and engine.options != MeasureOptions():
        job_cache = None
        jobs = 1

    # Answer whatever the job cache already knows, in order.
    pending: List[int] = []
    for index, spec in enumerate(specs):
        cached = None
        if job_cache is not None:
            key = _safe_key(spec)
            cached = job_cache.load_job(key) if key else None
        if cached is not None:
            results[index] = cached
            hits += 1
            note(cached)
        else:
            pending.append(index)

    merged_stats = PerfStats()
    if pending:
        if jobs <= 1 or len(pending) == 1:
            _run_inline(specs, pending, cache, job_cache, engine, results, note)
        else:
            _run_pool(specs, pending, jobs, cache, job_cache, results, note)
    for result in results:
        if result is not None and not result.cached:
            _merge_stats(merged_stats, result.stats)

    elapsed = time.perf_counter() - started
    return BatchReport(
        results=[result for result in results if result is not None],
        elapsed_seconds=elapsed,
        cache_hits=hits,
        cache_misses=len(pending),
        stats=merged_stats,
        cache_enabled=cache is not None,
    )


def _run_inline(
    specs: Sequence[JobSpec],
    pending: Sequence[int],
    cache: Optional[BatchCache],
    job_cache: Optional[BatchCache],
    engine: Optional[MeasureEngine],
    results: List[Optional[JobResult]],
    note: Callable[[JobResult], None],
) -> None:
    engine = engine or MeasureEngine()
    if cache is not None:
        engine.import_cache_entries(cache.load_measures(engine))
        engine.import_sweep_entries(cache.load_sweeps(engine))
    for index in pending:
        result = run_job(specs[index], engine)
        results[index] = result
        if job_cache is not None:
            job_cache.store_job(result)
        note(result)
    if cache is not None:
        run = cache.begin_run()
        touched_measures, touched_sweeps = engine.drain_persistent_hit_keys()
        cache.merge_measures(
            engine, engine.export_cache_entries(), run=run, touched_keys=touched_measures
        )
        cache.merge_sweeps(
            engine, engine.export_sweep_entries(), run=run, touched_keys=touched_sweeps
        )


def _schedule_order(specs: Sequence[JobSpec], pending: Sequence[int]) -> List[int]:
    """Longest-expected-first: big jobs must not start last on a full pool."""
    return sorted(pending, key=lambda index: -specs[index].cost_hint)


def _run_pool(
    specs: Sequence[JobSpec],
    pending: Sequence[int],
    jobs: int,
    cache: Optional[BatchCache],
    job_cache: Optional[BatchCache],
    results: List[Optional[JobResult]],
    note: Callable[[JobResult], None],
) -> None:
    probe = MeasureEngine()
    measure_entries = cache.load_measures(probe) if cache is not None else {}
    sweep_entries = cache.load_sweeps(probe) if cache is not None else {}
    collected: Dict[str, list] = {}
    collected_sweeps: Dict[str, list] = {}
    touched_measures: set = set()
    touched_sweeps: set = set()
    context = None
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(pending)),
        mp_context=context,
        initializer=_worker_init,
        initargs=(measure_entries, sweep_entries),
    ) as pool:
        futures = {
            pool.submit(_worker_run, (index, specs[index])): index
            for index in _schedule_order(specs, pending)
        }
        for future in as_completed(futures):
            index = futures[future]
            try:
                index, result, new_entries, new_sweeps, hit_keys = future.result()
                collected.update(new_entries)
                collected_sweeps.update(new_sweeps)
                touched_measures.update(hit_keys[0])
                touched_sweeps.update(hit_keys[1])
            except Exception as exc:  # worker process died (BrokenProcessPool, ...)
                result = JobResult(
                    spec=specs[index],
                    key=_safe_key(specs[index]) or f"unkeyed-{index}",
                    status="error",
                    payload=None,
                    error=f"{type(exc).__name__}: {exc}",
                )
            results[index] = result
            if job_cache is not None:
                job_cache.store_job(result)
            note(result)
    if cache is not None:
        run = cache.begin_run()
        cache.merge_measures(probe, collected, run=run, touched_keys=touched_measures)
        cache.merge_sweeps(probe, collected_sweeps, run=run, touched_keys=touched_sweeps)


# -- JSONL output --------------------------------------------------------------


def write_results_jsonl(
    path: Union[str, Path], results: Iterable[JobResult], append: bool = False
) -> None:
    """Write the deterministic result lines (same batch => same bytes)."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a" if append else "w") as stream:
        for result in results:
            stream.write(result.to_json_line() + "\n")


def read_result_keys(path: Union[str, Path]) -> Set[str]:
    """The keys of *successful* jobs in a results file.

    Error records are deliberately not collected: resuming a batch must retry
    failed jobs (their failure may have been environmental -- the same policy
    as :meth:`BatchCache.store_job`), so only ``"ok"`` lines count as done.
    Corrupt lines are skipped.
    """
    keys: Set[str] = set()
    try:
        with open(path, "r") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(record, dict) or record.get("status") != "ok":
                    continue
                key = record.get("key")
                if isinstance(key, str):
                    keys.add(key)
    except OSError:
        return keys
    return keys
