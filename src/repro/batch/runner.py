"""The batch scheduler: fan jobs out across cores, through the cache.

``run_batch`` executes a list of :class:`~repro.batch.jobs.JobSpec` and
returns every :class:`~repro.batch.jobs.JobResult` *in submission order*
(scheduling is free to reorder work -- longest-expected jobs first -- but the
output never depends on completion order, which is what keeps batch JSONL
files byte-identical across runs and across ``--jobs`` settings).

Execution modes:

* inline -- in this process, one shared
  :class:`~repro.geometry.engine.MeasureEngine` across all jobs (the same
  semantics as the serial CLI commands);
* supervised pool (``jobs > 1``, or any run with a ``--job-timeout``) -- a
  ``ProcessPoolExecutor`` of worker processes, each owning one engine for
  the jobs it runs, watched by a supervisor loop in this process.  Workers
  are seeded with the persistent measure entries at startup, so sibling
  workers skip work the cache already knows.

The supervisor makes the pool fault-tolerant rather than merely parallel:

* submissions are bounded to the worker count, so every running job's
  wall-clock deadline (``job_timeout``) is measured from the moment it
  actually started;
* a job past its deadline gets the whole pool terminated (an executor
  cannot cancel a *running* future), the timed-out job is charged a retry
  attempt, its innocent neighbours are resubmitted as orphans at no attempt
  cost, and a fresh pool -- re-seeded with everything collected so far --
  picks up the queue;
* a worker death (``BrokenProcessPool``) poisons every in-flight future;
  each one is classified ``"worker-died"`` and retried with backoff, since
  the culprit cannot be told apart from its victims;
* *transient* failures (worker death, timeout, OS errors) are retried up to
  :attr:`RetryPolicy.max_retries` times with exponential backoff and seeded
  jitter; *deterministic* job exceptions fail fast -- rerunning the same
  spec on the same code would only fail the same way;
* results completed before a crash -- and the measure/sweep entries already
  shipped back -- are never lost: they live in the supervisor, not in the
  dead worker.

Every recovery is counted (``retries``, ``timeouts``, ``worker_restarts``)
on the :class:`BatchReport` and mirrored into its
:class:`~repro.geometry.stats.PerfStats` for ``--stats`` / ``--stats-json``.

With a persistent store (:class:`~repro.batch.cache.BatchCache` or
:class:`~repro.batch.store_sqlite.SqliteStore` -- the runner only uses the
shared store protocol), finished results are persisted as they complete and
already-cached jobs are never re-run, so an unchanged batch re-runs
near-instantly.

Invariants (cited by ``docs/architecture.md``; the test suite enforces
them):

* **Bit-identity** -- the deterministic JSONL produced by a batch is
  byte-identical across runs, across ``--jobs`` settings, across cold and
  warm stores, and across both store backends: scheduling, caching and
  fault recovery may change *when* a result is computed, never *what* it
  is.
* **Submission order** -- results are returned in submission order no
  matter the completion order, which is what makes the previous point
  testable at the file level.
* **Crash-safety** -- a killed run loses at most in-flight work: completed
  results live in the supervisor and the store (atomic writes, journalled
  or transactional merges), and the next run resumes from them.
"""

from __future__ import annotations

import heapq
import json
import logging
import multiprocessing
import os
import random
import tempfile
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Union

import repro.telemetry as telemetry
from repro.batch.faults import active_plan
from repro.batch.jobs import JobResult, JobSpec, run_job
from repro.geometry.engine import MeasureEngine
from repro.geometry.measure import MeasureOptions
from repro.geometry.stats import PerfStats

__all__ = [
    "BatchReport",
    "ResultScan",
    "RetryPolicy",
    "read_result_keys",
    "run_batch",
    "scan_results_jsonl",
    "write_results_jsonl",
]

ProgressCallback = Callable[[JobResult, int, int], None]

_LOGGER = logging.getLogger("repro.batch")

_SUPERVISOR_TICK_SECONDS = 0.05
"""How long one supervisor wait blocks: bounds timeout-detection latency."""

_TRANSIENT_KINDS = frozenset({"worker-died", "timeout", "os-error"})
"""Failure kinds worth retrying; everything else is deterministic."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervised pool retries *transient* job failures.

    A failed attempt is retried after an exponentially growing backoff with
    seeded jitter (so two batches retrying into one shared cache directory
    do not stampede in lockstep), up to ``max_retries`` re-submissions per
    job.  Deterministic job exceptions never consult this policy.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Seconds to wait before re-submitting attempt ``attempt`` (1-based)."""
        base = min(
            self.backoff_cap_seconds,
            self.backoff_seconds * (2 ** max(0, attempt - 1)),
        )
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class BatchReport:
    """Everything a batch run produced, plus scheduling bookkeeping."""

    results: List[JobResult]
    elapsed_seconds: float
    cache_hits: int
    cache_misses: int
    stats: PerfStats = field(default_factory=PerfStats)
    """Merged measure-engine counters over the jobs that actually ran."""

    cache_enabled: bool = True
    """Whether a persistent cache was consulted at all."""

    retries: int = 0
    """Transient failures re-submitted by the supervisor."""

    timeouts: int = 0
    """Jobs that blew their ``job_timeout`` wall-clock budget."""

    worker_restarts: int = 0
    """Times the worker pool was torn down and rebuilt mid-batch."""

    quarantined_shards: int = 0
    """Damaged store files quarantined while this batch ran."""

    corrupt_result_lines: int = 0
    """Unparseable lines found in the output file's pre-run scan.

    Filled by the CLI whenever the results file is scanned (not just under
    ``--resume``), so a torn results file is always visible in the footer.
    """

    @property
    def error_count(self) -> int:
        return sum(1 for result in self.results if not result.ok)

    @property
    def ok_count(self) -> int:
        return len(self.results) - self.error_count

    def summary(self) -> str:
        """The human-readable footer printed by ``python -m repro batch``."""
        if self.cache_enabled:
            cache_line = f"job cache        : {self.cache_hits} hits, {self.cache_misses} misses"
        else:
            cache_line = "job cache        : disabled (no cache directory)"
        lines = [
            f"jobs             : {len(self.results)} total, "
            f"{self.ok_count} ok, {self.error_count} errors",
            cache_line,
            f"measure requests : {self.stats.measure_requests} "
            f"({self.stats.cache_hits} memo hits, "
            f"{self.stats.persistent_hits} persistent hits)",
        ]
        if self.retries or self.timeouts or self.worker_restarts:
            lines.append(
                f"fault recovery   : {self.retries} retries, "
                f"{self.timeouts} timeouts, "
                f"{self.worker_restarts} worker restarts"
            )
        if self.stats.shards_executed or self.stats.shards_stolen:
            lines.append(
                f"frontier shards  : {self.stats.shards_executed} executed, "
                f"{self.stats.shards_stolen} stolen"
            )
        if self.quarantined_shards:
            lines.append(f"quarantined files: {self.quarantined_shards}")
        if self.corrupt_result_lines:
            lines.append(
                f"corrupt results  : {self.corrupt_result_lines} unparseable "
                "line(s) in the existing output file"
            )
        lines.append(f"wall time        : {self.elapsed_seconds:.2f} s")
        return "\n".join(lines)


def _safe_key(spec: JobSpec, warned: Optional[Set[int]] = None) -> Optional[str]:
    """``spec.key()``, or ``None`` -- logged once per spec per batch, so an
    unkeyable job (which can never be cached or resumed) is diagnosable."""
    try:
        return spec.key()
    except Exception as exc:
        if warned is not None and id(spec) not in warned:
            warned.add(id(spec))
            _LOGGER.warning(
                "job spec %r has no stable key (it will not be cached or "
                "resumable): %s: %s",
                spec,
                type(exc).__name__,
                exc,
            )
        return None


def _merge_stats(total: PerfStats, delta: Optional[Dict[str, int]]) -> None:
    if not delta:
        return
    addition = PerfStats()
    for name, value in delta.items():
        if hasattr(addition, name) and isinstance(value, int):
            setattr(addition, name, value)
    total.merge(addition)


# -- worker-process plumbing --------------------------------------------------

_WORKER_ENGINE: Optional[MeasureEngine] = None


def _worker_init(
    measure_entries: Dict[str, list], sweep_entries: Dict[str, list]
) -> None:
    """Build this worker's engine, pre-seeded from the persistent cache."""
    global _WORKER_ENGINE
    telemetry.init_worker_from_env()
    _WORKER_ENGINE = MeasureEngine()
    if measure_entries:
        _WORKER_ENGINE.import_cache_entries(measure_entries)
    if sweep_entries:
        _WORKER_ENGINE.import_sweep_entries(sweep_entries)


def _worker_run(indexed_spec):
    """Run one job in a worker; ship back the new measure and sweep entries
    plus the persistent keys the job was answered from (GC touch stamps)."""
    index, spec = indexed_spec
    telemetry.emit(
        "job-started", job=index, program=spec.program, analysis=spec.analysis
    )
    plan = active_plan()
    if plan is not None:  # fault injection: die or hang before the job runs
        plan.on_job_start(index)
    engine = _WORKER_ENGINE or MeasureEngine()
    result = run_job(spec, engine)
    return (
        index,
        result,
        engine.export_cache_entries(),
        engine.export_sweep_entries(),
        engine.drain_persistent_hit_keys(),
    )


# -- the scheduler -------------------------------------------------------------


def run_batch(
    specs: Sequence[JobSpec],
    jobs: int = 1,
    cache=None,
    engine: Optional[MeasureEngine] = None,
    progress: Optional[ProgressCallback] = None,
    job_timeout: Optional[float] = None,
    retry_policy: Optional[RetryPolicy] = None,
    config=None,
) -> BatchReport:
    """Execute ``specs`` and return their results in submission order.

    ``cache`` is any object implementing the shared store protocol
    (:class:`~repro.batch.cache.BatchCache` or
    :class:`~repro.batch.store_sqlite.SqliteStore`).

    ``config`` (a :class:`repro.config.ReproConfig`) is the consolidated
    way to parameterize a batch: any of ``jobs``/``cache``/``job_timeout``/
    ``retry_policy`` left at its default is filled from the config, so the
    CLI and the daemon hand the runner one object instead of re-deriving
    each knob.  Explicitly passed arguments always win.

    ``job_timeout`` (seconds of wall clock per job) and ``retry_policy``
    are enforced by the supervised pool; setting a timeout therefore forces
    pool execution even for ``jobs=1``, since an inline job cannot be
    interrupted.  An explicitly configured non-default engine always runs
    inline (see below) and is outside the supervisor's reach.
    """
    if config is not None:
        if jobs == 1:
            jobs = config.effective_jobs(default=1)
        if cache is None:
            cache = config.open_store()
        if job_timeout is None:
            job_timeout = config.job_timeout
        if retry_policy is None:
            retry_policy = config.retry_policy()
    started = time.perf_counter()
    specs = list(specs)
    total = len(specs)
    results: List[Optional[JobResult]] = [None] * total
    completed = 0
    hits = 0
    warned_keys: Set[int] = set()
    base_quarantined = cache.quarantine_count if cache is not None else 0

    def note(result: JobResult) -> None:
        nonlocal completed
        completed += 1
        telemetry.emit(
            "job-completed",
            program=result.spec.program,
            analysis=result.spec.analysis,
            status=result.status,
            cached=result.cached,
            elapsed_ms=round(result.elapsed_ms, 3),
        )
        if progress is not None:
            progress(result, completed, total)

    # Cached job results were computed under the default engine options, so
    # an explicitly configured engine (``--no-block-sweep``, a sweep budget,
    # ...) must not replay them -- its own answers can differ -- and must
    # run inline: pool workers build default engines and would silently
    # compute default-option results.  The measure/sweep stores stay shared
    # either way; their persistent keys carry the options.
    job_cache = cache
    forced_inline = engine is not None and engine.options != MeasureOptions()
    if forced_inline:
        job_cache = None
        jobs = 1

    # Answer whatever the job cache already knows, in order.
    pending: List[int] = []
    for index, spec in enumerate(specs):
        cached = None
        if job_cache is not None:
            key = _safe_key(spec, warned_keys)
            cached = job_cache.load_job(key) if key else None
        if cached is not None:
            results[index] = cached
            hits += 1
            note(cached)
        else:
            telemetry.emit(
                "job-scheduled",
                job=index,
                program=spec.program,
                analysis=spec.analysis,
            )
            pending.append(index)

    merged_stats = PerfStats()
    if pending:
        inline = forced_inline or (
            job_timeout is None and (jobs <= 1 or len(pending) == 1)
        )
        if inline:
            _run_inline(specs, pending, cache, job_cache, engine, results, note)
            supervisor = _SupervisorCounters()
        else:
            supervisor = _run_pool(
                specs,
                pending,
                jobs,
                cache,
                job_cache,
                results,
                note,
                warned_keys,
                job_timeout,
                retry_policy,
            )
    else:
        supervisor = _SupervisorCounters()
    for result in results:
        if result is not None and not result.cached:
            _merge_stats(merged_stats, result.stats)

    quarantined = (
        cache.quarantine_count - base_quarantined if cache is not None else 0
    )
    merged_stats.retries += supervisor.retries
    merged_stats.timeouts += supervisor.timeouts
    merged_stats.worker_restarts += supervisor.worker_restarts
    merged_stats.quarantined_shards += quarantined
    if engine is not None and quarantined:
        # Inline runs report the caller's engine stats; keep them in step.
        engine.stats.quarantined_shards += quarantined

    elapsed = time.perf_counter() - started
    return BatchReport(
        results=[result for result in results if result is not None],
        elapsed_seconds=elapsed,
        cache_hits=hits,
        cache_misses=len(pending),
        stats=merged_stats,
        cache_enabled=cache is not None,
        retries=supervisor.retries,
        timeouts=supervisor.timeouts,
        worker_restarts=supervisor.worker_restarts,
        quarantined_shards=quarantined,
    )


def _run_inline(
    specs: Sequence[JobSpec],
    pending: Sequence[int],
    cache,
    job_cache,
    engine: Optional[MeasureEngine],
    results: List[Optional[JobResult]],
    note: Callable[[JobResult], None],
) -> None:
    engine = engine or MeasureEngine()
    if cache is not None:
        engine.import_cache_entries(cache.load_measures(engine))
        engine.import_sweep_entries(cache.load_sweeps(engine))
    for index in pending:
        result = run_job(specs[index], engine)
        results[index] = result
        if job_cache is not None:
            job_cache.store_job(result)
        note(result)
    if cache is not None:
        run = cache.begin_run()
        touched_measures, touched_sweeps = engine.drain_persistent_hit_keys()
        cache.merge_measures(
            engine, engine.export_cache_entries(), run=run, touched_keys=touched_measures
        )
        cache.merge_sweeps(
            engine, engine.export_sweep_entries(), run=run, touched_keys=touched_sweeps
        )


def _schedule_order(specs: Sequence[JobSpec], pending: Sequence[int]) -> List[int]:
    """Longest-expected-first: big jobs must not start last on a full pool."""
    return sorted(pending, key=lambda index: -specs[index].cost_hint)


@dataclass
class _SupervisorCounters:
    """What the supervised pool had to do beyond plain scheduling."""

    retries: int = 0
    timeouts: int = 0
    worker_restarts: int = 0


def _classify_failure(exc: BaseException) -> str:
    """Map a pool-level future exception onto a structured ``error_kind``.

    Job-code exceptions never reach here -- :func:`run_job` converts them to
    error *results* inside the worker -- so a raising future means the
    machinery failed: the worker died, the OS refused something, or the
    payload could not cross the process boundary (deterministic, fail fast).
    """
    if isinstance(exc, BrokenProcessPool):
        return "worker-died"
    if isinstance(exc, OSError):
        return "os-error"
    return "job-exception"


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, hung workers included.

    An executor cannot cancel a running future, so a hung job can only be
    reclaimed by killing its process; terminating every worker is the only
    portable way since the executor does not expose which worker runs what.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_pool(
    specs: Sequence[JobSpec],
    pending: Sequence[int],
    jobs: int,
    cache,
    job_cache,
    results: List[Optional[JobResult]],
    note: Callable[[JobResult], None],
    warned_keys: Set[int],
    job_timeout: Optional[float],
    retry_policy: Optional[RetryPolicy],
) -> _SupervisorCounters:
    policy = retry_policy or RetryPolicy()
    rng = random.Random(policy.seed)
    counters = _SupervisorCounters()
    probe = MeasureEngine()
    measure_entries = cache.load_measures(probe) if cache is not None else {}
    sweep_entries = cache.load_sweeps(probe) if cache is not None else {}
    collected: Dict[str, list] = {}
    collected_sweeps: Dict[str, list] = {}
    touched_measures: set = set()
    touched_sweeps: set = set()
    context = None
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    max_workers = min(jobs, len(pending)) or 1

    # Arm tracing for the pool: workers find the supervisor's trace path in
    # the environment (survives fork and spawn alike) and write their own
    # ``<path>.worker-<pid>`` side files, folded back in deterministically
    # once the pool is done.
    trace_writer = telemetry.active()
    trace_base = str(trace_writer.path) if trace_writer is not None else None
    previous_trace_env = os.environ.get(telemetry.ENV_VAR)
    if trace_base is not None:
        os.environ[telemetry.ENV_VAR] = trace_base

    def make_pool() -> ProcessPoolExecutor:
        # Rebuilt pools are seeded with everything collected so far, so work
        # finished before a crash is never recomputed by its replacement.
        return ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(
                {**measure_entries, **collected},
                {**sweep_entries, **collected_sweeps},
            ),
        )

    def consume(payload) -> None:
        index, result, new_entries, new_sweeps, hit_keys = payload
        collected.update(new_entries)
        collected_sweeps.update(new_sweeps)
        touched_measures.update(hit_keys[0])
        touched_sweeps.update(hit_keys[1])
        results[index] = result
        if job_cache is not None:
            job_cache.store_job(result)
        note(result)

    def finalize_error(index: int, kind: str, message: str) -> None:
        result = JobResult(
            spec=specs[index],
            key=_safe_key(specs[index], warned_keys) or f"unkeyed-{index}",
            status="error",
            payload=None,
            error=message,
            error_kind=kind,
        )
        results[index] = result
        note(result)

    def fail(index: int, attempts: int, kind: str, message: str) -> int:
        """Handle one failed attempt: schedule a retry or finalize.  Returns
        the attempt count now charged to the job."""
        attempts += 1
        if kind in _TRANSIENT_KINDS and attempts <= policy.max_retries:
            counters.retries += 1
            delay = policy.delay(attempts, rng)
            telemetry.emit(
                "job-retried",
                job=index,
                attempts=attempts,
                kind=kind,
                delay=round(delay, 4),
            )
            ready = time.monotonic() + delay
            heapq.heappush(retry_heap, (ready, index, attempts))
        else:
            finalize_error(index, kind, message)
        return attempts

    # (index, attempts) for jobs ready to submit; the retry heap holds
    # (ready-time, index, attempts) for jobs waiting out their backoff.
    queue = deque((index, 0) for index in _schedule_order(specs, pending))
    retry_heap: List[tuple] = []
    in_flight: Dict[object, tuple] = {}  # future -> (index, attempts, deadline)

    pool = make_pool()
    try:
        while queue or retry_heap or in_flight:
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                _, index, attempts = heapq.heappop(retry_heap)
                queue.append((index, attempts))
            # Submissions are bounded by the worker count so a submitted job
            # starts (near-)immediately -- its deadline measures the job, not
            # its time in the executor's internal queue.
            while queue and len(in_flight) < max_workers:
                index, attempts = queue.popleft()
                deadline = now + job_timeout if job_timeout is not None else None
                future = pool.submit(_worker_run, (index, specs[index]))
                in_flight[future] = (index, attempts, deadline)
            if not in_flight:
                if retry_heap:  # everything alive is waiting out a backoff
                    pause = retry_heap[0][0] - time.monotonic()
                    if pause > 0:
                        time.sleep(min(pause, _SUPERVISOR_TICK_SECONDS))
                continue

            done, _ = wait(
                set(in_flight),
                timeout=_SUPERVISOR_TICK_SECONDS,
                return_when=FIRST_COMPLETED,
            )
            pool_broken = False
            for future in done:
                index, attempts, _deadline = in_flight.pop(future)
                try:
                    consume(future.result())
                except BaseException as exc:
                    kind = _classify_failure(exc)
                    pool_broken = pool_broken or isinstance(exc, BrokenProcessPool)
                    fail(index, attempts, kind, f"{type(exc).__name__}: {exc}")

            if pool_broken:
                # A dead worker poisons the whole executor: every remaining
                # in-flight future fails with the same BrokenProcessPool.
                for future, (index, attempts, _deadline) in list(in_flight.items()):
                    del in_flight[future]
                    try:
                        consume(future.result())
                    except BaseException as exc:
                        fail(
                            index,
                            attempts,
                            _classify_failure(exc),
                            f"{type(exc).__name__}: {exc}",
                        )
                counters.worker_restarts += 1
                telemetry.emit("worker-restart", reason="worker-died")
                pool.shutdown(wait=False, cancel_futures=True)
                pool = make_pool()
                continue

            if job_timeout is None:
                continue
            now = time.monotonic()
            timed_out = {
                future
                for future, (_index, _attempts, deadline) in in_flight.items()
                if deadline is not None and now > deadline and not future.done()
            }
            if not timed_out:
                continue
            # A running future cannot be cancelled: reclaim the hung worker
            # by replacing the pool.  The overdue job is charged an attempt;
            # its innocent neighbours become orphans and are resubmitted
            # without one.
            counters.timeouts += len(timed_out)
            for future in timed_out:
                telemetry.emit(
                    "job-timeout", job=in_flight[future][0], budget=job_timeout
                )
            counters.worker_restarts += 1
            telemetry.emit("worker-restart", reason="hung-job")
            _terminate_pool(pool)
            for future, (index, attempts, _deadline) in list(in_flight.items()):
                del in_flight[future]
                if future in timed_out:
                    fail(
                        index,
                        attempts,
                        "timeout",
                        f"job exceeded its {job_timeout:g}s wall-clock budget",
                    )
                elif future.done():
                    try:
                        consume(future.result())
                    except (BrokenProcessPool, CancelledError):
                        # A casualty of the pool we just killed, not a fault
                        # of its own: orphans are resubmitted at no attempt
                        # cost.
                        queue.append((index, attempts))
                    except BaseException as exc:
                        fail(
                            index,
                            attempts,
                            _classify_failure(exc),
                            f"{type(exc).__name__}: {exc}",
                        )
                else:
                    queue.append((index, attempts))
            pool = make_pool()
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
        if trace_base is not None:
            if previous_trace_env is None:
                os.environ.pop(telemetry.ENV_VAR, None)
            else:
                os.environ[telemetry.ENV_VAR] = previous_trace_env
            telemetry.merge_worker_traces(trace_base)

    if counters.retries or counters.worker_restarts:
        _LOGGER.warning(
            "batch recovered from faults: %d retries, %d timeouts, "
            "%d worker restarts",
            counters.retries,
            counters.timeouts,
            counters.worker_restarts,
        )
    if cache is not None:
        run = cache.begin_run()
        cache.merge_measures(probe, collected, run=run, touched_keys=touched_measures)
        cache.merge_sweeps(probe, collected_sweeps, run=run, touched_keys=touched_sweeps)
    return counters


# -- JSONL output --------------------------------------------------------------


def write_results_jsonl(
    path: Union[str, Path], results: Iterable[JobResult], append: bool = False
) -> None:
    """Write the deterministic result lines (same batch => same bytes).

    Overwrite mode stages the lines in a temp file and :func:`os.replace`\\ s
    it into place -- the same torn-file policy as the cache -- so a crash
    mid-write can never destroy the previous results file.  Append mode
    (``--resume``) necessarily writes in place.
    """
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    if append:
        with open(path, "a") as stream:
            for result in results:
                stream.write(result.to_json_line() + "\n")
        return
    handle, temp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as stream:
            for result in results:
                stream.write(result.to_json_line() + "\n")
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


@dataclass
class ResultScan:
    """What one pass over a results JSONL file found."""

    ok_keys: Set[str] = field(default_factory=set)
    error_keys: Set[str] = field(default_factory=set)
    corrupt_lines: int = 0
    total_lines: int = 0


def scan_results_jsonl(path: Union[str, Path]) -> ResultScan:
    """Classify every line of a results file: ok, error, or corrupt.

    ``--resume`` treats only :attr:`ResultScan.ok_keys` as done (failed jobs
    must be retried: their failure may have been environmental -- the same
    policy as :meth:`BatchCache.store_job`), but corrupt lines are *counted*
    rather than silently dropped, so a torn results file is visible to the
    operator instead of quietly re-running work.
    """
    scan = ResultScan()
    try:
        with open(path, "r") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                scan.total_lines += 1
                try:
                    record = json.loads(line)
                except ValueError:
                    scan.corrupt_lines += 1
                    continue
                if not isinstance(record, dict):
                    scan.corrupt_lines += 1
                    continue
                key = record.get("key")
                if not isinstance(key, str):
                    scan.corrupt_lines += 1
                    continue
                if record.get("status") == "ok":
                    scan.ok_keys.add(key)
                else:
                    scan.error_keys.add(key)
    except OSError:
        return scan
    if scan.corrupt_lines:
        telemetry.emit(
            "warning",
            code="corrupt-results-line",
            count=scan.corrupt_lines,
            path=str(path),
        )
    return scan


def read_result_keys(path: Union[str, Path]) -> Set[str]:
    """The keys of *successful* jobs in a results file (see
    :func:`scan_results_jsonl` for the full accounting)."""
    return scan_results_jsonl(path).ok_keys
