"""Closed bounded intervals ``[a, b]`` with rational or float endpoints.

Intervals are the basic objects of the paper's interval-trace semantics
(Sec. 3): an interval numeral ``[a, b]`` stands for an unknown value within
``[a, b]``.  Endpoints are kept as :class:`fractions.Fraction` whenever the
inputs are rational so that widths, weights and volumes are exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Tuple, Union

Number = Union[Fraction, float, int]


def _converts_exactly(value: Fraction) -> bool:
    """Cheap sufficient condition for ``float(value)`` being exact.

    Dyadic rationals with a <= 53-bit numerator and a normal-range exponent
    -- every endpoint the sweep's bisection of the unit box ever produces --
    convert without rounding, which lets the hot path skip the exact
    ``Fraction`` round-trip comparison below.
    """
    denominator = value.denominator
    return (
        not (denominator & (denominator - 1))
        and value.numerator.bit_length() <= 53
        and denominator.bit_length() <= 900
    )


def float_below(value: Number) -> float:
    """The largest float ``<= value`` (floats pass through unchanged).

    ``float(Fraction)`` rounds to nearest, which can land *above* the exact
    value; one :func:`math.nextafter` step repairs that.  This is the
    outward-rounding primitive of the vectorized sweep kernel
    (:mod:`repro.geometry.kernel`): converting exact rational box endpoints
    to floats must only ever *widen* the box, so float interval evaluation
    stays a sound enclosure of the exact one.
    """
    if isinstance(value, float):
        return value
    if isinstance(value, Fraction) and _converts_exactly(value):
        return float(value)
    result = float(value)
    if math.isinf(result) or math.isnan(result):
        return result
    if Fraction(result) > value:
        return math.nextafter(result, -math.inf)
    return result


def float_above(value: Number) -> float:
    """The smallest float ``>= value`` (the upward mirror of :func:`float_below`)."""
    if isinstance(value, float):
        return value
    if isinstance(value, Fraction) and _converts_exactly(value):
        return float(value)
    result = float(value)
    if math.isinf(result) or math.isnan(result):
        return result
    if Fraction(result) < value:
        return math.nextafter(result, math.inf)
    return result


def outward_pair(lo: Number, hi: Number) -> Tuple[float, float]:
    """Float endpoints enclosing ``[lo, hi]``: rounded outward, never inward."""
    return float_below(lo), float_above(hi)


def float_pair(value: Number) -> Tuple[float, float]:
    """``(float_below(value), float_above(value))`` with one conversion.

    The sweep kernel needs both directions per endpoint (outer enclosures
    for sound verdicts, inner ones for certified-undecided lanes); fusing
    them shares the dyadic fast path and the exact round-trip check.
    """
    if isinstance(value, float):
        return value, value
    if isinstance(value, Fraction) and _converts_exactly(value):
        result = float(value)
        return result, result
    result = float(value)
    if math.isinf(result) or math.isnan(result):
        return result, result
    rounded = Fraction(result)
    if rounded > value:
        return math.nextafter(result, -math.inf), result
    if rounded < value:
        return result, math.nextafter(result, math.inf)
    return result, result


def _normalise(value: Number) -> Union[Fraction, float]:
    if isinstance(value, bool):
        raise TypeError("booleans are not interval endpoints")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, (Fraction, float)):
        return value
    raise TypeError(f"not a number: {value!r}")


@dataclass(frozen=True)
class Interval:
    """A closed bounded interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: Union[Fraction, float]
    hi: Union[Fraction, float]

    def __init__(self, lo: Number, hi: Number) -> None:
        lo = _normalise(lo)
        hi = _normalise(hi)
        if lo > hi:
            raise ValueError(f"malformed interval [{lo}, {hi}]")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # -- constructors -------------------------------------------------------

    @staticmethod
    def point(value: Number) -> "Interval":
        """The degenerate interval ``[value, value]``."""
        return Interval(value, value)

    # -- basic queries -------------------------------------------------------

    @property
    def width(self) -> Union[Fraction, float]:
        """The length ``hi - lo`` of the interval."""
        return self.hi - self.lo

    @property
    def midpoint(self) -> Union[Fraction, float]:
        if isinstance(self.lo, Fraction) and isinstance(self.hi, Fraction):
            return (self.lo + self.hi) / 2
        return (float(self.lo) + float(self.hi)) / 2.0

    def is_point(self) -> bool:
        return self.lo == self.hi

    def is_rational(self) -> bool:
        """True iff both endpoints are exact rationals."""
        return isinstance(self.lo, Fraction) and isinstance(self.hi, Fraction)

    def contains(self, value: Number) -> bool:
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def within_unit(self) -> bool:
        """True iff the interval is contained in [0, 1]."""
        return 0 <= self.lo and self.hi <= 1

    # -- relations -----------------------------------------------------------

    def intersects(self, other: "Interval") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "Interval") -> "Interval":
        if not self.intersects(other):
            raise ValueError(f"intervals {self} and {other} do not intersect")
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def almost_disjoint(self, other: "Interval") -> bool:
        """True iff the intervals overlap in at most one point (Sec. 4)."""
        return self.hi <= other.lo or other.hi <= self.lo

    # -- operations ----------------------------------------------------------

    def split(self) -> Tuple["Interval", "Interval"]:
        """Split at the midpoint into two halves covering the interval."""
        mid = self.midpoint
        return Interval(self.lo, mid), Interval(mid, self.hi)

    def subdivide(self, parts: int) -> Iterator["Interval"]:
        """Split into ``parts`` equal-width consecutive pieces."""
        if parts <= 0:
            raise ValueError("parts must be positive")
        width = self.width
        for index in range(parts):
            lo = self.lo + width * Fraction(index, parts)
            hi = self.lo + width * Fraction(index + 1, parts)
            yield Interval(lo, hi)

    def as_pair(self) -> Tuple[Union[Fraction, float], Union[Fraction, float]]:
        return (self.lo, self.hi)

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


UNIT_INTERVAL = Interval(0, 1)
