"""Interval traces: finite sequences of intervals with endpoints in [0, 1].

An interval trace ``p = [a_1,b_1] ... [a_n,b_n]`` summarises the set of
standard traces that refine it (``s <| p`` iff ``s`` has the same length and
``s_i`` lies in ``[a_i, b_i]`` for every ``i``).  Its *weight* ``omega(p)`` is
the Lebesgue measure of that set, i.e. the product of the interval widths
(Sec. 3.2).  Two interval traces are *compatible* (Def. 3.3) when the sets of
standard traces refining them are almost disjoint, which is what lets the
weights of a family of terminating interval traces be summed soundly
(Thm. 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Sequence, Tuple, Union

from repro.intervals.box import Box
from repro.intervals.interval import Interval
from repro.semantics.traces import Trace


@dataclass(frozen=True)
class IntervalTrace:
    """A finite sequence of intervals, each contained in [0, 1]."""

    intervals: Tuple[Interval, ...]

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        intervals = tuple(intervals)
        for interval in intervals:
            if not interval.within_unit():
                raise ValueError(
                    f"interval-trace entries must lie within [0, 1], got {interval}"
                )
        object.__setattr__(self, "intervals", intervals)

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __getitem__(self, index: int) -> Interval:
        return self.intervals[index]

    def is_empty(self) -> bool:
        return not self.intervals

    def head(self) -> Interval:
        if not self.intervals:
            raise IndexError("empty interval trace has no head")
        return self.intervals[0]

    def rest(self) -> "IntervalTrace":
        if not self.intervals:
            raise IndexError("empty interval trace has no rest")
        return IntervalTrace(self.intervals[1:])

    def prepend(self, interval: Interval) -> "IntervalTrace":
        return IntervalTrace((interval,) + self.intervals)

    def concat(self, other: "IntervalTrace") -> "IntervalTrace":
        return IntervalTrace(self.intervals + other.intervals)

    # -- measure-theoretic structure ------------------------------------------

    @property
    def weight(self) -> Union[Fraction, float]:
        """``omega(p)``: the product of the interval widths."""
        result: Union[Fraction, float] = Fraction(1)
        for interval in self.intervals:
            result = result * interval.width
        return result

    def as_box(self) -> Box:
        """The box of standard traces refining this interval trace."""
        return Box(self.intervals)

    def compatible(self, other: "IntervalTrace") -> bool:
        """Compatibility of interval traces (Def. 3.3).

        Two interval traces are compatible if they have different lengths or
        are almost disjoint at some position.
        """
        if len(self) != len(other):
            return True
        return any(
            mine.almost_disjoint(theirs) for mine, theirs in zip(self.intervals, other.intervals)
        )

    def strongly_compatible(self, other: "IntervalTrace") -> bool:
        """Strong compatibility (App. C.2.2).

        Two traces are strongly compatible when either is a strict prefix
        situation (one is empty / lengths differ at a point where the other
        continues), or they agree on a common prefix and are almost disjoint
        at the first position where they differ.
        """
        if self.is_empty() or other.is_empty():
            return True
        mine, theirs = self.head(), other.head()
        if mine == theirs:
            return self.rest().strongly_compatible(other.rest())
        return mine.almost_disjoint(theirs)

    def __repr__(self) -> str:
        return "IntervalTrace(" + ", ".join(repr(i) for i in self.intervals) + ")"


def refines(trace: Trace, interval_trace: IntervalTrace) -> bool:
    """The refinement relation ``s <| p`` between standard and interval traces."""
    if len(trace) != len(interval_trace):
        return False
    return all(
        interval.contains(draw) for draw, interval in zip(trace, interval_trace)
    )


def pairwise_compatible(traces: Sequence[IntervalTrace]) -> bool:
    """True iff every two distinct traces in the family are compatible."""
    for index, first in enumerate(traces):
        for second in traces[index + 1 :]:
            if not first.compatible(second):
                return False
    return True


def weight_of_traces(traces: Sequence[IntervalTrace]) -> Union[Fraction, float]:
    """``omega(A)``: the summed weight of a family of interval traces.

    Raises ``ValueError`` if the family is not pairwise compatible, because
    only then is the sum a sound lower bound on a trace-measure (Thm. 3.4).
    """
    traces = list(traces)
    if not pairwise_compatible(traces):
        raise ValueError("interval traces are not pairwise compatible")
    total: Union[Fraction, float] = Fraction(0)
    for trace in traces:
        total = total + trace.weight
    return total
