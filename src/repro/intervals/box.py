"""Finite products of intervals (boxes) and their Lebesgue volume.

Boxes play two roles in the reproduction: as the geometric objects measured by
the lower-bound engine (a terminating interval trace of length ``n`` is an
``n``-dimensional box inside the unit cube, Sec. 3.2) and as the cells of the
subdivision sweep used when constraints are not linear (Sec. 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Sequence, Tuple, Union

from repro.intervals.interval import Interval, Number


@dataclass(frozen=True)
class Box:
    """A product of closed intervals, one per dimension."""

    intervals: Tuple[Interval, ...]

    def __init__(self, intervals: Iterable[Interval]) -> None:
        object.__setattr__(self, "intervals", tuple(intervals))

    def __len__(self) -> int:
        return len(self.intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __getitem__(self, index: int) -> Interval:
        return self.intervals[index]

    @property
    def dimension(self) -> int:
        return len(self.intervals)

    @property
    def volume(self) -> Union[Fraction, float]:
        """The Lebesgue volume (product of widths); 1 for the 0-dimensional box."""
        result: Union[Fraction, float] = Fraction(1)
        for interval in self.intervals:
            result = result * interval.width
        return result

    def contains(self, point: Sequence[Number]) -> bool:
        if len(point) != self.dimension:
            raise ValueError("point dimension does not match box dimension")
        return all(interval.contains(value) for interval, value in zip(self.intervals, point))

    def within_unit(self) -> bool:
        return all(interval.within_unit() for interval in self.intervals)

    def widest_dimension(self) -> int:
        """Index of a dimension of maximal width (0 for the empty box)."""
        if not self.intervals:
            return 0
        widths = [interval.width for interval in self.intervals]
        return max(range(len(widths)), key=lambda index: widths[index])

    def split(self, dimension: int = None) -> Tuple["Box", "Box"]:
        """Bisect the box along ``dimension`` (defaults to the widest one)."""
        if not self.intervals:
            raise ValueError("cannot split a 0-dimensional box")
        if dimension is None:
            dimension = self.widest_dimension()
        left, right = self.intervals[dimension].split()
        prefix = self.intervals[:dimension]
        suffix = self.intervals[dimension + 1 :]
        return Box(prefix + (left,) + suffix), Box(prefix + (right,) + suffix)

    def subdivide(self, parts_per_dimension: int) -> Iterator["Box"]:
        """A regular grid subdivision with ``parts_per_dimension^n`` cells."""
        if not self.intervals:
            yield self
            return
        pieces = [list(interval.subdivide(parts_per_dimension)) for interval in self.intervals]
        yield from (Box(cell) for cell in _product(pieces))

    def corners(self) -> Iterator[Tuple[Union[Fraction, float], ...]]:
        """All ``2^n`` corner points of the box."""
        yield from _product([[interval.lo, interval.hi] for interval in self.intervals])

    def midpoint(self) -> Tuple[Union[Fraction, float], ...]:
        return tuple(interval.midpoint for interval in self.intervals)

    def __repr__(self) -> str:
        return "Box(" + " x ".join(repr(interval) for interval in self.intervals) + ")"


def _product(choices):
    if not choices:
        yield ()
        return
    head, *rest = choices
    for value in head:
        for tail in _product(rest):
            yield (value,) + tail


def unit_box(dimension: int) -> Box:
    """The unit cube ``[0, 1]^dimension``."""
    return Box(Interval(0, 1) for _ in range(dimension))
