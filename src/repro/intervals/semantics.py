"""The interval-based small-step semantics of Fig. 9 (call-by-name).

Configurations are ``<M, p>`` where ``M`` is an interval term and ``p`` an
interval trace.  The rules mirror the standard CbN semantics except that

* ``sample`` consumes an interval from the interval trace,
* a conditional ``if([a, b], N, P)`` reduces to ``N`` only when ``b <= 0`` and
  to ``P`` only when ``a > 0``; when the interval straddles 0 the
  configuration is *ambiguous* and gets stuck (the interval is not precise
  enough to determine the branch),
* a primitive applies its interval extension ``f_hat``,
* ``score([a, b])`` requires ``a >= 0``.

A terminating interval trace certifies that *every* standard trace refining it
is terminating with the same number of steps (Lem. B.2), which is the engine
behind the soundness theorem (Thm. 3.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.intervals.interval import Interval
from repro.intervals.terms import IntervalNumeral, is_interval_value
from repro.intervals.trace import IntervalTrace
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Term,
    Var,
    substitute,
)


class IntervalRunStatus(enum.Enum):
    """Outcome of running an interval configuration."""

    TERMINATED = "terminated"
    VALUE_WITH_LEFTOVER_TRACE = "value-with-leftover-trace"
    TRACE_EXHAUSTED = "trace-exhausted"
    AMBIGUOUS_BRANCH = "ambiguous-branch"
    SCORE_FAILED = "score-failed"
    STUCK = "stuck"
    STEP_LIMIT = "step-limit"


@dataclass(frozen=True)
class IntervalRunResult:
    """Result of running an interval term on an interval trace."""

    status: IntervalRunStatus
    term: Term
    trace: IntervalTrace
    steps: int
    detail: Optional[str] = None

    @property
    def terminated(self) -> bool:
        return self.status is IntervalRunStatus.TERMINATED


class _Stuck(Exception):
    def __init__(self, status: IntervalRunStatus, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


class IntervalMachine:
    """The call-by-name interval-based machine of Fig. 9."""

    def __init__(self, registry: Optional[PrimitiveRegistry] = None) -> None:
        self.registry = registry or default_registry()

    def step(
        self, term: Term, trace: IntervalTrace
    ) -> Optional[Tuple[Term, IntervalTrace]]:
        """Perform one reduction step; return ``None`` on an interval value."""
        if is_interval_value(term):
            return None
        return self._step(term, trace)

    def _step(self, term: Term, trace: IntervalTrace) -> Tuple[Term, IntervalTrace]:
        if isinstance(term, Numeral):
            raise _Stuck(
                IntervalRunStatus.STUCK,
                "standard numeral inside an interval term (forgot to embed?)",
            )
        if isinstance(term, App):
            fn = term.fn
            if isinstance(fn, Lam):
                return substitute(fn.body, {fn.var: term.arg}), trace
            if isinstance(fn, Fix):
                return substitute(fn.body, {fn.var: term.arg, fn.fvar: fn}), trace
            if is_interval_value(fn):
                raise _Stuck(
                    IntervalRunStatus.STUCK, "application of a non-function value"
                )
            new_fn, new_trace = self._step(fn, trace)
            return App(new_fn, term.arg), new_trace
        if isinstance(term, If):
            cond = term.cond
            if isinstance(cond, IntervalNumeral):
                interval = cond.interval
                if interval.hi <= 0:
                    return term.then, trace
                if interval.lo > 0:
                    return term.orelse, trace
                raise _Stuck(
                    IntervalRunStatus.AMBIGUOUS_BRANCH,
                    f"guard interval {interval} straddles 0",
                )
            if is_interval_value(cond):
                raise _Stuck(
                    IntervalRunStatus.STUCK, "conditional guard is not an interval numeral"
                )
            new_cond, new_trace = self._step(cond, trace)
            return If(new_cond, term.then, term.orelse), new_trace
        if isinstance(term, Prim):
            for index, argument in enumerate(term.args):
                if isinstance(argument, IntervalNumeral):
                    continue
                if is_interval_value(argument):
                    raise _Stuck(
                        IntervalRunStatus.STUCK,
                        f"primitive argument {index} is not an interval numeral",
                    )
                new_argument, new_trace = self._step(argument, trace)
                new_args = term.args[:index] + (new_argument,) + term.args[index + 1 :]
                return Prim(term.op, new_args), new_trace
            primitive = self.registry[term.op]
            bounds = [arg.interval.as_pair() for arg in term.args]  # type: ignore[union-attr]
            try:
                lo, hi = primitive.on_box(*bounds)
            except (ValueError, ZeroDivisionError, OverflowError) as error:
                raise _Stuck(
                    IntervalRunStatus.STUCK, f"primitive {term.op!r} failed: {error}"
                )
            return IntervalNumeral(Interval(lo, hi)), trace
        if isinstance(term, Sample):
            if trace.is_empty():
                raise _Stuck(
                    IntervalRunStatus.TRACE_EXHAUSTED, "sample on an empty interval trace"
                )
            return IntervalNumeral(trace.head()), trace.rest()
        if isinstance(term, Score):
            argument = term.arg
            if isinstance(argument, IntervalNumeral):
                if argument.interval.lo < 0:
                    raise _Stuck(
                        IntervalRunStatus.SCORE_FAILED,
                        "score of an interval with a negative lower bound",
                    )
                return argument, trace
            if is_interval_value(argument):
                raise _Stuck(
                    IntervalRunStatus.STUCK, "score argument is not an interval numeral"
                )
            new_argument, new_trace = self._step(argument, trace)
            return Score(new_argument), new_trace
        if isinstance(term, Var):
            raise _Stuck(IntervalRunStatus.STUCK, f"free variable {term.name!r}")
        raise TypeError(f"cannot step interval term {term!r}")

    def run(
        self, term: Term, trace: IntervalTrace, max_steps: int = 100_000
    ) -> IntervalRunResult:
        """Run ``<term, trace>`` until a value, stuckness, or the step budget."""
        steps = 0
        current, remaining = term, trace
        while steps < max_steps:
            try:
                outcome = self.step(current, remaining)
            except _Stuck as stuck:
                return IntervalRunResult(
                    stuck.status, current, remaining, steps, stuck.detail
                )
            if outcome is None:
                if remaining.is_empty():
                    return IntervalRunResult(
                        IntervalRunStatus.TERMINATED, current, remaining, steps
                    )
                return IntervalRunResult(
                    IntervalRunStatus.VALUE_WITH_LEFTOVER_TRACE,
                    current,
                    remaining,
                    steps,
                )
            current, remaining = outcome
            steps += 1
        return IntervalRunResult(IntervalRunStatus.STEP_LIMIT, current, remaining, steps)

    def terminates_on(
        self, term: Term, trace: IntervalTrace, max_steps: int = 100_000
    ) -> bool:
        """True iff ``trace`` is a terminating interval trace for ``term``."""
        return self.run(term, trace, max_steps=max_steps).terminated
