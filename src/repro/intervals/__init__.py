"""The interval substrate and interval-based semantics (Sec. 3 of the paper).

This package provides:

* :class:`~repro.intervals.interval.Interval` -- closed, bounded intervals with
  exact rational endpoints whenever possible,
* :class:`~repro.intervals.box.Box` -- finite products of intervals with their
  Lebesgue volume and subdivision operations,
* :class:`~repro.intervals.trace.IntervalTrace` -- traces of intervals with
  endpoints in [0, 1], their weight ``omega``, the *compatibility* relation of
  Def. 3.3 and the refinement relation ``s <| p`` between standard traces and
  interval traces,
* interval terms (standard terms whose numerals are replaced by interval
  numerals, Sec. 3.1) and the canonical embedding ``M -> M^2I``,
* the interval-based small-step semantics of Fig. 9 together with soundness
  helpers (Thm. 3.4: sums of weights of pairwise compatible terminating
  interval traces lower-bound ``Pterm``).
"""

from repro.intervals.interval import Interval, UNIT_INTERVAL
from repro.intervals.box import Box, unit_box
from repro.intervals.trace import IntervalTrace, refines, weight_of_traces
from repro.intervals.terms import IntervalNumeral, embed, term_refines
from repro.intervals.semantics import IntervalMachine, IntervalRunResult, IntervalRunStatus

__all__ = [
    "Box",
    "Interval",
    "IntervalMachine",
    "IntervalNumeral",
    "IntervalRunResult",
    "IntervalRunStatus",
    "IntervalTrace",
    "UNIT_INTERVAL",
    "embed",
    "refines",
    "term_refines",
    "unit_box",
    "weight_of_traces",
]
