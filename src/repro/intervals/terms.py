"""Interval terms and the canonical embedding ``M -> M^2I`` (Sec. 3.1).

Interval terms reuse the SPCF term constructors but replace real-valued
numerals by *interval numerals* ``[a, b]`` (an unknown value within that
interval).  The embedding maps every numeral ``r`` to the degenerate interval
``[r, r]``.  The refinement relation ``M <| M'`` of Fig. 10 relates standard
terms to interval terms: they agree structurally and every numeral of ``M``
lies in the corresponding interval numeral of ``M'``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.intervals.interval import Interval
from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Term,
    Var,
)


@dataclass(frozen=True)
class IntervalNumeral(Term):
    """An interval-valued constant ``[a, b]`` of type R."""

    interval: Interval

    def __repr__(self) -> str:
        return f"IntervalNumeral({self.interval!r})"


def embed(term: Term) -> Term:
    """The canonical embedding ``M^2I``: replace every numeral ``r`` by ``[r, r]``."""
    if isinstance(term, Numeral):
        return IntervalNumeral(Interval.point(term.value))
    if isinstance(term, (Var, Sample, IntervalNumeral)):
        return term
    if isinstance(term, Lam):
        return Lam(term.var, embed(term.body))
    if isinstance(term, Fix):
        return Fix(term.fvar, term.var, embed(term.body))
    if isinstance(term, App):
        return App(embed(term.fn), embed(term.arg))
    if isinstance(term, If):
        return If(embed(term.cond), embed(term.then), embed(term.orelse))
    if isinstance(term, Prim):
        return Prim(term.op, tuple(embed(arg) for arg in term.args))
    if isinstance(term, Score):
        return Score(embed(term.arg))
    raise TypeError(f"unknown term: {term!r}")


def is_interval_value(term: Term) -> bool:
    """Values of the interval language: variables, interval numerals, abstractions."""
    return isinstance(term, (Var, IntervalNumeral, Lam, Fix))


def term_refines(standard: Term, interval: Term) -> bool:
    """The refinement relation ``M <| M'`` between standard and interval terms."""
    if isinstance(interval, IntervalNumeral):
        return isinstance(standard, Numeral) and interval.interval.contains(standard.value)
    if type(standard) is not type(interval):
        return False
    if isinstance(standard, Var):
        return standard.name == interval.name  # type: ignore[union-attr]
    if isinstance(standard, Sample):
        return True
    if isinstance(standard, Lam):
        assert isinstance(interval, Lam)
        return standard.var == interval.var and term_refines(standard.body, interval.body)
    if isinstance(standard, Fix):
        assert isinstance(interval, Fix)
        return (
            standard.fvar == interval.fvar
            and standard.var == interval.var
            and term_refines(standard.body, interval.body)
        )
    if isinstance(standard, App):
        assert isinstance(interval, App)
        return term_refines(standard.fn, interval.fn) and term_refines(
            standard.arg, interval.arg
        )
    if isinstance(standard, If):
        assert isinstance(interval, If)
        return (
            term_refines(standard.cond, interval.cond)
            and term_refines(standard.then, interval.then)
            and term_refines(standard.orelse, interval.orelse)
        )
    if isinstance(standard, Prim):
        assert isinstance(interval, Prim)
        if standard.op != interval.op or len(standard.args) != len(interval.args):
            return False
        return all(
            term_refines(left, right)
            for left, right in zip(standard.args, interval.args)
        )
    if isinstance(standard, Score):
        assert isinstance(interval, Score)
        return term_refines(standard.arg, interval.arg)
    if isinstance(standard, Numeral):
        # A numeral can only refine an interval numeral, handled above.
        return False
    raise TypeError(f"unknown term: {standard!r}")
