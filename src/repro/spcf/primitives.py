"""Primitive functions of SPCF and their interval extensions.

Every primitive ``f : R^n -> R`` in the registry carries

* a numeric implementation (exact on :class:`fractions.Fraction` inputs where
  possible),
* an *interval extension* ``f_hat`` (Def. 3.1: the image of a box under a
  continuous ``f`` is an interval; ``f_hat`` returns that interval, possibly
  slightly widened for transcendental functions so that the extension is
  still an over-approximation and interval reasoning remains sound),
* flags recording whether the function is Q-interval preserving and interval
  separable (Lem. 3.2 / Lem. 3.7), and whether it is affine in its arguments
  (used by the symbolic layer to extract linear constraints).

The default registry contains every primitive used by the paper's examples:
``add, sub, mul, neg, abs, min, max, exp, log, sig`` plus multiplication and
addition by constants via ordinary ``mul``/``add``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Iterator, Sequence, Tuple, Union

Number = Union[Fraction, float]
IntervalPair = Tuple[Number, Number]

_FLOAT_OUTWARD = 1e-12


def _to_float(value: Number) -> float:
    return float(value)


def _widen_outward(lo: float, hi: float) -> Tuple[float, float]:
    """Pad a float interval outward so transcendental extensions stay sound."""
    pad_lo = abs(lo) * _FLOAT_OUTWARD + _FLOAT_OUTWARD
    pad_hi = abs(hi) * _FLOAT_OUTWARD + _FLOAT_OUTWARD
    return lo - pad_lo, hi + pad_hi


@dataclass(frozen=True)
class Primitive:
    """A primitive function together with its interval extension."""

    name: str
    arity: int
    apply: Callable[..., Number]
    interval_apply: Callable[..., IntervalPair]
    interval_separable: bool = True
    q_interval_preserving: bool = True
    affine: bool = False

    def __call__(self, *args: Number) -> Number:
        if len(args) != self.arity:
            raise TypeError(
                f"primitive {self.name!r} expects {self.arity} arguments, got {len(args)}"
            )
        return self.apply(*args)

    def on_box(self, *bounds: IntervalPair) -> IntervalPair:
        """Apply the interval extension to interval arguments ``(lo, hi)``."""
        if len(bounds) != self.arity:
            raise TypeError(
                f"primitive {self.name!r} expects {self.arity} interval arguments, "
                f"got {len(bounds)}"
            )
        for lo, hi in bounds:
            if lo > hi:
                raise ValueError(f"malformed interval argument [{lo}, {hi}]")
        return self.interval_apply(*bounds)


class PrimitiveRegistry:
    """A mapping from primitive names to :class:`Primitive` objects."""

    def __init__(self) -> None:
        self._primitives: Dict[str, Primitive] = {}

    def register(self, primitive: Primitive) -> Primitive:
        if primitive.name in self._primitives:
            raise ValueError(f"primitive {primitive.name!r} already registered")
        self._primitives[primitive.name] = primitive
        return primitive

    def __getitem__(self, name: str) -> Primitive:
        try:
            return self._primitives[name]
        except KeyError:
            raise KeyError(f"unknown primitive {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._primitives

    def __iter__(self) -> Iterator[str]:
        return iter(self._primitives)

    def names(self) -> Sequence[str]:
        return tuple(self._primitives)

    def all_interval_separable(self) -> bool:
        """True iff every registered primitive is interval separable (Thm. 3.8)."""
        return all(p.interval_separable for p in self._primitives.values())


# ---------------------------------------------------------------------------
# Numeric implementations.
# ---------------------------------------------------------------------------


def _add(a: Number, b: Number) -> Number:
    return a + b


def _sub(a: Number, b: Number) -> Number:
    return a - b


def _mul(a: Number, b: Number) -> Number:
    return a * b


def _neg(a: Number) -> Number:
    return -a


def _abs(a: Number) -> Number:
    return abs(a)


def _min(a: Number, b: Number) -> Number:
    return a if a <= b else b


def _max(a: Number, b: Number) -> Number:
    return a if a >= b else b


def _exp(a: Number) -> float:
    return math.exp(_to_float(a))


def _log(a: Number) -> float:
    value = _to_float(a)
    if value <= 0.0:
        raise ValueError("log of a non-positive number")
    return math.log(value)


def _sig(a: Number) -> float:
    """The logistic sigmoid 1 / (1 + e^-x) used in Ex. 5.1 / Ex. 5.15."""
    value = _to_float(a)
    if value >= 0:
        return 1.0 / (1.0 + math.exp(-value))
    expv = math.exp(value)
    return expv / (1.0 + expv)


# ---------------------------------------------------------------------------
# Interval extensions.
# ---------------------------------------------------------------------------


def _interval_add(a: IntervalPair, b: IntervalPair) -> IntervalPair:
    return a[0] + b[0], a[1] + b[1]


def _interval_sub(a: IntervalPair, b: IntervalPair) -> IntervalPair:
    return a[0] - b[1], a[1] - b[0]


def _interval_mul(a: IntervalPair, b: IntervalPair) -> IntervalPair:
    candidates = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    return min(candidates), max(candidates)


def _interval_neg(a: IntervalPair) -> IntervalPair:
    return -a[1], -a[0]


def _interval_abs(a: IntervalPair) -> IntervalPair:
    lo, hi = a
    if lo >= 0:
        return lo, hi
    if hi <= 0:
        return -hi, -lo
    return lo * 0, max(-lo, hi)


def _interval_min(a: IntervalPair, b: IntervalPair) -> IntervalPair:
    return _min(a[0], b[0]), _min(a[1], b[1])


def _interval_max(a: IntervalPair, b: IntervalPair) -> IntervalPair:
    return _max(a[0], b[0]), _max(a[1], b[1])


def _interval_exp(a: IntervalPair) -> IntervalPair:
    lo, hi = _widen_outward(math.exp(_to_float(a[0])), math.exp(_to_float(a[1])))
    return max(lo, 0.0), hi


def _interval_log(a: IntervalPair) -> IntervalPair:
    if _to_float(a[0]) <= 0.0:
        raise ValueError("log interval extension requires a positive lower bound")
    return _widen_outward(math.log(_to_float(a[0])), math.log(_to_float(a[1])))


def _interval_sig(a: IntervalPair) -> IntervalPair:
    lo, hi = _widen_outward(_sig(a[0]), _sig(a[1]))
    return max(lo, 0.0), min(hi, 1.0)


def _build_default_registry() -> PrimitiveRegistry:
    """Build the default SPCF primitive registry used throughout the paper."""
    registry = PrimitiveRegistry()
    registry.register(
        Primitive("add", 2, _add, _interval_add, affine=True)
    )
    registry.register(
        Primitive("sub", 2, _sub, _interval_sub, affine=True)
    )
    registry.register(Primitive("mul", 2, _mul, _interval_mul))
    registry.register(Primitive("neg", 1, _neg, _interval_neg, affine=True))
    registry.register(Primitive("abs", 1, _abs, _interval_abs))
    registry.register(Primitive("min", 2, _min, _interval_min))
    registry.register(Primitive("max", 2, _max, _interval_max))
    registry.register(
        Primitive(
            "exp",
            1,
            _exp,
            _interval_exp,
            q_interval_preserving=False,
        )
    )
    registry.register(
        Primitive(
            "log",
            1,
            _log,
            _interval_log,
            q_interval_preserving=False,
        )
    )
    registry.register(
        Primitive(
            "sig",
            1,
            _sig,
            _interval_sig,
            q_interval_preserving=False,
        )
    )
    return registry


_DEFAULT_REGISTRY = _build_default_registry()


def default_registry() -> PrimitiveRegistry:
    """Return the (cached) default primitive registry."""
    return _DEFAULT_REGISTRY
