"""Pretty printer for SPCF terms.

The output uses the paper's notation: ``μφ x. M`` for fixpoints, ``λx. M`` for
abstractions, ``if M then N else P`` for conditionals (branching on ``M ≤ 0``)
and infix spellings for the arithmetic primitives.  ``pretty`` produces a
single-line rendering; ``pretty(term, unicode_symbols=False)`` uses an ASCII
spelling suitable for logs.
"""

from __future__ import annotations

from fractions import Fraction

from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Term,
    Var,
)

_INFIX = {"add": "+", "sub": "-", "mul": "*", "min": "min", "max": "max"}


def pretty(term: Term, unicode_symbols: bool = True) -> str:
    """Render ``term`` as a one-line string."""
    symbols = _Symbols(unicode_symbols)
    return _render(term, symbols, top=True)


class _Symbols:
    def __init__(self, unicode_symbols: bool) -> None:
        self.lam = "λ" if unicode_symbols else "\\"
        self.mu = "μ" if unicode_symbols else "mu "
        self.leq = "≤" if unicode_symbols else "<="


def _render_number(value) -> str:
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return f"{value.numerator}/{value.denominator}"
    return repr(value)


def _render(term: Term, symbols: _Symbols, top: bool = False) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Numeral):
        return _render_number(term.value)
    if isinstance(term, Sample):
        return "sample"
    if isinstance(term, Score):
        return f"score({_render(term.arg, symbols)})"
    if isinstance(term, Lam):
        body = _render(term.body, symbols)
        rendered = f"{symbols.lam}{term.var}. {body}"
        return rendered if top else f"({rendered})"
    if isinstance(term, Fix):
        body = _render(term.body, symbols)
        rendered = f"{symbols.mu}{term.fvar} {term.var}. {body}"
        return rendered if top else f"({rendered})"
    if isinstance(term, App):
        fn = _render(term.fn, symbols)
        arg = _render(term.arg, symbols)
        if isinstance(term.arg, App):
            arg = f"({arg})"
        return f"{fn} {arg}"
    if isinstance(term, If):
        cond = _render(term.cond, symbols)
        then = _render(term.then, symbols)
        orelse = _render(term.orelse, symbols)
        return f"if {cond} {symbols.leq} 0 then {then} else {orelse}"
    if isinstance(term, Prim):
        if term.op in _INFIX and len(term.args) == 2:
            left = _render(term.args[0], symbols)
            right = _render(term.args[1], symbols)
            return f"({left} {_INFIX[term.op]} {right})"
        args = ", ".join(_render(arg, symbols) for arg in term.args)
        return f"{term.op}({args})"
    raise TypeError(f"unknown term: {term!r}")
