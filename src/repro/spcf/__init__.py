"""Statistical PCF (SPCF): the probabilistic functional language of the paper.

This subpackage provides the abstract syntax of SPCF terms (Sec. 2.2), the
simple type system (Fig. 1 / Fig. 7), the registry of primitive functions
together with their interval extensions (Def. 3.1), a small surface-syntax
parser, a pretty printer, and the syntactic sugar used throughout the paper
(probabilistic choice ``M (+)_p N``, ``let``, sequencing).
"""

from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Term,
    Var,
    alpha_equivalent,
    free_variables,
    is_value,
    subterms,
    substitute,
    term_size,
)
from repro.spcf.types import ArrowType, RealType, SimpleType, TypeError_, type_of, typecheck
from repro.spcf.primitives import Primitive, PrimitiveRegistry, default_registry
from repro.spcf.sugar import choice, let, num, prim, seq
from repro.spcf.parser import ParseError, parse
from repro.spcf.printer import pretty

__all__ = [
    "App",
    "ArrowType",
    "Fix",
    "If",
    "Lam",
    "Numeral",
    "ParseError",
    "Prim",
    "Primitive",
    "PrimitiveRegistry",
    "RealType",
    "Sample",
    "Score",
    "SimpleType",
    "Term",
    "TypeError_",
    "Var",
    "alpha_equivalent",
    "choice",
    "default_registry",
    "free_variables",
    "is_value",
    "let",
    "num",
    "parse",
    "pretty",
    "prim",
    "seq",
    "substitute",
    "subterms",
    "term_size",
    "type_of",
    "typecheck",
]
