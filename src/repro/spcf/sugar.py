"""Syntactic sugar for SPCF used throughout the paper.

* ``choice(m, p, n)`` is the probabilistic choice ``M (+)_P N`` which the paper
  abbreviates as ``if(sample - P, M, N)``: with probability ``P`` (the guard
  ``sample - P <= 0``) the left branch ``M`` is taken.
* ``let(x, m, body)`` is the standard call-by-value let, encoded as
  ``(lambda x. body) m``.
* ``seq(m, n)`` evaluates ``m`` for effect and continues with ``n``.
* ``num`` / ``prim`` are small constructors that keep example programs terse.
"""

from __future__ import annotations

from typing import Union

from repro.spcf.syntax import (
    App,
    If,
    Lam,
    Numeral,
    Number,
    Prim,
    Sample,
    Term,
)


def num(value: Number) -> Numeral:
    """Build the numeral term for ``value``."""
    return Numeral(value)


def prim(op: str, *args: Union[Term, Number]) -> Prim:
    """Build a primitive application, coercing plain numbers to numerals."""
    return Prim(op, tuple(_coerce(arg) for arg in args))


def add(left: Union[Term, Number], right: Union[Term, Number]) -> Prim:
    """``left + right``."""
    return prim("add", left, right)


def sub(left: Union[Term, Number], right: Union[Term, Number]) -> Prim:
    """``left - right``."""
    return prim("sub", left, right)


def mul(left: Union[Term, Number], right: Union[Term, Number]) -> Prim:
    """``left * right``."""
    return prim("mul", left, right)


def choice(left: Term, probability: Union[Term, Number], right: Term) -> If:
    """The probabilistic choice ``left (+)_probability right`` (paper Sec. 2.2).

    Takes ``left`` with probability ``probability``; desugars to
    ``if(sample - probability, left, right)``.
    """
    return If(sub(Sample(), _coerce(probability)), left, right)


def fair_choice(left: Term, right: Term) -> If:
    """``left (+) right``: the fair binary choice (probability 1/2 each)."""
    from fractions import Fraction

    return choice(left, Fraction(1, 2), right)


def let(variable: str, bound: Union[Term, Number], body: Term) -> App:
    """``let variable = bound in body``, encoded as ``(lambda variable. body) bound``.

    Under call-by-value this evaluates ``bound`` first, which is the reading
    used by the paper (e.g. Ex. 5.15 samples the error value once and reuses
    it); under call-by-name the bound term is substituted unevaluated.
    """
    return App(Lam(variable, body), _coerce(bound))


def seq(first: Union[Term, Number], second: Term) -> App:
    """Evaluate ``first`` (for effect), discard it, and continue with ``second``."""
    return let("_ignored", first, second)


def _coerce(value: Union[Term, Number]) -> Term:
    if isinstance(value, Term):
        return value
    return Numeral(value)
