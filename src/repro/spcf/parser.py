"""A small surface-syntax parser for SPCF.

The concrete syntax mirrors the paper's notation::

    mu phi x. if sample - 1/2 then x else phi (x + 1)
    lam x. x + 1
    let e = sample in if e - p then x else score(e)

Grammar (precedence from loosest to tightest):

    term    := 'lam' IDENT '.' term
             | 'mu' IDENT IDENT '.' term
             | 'let' IDENT '=' term 'in' term
             | 'if' term 'then' term 'else' term      -- branches on term <= 0
             | arith
    arith   := factor (('+' | '-') factor)*
    factor  := app ('*' app)*
    app     := atom atom*
    atom    := NUMBER | FRACTION | IDENT | 'sample'
             | 'score' '(' term ')'
             | PRIM '(' term (',' term)* ')'
             | '(' term ')'

Numbers written as ``a/b`` (or with a decimal point that is exactly
representable) are parsed as exact :class:`fractions.Fraction` values.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional

from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Term,
    Var,
)


class ParseError(Exception):
    """Raised when the input is not well-formed surface SPCF."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<fraction>\d+\s*/\s*\d+)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9']*)
  | (?P<symbol>[().,+\-*=])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"lam", "lambda", "mu", "fix", "if", "then", "else", "let", "in", "sample", "score"}


@dataclass
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    index = 0
    while index < len(source):
        match = _TOKEN_RE.match(source, index)
        if match is None:
            raise ParseError(f"unexpected character {source[index]!r} at offset {index}")
        index = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        text = match.group()
        if kind == "ident" and text in _KEYWORDS:
            kind = "keyword"
        tokens.append(_Token(kind, text, match.start()))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], registry: PrimitiveRegistry) -> None:
        self.tokens = tokens
        self.position = 0
        self.registry = registry

    # -- token helpers -----------------------------------------------------

    def peek(self) -> Optional[_Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.position += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.advance()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r} but found {token.text!r} at offset {token.position}"
            )
        return token

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        if token is None:
            return False
        return token.kind == kind and (text is None or token.text == text)

    # -- grammar -----------------------------------------------------------

    def parse_term(self) -> Term:
        if self.at("keyword", "lam") or self.at("keyword", "lambda"):
            self.advance()
            var = self.expect("ident").text
            self.expect("symbol", ".")
            return Lam(var, self.parse_term())
        if self.at("keyword", "mu") or self.at("keyword", "fix"):
            self.advance()
            fvar = self.expect("ident").text
            var = self.expect("ident").text
            self.expect("symbol", ".")
            return Fix(fvar, var, self.parse_term())
        if self.at("keyword", "let"):
            self.advance()
            var = self.expect("ident").text
            self.expect("symbol", "=")
            bound = self.parse_term()
            self.expect("keyword", "in")
            body = self.parse_term()
            return App(Lam(var, body), bound)
        if self.at("keyword", "if"):
            self.advance()
            cond = self.parse_term()
            self.expect("keyword", "then")
            then = self.parse_term()
            self.expect("keyword", "else")
            orelse = self.parse_term()
            return If(cond, then, orelse)
        return self.parse_arith()

    def parse_arith(self) -> Term:
        term = self.parse_factor()
        while self.at("symbol", "+") or self.at("symbol", "-"):
            operator = self.advance().text
            right = self.parse_factor()
            term = Prim("add" if operator == "+" else "sub", (term, right))
        return term

    def parse_factor(self) -> Term:
        term = self.parse_application()
        while self.at("symbol", "*"):
            self.advance()
            right = self.parse_application()
            term = Prim("mul", (term, right))
        return term

    def parse_application(self) -> Term:
        term = self.parse_atom()
        while self._at_atom_start():
            term = App(term, self.parse_atom())
        return term

    def _at_atom_start(self) -> bool:
        token = self.peek()
        if token is None:
            return False
        if token.kind in ("number", "fraction", "ident"):
            return True
        if token.kind == "keyword" and token.text in ("sample", "score"):
            return True
        return token.kind == "symbol" and token.text == "("

    def parse_atom(self) -> Term:
        token = self.advance()
        if token.kind == "number":
            if "." in token.text:
                return Numeral(Fraction(token.text))
            return Numeral(Fraction(int(token.text)))
        if token.kind == "fraction":
            numerator, denominator = token.text.split("/")
            return Numeral(Fraction(int(numerator), int(denominator)))
        if token.kind == "keyword" and token.text == "sample":
            return Sample()
        if token.kind == "keyword" and token.text == "score":
            self.expect("symbol", "(")
            argument = self.parse_term()
            self.expect("symbol", ")")
            return Score(argument)
        if token.kind == "ident":
            if token.text in self.registry and self.at("symbol", "("):
                self.advance()
                args = [self.parse_term()]
                while self.at("symbol", ","):
                    self.advance()
                    args.append(self.parse_term())
                self.expect("symbol", ")")
                primitive = self.registry[token.text]
                if len(args) != primitive.arity:
                    raise ParseError(
                        f"primitive {token.text!r} expects {primitive.arity} arguments, "
                        f"got {len(args)}"
                    )
                return Prim(token.text, tuple(args))
            return Var(token.text)
        if token.kind == "symbol" and token.text == "(":
            inner = self.parse_term()
            self.expect("symbol", ")")
            return inner
        raise ParseError(f"unexpected token {token.text!r} at offset {token.position}")


def parse(source: str, registry: Optional[PrimitiveRegistry] = None) -> Term:
    """Parse surface-syntax SPCF into a :class:`~repro.spcf.syntax.Term`."""
    registry = registry or default_registry()
    parser = _Parser(_tokenize(source), registry)
    term = parser.parse_term()
    leftover = parser.peek()
    if leftover is not None:
        raise ParseError(
            f"trailing input starting with {leftover.text!r} at offset {leftover.position}"
        )
    return term
