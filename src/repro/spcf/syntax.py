"""Abstract syntax of SPCF terms (Sec. 2.2 of the paper).

Terms are given by the grammar

    V ::= x | r | lambda x. M | mu phi x. M
    M ::= V | M N | if(M, N, P) | f(M_1, ..., M_|f|) | sample | score(M)

where ``r`` ranges over real numbers (we use :class:`fractions.Fraction`
whenever possible so that measures and lower bounds stay exact) and ``f``
over primitive functions from a :class:`~repro.spcf.primitives.PrimitiveRegistry`.

Terms are immutable (frozen dataclasses); all structural operations --
free variables, capture-avoiding substitution, alpha-equivalence -- are
provided as module-level functions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Tuple, Union

Number = Union[Fraction, float, int]


def as_number(value: Number) -> Union[Fraction, float]:
    """Normalise a Python number to a ``Fraction`` (exact) or ``float``.

    Integers and fractions stay exact; floats stay floats.  This is the
    single place deciding exact-vs-approximate representation of numerals.
    """
    if isinstance(value, bool):
        raise TypeError("booleans are not SPCF numerals")
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return value
    raise TypeError(f"not a number: {value!r}")


class Term:
    """Base class of all SPCF terms."""

    __slots__ = ()

    def __call__(self, *args: "Term") -> "Term":
        """Left-associated application: ``f(a, b)`` builds ``App(App(f, a), b)``."""
        result: Term = self
        for arg in args:
            result = App(result, arg)
        return result


@dataclass(frozen=True)
class Var(Term):
    """A term variable."""

    name: str

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True)
class Numeral(Term):
    """A real-valued constant ``r``."""

    value: Union[Fraction, float]

    def __init__(self, value: Number) -> None:
        object.__setattr__(self, "value", as_number(value))

    def __repr__(self) -> str:
        return f"Numeral({self.value!r})"


@dataclass(frozen=True)
class Lam(Term):
    """Lambda abstraction ``lambda x. body``."""

    var: str
    body: Term


@dataclass(frozen=True)
class Fix(Term):
    """Fixpoint constructor ``mu phi x. body``.

    ``fvar`` is bound to the recursively defined function itself, ``var`` to
    its argument; both are bound in ``body``.
    """

    fvar: str
    var: str
    body: Term


@dataclass(frozen=True)
class App(Term):
    """Application ``fn arg``."""

    fn: Term
    arg: Term


@dataclass(frozen=True)
class If(Term):
    """Conditional ``if(cond, then, orelse)``: takes ``then`` iff ``cond <= 0``."""

    cond: Term
    then: Term
    orelse: Term


@dataclass(frozen=True)
class Prim(Term):
    """Application of a primitive function ``op`` to real-typed arguments."""

    op: str
    args: Tuple[Term, ...]

    def __init__(self, op: str, args) -> None:
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "args", tuple(args))


@dataclass(frozen=True)
class Sample(Term):
    """A draw from the uniform distribution on [0, 1]."""


@dataclass(frozen=True)
class Score(Term):
    """Stochastic conditioning ``score(arg)``; gets stuck when ``arg < 0``."""

    arg: Term


def is_extension_leaf(term: Term) -> bool:
    """True for leaf-like term extensions defined outside this module.

    Other layers of the library extend the term language with new constants
    of type ``R`` (interval numerals in Sec. 3, the unknown numeral ``*`` of
    the counting semantics in Sec. 5, symbolic sample variables in App. B.5).
    These extensions are all *leaves*: dataclasses none of whose fields are
    terms.  The generic traversals below (free variables, substitution,
    alpha-equivalence, ...) treat them as closed constants.
    """
    if isinstance(term, (Var, Numeral, Lam, Fix, App, If, Prim, Sample, Score)):
        return False
    if not isinstance(term, Term):
        return False
    fields = getattr(term, "__dataclass_fields__", {})
    return not any(isinstance(getattr(term, name), Term) for name in fields)


def is_value(term: Term) -> bool:
    """A value is a variable, a numeral, a lambda or a fixpoint abstraction."""
    return isinstance(term, (Var, Numeral, Lam, Fix))


def subterms(term: Term) -> Iterator[Term]:
    """Yield every subterm of ``term`` (including ``term`` itself), pre-order."""
    yield term
    if isinstance(term, (Var, Numeral, Sample)) or is_extension_leaf(term):
        return
    if isinstance(term, Lam):
        yield from subterms(term.body)
    elif isinstance(term, Fix):
        yield from subterms(term.body)
    elif isinstance(term, App):
        yield from subterms(term.fn)
        yield from subterms(term.arg)
    elif isinstance(term, If):
        yield from subterms(term.cond)
        yield from subterms(term.then)
        yield from subterms(term.orelse)
    elif isinstance(term, Prim):
        for arg in term.args:
            yield from subterms(arg)
    elif isinstance(term, Score):
        yield from subterms(term.arg)
    else:
        raise TypeError(f"unknown term: {term!r}")


def term_size(term: Term) -> int:
    """Number of AST nodes in ``term``."""
    return sum(1 for _ in subterms(term))


def free_variables(term: Term) -> FrozenSet[str]:
    """The set of free variables of ``term``.

    Walks with an explicit stack of (subterm, bound-variables) pairs: deep
    recursion bodies (e.g. the ``nested`` program at large rank) are far
    deeper than Python's recursion limit allows a recursive walk to be.
    """
    collected = set()
    stack = [(term, frozenset())]
    while stack:
        term, bound = stack.pop()
        if isinstance(term, Var):
            if term.name not in bound:
                collected.add(term.name)
        elif isinstance(term, (Numeral, Sample)) or is_extension_leaf(term):
            pass
        elif isinstance(term, Lam):
            stack.append((term.body, bound | {term.var}))
        elif isinstance(term, Fix):
            stack.append((term.body, bound | {term.fvar, term.var}))
        elif isinstance(term, App):
            stack.append((term.fn, bound))
            stack.append((term.arg, bound))
        elif isinstance(term, If):
            stack.append((term.cond, bound))
            stack.append((term.then, bound))
            stack.append((term.orelse, bound))
        elif isinstance(term, Prim):
            for arg in term.args:
                stack.append((arg, bound))
        elif isinstance(term, Score):
            stack.append((term.arg, bound))
        else:
            raise TypeError(f"unknown term: {term!r}")
    return frozenset(collected)


def is_closed(term: Term) -> bool:
    """True iff ``term`` has no free variables."""
    return not free_variables(term)


_FRESH_COUNTER = itertools.count()


def fresh_variable(base: str, avoid: FrozenSet[str]) -> str:
    """Return a variable name derived from ``base`` that is not in ``avoid``."""
    if base not in avoid:
        return base
    stem = base.split("#", 1)[0]
    while True:
        candidate = f"{stem}#{next(_FRESH_COUNTER)}"
        if candidate not in avoid:
            return candidate


def substitute(term: Term, replacements: Mapping[str, Term]) -> Term:
    """Capture-avoiding simultaneous substitution ``term[replacements]``.

    Bound variables are renamed when they would capture a free variable of a
    substituted term.  Substituting the empty mapping returns ``term``.
    """
    if not replacements:
        return term
    free_of_replacements: FrozenSet[str] = frozenset()
    for replacement in replacements.values():
        free_of_replacements = free_of_replacements | free_variables(replacement)
    return _substitute(term, dict(replacements), free_of_replacements)


def _enter_binders(
    body: Term,
    binders: Tuple[str, ...],
    replacements: Dict[str, Term],
    avoid: FrozenSet[str],
) -> Optional[Tuple[Tuple[str, ...], Dict[str, Term], FrozenSet[str]]]:
    """Prepare the substitution that continues below a binder scope.

    Returns ``None`` when every replacement is shadowed (the scope is left
    untouched); otherwise the renamed binders, the combined replacement
    mapping, and the extended avoid set.  Binder renaming and the narrowed
    substitution are *one* simultaneous mapping: simultaneous substitution
    never re-traverses an inserted term, renamed binders insert only the
    fresh variable (which no replacement key matches), and occurrences of the
    old binder name free in replacement values stay free -- exactly the
    composition the capture-avoiding two-pass scheme computes.
    """
    narrowed = {name: value for name, value in replacements.items() if name not in binders}
    if not narrowed:
        return None
    new_binders = []
    renaming: Dict[str, Term] = {}
    taken = avoid | free_variables(body) | set(binders)
    for binder in binders:
        if binder in avoid:
            new_name = fresh_variable(binder, taken)
            taken = taken | {new_name}
            renaming[binder] = Var(new_name)
            new_binders.append(new_name)
        else:
            new_binders.append(binder)
    combined = dict(narrowed)
    combined.update(renaming)
    combined_avoid = avoid | frozenset(
        variable.name for variable in renaming.values()
    )
    return tuple(new_binders), combined, combined_avoid


def _substitute(
    term: Term, replacements: Dict[str, Term], avoid: FrozenSet[str]
) -> Term:
    """Iterative capture-avoiding substitution.

    A visit/assemble work stack replaces structural recursion so that very
    deep terms (the ``nested`` program at large rank produces bodies tens of
    thousands of nodes deep) cannot overflow the interpreter stack.  Visit
    items rebuild leaves directly; inner nodes push an assemble closure that
    pops its finished children (children are visited in LIFO order, so the
    *last* child pushed finishes first).
    """
    results: List[Term] = []
    work: List[Tuple] = [("visit", term, replacements, avoid)]
    while work:
        item = work.pop()
        if item[0] == "assemble":
            results.append(item[1](results))
            continue
        _, term, replacements, avoid = item
        if isinstance(term, Var):
            results.append(replacements.get(term.name, term))
        elif isinstance(term, (Numeral, Sample)) or is_extension_leaf(term):
            results.append(term)
        elif isinstance(term, Lam):
            entered = _enter_binders(term.body, (term.var,), replacements, avoid)
            if entered is None:
                results.append(term)
                continue
            (var,), combined, deeper_avoid = entered
            work.append(("assemble", lambda done, var=var: Lam(var, done.pop())))
            work.append(("visit", term.body, combined, deeper_avoid))
        elif isinstance(term, Fix):
            entered = _enter_binders(
                term.body, (term.fvar, term.var), replacements, avoid
            )
            if entered is None:
                results.append(term)
                continue
            (fvar, var), combined, deeper_avoid = entered
            work.append(
                ("assemble", lambda done, fvar=fvar, var=var: Fix(fvar, var, done.pop()))
            )
            work.append(("visit", term.body, combined, deeper_avoid))
        elif isinstance(term, App):
            def assemble_app(done):
                fn = done.pop()
                arg = done.pop()
                return App(fn, arg)

            work.append(("assemble", assemble_app))
            work.append(("visit", term.fn, replacements, avoid))
            work.append(("visit", term.arg, replacements, avoid))
        elif isinstance(term, If):
            def assemble_if(done):
                cond = done.pop()
                then = done.pop()
                orelse = done.pop()
                return If(cond, then, orelse)

            work.append(("assemble", assemble_if))
            work.append(("visit", term.cond, replacements, avoid))
            work.append(("visit", term.then, replacements, avoid))
            work.append(("visit", term.orelse, replacements, avoid))
        elif isinstance(term, Prim):
            def assemble_prim(done, op=term.op, count=len(term.args)):
                args = [done.pop() for _ in range(count)]  # newest-first
                args.reverse()
                return Prim(op, tuple(args))

            work.append(("assemble", assemble_prim))
            for arg in reversed(term.args):
                work.append(("visit", arg, replacements, avoid))
        elif isinstance(term, Score):
            work.append(("assemble", lambda done: Score(done.pop())))
            work.append(("visit", term.arg, replacements, avoid))
        else:
            raise TypeError(f"unknown term: {term!r}")
    (substituted,) = results
    return substituted


def alpha_equivalent(left: Term, right: Term) -> bool:
    """Structural equality of terms up to renaming of bound variables."""
    return _alpha(left, right, {}, {}, [0])


def _alpha(
    left: Term,
    right: Term,
    left_env: Dict[str, int],
    right_env: Dict[str, int],
    counter,
) -> bool:
    if type(left) is not type(right):
        return False
    if isinstance(left, Var):
        assert isinstance(right, Var)
        left_level = left_env.get(left.name)
        right_level = right_env.get(right.name)
        if left_level is None and right_level is None:
            return left.name == right.name
        return left_level == right_level
    if isinstance(left, Numeral):
        assert isinstance(right, Numeral)
        return left.value == right.value
    if isinstance(left, Sample):
        return True
    if is_extension_leaf(left):
        return left == right
    if isinstance(left, Lam):
        assert isinstance(right, Lam)
        level = counter[0]
        counter[0] += 1
        return _alpha(
            left.body,
            right.body,
            {**left_env, left.var: level},
            {**right_env, right.var: level},
            counter,
        )
    if isinstance(left, Fix):
        assert isinstance(right, Fix)
        level_f = counter[0]
        level_x = counter[0] + 1
        counter[0] += 2
        return _alpha(
            left.body,
            right.body,
            {**left_env, left.fvar: level_f, left.var: level_x},
            {**right_env, right.fvar: level_f, right.var: level_x},
            counter,
        )
    if isinstance(left, App):
        assert isinstance(right, App)
        return _alpha(left.fn, right.fn, left_env, right_env, counter) and _alpha(
            left.arg, right.arg, left_env, right_env, counter
        )
    if isinstance(left, If):
        assert isinstance(right, If)
        return (
            _alpha(left.cond, right.cond, left_env, right_env, counter)
            and _alpha(left.then, right.then, left_env, right_env, counter)
            and _alpha(left.orelse, right.orelse, left_env, right_env, counter)
        )
    if isinstance(left, Prim):
        assert isinstance(right, Prim)
        if left.op != right.op or len(left.args) != len(right.args):
            return False
        return all(
            _alpha(a, b, left_env, right_env, counter)
            for a, b in zip(left.args, right.args)
        )
    if isinstance(left, Score):
        assert isinstance(right, Score)
        return _alpha(left.arg, right.arg, left_env, right_env, counter)
    raise TypeError(f"unknown term: {left!r}")
