"""The simple type system of SPCF (Fig. 1 / Fig. 7 of the paper).

Types are ``R`` (the reals) and arrow types ``alpha -> beta``.  The checker
implements exactly the rules of Fig. 7; both call-by-name and call-by-value
use the same simple types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Term,
    Var,
)


class SimpleType:
    """Base class of SPCF simple types."""

    __slots__ = ()


@dataclass(frozen=True)
class RealType(SimpleType):
    """The base type ``R`` of real numbers."""

    def __repr__(self) -> str:
        return "R"


@dataclass(frozen=True)
class ArrowType(SimpleType):
    """Function type ``source -> target``."""

    source: SimpleType
    target: SimpleType

    def __repr__(self) -> str:
        source = repr(self.source)
        if isinstance(self.source, ArrowType):
            source = f"({source})"
        return f"{source} -> {self.target!r}"


REAL = RealType()


class TypeError_(Exception):
    """Raised when a term is not simply typable."""


def type_of(
    term: Term,
    env: Optional[Mapping[str, SimpleType]] = None,
    registry: Optional[PrimitiveRegistry] = None,
) -> SimpleType:
    """Infer the simple type of ``term`` under ``env``.

    Lambda- and mu-bound variables without an annotation are inferred for the
    common first-order shapes used in the paper: a lambda/fix whose bound
    variable is used at base type.  For higher-order programs the caller can
    supply annotated environments; in practice every term in the paper's
    benchmark suite is inferable by this function.
    """
    registry = registry or default_registry()
    environment = dict(env) if env else {}
    return _infer(term, environment, registry)


def typecheck(
    term: Term,
    expected: Optional[SimpleType] = None,
    env: Optional[Mapping[str, SimpleType]] = None,
    registry: Optional[PrimitiveRegistry] = None,
) -> SimpleType:
    """Typecheck ``term``; raise :class:`TypeError_` if it is untypable.

    When ``expected`` is given, additionally check that the inferred type
    equals it.
    """
    inferred = type_of(term, env=env, registry=registry)
    if expected is not None and inferred != expected:
        raise TypeError_(f"expected {expected!r} but inferred {inferred!r}")
    return inferred


def _infer(term: Term, env: Mapping[str, SimpleType], registry: PrimitiveRegistry) -> SimpleType:
    if isinstance(term, Var):
        if term.name not in env:
            raise TypeError_(f"unbound variable {term.name!r}")
        return env[term.name]
    if isinstance(term, Numeral):
        return REAL
    if isinstance(term, Sample):
        return REAL
    if isinstance(term, Score):
        argument = _infer(term.arg, env, registry)
        if argument != REAL:
            raise TypeError_(f"score expects R, got {argument!r}")
        return REAL
    if isinstance(term, Prim):
        primitive = registry[term.op]
        if len(term.args) != primitive.arity:
            raise TypeError_(
                f"primitive {term.op!r} expects {primitive.arity} arguments, "
                f"got {len(term.args)}"
            )
        for argument_term in term.args:
            argument = _infer(argument_term, env, registry)
            if argument != REAL:
                raise TypeError_(f"primitive argument must be R, got {argument!r}")
        return REAL
    if isinstance(term, If):
        condition = _infer(term.cond, env, registry)
        if condition != REAL:
            raise TypeError_(f"conditional guard must be R, got {condition!r}")
        then_type = _infer(term.then, env, registry)
        else_type = _infer(term.orelse, env, registry)
        if then_type != else_type:
            raise TypeError_(
                f"branches of conditional disagree: {then_type!r} vs {else_type!r}"
            )
        return then_type
    if isinstance(term, App):
        function = _infer(term.fn, env, registry)
        if not isinstance(function, ArrowType):
            raise TypeError_(f"applying a non-function of type {function!r}")
        argument = _infer(term.arg, env, registry)
        if argument != function.source:
            raise TypeError_(
                f"argument type {argument!r} does not match parameter "
                f"type {function.source!r}"
            )
        return function.target
    if isinstance(term, Lam):
        parameter = _guess_parameter_type(term.body, term.var)
        extended = {**env, term.var: parameter}
        return ArrowType(parameter, _infer(term.body, extended, registry))
    if isinstance(term, Fix):
        parameter = _guess_parameter_type(term.body, term.var)
        # The paper's benchmark programs are first-order recursions R -> R;
        # we first try result type R and fall back to a search over small
        # arrow shapes if that fails.
        for result in _candidate_result_types():
            candidate = ArrowType(parameter, result)
            extended = {**env, term.fvar: candidate, term.var: parameter}
            try:
                body = _infer(term.body, extended, registry)
            except TypeError_:
                continue
            if body == result:
                return candidate
        raise TypeError_("could not infer a simple type for fixpoint term")
    raise TypeError_(f"unknown term: {term!r}")


def _candidate_result_types():
    yield REAL
    yield ArrowType(REAL, REAL)
    yield ArrowType(REAL, ArrowType(REAL, REAL))


def _guess_parameter_type(body: Term, var: str) -> SimpleType:
    """Heuristically infer the type of a bound variable from its uses.

    A variable used in application position ``x N`` gets an arrow type
    (we only consider ``R -> R``, sufficient for the paper's programs); any
    other use is at base type ``R``.
    """
    used_as_function = _used_in_function_position(body, var)
    if used_as_function:
        return ArrowType(REAL, REAL)
    return REAL


def _used_in_function_position(term: Term, var: str) -> bool:
    if isinstance(term, App):
        if isinstance(term.fn, Var) and term.fn.name == var:
            return True
        return _used_in_function_position(term.fn, var) or _used_in_function_position(
            term.arg, var
        )
    if isinstance(term, (Var, Numeral, Sample)):
        return False
    if isinstance(term, Lam):
        if term.var == var:
            return False
        return _used_in_function_position(term.body, var)
    if isinstance(term, Fix):
        if var in (term.fvar, term.var):
            return False
        return _used_in_function_position(term.body, var)
    if isinstance(term, If):
        return (
            _used_in_function_position(term.cond, var)
            or _used_in_function_position(term.then, var)
            or _used_in_function_position(term.orelse, var)
        )
    if isinstance(term, Prim):
        return any(_used_in_function_position(arg, var) for arg in term.args)
    if isinstance(term, Score):
        return _used_in_function_position(term.arg, var)
    raise TypeError(f"unknown term: {term!r}")
