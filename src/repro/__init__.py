"""repro -- a reproduction of "On Probabilistic Termination of Functional
Programs with Continuous Distributions" (Beutner & Ong, PLDI 2021).

The package provides, from the bottom up:

* :mod:`repro.spcf` -- the SPCF language (syntax, simple types, primitives,
  parser, printer, sugar),
* :mod:`repro.semantics` -- the trace-based CbN/CbV operational semantics and
  Monte-Carlo estimation,
* :mod:`repro.intervals` -- intervals, boxes, interval traces and the
  interval-based semantics of Sec. 3,
* :mod:`repro.symbolic` and :mod:`repro.geometry` -- stochastic symbolic
  execution and the measuring oracles,
* :mod:`repro.lowerbound` -- certified lower bounds on ``Pterm``/``Eterm``
  (Table 1),
* :mod:`repro.typesystem` -- the intersection type system of Sec. 4,
* :mod:`repro.randomwalk` and :mod:`repro.counting` -- the counting-based
  recursion analysis of Sec. 5,
* :mod:`repro.astcheck` -- the automatic AST verifier of Sec. 6 (Table 2),
* :mod:`repro.hierarchy` -- executable views of the Pi^0_2 / Sigma^0_2
  results,
* :mod:`repro.programs` -- every benchmark program of the evaluation.

Quickstart::

    from fractions import Fraction
    from repro import lower_bound, verify_ast
    from repro.programs import printer_nonaffine

    program = printer_nonaffine(Fraction(1, 2))
    print(verify_ast(program).summary())          # AST verified; Papprox = ...
    print(lower_bound(program.applied, 60).summary())
"""

from repro.spcf import parse, pretty, typecheck
from repro.semantics import CbNMachine, CbVMachine, Trace, estimate_termination
from repro.intervals import Interval, IntervalTrace, embed
from repro.lowerbound import LowerBoundEngine, LowerBoundResult, lower_bound
from repro.astcheck import ASTVerificationResult, verify_ast
from repro.randomwalk import CountingDistribution, StepDistribution
from repro.counting import counting_pattern_exact, verify_ast_by_corollary
from repro.pastcheck import classify_termination, refute_past, verify_past

__version__ = "0.1.0"

__all__ = [
    "ASTVerificationResult",
    "CbNMachine",
    "CbVMachine",
    "CountingDistribution",
    "Interval",
    "IntervalTrace",
    "LowerBoundEngine",
    "LowerBoundResult",
    "StepDistribution",
    "Trace",
    "__version__",
    "classify_termination",
    "counting_pattern_exact",
    "embed",
    "estimate_termination",
    "lower_bound",
    "parse",
    "pretty",
    "refute_past",
    "typecheck",
    "verify_ast",
    "verify_ast_by_corollary",
    "verify_past",
]
