"""Additional example programs beyond the Table 1 / Table 2 benchmark set.

These programs exercise corners of the system that the paper discusses in the
text rather than in the evaluation tables: the two-sample guard of Ex. 3.5
(whose terminating trace set is not a countable union of boxes), the
single-conditional term of Ex. B.4, von Neumann's fair coin (an affine
recursion whose termination probability is 1 for every bias), a random walk
whose step length is a continuous first-class sample, a program that uses
``score`` and can fail, a nested recursion that the counting-based verifier
must refuse, and three retry loops whose guards are genuinely *non-affine in
the sample* (``sig(s)``, ``s*s``, ``s1 + sig(s2)``) -- the workload of the
block-decomposed subdivision sweep, since no polytope oracle applies to
their path constraint sets.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Union

from repro.distributions.transforms import exponential
from repro.programs.library import Program
from repro.spcf.sugar import add, choice, let, sub
from repro.spcf.syntax import App, Fix, If, Numeral, Prim, Sample, Score, Var
from repro.symbolic.execute import Strategy

Number = Union[Fraction, float, int]

__all__ = [
    "anytime_programs",
    "conditional_single_sample",
    "dist_programs",
    "exponential_step_walk",
    "extra_programs",
    "nested_recursion",
    "nonaffine_programs",
    "score_gated_printer",
    "sigmoid_branching",
    "sigmoid_tri_branching",
    "sigmoid_retry",
    "sigmoid_sum_retry",
    "square_retry",
    "two_sample_sum",
    "von_neumann_coin",
]


def two_sample_sum() -> Program:
    """Ex. 3.5: retry while the sum of two fresh samples exceeds 1.

    ``(mu phi x. if sample + sample - 1 then x else phi x) 0``: the set of
    traces that terminate without a recursive call is the triangle
    ``{r1 r2 | r1 + r2 <= 1}``, which no countable union of interval traces
    covers exactly -- yet the program is AST and the interval semantics still
    certifies bounds arbitrarily close to 1 (completeness, Thm. 3.8).
    """
    guard = sub(add(Sample(), Sample()), 1)
    body = If(guard, Var("x"), App(Var("phi"), Var("x")))
    fix = Fix("phi", "x", body)
    return Program(
        name="two-sample-sum",
        fix=fix,
        applied=App(fix, Numeral(0)),
        description="retry until two fresh samples sum to at most 1 (Ex. 3.5)",
        known_probability=1.0,
    )


def conditional_single_sample() -> Program:
    """Ex. B.4: a single conditional on one sample, ``if(sample - 1/2, 0, 1)``.

    Terminates on every trace of length one; the interval trace ``[0, 1]`` is
    *not* terminating for the embedded interval term (the guard interval
    straddles 0), which is why completeness needs the branching partition.
    """
    term = If(sub(Sample(), Fraction(1, 2)), Numeral(0), Numeral(1))
    fix = Fix("phi", "x", term)
    return Program(
        name="single-conditional",
        fix=fix,
        applied=term,
        description="one conditional on one sample (Ex. B.4)",
        known_probability=1.0,
    )


def von_neumann_coin(p: Number = Fraction(1, 3)) -> Program:
    """Von Neumann's fair coin from a ``p``-biased coin.

    Each round draws two ``p``-biased bits; if they differ the first decides
    the output, otherwise the round is repeated.  The recursion is affine
    (one call site per path), so the zero-one law applies: the program is AST
    for every ``p`` strictly between 0 and 1, and the result is a fair bit.
    """
    if not 0 < p < 1:
        raise ValueError("the bias must lie strictly between 0 and 1")
    retry = App(Var("phi"), Var("x"))
    # First draw heads (probability p): output 1 if the second draw is tails.
    first_heads = If(sub(Sample(), p), retry, Numeral(1))
    # First draw tails: output 0 if the second draw is heads.
    first_tails = If(sub(Sample(), p), Numeral(0), retry)
    body = If(sub(Sample(), p), first_heads, first_tails)
    fix = Fix("phi", "x", body)
    return Program(
        name=f"von-neumann({p})",
        fix=fix,
        applied=App(fix, Numeral(0)),
        description="von Neumann fair-coin extraction from a biased coin",
        known_probability=1.0,
    )


def exponential_step_walk(rate: Number = 1, start: Number = 3) -> Program:
    """A walk towards 0 whose step lengths are exponential first-class samples.

    ``mu phi x. if x <= 0 then x else phi (x - Exp(rate))``: every step
    subtracts a fresh exponential draw, so the walk reaches 0 after finitely
    many steps almost surely (the expected number of rounds is about
    ``rate * start``).  The step length is built by the inverse-CDF transform
    of :mod:`repro.distributions`, demonstrating continuous samples used as
    first-class values inside a recursive program.
    """
    if rate <= 0:
        raise ValueError("the exponential rate must be positive")
    body = If(
        Var("x"),
        Var("x"),
        App(Var("phi"), sub(Var("x"), exponential(rate))),
    )
    fix = Fix("phi", "x", body)
    return Program(
        name=f"exp-walk({rate},{start})",
        fix=fix,
        applied=App(fix, Numeral(start)),
        description="walk towards 0 with exponential step lengths",
        strategy=Strategy.CBV,
        known_probability=1.0,
    )


def score_gated_printer(p: Number = Fraction(1, 2), threshold: Number = Fraction(1, 4)) -> Program:
    """The affine printer with a ``score`` that fails on small samples.

    Each retry conditions on the drawn value being at least ``threshold``
    (``score(sample - threshold)`` fails when the draw is smaller), so a run
    can get stuck: the program is *not* AST -- the verifier must notice the
    missing probability mass instead of silently ignoring the failing score.
    """
    retry = let(
        "w",
        Score(sub(Sample(), threshold)),
        App(Var("phi"), add(Var("x"), 1)),
    )
    body = choice(Var("x"), p, retry)
    fix = Fix("phi", "x", body)
    return Program(
        name=f"score-printer({p})",
        fix=fix,
        applied=App(fix, Numeral(1)),
        description="printer whose retries condition on a minimum sample value",
        strategy=Strategy.CBV,
        known_probability=None,
    )


def nested_recursion(p: Number = Fraction(1, 2)) -> Program:
    """A geometric loop whose retry runs a second, inner geometric loop.

    The outer body contains a nested fixpoint, which the counting-based
    verifier of Sec. 5/6 does not handle (it analyses a single first-order
    recursion); the lower-bound engine and the Monte-Carlo sampler still
    apply.  The program is AST for every ``p > 0``.
    """
    inner_body = If(sub(Sample(), p), Var("y"), App(Var("psi"), add(Var("y"), 1)))
    inner = Fix("psi", "y", inner_body)
    outer_body = If(
        sub(Sample(), p),
        Var("x"),
        App(Var("phi"), App(inner, add(Var("x"), 1))),
    )
    fix = Fix("phi", "x", outer_body)
    return Program(
        name=f"nested({p})",
        fix=fix,
        applied=App(fix, Numeral(0)),
        description="geometric retry loop whose retry runs an inner geometric loop",
        strategy=Strategy.CBV,
        known_probability=1.0 if p > 0 else 0.0,
    )


def sigmoid_retry(threshold: Number = Fraction(7, 10)) -> Program:
    """A retry loop gated on the sigmoid of a fresh sample.

    ``mu phi x. if sig(sample) - t then x else phi (x+1)``: each round
    terminates when ``sig(s) <= t``, which happens with probability
    ``ln((t)/(1-t)) `` for ``t`` inside ``sig([0,1]) = [1/2, sig(1)]``.  The
    guard has no affine form, so every path constraint set is measured by
    the certified subdivision sweep -- and because each round draws a fresh
    sample, a ``k``-round path splits into ``k`` independent one-dimensional
    blocks of only two distinct shapes, the block-sweep showcase.
    """
    guard = sub(Prim("sig", (Sample(),)), threshold)
    body = If(guard, Var("x"), App(Var("phi"), add(Var("x"), 1)))
    fix = Fix("phi", "x", body)
    return Program(
        name=f"sig-retry({threshold})",
        fix=fix,
        applied=App(fix, Numeral(1)),
        description="retry until the sigmoid of a fresh sample drops below a threshold",
        known_probability=1.0,
    )


def square_retry(threshold: Number = Fraction(1, 2)) -> Program:
    """A retry loop gated on the *square* of a fresh sample.

    ``mu phi x. let s = sample in if s*s - t then x else phi (x+1)`` under
    call-by-value (so the bound sample is drawn once and squared).  Each
    round succeeds with probability ``sqrt(t)``; the guard ``s*s - t`` is
    quadratic, so only the subdivision sweep can certify its measure.
    """
    square = Prim("mul", (Var("s"), Var("s")))
    round_body = If(sub(square, threshold), Var("x"), App(Var("phi"), add(Var("x"), 1)))
    fix = Fix("phi", "x", let("s", Sample(), round_body))
    return Program(
        name=f"square-retry({threshold})",
        fix=fix,
        applied=App(fix, Numeral(1)),
        description="retry until the square of a fresh sample drops below a threshold",
        strategy=Strategy.CBV,
        known_probability=1.0,
    )


def sigmoid_sum_retry(bound: Number = 1) -> Program:
    """A retry loop whose guard couples *two* fresh samples non-affinely.

    ``mu phi x. if (sample + sig(sample)) - b then x else phi (x+1)``: the
    two draws of one round form a single connected two-dimensional block
    (they share the guard), while draws of different rounds stay
    independent -- so a ``k``-round path is a product of ``k``
    two-dimensional non-affine blocks.
    """
    guard = sub(add(Sample(), Prim("sig", (Sample(),))), bound)
    body = If(guard, Var("x"), App(Var("phi"), add(Var("x"), 1)))
    fix = Fix("phi", "x", body)
    return Program(
        name=f"sig-sum-retry({bound})",
        fix=fix,
        applied=App(fix, Numeral(1)),
        description="retry until a sample plus the sigmoid of a second stays below a bound",
        known_probability=1.0,
    )


def sigmoid_branching(threshold: Number = Fraction(3, 5)) -> Program:
    """A *branching* recursion gated on the sigmoid of a fresh sample.

    ``mu phi x. if sig(sample) - t then x else phi (phi (x+1))``: the
    golden-ratio shape (recursive rank 2, so the path tree branches and
    deepening budgets keep uncovering whole new path generations) with the
    non-affine round guard of :func:`sigmoid_retry`.  Each round terminates
    with probability ``p = ln(t/(1-t))`` for ``t`` inside ``sig([0,1])``, so
    ``Pterm`` is the least fixpoint of ``q = p + (1-p) q**2``, i.e.
    ``p/(1-p)`` for ``p < 1/2``.  This is the canonical anytime-schedule
    workload: rank >= 2 *and* every path constraint set needs the
    subdivision sweep.
    """
    # P(sig(s) <= t) for s ~ U[0,1] is sig^{-1}(t) clamped into [0, 1]:
    # thresholds below sig(0) = 1/2 never terminate a round, thresholds
    # above sig(1) always do.
    p = min(1.0, max(0.0, math.log(float(threshold) / (1 - float(threshold)))))
    guard = sub(Prim("sig", (Sample(),)), threshold)
    body = If(guard, Var("x"), App(Var("phi"), App(Var("phi"), add(Var("x"), 1))))
    fix = Fix("phi", "x", body)
    return Program(
        name=f"sig-branch({threshold})",
        fix=fix,
        applied=App(fix, Numeral(1)),
        description="rank-2 branching recursion gated on the sigmoid of a fresh sample",
        known_probability=min(1.0, p / (1 - p)) if p < 1 else 1.0,
    )


def sigmoid_tri_branching(
    threshold: Number = Fraction(3, 5), padding: int = 0
) -> Program:
    """A rank-*3* branching recursion gated on the sigmoid of a fresh sample.

    ``mu phi x. if sig(sample) - t then x else phi (phi (phi (x+1)))``: the
    :func:`sigmoid_branching` round guard, but every failed round spawns
    *three* recursive calls.  With per-round termination probability
    ``p = ln(t/(1-t))``, ``Pterm`` is the least fixpoint of
    ``q = p + (1-p) q**3`` (no closed form; computed by fixed-point
    iteration, which converges to the *least* solution from ``q = 0``).
    The frontier fans out a full generation wider per depth than the
    rank-2 program, so per-subtree shards stay balanced enough for a
    worker fleet to deepen them in parallel -- this is the distributed
    anytime-deepening workload.

    ``padding`` pads the guard's threshold with that many ``+ 0`` constant
    folds: every round burns the extra reduction steps *inside* its branch
    node while the folded constant leaves the path constraints (and hence
    every probability) untouched.  That shifts work from tree structure to
    stepping -- the compute-bound regime where distributing the stepping
    pays, without inflating the encoded frontier.
    """
    p = min(1.0, max(0.0, math.log(float(threshold) / (1 - float(threshold)))))
    q = 0.0
    for _ in range(256):
        q = p + (1 - p) * q**3
    bound = Numeral(threshold)
    for _ in range(padding):
        bound = add(bound, 0)
    guard = sub(Prim("sig", (Sample(),)), bound)
    rec = App(Var("phi"), add(Var("x"), 1))
    body = If(guard, Var("x"), App(Var("phi"), App(Var("phi"), rec)))
    fix = Fix("phi", "x", body)
    suffix = f",pad={padding}" if padding else ""
    return Program(
        name=f"sig-branch3({threshold}{suffix})",
        fix=fix,
        applied=App(fix, Numeral(1)),
        description="rank-3 branching recursion gated on the sigmoid of a fresh sample",
        known_probability=min(1.0, q),
    )


def nonaffine_programs() -> Dict[str, Program]:
    """The retry loops with non-affine guards (the sweep-heavy workload)."""
    programs = (
        sigmoid_retry(Fraction(7, 10)),
        square_retry(Fraction(1, 2)),
        sigmoid_sum_retry(1),
    )
    return {program.name: program for program in programs}


def anytime_programs() -> Dict[str, Program]:
    """The anytime-schedule workload: rank >= 2 library programs.

    Kept out of :func:`extra_programs` / :func:`nonaffine_programs` on
    purpose -- those registries define the committed ``BENCH_papprox`` /
    ``BENCH_sweep`` baselines, whose aggregate counters must not move when a
    new workload is added.  ``benchmarks/test_perf_anytime.py`` (and the
    CLI, through the main library) reach these by name.
    """
    programs = (sigmoid_branching(Fraction(3, 5)),)
    return {program.name: program for program in programs}


def dist_programs() -> Dict[str, Program]:
    """The distributed-deepening workload: rank-3 non-affine recursion.

    Isolated from :func:`anytime_programs` for the same baseline-stability
    reason that registry is isolated from the rest -- ``BENCH_anytime``'s
    committed counters must not move when the distributed benchmark grows
    its own workload.  ``benchmarks/test_perf_dist.py`` (and the CLI,
    through the main library) reach these by name.  The padded variant is
    the benchmark workload proper: its guard padding makes each round
    compute-bound, the regime a worker fleet actually accelerates.
    """
    programs = (
        sigmoid_tri_branching(Fraction(3, 5)),
        sigmoid_tri_branching(Fraction(3, 5), padding=60),
    )
    return {program.name: program for program in programs}


def extra_programs() -> Dict[str, Program]:
    """The additional example programs, keyed by name."""
    programs = (
        two_sample_sum(),
        conditional_single_sample(),
        von_neumann_coin(Fraction(1, 3)),
        exponential_step_walk(1, 3),
        score_gated_printer(Fraction(1, 2)),
        nested_recursion(Fraction(1, 2)),
    )
    named = {program.name: program for program in programs}
    named.update(nonaffine_programs())
    return named
