"""The paper's benchmark programs (Tables 1 and 2, Examples 1.1, 5.1, 5.15).

All programs are expressed with the probabilistic-choice sugar
``M (+)_p N  =  if(sample - p, M, N)`` (left branch with probability ``p``)
and branch on ``guard <= 0`` exactly as in the paper.  Where the paper only
sketches a program (``gr``, ``bin``, ``pedestrian``) the concrete shape used
here is documented on the builder, together with the known probability of
termination used to sanity-check the reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Union

from repro.spcf.sugar import add, choice, let, mul, sub
from repro.spcf.syntax import App, Fix, If, Numeral, Prim, Sample, Term, Var
from repro.symbolic.execute import Strategy

Number = Union[Fraction, float, int]


@dataclass(frozen=True)
class Program:
    """A benchmark program: the recursive function and its applied form."""

    name: str
    fix: Fix
    applied: Term
    description: str
    strategy: Strategy = Strategy.CBN
    known_probability: Optional[float] = None
    """The probability of termination, when the paper (or a closed form) gives it."""


def _phi(times: int, argument: Term) -> Term:
    """``phi`` applied ``times`` times in a nested fashion: ``phi (phi (... arg))``."""
    term = argument
    for _ in range(times):
        term = App(Var("phi"), term)
    return term


# ---------------------------------------------------------------------------
# Example 1.1: the 3D-printing company.
# ---------------------------------------------------------------------------


def geometric(p: Number = Fraction(1, 2), start: Number = 1) -> Program:
    """``geo_p`` -- the affine printer, Ex. 1.1 (1).

    ``mu phi x. if sample <= p then x else phi (x + 1)`` applied to ``start``:
    a geometric number of retries; AST for every ``p > 0``.
    """
    body = If(sub(Sample(), p), Var("x"), App(Var("phi"), add(Var("x"), 1)))
    fix = Fix("phi", "x", body)
    return Program(
        name=f"geo({p})",
        fix=fix,
        applied=App(fix, Numeral(start)),
        description="geometric retry loop (Ex. 1.1 program (1))",
        known_probability=1.0 if p > 0 else 0.0,
    )


def printer_affine(p: Number = Fraction(1, 2)) -> Program:
    """Alias of :func:`geometric`: the affine 3D-printer program (Ex. 1.1 (1))."""
    program = geometric(p)
    return Program(
        name=f"printer-affine({p})",
        fix=program.fix,
        applied=program.applied,
        description=program.description,
        known_probability=program.known_probability,
    )


def printer_nonaffine(p: Number = Fraction(1, 2), start: Number = 1) -> Program:
    """The non-affine printer, Ex. 1.1 (2).

    ``mu phi x. if sample <= p then x else phi (phi (x + 1))``: two recursive
    calls on failure.  AST iff ``p >= 1/2`` (and PAST only for ``p > 1/2``).
    The probability of termination for ``p < 1/2`` is the minimal solution of
    ``q = p + (1 - p) q^2``, i.e. ``p / (1 - p)``.
    """
    body = If(sub(Sample(), p), Var("x"), _phi(2, add(Var("x"), 1)))
    fix = Fix("phi", "x", body)
    p_float = float(p)
    known = 1.0 if p_float >= 0.5 else (p_float / (1 - p_float))
    return Program(
        name=f"printer-nonaffine({p})",
        fix=fix,
        applied=App(fix, Numeral(start)),
        description="branching printer with two recursive calls (Ex. 1.1 program (2))",
        known_probability=known,
    )


def three_print(p: Number = Fraction(3, 4), start: Number = 1) -> Program:
    """``3print_p``: Ex. 1.1 (2) extended to three recursive calls on failure.

    The termination probability is the least fixpoint of
    ``q = p + (1 - p) q^3``; it is 1 exactly when the counting drift
    ``3 (1 - p) <= 1``, i.e. ``p >= 2/3``.
    """
    body = If(sub(Sample(), p), Var("x"), _phi(3, add(Var("x"), 1)))
    fix = Fix("phi", "x", body)
    known = _least_fixpoint_of_branching(float(p), branches=3)
    return Program(
        name=f"3print({p})",
        fix=fix,
        applied=App(fix, Numeral(start)),
        description="printer with three recursive calls on failure",
        known_probability=known,
    )


# ---------------------------------------------------------------------------
# Random walks.
# ---------------------------------------------------------------------------


def one_dim_random_walk(p: Number = Fraction(1, 2), start: int = 1) -> Program:
    """``1dRW_{p,s}``: the biased random walk on the naturals of [44].

    ``mu phi x. if x <= 0 then x else (phi (x - 1) (+)_p phi (x + 1))``
    applied to ``start``; moves down with probability ``p``.  AST iff
    ``p >= 1/2``; for ``p < 1/2`` the termination probability from state ``s``
    is ``(p / (1 - p))^s``.
    """
    body = If(
        Var("x"),
        Var("x"),
        choice(App(Var("phi"), sub(Var("x"), 1)), p, App(Var("phi"), add(Var("x"), 1))),
    )
    fix = Fix("phi", "x", body)
    p_float = float(p)
    known = 1.0 if p_float >= 0.5 else (p_float / (1 - p_float)) ** start
    return Program(
        name=f"1dRW({p},{start})",
        fix=fix,
        applied=App(fix, Numeral(start)),
        description="one-dimensional biased random walk, absorbed at 0",
        known_probability=known,
    )


def bin_walk(p: Number = Fraction(1, 2), start: int = 2) -> Program:
    """``bin_{p,s}``: a one-directional random walk ([44]).

    ``mu phi x. if x <= 0 then x else (phi (x - 1) (+)_p phi x)`` applied to
    ``start``: the walk can only move towards 0 (with probability ``p`` per
    step) and is AST for every ``p > 0``.
    """
    body = If(
        Var("x"),
        Var("x"),
        choice(App(Var("phi"), sub(Var("x"), 1)), p, App(Var("phi"), Var("x"))),
    )
    fix = Fix("phi", "x", body)
    return Program(
        name=f"bin({p},{start})",
        fix=fix,
        applied=App(fix, Numeral(start)),
        description="one-directional random walk towards 0",
        known_probability=1.0 if p > 0 else 0.0,
    )


def golden_ratio() -> Program:
    """``gr``: a term terminating with probability the inverse golden ratio ([51]).

    ``mu phi x. x (+) phi (phi (phi x))`` applied to 0: with probability 1/2
    stop, otherwise make three recursive calls.  The probability of
    termination is the least solution of ``q = 1/2 + 1/2 q^3``, which is
    ``(sqrt 5 - 1) / 2``.
    """
    body = choice(Var("x"), Fraction(1, 2), _phi(3, Var("x")))
    fix = Fix("phi", "x", body)
    return Program(
        name="gr",
        fix=fix,
        applied=App(fix, Numeral(0)),
        description="three-way recursion terminating with the inverse golden ratio",
        known_probability=(math.sqrt(5) - 1) / 2,
    )


def pedestrian(scale: Number = 3) -> Program:
    """``pedestrian``: the lost-pedestrian model inspired by [41].

    A pedestrian is lost a uniform distance (scaled by ``scale``) from home
    and repeatedly walks a uniform-[0,1] segment in a uniformly chosen
    direction until reaching home (position ``<= 0``)::

        (mu phi x. if x <= 0 then x
                   else (phi (x - sample) (+) phi (x + sample)))  (scale * sample)

    The walk on the non-negative reals is recurrent, so the program is AST;
    its expected runtime is infinite.  The paper analyses a CbN-adjusted
    variant; we analyse the natural call-by-value reading (under CbN the
    substituted argument would be re-sampled at each use), which preserves the
    modelled process.
    """
    body = If(
        Var("x"),
        Var("x"),
        choice(
            App(Var("phi"), sub(Var("x"), Sample())),
            Fraction(1, 2),
            App(Var("phi"), add(Var("x"), Sample())),
        ),
    )
    fix = Fix("phi", "x", body)
    return Program(
        name="pedestrian",
        fix=fix,
        applied=App(fix, mul(scale, Sample())),
        description="lost pedestrian performing a symmetric walk back home",
        strategy=Strategy.CBV,
        known_probability=1.0,
    )


# ---------------------------------------------------------------------------
# The running examples with sigmoid-dependent branching (Ex. 5.1 and Ex. 5.15).
# ---------------------------------------------------------------------------


def running_example(p: Number = Fraction(3, 5)) -> Program:
    """Ex. 5.1: the tired-operator printer.

    ``mu phi x. x (+)_p ((phi^3 (x+1) (+) phi^2 (x+1)) (+)_{sig x} phi^2 (x+1))``

    With probability ``p`` the print is accepted; otherwise, with probability
    ``sig(x)`` the operator is tired and prints 3 copies with probability 1/2
    (2 otherwise), and with probability ``1 - sig(x)`` prints 2 copies.
    Thm. 5.9 shows the program is AST (on every argument) whenever
    ``p >= 3/5``.
    """
    retry = add(Var("x"), 1)
    tired = choice(_phi(3, retry), Fraction(1, 2), _phi(2, retry))
    failure = If(sub(Sample(), Prim("sig", (Var("x"),))), tired, _phi(2, retry))
    body = choice(Var("x"), p, failure)
    fix = Fix("phi", "x", body)
    return Program(
        name=f"ex5.1({p})",
        fix=fix,
        applied=App(fix, Numeral(0)),
        description="printer with a tiredness-dependent number of recursive calls (Ex. 5.1)",
        strategy=Strategy.CBV,
        known_probability=1.0 if float(p) >= 0.6 else None,
    )


def running_example_first_class(p: Number = Fraction(13, 20)) -> Program:
    """Ex. 5.15: the printer that uses the sampled error value as a first-class probability.

    ``mu phi x. let e = sample in
                if e <= p then x
                else ((phi^3 (x+1) (+)_e phi^2 (x+1)) (+)_{sig x} phi^2 (x+1))``

    AST (on every argument) whenever ``p >= sqrt 7 - 2 ~ 0.6458`` (App. D.5).
    """
    retry = add(Var("x"), 1)
    tired = choice(_phi(3, retry), Var("e"), _phi(2, retry))
    failure = If(sub(Sample(), Prim("sig", (Var("x"),))), tired, _phi(2, retry))
    body = let("e", Sample(), If(sub(Var("e"), p), Var("x"), failure))
    fix = Fix("phi", "x", body)
    return Program(
        name=f"ex5.15({p})",
        fix=fix,
        applied=App(fix, Numeral(0)),
        description="printer whose reprint distribution depends on the sampled error (Ex. 5.15)",
        strategy=Strategy.CBV,
        known_probability=1.0 if float(p) >= math.sqrt(7) - 2 else None,
    )


# ---------------------------------------------------------------------------
# Experiment suites.
# ---------------------------------------------------------------------------


def _least_fixpoint_of_branching(p: float, branches: int) -> float:
    """Least solution of ``q = p + (1 - p) q^branches`` by fixpoint iteration."""
    q = 0.0
    for _ in range(100_000):
        updated = p + (1 - p) * q**branches
        if abs(updated - q) < 1e-15:
            return updated
        q = updated
    return q


def table1_programs() -> Dict[str, Program]:
    """The rows of Table 1 (lower-bound computation)."""
    return {
        "geo(1/2)": geometric(Fraction(1, 2)),
        "geo(1/5)": geometric(Fraction(1, 5)),
        "1dRW(1/2,1)": one_dim_random_walk(Fraction(1, 2), 1),
        "1dRW(7/10,1)": one_dim_random_walk(Fraction(7, 10), 1),
        "gr": golden_ratio(),
        "ex1.1(1/2)": printer_nonaffine(Fraction(1, 2)),
        "ex1.1(1/4)": printer_nonaffine(Fraction(1, 4)),
        "3print(3/4)": three_print(Fraction(3, 4)),
        "bin(1/2,2)": bin_walk(Fraction(1, 2), 2),
        "pedestrian": pedestrian(),
    }


def table2_programs() -> Dict[str, Program]:
    """The rows of Table 2 (automatic AST verification)."""
    return {
        "ex1.1-(1)(1/2)": printer_affine(Fraction(1, 2)),
        "ex1.1-(2)(1/2)": printer_nonaffine(Fraction(1, 2)),
        "3print(2/3)": three_print(Fraction(2, 3)),
        "ex5.1(0.6)": running_example(Fraction(3, 5)),
        "ex5.15(0.65)": running_example_first_class(Fraction(13, 20)),
    }
