"""The benchmark program library: every term used in the paper's evaluation.

Each entry is a :class:`~repro.programs.library.Program` bundling the
recursive function (a ``Fix`` term), the applied closed program, the expected
probability of termination where the paper states it, and the evaluation
strategy under which the paper analyses it.  :mod:`repro.programs.extra`
adds programs the paper only discusses in the text (Ex. 3.5, Ex. B.4, von
Neumann's coin, score-conditioned and nested variants).
"""

from repro.programs.library import (
    Program,
    bin_walk,
    geometric,
    golden_ratio,
    one_dim_random_walk,
    pedestrian,
    printer_affine,
    printer_nonaffine,
    running_example,
    running_example_first_class,
    table1_programs,
    table2_programs,
    three_print,
)
from repro.programs.extra import (
    anytime_programs,
    conditional_single_sample,
    dist_programs,
    exponential_step_walk,
    extra_programs,
    nested_recursion,
    nonaffine_programs,
    score_gated_printer,
    sigmoid_branching,
    sigmoid_tri_branching,
    sigmoid_retry,
    sigmoid_sum_retry,
    square_retry,
    two_sample_sum,
    von_neumann_coin,
)

import functools


@functools.lru_cache(maxsize=1)
def _library():
    programs = {}
    programs.update(table1_programs())
    for name, program in table2_programs().items():
        programs.setdefault(name, program)
    for name, program in extra_programs().items():
        programs.setdefault(name, program)
    # The anytime and distributed workloads are resolvable by name but
    # deliberately outside the registries that define the committed BENCH_*
    # baselines.
    for name, program in anytime_programs().items():
        programs.setdefault(name, program)
    for name, program in dist_programs().items():
        programs.setdefault(name, program)
    return programs


def all_programs():
    """Every library program, keyed by name (Table 1 entries win on clashes)."""
    return dict(_library())


@functools.lru_cache(maxsize=256)
def resolve_program(source: str) -> Program:
    """Resolve a program reference: a library name or surface syntax.

    This is the single resolution rule shared by the CLI and the batch
    runner, so a job file and a command line mean the same thing by the
    same string.  Cached: programs are immutable, and batch key hashing
    resolves the same reference repeatedly.
    """
    from repro.spcf.parser import parse
    from repro.spcf.syntax import Fix, subterms

    programs = _library()
    if source in programs:
        return programs[source]
    term = parse(source)
    fix = term if isinstance(term, Fix) else next(
        (sub for sub in subterms(term) if isinstance(sub, Fix)), None
    )
    return Program(
        name="<command line>",
        fix=fix if isinstance(fix, Fix) else Fix("phi", "x", term),
        applied=term,
        description="program supplied on the command line",
    )


__all__ = [
    "Program",
    "all_programs",
    "resolve_program",
    "anytime_programs",
    "bin_walk",
    "conditional_single_sample",
    "dist_programs",
    "exponential_step_walk",
    "extra_programs",
    "geometric",
    "golden_ratio",
    "nested_recursion",
    "nonaffine_programs",
    "one_dim_random_walk",
    "pedestrian",
    "printer_affine",
    "printer_nonaffine",
    "running_example",
    "running_example_first_class",
    "score_gated_printer",
    "sigmoid_branching",
    "sigmoid_retry",
    "sigmoid_tri_branching",
    "sigmoid_sum_retry",
    "square_retry",
    "table1_programs",
    "table2_programs",
    "three_print",
    "two_sample_sum",
    "von_neumann_coin",
]
