"""The benchmark program library: every term used in the paper's evaluation.

Each entry is a :class:`~repro.programs.library.Program` bundling the
recursive function (a ``Fix`` term), the applied closed program, the expected
probability of termination where the paper states it, and the evaluation
strategy under which the paper analyses it.  :mod:`repro.programs.extra`
adds programs the paper only discusses in the text (Ex. 3.5, Ex. B.4, von
Neumann's coin, score-conditioned and nested variants).
"""

from repro.programs.library import (
    Program,
    bin_walk,
    geometric,
    golden_ratio,
    one_dim_random_walk,
    pedestrian,
    printer_affine,
    printer_nonaffine,
    running_example,
    running_example_first_class,
    table1_programs,
    table2_programs,
    three_print,
)
from repro.programs.extra import (
    conditional_single_sample,
    exponential_step_walk,
    extra_programs,
    nested_recursion,
    score_gated_printer,
    two_sample_sum,
    von_neumann_coin,
)

__all__ = [
    "Program",
    "bin_walk",
    "conditional_single_sample",
    "exponential_step_walk",
    "extra_programs",
    "geometric",
    "golden_ratio",
    "nested_recursion",
    "one_dim_random_walk",
    "pedestrian",
    "printer_affine",
    "printer_nonaffine",
    "running_example",
    "running_example_first_class",
    "score_gated_printer",
    "table1_programs",
    "table2_programs",
    "three_print",
    "two_sample_sum",
    "von_neumann_coin",
]
