"""The ``R-top`` simple type system of App. D.3 (Fig. 17).

The counting semantics of Fig. 5 gets stuck when the outcome of a recursive
call (the unknown numeral ``star``) flows into the guard of a conditional or
into a ``score``.  The paper rules this out statically with a refinement of
the simple type system: a second base type ``R-top`` ("a real that may be a
recursive outcome") with ``R <= R-top``, where the recursive function has type
``R -> R-top``, conditional guards and score arguments must have type ``R``,
and primitives are available at both ``R^n -> R`` and ``R-top^n -> R-top``.

This module implements a checker for the first-order fragment in which the
paper's examples live: lambda-bound variables are given the smallest base type
consistent with their binding site (``R`` for ``let``-style bindings of
sampled or arithmetic values, ``R-top`` when the bound term may contain a
recursive outcome).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Term,
    Var,
)


@dataclass(frozen=True)
class ProgressCheckResult:
    """Outcome of the App. D.3 progress check."""

    ok: bool
    reason: Optional[str] = None


# Abstract base "types": R (plain real) and RT (possibly a recursive outcome).
_R = "R"
_RT = "R-top"
_FUN = "fun"  # the recursion variable itself


class _Fail(Exception):
    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def guards_independent_of_recursion(fix: Fix) -> ProgressCheckResult:
    """Check that no conditional guard / score argument can see a recursive outcome.

    This is the semantic guarantee provided by typability in Fig. 17
    (Lem. D.8): under it the counting reduction enjoys progress, so the
    counting pattern of the program sums to 1 (provided no ``score`` fails).
    """
    environment: Dict[str, str] = {fix.var: _R, fix.fvar: _FUN}
    try:
        _infer(fix.body, environment)
    except _Fail as failure:
        return ProgressCheckResult(False, failure.reason)
    return ProgressCheckResult(True)


def _join(left: str, right: str) -> str:
    if left == _FUN or right == _FUN:
        raise _Fail("the recursive function is used as a first-class value")
    return _RT if _RT in (left, right) else _R


def _infer(term: Term, environment: Dict[str, str]) -> str:
    if isinstance(term, Numeral):
        return _R
    if isinstance(term, Sample):
        return _R
    if isinstance(term, Var):
        if term.name not in environment:
            raise _Fail(f"unbound variable {term.name!r}")
        return environment[term.name]
    if isinstance(term, Prim):
        result = _R
        for argument in term.args:
            result = _join(result, _infer(argument, environment))
        return result
    if isinstance(term, If):
        guard = _infer(term.cond, environment)
        if guard != _R:
            raise _Fail("a conditional guard may depend on a recursive outcome")
        branches = _join(
            _infer(term.then, environment), _infer(term.orelse, environment)
        )
        return branches
    if isinstance(term, Score):
        argument = _infer(term.arg, environment)
        if argument != _R:
            raise _Fail("a score argument may depend on a recursive outcome")
        return _R
    if isinstance(term, App):
        function = term.fn
        if isinstance(function, Var) and environment.get(function.name) == _FUN:
            # A recursive call: the argument may be anything of base type; the
            # result is R-top.
            _infer(term.arg, environment)
            return _RT
        if isinstance(function, Lam):
            bound_type = _infer(term.arg, environment)
            if bound_type == _FUN:
                raise _Fail("the recursive function is bound to a variable")
            extended = dict(environment)
            extended[function.var] = bound_type
            return _infer(function.body, extended)
        if isinstance(function, Fix):
            raise _Fail("nested recursion is outside the scope of the counting analysis")
        argument = _infer(term.arg, environment)
        function_type = _infer(function, environment)
        # A non-recursive application at base type simply propagates taint.
        return _join(function_type if function_type != _FUN else _R, argument)
    if isinstance(term, Lam):
        # An abstraction not immediately applied: analyse its body assuming a
        # plain real argument; its uses propagate taint through _join above.
        extended = dict(environment)
        extended[term.var] = _R
        return _infer(term.body, extended)
    if isinstance(term, Fix):
        raise _Fail("nested recursion is outside the scope of the counting analysis")
    # Extension leaves (interval numerals, symbolic numerals) are plain reals.
    return _R
