"""The counting-based reduction relation of Fig. 5 (the ``star`` semantics).

To extract the counting pattern of ``mu phi x. M`` the paper analyses the term
``body(r) = M[r/x, mu/phi]``: the recursion variable is replaced by a marker
and the argument by a fixed real ``r``.  Evaluation proceeds call-by-value on
a concrete trace, except that

* applying the marker to a value counts one recursive call and returns the
  distinguished unknown numeral ``star``,
* a primitive applied to ``star`` returns ``star``,
* a conditional or a ``score`` whose scrutinee is ``star`` is stuck (the
  control flow would depend on a recursive outcome -- the progress type
  system of App. D.3 rules this out statically).

This module provides the concrete counting machine; the exact, measure-based
extraction of the counting pattern lives in :mod:`repro.counting.pattern`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Tuple, Union

from repro.semantics.traces import Trace
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Term,
    Var,
    substitute,
)
from repro.symbolic.execute import RecMarker

Number = Union[Fraction, float, int]


@dataclass(frozen=True)
class StarNumeral(Term):
    """The distinguished unknown numeral ``star`` of type R."""

    def __repr__(self) -> str:
        return "StarNumeral()"


class StarRunStatus(enum.Enum):
    """Outcome of running the counting machine on a recursion body."""

    COMPLETED = "completed"
    TRACE_EXHAUSTED = "trace-exhausted"
    STUCK_ON_STAR_GUARD = "stuck-on-star-guard"
    SCORE_FAILED = "score-failed"
    STUCK = "stuck"
    STEP_LIMIT = "step-limit"


@dataclass(frozen=True)
class StarRunResult:
    """Result of one run of the counting machine."""

    status: StarRunStatus
    calls: int
    steps: int
    term: Term
    trace: Trace

    @property
    def completed(self) -> bool:
        return self.status is StarRunStatus.COMPLETED


def _is_star_value(term: Term) -> bool:
    return isinstance(term, (Var, Numeral, StarNumeral, Lam, Fix, RecMarker))


class _Stuck(Exception):
    def __init__(self, status: StarRunStatus, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


class StarMachine:
    """The call-by-value counting machine of Fig. 5."""

    def __init__(self, registry: Optional[PrimitiveRegistry] = None) -> None:
        self.registry = registry or default_registry()

    def step(
        self, term: Term, trace: Trace, calls: int
    ) -> Optional[Tuple[Term, Trace, int]]:
        """Perform one counting step; returns ``None`` when ``term`` is a value."""
        if _is_star_value(term):
            return None
        return self._step(term, trace, calls)

    def _step(self, term: Term, trace: Trace, calls: int) -> Tuple[Term, Trace, int]:
        if isinstance(term, App):
            fn, arg = term.fn, term.arg
            if not _is_star_value(fn):
                new_fn, trace, calls = self._step(fn, trace, calls)
                return App(new_fn, arg), trace, calls
            if not _is_star_value(arg):
                new_arg, trace, calls = self._step(arg, trace, calls)
                return App(fn, new_arg), trace, calls
            if isinstance(fn, RecMarker):
                return StarNumeral(), trace, calls + 1
            if isinstance(fn, Lam):
                return substitute(fn.body, {fn.var: arg}), trace, calls
            if isinstance(fn, Fix):
                return substitute(fn.body, {fn.var: arg, fn.fvar: fn}), trace, calls
            raise _Stuck(StarRunStatus.STUCK, "application of a non-function value")
        if isinstance(term, If):
            cond = term.cond
            if isinstance(cond, StarNumeral):
                raise _Stuck(
                    StarRunStatus.STUCK_ON_STAR_GUARD,
                    "conditional guard depends on a recursive outcome",
                )
            if isinstance(cond, Numeral):
                return (term.then if cond.value <= 0 else term.orelse), trace, calls
            if _is_star_value(cond):
                raise _Stuck(StarRunStatus.STUCK, "conditional guard is not a numeral")
            new_cond, trace, calls = self._step(cond, trace, calls)
            return If(new_cond, term.then, term.orelse), trace, calls
        if isinstance(term, Prim):
            for index, argument in enumerate(term.args):
                if isinstance(argument, (Numeral, StarNumeral)):
                    continue
                if _is_star_value(argument):
                    raise _Stuck(
                        StarRunStatus.STUCK, f"primitive argument {index} is not a numeral"
                    )
                new_argument, trace, calls = self._step(argument, trace, calls)
                new_args = term.args[:index] + (new_argument,) + term.args[index + 1 :]
                return Prim(term.op, new_args), trace, calls
            if any(isinstance(argument, StarNumeral) for argument in term.args):
                return StarNumeral(), trace, calls
            primitive = self.registry[term.op]
            values = [argument.value for argument in term.args]  # type: ignore[union-attr]
            try:
                result = primitive(*values)
            except (ValueError, ZeroDivisionError, OverflowError) as error:
                raise _Stuck(StarRunStatus.STUCK, f"primitive {term.op!r} failed: {error}")
            return Numeral(result), trace, calls
        if isinstance(term, Sample):
            if trace.is_empty():
                raise _Stuck(StarRunStatus.TRACE_EXHAUSTED, "sample on an empty trace")
            return Numeral(trace.head()), trace.rest(), calls
        if isinstance(term, Score):
            argument = term.arg
            if isinstance(argument, StarNumeral):
                raise _Stuck(
                    StarRunStatus.STUCK_ON_STAR_GUARD,
                    "score argument depends on a recursive outcome",
                )
            if isinstance(argument, Numeral):
                if argument.value < 0:
                    raise _Stuck(StarRunStatus.SCORE_FAILED, "score of a negative value")
                return argument, trace, calls
            if _is_star_value(argument):
                raise _Stuck(StarRunStatus.STUCK, "score argument is not a numeral")
            new_argument, trace, calls = self._step(argument, trace, calls)
            return Score(new_argument), trace, calls
        if isinstance(term, Var):
            raise _Stuck(StarRunStatus.STUCK, f"free variable {term.name!r}")
        raise TypeError(f"cannot step term {term!r}")

    def run(
        self, term: Term, trace: Trace, max_steps: int = 100_000
    ) -> StarRunResult:
        """Run the counting machine until a value, stuckness, or the step budget."""
        steps = 0
        calls = 0
        current, remaining = term, trace
        while steps < max_steps:
            try:
                outcome = self.step(current, remaining, calls)
            except _Stuck as stuck:
                return StarRunResult(stuck.status, calls, steps, current, remaining)
            if outcome is None:
                return StarRunResult(
                    StarRunStatus.COMPLETED, calls, steps, current, remaining
                )
            current, remaining, calls = outcome
            steps += 1
        return StarRunResult(StarRunStatus.STEP_LIMIT, calls, steps, current, remaining)


def instantiate_body(fix: Fix, argument: Number) -> Term:
    """``body(argument) = M[argument/x, mu/phi]`` for the program ``mu phi x. M``."""
    return substitute(
        fix.body, {fix.var: Numeral(argument), fix.fvar: RecMarker()}
    )


def run_body(
    fix: Fix,
    argument: Number,
    trace: Trace,
    max_steps: int = 100_000,
    registry: Optional[PrimitiveRegistry] = None,
) -> StarRunResult:
    """Run one counting-semantics evaluation of the body of ``fix`` on ``argument``."""
    machine = StarMachine(registry)
    return machine.run(instantiate_body(fix, argument), trace, max_steps=max_steps)
