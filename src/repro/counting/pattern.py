"""Extraction of counting patterns (Def. 5.7).

``counting_pattern_exact`` enumerates the symbolic paths of the counting
semantics for a *fixed* actual argument ``r`` and measures each path's
constraint set, yielding the exact (sub-)distribution of the number of
recursive calls ``[| mu phi x. M | r |]``.  ``counting_pattern_monte_carlo``
estimates the same distribution by running the concrete counting machine of
Fig. 5 on lazily supplied uniform draws; the two are cross-checked in the test
suite (Ex. 5.8 gives the closed form for the running example).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from repro.geometry.engine import MeasureEngine
from repro.geometry.measure import MeasureOptions
from repro.randomwalk.step_distribution import CountingDistribution
from repro.semantics.traces import Trace
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import Fix, Numeral, Term, substitute
from repro.symbolic.constraints import Constraint, ConstraintSet, Relation
from repro.symbolic.execute import (
    RecMarker,
    StepBranch,
    StepRecCall,
    StepScore,
    StepStuck,
    StepTerm,
    StepValue,
    Strategy,
    SymbolicStepper,
)
from repro.counting.star_semantics import StarRunStatus, run_body

Number = Union[Fraction, float, int]


@dataclass(frozen=True)
class CountingPath:
    """One terminating symbolic path of the counting semantics."""

    constraints: ConstraintSet
    num_variables: int
    calls: int
    steps: int


@dataclass(frozen=True)
class CountingPatternResult:
    """The exact counting pattern for one actual argument."""

    distribution: CountingDistribution
    paths: Tuple[CountingPath, ...]
    stuck_paths: int
    unfinished_paths: int
    exact: bool

    @property
    def complete(self) -> bool:
        """True iff the pattern accounts for every run (mass may still be < 1
        when some runs get stuck, e.g. on a failing score)."""
        return self.unfinished_paths == 0


def _symbolic_body(fix: Fix, argument: Number) -> Term:
    return substitute(fix.body, {fix.var: Numeral(argument), fix.fvar: RecMarker()})


def enumerate_counting_paths(
    fix: Fix,
    argument: Number,
    max_steps: int = 2_000,
    max_paths: int = 50_000,
    registry: Optional[PrimitiveRegistry] = None,
) -> Tuple[List[CountingPath], int, int]:
    """Enumerate the terminating symbolic paths of ``body(argument)``.

    Returns ``(paths, stuck, unfinished)``.
    """
    registry = registry or default_registry()
    stepper = SymbolicStepper(Strategy.CBV, registry)
    paths: List[CountingPath] = []
    stuck = 0
    unfinished = 0
    pending = [(_symbolic_body(fix, argument), ConstraintSet(), 0, 0, 0)]
    explored = 0
    while pending:
        if explored >= max_paths:
            unfinished += len(pending)
            break
        term, constraints, next_variable, steps, calls = pending.pop()
        explored += 1
        while True:
            if steps >= max_steps:
                unfinished += 1
                break
            outcome = stepper.step(term, next_variable)
            if isinstance(outcome, StepValue):
                paths.append(CountingPath(constraints, next_variable, calls, steps))
                break
            if isinstance(outcome, StepTerm):
                term = outcome.term
                if outcome.consumed_sample:
                    next_variable += 1
                steps += 1
                continue
            if isinstance(outcome, StepScore):
                constraints = constraints.add(Constraint(outcome.value, Relation.GE))
                term = outcome.term
                steps += 1
                continue
            if isinstance(outcome, StepRecCall):
                term = outcome.term
                calls += 1
                steps += 1
                continue
            if isinstance(outcome, StepBranch):
                if outcome.guard.contains_star():
                    stuck += 1
                    break
                pending.append(
                    (
                        outcome.then_term,
                        constraints.add(Constraint(outcome.guard, Relation.LE)),
                        next_variable,
                        steps + 1,
                        calls,
                    )
                )
                term = outcome.else_term
                constraints = constraints.add(Constraint(outcome.guard, Relation.GT))
                steps += 1
                continue
            if isinstance(outcome, StepStuck):
                stuck += 1
                break
            raise TypeError(f"unexpected step outcome {outcome!r}")
    return paths, stuck, unfinished


def counting_pattern_exact(
    fix: Fix,
    argument: Number,
    max_steps: int = 2_000,
    max_paths: int = 50_000,
    registry: Optional[PrimitiveRegistry] = None,
    measure_options: Optional[MeasureOptions] = None,
    engine: Optional[MeasureEngine] = None,
) -> CountingPatternResult:
    """The counting pattern ``[| mu phi x. M | argument |]`` by exact path measuring.

    A shared :class:`MeasureEngine` may be supplied; patterns of programs
    whose guards do not mention the argument produce the same constraint sets
    for every ``argument``, so the PAST refutation (which samples several
    arguments) then measures each set only once.  A given engine supersedes
    ``measure_options`` and ``registry`` so enumeration and measuring agree
    on primitive semantics.
    """
    engine = engine or MeasureEngine(measure_options, registry)
    registry = engine.registry
    paths, stuck, unfinished = enumerate_counting_paths(
        fix, argument, max_steps=max_steps, max_paths=max_paths, registry=registry
    )
    masses: Dict[int, Union[Fraction, float]] = {}
    exact = True
    for path in paths:
        measure = engine.measure(path.constraints, path.num_variables)
        exact = exact and measure.exact
        if measure.value == 0:
            continue
        masses[path.calls] = masses.get(path.calls, Fraction(0)) + measure.value
    distribution = CountingDistribution(masses)
    return CountingPatternResult(
        distribution=distribution,
        paths=tuple(paths),
        stuck_paths=stuck,
        unfinished_paths=unfinished,
        exact=exact,
    )


def counting_pattern_monte_carlo(
    fix: Fix,
    argument: Number,
    runs: int = 5_000,
    max_steps: int = 10_000,
    seed: Optional[int] = 0,
    registry: Optional[PrimitiveRegistry] = None,
) -> CountingDistribution:
    """Estimate the counting pattern by simulating the counting machine of Fig. 5."""
    registry = registry or default_registry()
    rng = random.Random(seed)
    counts: Dict[int, int] = {}
    completed = 0
    for _ in range(runs):
        result = _run_body_lazily(fix, argument, rng, max_steps, registry)
        if result is None:
            continue
        completed += 1
        counts[result] = counts.get(result, 0) + 1
    if runs == 0:
        return CountingDistribution({})
    return CountingDistribution(
        {calls: Fraction(count, runs) for calls, count in counts.items()}
    )


def _run_body_lazily(
    fix: Fix,
    argument: Number,
    rng: random.Random,
    max_steps: int,
    registry: PrimitiveRegistry,
) -> Optional[int]:
    """One lazily-sampled run of the counting machine; returns the call count."""
    # Supply a generous trace up front and extend on exhaustion; the body of a
    # recursion makes finitely many draws per run, so a couple of retries with
    # a longer trace always suffice.
    length = 16
    while True:
        trace = Trace(tuple(rng.random() for _ in range(length)))
        result = run_body(fix, argument, trace, max_steps=max_steps, registry=registry)
        if result.status is StarRunStatus.COMPLETED:
            return result.calls
        if result.status is StarRunStatus.TRACE_EXHAUSTED and length < 4096:
            length *= 2
            continue
        return None
