"""The summary semantics of App. D.1 (Fig. 16).

The summary semantics evaluates the *body* of a recursive program on a
*summary trace*: a finite sequence whose entries are either ordinary random
draws in ``[0, 1]`` or *summaries* ``box(r -> r')`` standing for a whole
recursive call that was entered with argument ``r`` and returned ``r'``.
Whenever the body reaches a recursive call applied to the numeral ``r``, the
next trace entry must be a summary for ``r`` and the call is replaced by the
summarised result.

The semantics is the bridge between the counting machine of Fig. 5 (which
forgets the results of recursive calls) and the recursion-tree decomposition
of Def. D.2 (which stitches summarised runs back together along a number
tree); :func:`decompose_run` performs exactly that stitching for a concrete
terminating run produced by :mod:`repro.counting.numbertrees`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple, Union

from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Term,
    Var,
    substitute,
)
from repro.symbolic.execute import RecMarker

Number = Union[Fraction, float, int]

__all__ = [
    "Summary",
    "SummaryEntry",
    "SummaryRunResult",
    "SummaryRunStatus",
    "SummaryMachine",
    "run_body_with_summaries",
]


@dataclass(frozen=True)
class Summary:
    """A summary ``box(argument -> result)`` of one whole recursive call."""

    argument: Union[Fraction, float]
    result: Union[Fraction, float]

    def __repr__(self) -> str:
        return f"Summary({self.argument} -> {self.result})"


SummaryEntry = Union[Fraction, float, int, Summary]


class SummaryRunStatus(enum.Enum):
    """Outcome of one run of the summary machine."""

    COMPLETED = "completed"
    TRACE_EXHAUSTED = "trace-exhausted"
    EXPECTED_SUMMARY = "expected-summary"
    EXPECTED_DRAW = "expected-draw"
    ARGUMENT_MISMATCH = "argument-mismatch"
    SCORE_FAILED = "score-failed"
    STUCK = "stuck"
    STEP_LIMIT = "step-limit"


@dataclass(frozen=True)
class SummaryRunResult:
    """Result of running a recursion body against a summary trace."""

    status: SummaryRunStatus
    value: Optional[Union[Fraction, float]]
    summaries_used: Tuple[Summary, ...]
    draws_used: int
    steps: int

    @property
    def completed(self) -> bool:
        return self.status is SummaryRunStatus.COMPLETED

    @property
    def calls(self) -> int:
        """The number of recursive calls the run resolved via summaries."""
        return len(self.summaries_used)


class _Stop(Exception):
    def __init__(self, status: SummaryRunStatus, detail: str) -> None:
        super().__init__(detail)
        self.status = status


class SummaryMachine:
    """The call-by-value summary machine of Fig. 16.

    The machine is a big-step evaluator over summary traces; like the other
    machines in the package it is deterministic once the trace is fixed.
    """

    def __init__(
        self,
        registry: Optional[PrimitiveRegistry] = None,
        check_arguments: bool = True,
        max_steps: int = 100_000,
    ) -> None:
        self.registry = registry or default_registry()
        self.check_arguments = check_arguments
        self.max_steps = max_steps

    def run_body(
        self, fix: Fix, argument: Number, trace: Sequence[SummaryEntry]
    ) -> SummaryRunResult:
        """Evaluate ``body(argument) = M[argument/x, mu/phi]`` on ``trace``."""
        body = substitute(
            fix.body, {fix.var: Numeral(argument), fix.fvar: RecMarker()}
        )
        return self.run(body, trace)

    def run(self, term: Term, trace: Sequence[SummaryEntry]) -> SummaryRunResult:
        """Evaluate a (marker-instrumented) term on a summary trace."""
        state = _RunState(list(trace))
        try:
            value = self._eval(term, state)
        except _Stop as stop:
            return SummaryRunResult(
                status=stop.status,
                value=None,
                summaries_used=tuple(state.summaries),
                draws_used=state.draws,
                steps=state.steps,
            )
        if not isinstance(value, Numeral):
            return SummaryRunResult(
                status=SummaryRunStatus.COMPLETED,
                value=None,
                summaries_used=tuple(state.summaries),
                draws_used=state.draws,
                steps=state.steps,
            )
        return SummaryRunResult(
            status=SummaryRunStatus.COMPLETED,
            value=value.value,
            summaries_used=tuple(state.summaries),
            draws_used=state.draws,
            steps=state.steps,
        )

    # -- evaluation --------------------------------------------------------

    def _eval(self, term: Term, state: "_RunState") -> Term:
        state.tick(self.max_steps)
        if isinstance(term, (Numeral, Lam, Fix, RecMarker)):
            return term
        if isinstance(term, Var):
            raise _Stop(SummaryRunStatus.STUCK, f"free variable {term.name!r}")
        if isinstance(term, Sample):
            entry = state.next_entry()
            if isinstance(entry, Summary):
                raise _Stop(
                    SummaryRunStatus.EXPECTED_DRAW,
                    "sample reached a summary entry in the trace",
                )
            return Numeral(entry)
        if isinstance(term, App):
            fn = self._eval(term.fn, state)
            arg = self._eval(term.arg, state)
            if isinstance(fn, RecMarker):
                if not isinstance(arg, Numeral):
                    raise _Stop(SummaryRunStatus.STUCK, "recursive call on a non-numeral")
                entry = state.next_entry()
                if not isinstance(entry, Summary):
                    raise _Stop(
                        SummaryRunStatus.EXPECTED_SUMMARY,
                        "recursive call reached a plain draw in the trace",
                    )
                if self.check_arguments and entry.argument != arg.value:
                    raise _Stop(
                        SummaryRunStatus.ARGUMENT_MISMATCH,
                        f"summary argument {entry.argument} does not match call "
                        f"argument {arg.value}",
                    )
                state.summaries.append(entry)
                return Numeral(entry.result)
            if isinstance(fn, Lam):
                return self._eval(substitute(fn.body, {fn.var: arg}), state)
            if isinstance(fn, Fix):
                unfolded = substitute(fn.body, {fn.var: arg, fn.fvar: fn})
                return self._eval(unfolded, state)
            raise _Stop(SummaryRunStatus.STUCK, "application of a non-function value")
        if isinstance(term, If):
            cond = self._eval(term.cond, state)
            if not isinstance(cond, Numeral):
                raise _Stop(SummaryRunStatus.STUCK, "conditional guard is not a numeral")
            return self._eval(term.then if cond.value <= 0 else term.orelse, state)
        if isinstance(term, Prim):
            values = []
            for argument in term.args:
                evaluated = self._eval(argument, state)
                if not isinstance(evaluated, Numeral):
                    raise _Stop(SummaryRunStatus.STUCK, "primitive argument is not a numeral")
                values.append(evaluated.value)
            primitive = self.registry[term.op]
            try:
                return Numeral(primitive(*values))
            except (ValueError, ZeroDivisionError, OverflowError) as error:
                raise _Stop(SummaryRunStatus.STUCK, f"primitive failed: {error}")
        if isinstance(term, Score):
            argument = self._eval(term.arg, state)
            if not isinstance(argument, Numeral):
                raise _Stop(SummaryRunStatus.STUCK, "score argument is not a numeral")
            if argument.value < 0:
                raise _Stop(SummaryRunStatus.SCORE_FAILED, "score of a negative value")
            return argument
        raise _Stop(SummaryRunStatus.STUCK, f"cannot evaluate {term!r}")


class _RunState:
    """Mutable bookkeeping for one summary run."""

    def __init__(self, trace: List[SummaryEntry]) -> None:
        self.trace = trace
        self.position = 0
        self.summaries: List[Summary] = []
        self.draws = 0
        self.steps = 0

    def tick(self, max_steps: int) -> None:
        self.steps += 1
        if self.steps > max_steps:
            raise _Stop(SummaryRunStatus.STEP_LIMIT, "step budget exceeded")

    def next_entry(self) -> SummaryEntry:
        if self.position >= len(self.trace):
            raise _Stop(SummaryRunStatus.TRACE_EXHAUSTED, "summary trace exhausted")
        entry = self.trace[self.position]
        self.position += 1
        if not isinstance(entry, Summary):
            self.draws += 1
        return entry


def run_body_with_summaries(
    fix: Fix,
    argument: Number,
    trace: Sequence[SummaryEntry],
    registry: Optional[PrimitiveRegistry] = None,
    check_arguments: bool = True,
    max_steps: int = 100_000,
) -> SummaryRunResult:
    """Run one summary-semantics evaluation of the body of ``fix``."""
    machine = SummaryMachine(
        registry=registry, check_arguments=check_arguments, max_steps=max_steps
    )
    return machine.run_body(fix, argument, trace)
